/**
 * @file
 * Micro-benchmarks of the capability substrate: bounds
 * encode/decode, representability checks, serialization.
 *
 * The paper's evaluation is qualitative; these benchmarks
 * characterise the cost of the executable semantics' primitives
 * (useful when using it as a test oracle for compiler fuzzing,
 * section 7).
 */
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "cap/cc64.h"
#include "cap/cc128.h"

namespace {

using namespace cherisem;
using namespace cherisem::cap;

std::vector<std::pair<uint64_t, uint64_t>>
randomRegions(size_t n, uint64_t max_len)
{
    std::mt19937_64 rng(1234);
    std::vector<std::pair<uint64_t, uint64_t>> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        uint64_t base = rng() & 0xffffffffffffull;
        uint64_t len = (rng() % max_len) + 1;
        out.emplace_back(base, len);
    }
    return out;
}

void
BM_CC128_EncodeSmall(benchmark::State &state)
{
    auto regions = randomRegions(1024, 4000);
    size_t i = 0;
    for (auto _ : state) {
        const auto &[base, len] = regions[i++ & 1023];
        benchmark::DoNotOptimize(
            CC128::encode(base, uint128(base) + len));
    }
}
BENCHMARK(BM_CC128_EncodeSmall);

void
BM_CC128_EncodeLarge(benchmark::State &state)
{
    auto regions = randomRegions(1024, uint64_t(1) << 32);
    size_t i = 0;
    for (auto _ : state) {
        const auto &[base, len] = regions[i++ & 1023];
        benchmark::DoNotOptimize(
            CC128::encode(base, uint128(base) + len));
    }
}
BENCHMARK(BM_CC128_EncodeLarge);

void
BM_CC128_Decode(benchmark::State &state)
{
    auto regions = randomRegions(1024, uint64_t(1) << 28);
    std::vector<std::pair<BoundsFields, uint64_t>> encoded;
    for (const auto &[base, len] : regions) {
        encoded.emplace_back(
            CC128::encode(base, uint128(base) + len).fields, base);
    }
    size_t i = 0;
    for (auto _ : state) {
        const auto &[f, addr] = encoded[i++ & 1023];
        benchmark::DoNotOptimize(CC128::decode(f, addr));
    }
}
BENCHMARK(BM_CC128_Decode);

void
BM_CC128_Representability(benchmark::State &state)
{
    auto enc = CC128::encode(0x10000, 0x10000 + 8192);
    uint64_t addr = 0x10000;
    for (auto _ : state) {
        addr = (addr + 997) & 0x3ffff;
        benchmark::DoNotOptimize(
            CC128::isRepresentable(enc.fields, enc.bounds, addr));
    }
}
BENCHMARK(BM_CC128_Representability);

void
BM_CC128_RepresentableLength(benchmark::State &state)
{
    uint64_t len = 1;
    for (auto _ : state) {
        len = len * 3 + 1;
        if (len > (uint64_t(1) << 40))
            len = 1;
        benchmark::DoNotOptimize(CC128::representableLength(len));
    }
}
BENCHMARK(BM_CC128_RepresentableLength);

void
BM_CC64_Encode(benchmark::State &state)
{
    std::mt19937_64 rng(7);
    std::vector<std::pair<uint32_t, uint32_t>> regions(1024);
    for (auto &r : regions) {
        r.first = static_cast<uint32_t>(rng());
        r.second = static_cast<uint32_t>(rng() % 500) + 1;
    }
    size_t i = 0;
    for (auto _ : state) {
        const auto &[base, len] = regions[i++ & 1023];
        benchmark::DoNotOptimize(
            CC64::encode(base, uint128(base) + len));
    }
}
BENCHMARK(BM_CC64_Encode);

void
BM_Capability_Serialize(benchmark::State &state)
{
    Capability c = Capability::make(morello(), 0x10000, 0x14000,
                                    PermSet::data());
    uint8_t buf[16];
    for (auto _ : state) {
        morello().toBytes(c, buf);
        benchmark::DoNotOptimize(morello().fromBytes(buf, true));
    }
}
BENCHMARK(BM_Capability_Serialize);

void
BM_Capability_SetAddressGhost(benchmark::State &state)
{
    Capability c = Capability::make(morello(), 0x10000, 0x14000,
                                    PermSet::data());
    uint64_t a = 0x10000;
    for (auto _ : state) {
        a = 0x10000 + ((a + 13) & 0x3fff);
        benchmark::DoNotOptimize(c.withAddressGhost(a));
    }
}
BENCHMARK(BM_Capability_SetAddressGhost);

} // namespace

BENCHMARK_MAIN();
