/**
 * @file
 * Differential fuzzing harness: the "test oracle" use of the
 * executable semantics the paper proposes (section 7: "it could be
 * used as a test oracle for more aggressive compiler testing, letting
 * one use randomly generated tests without manually curating their
 * intended results").
 *
 * A small generator produces random *well-defined* CHERI C programs
 * (bounded arithmetic, in-bounds array traffic, pointer round trips);
 * each program runs under every implementation profile and the
 * observable behaviour (exit code + output) must agree with the
 * reference semantics — because for UB-free programs, all conforming
 * implementations coincide.
 *
 *   differential_fuzz [iterations] [seed]
 */
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>

#include "driver/interpreter.h"

namespace {

using namespace cherisem::driver;

/** Generates random UB-free MiniC programs. */
class ProgramGenerator
{
  public:
    explicit ProgramGenerator(uint64_t seed) : rng_(seed) {}

    std::string
    generate()
    {
        std::string body;
        int n_vars = 2 + static_cast<int>(rng_() % 4);
        for (int i = 0; i < n_vars; ++i) {
            body += "    int v" + std::to_string(i) + " = " +
                std::to_string(rng_() % 100) + ";\n";
        }
        body += "    int a[8];\n"
                "    for (int i = 0; i < 8; i++) a[i] = i * " +
            std::to_string(1 + rng_() % 9) + ";\n";

        int n_stmts = 4 + static_cast<int>(rng_() % 8);
        for (int i = 0; i < n_stmts; ++i)
            body += statement(n_vars);

        body += "    int acc = 0;\n"
                "    for (int i = 0; i < 8; i++) acc += a[i];\n";
        for (int i = 0; i < n_vars; ++i)
            body += "    acc += v" + std::to_string(i) + ";\n";
        body += "    return acc & 0x7f;\n";
        return "#include <stdint.h>\nint main(void) {\n" + body +
            "}\n";
    }

  private:
    std::string
    var(int n_vars)
    {
        return "v" + std::to_string(rng_() % n_vars);
    }

    std::string
    statement(int n_vars)
    {
        switch (rng_() % 6) {
          case 0: // bounded arithmetic (no overflow: operands < 2^14)
            return "    " + var(n_vars) + " = (" + var(n_vars) +
                " & 0x3fff) " + pickOp() + " (" + var(n_vars) +
                " & 0xfff);\n";
          case 1: { // in-bounds array write
            std::string idx =
                "(" + var(n_vars) + " & 7)"; // always 0..7
            return "    a[" + idx + "] = " + var(n_vars) + " & 0xff;\n";
          }
          case 2: { // pointer walk within bounds
            return "    { int *p = &a[" +
                std::to_string(rng_() % 8) + "]; " + var(n_vars) +
                " += *p; }\n";
          }
          case 3: { // uintptr_t round trip (always in bounds)
            return "    { uintptr_t u = (uintptr_t)&a[" +
                std::to_string(rng_() % 8) +
                "]; int *q = (int*)u; " + var(n_vars) +
                " ^= *q & 0xff; }\n";
          }
          case 4: // conditional
            return "    if (" + var(n_vars) + " > " +
                std::to_string(rng_() % 50) + ") " + var(n_vars) +
                " -= 1; else " + var(n_vars) + " += 1;\n";
          case 5: { // bounded loop
            return "    for (int k = 0; k < " +
                std::to_string(1 + rng_() % 5) + "; k++) " +
                var(n_vars) + " = (" + var(n_vars) + " * 3 + k) & "
                "0xffff;\n";
          }
        }
        return "";
    }

    std::string
    pickOp()
    {
        switch (rng_() % 5) {
          case 0: return "+";
          case 1: return "-";
          case 2: return "*";
          case 3: return "|";
          default: return "^";
        }
    }

    std::mt19937_64 rng_;
};

} // namespace

int
main(int argc, char **argv)
{
    int iterations = argc > 1 ? std::atoi(argv[1]) : 200;
    uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                             : 20240427;
    ProgramGenerator gen(seed);

    printf("Differential fuzzing: %d random UB-free programs under "
           "%zu profiles\n",
           iterations, allProfiles().size());

    int disagreements = 0;
    int reference_failures = 0;
    for (int i = 0; i < iterations; ++i) {
        std::string src = gen.generate();
        RunResult ref = runSource(src, referenceProfile());
        if (ref.frontendError ||
            ref.outcome.kind !=
                cherisem::corelang::Outcome::Kind::Exit) {
            // The generator is supposed to emit UB-free programs; a
            // reference failure means a generator (or semantics) bug.
            ++reference_failures;
            printf("REFERENCE FAILURE (iteration %d): %s\n", i,
                   ref.summary().c_str());
            continue;
        }
        for (const Profile &p : allProfiles()) {
            RunResult r = runSource(src, p);
            bool agree = !r.frontendError &&
                r.outcome.kind ==
                    cherisem::corelang::Outcome::Kind::Exit &&
                r.outcome.exitCode == ref.outcome.exitCode &&
                r.outcome.output == ref.outcome.output;
            if (!agree) {
                ++disagreements;
                printf("DISAGREEMENT (iteration %d, profile %s): "
                       "reference %s vs %s\n",
                       i, p.name.c_str(), ref.summary().c_str(),
                       r.summary().c_str());
            }
        }
    }

    printf("\n%d programs x %zu profiles: %d disagreements, %d "
           "reference failures\n",
           iterations, allProfiles().size(), disagreements,
           reference_failures);
    printf("(UB-free programs must behave identically under every "
           "conforming\nimplementation — any disagreement is a "
           "semantics bug.)\n");
    return (disagreements || reference_failures) ? 1 : 0;
}
