/**
 * @file
 * Serving-layer benchmarks: batch throughput across worker counts,
 * cold-vs-cached request latency, and the front-cache hit rate under
 * a realistic request mix.
 *
 * Like the other micro_* harnesses, a fixed grid runs first and
 * writes BENCH_serve.json (a "throughput" array of per-thread-count
 * entries plus a "latency" summary — the schema CI validates), then
 * the google-benchmark suite runs.  Pass --no-json to skip the
 * file.  Throughput numbers scale with core count; on a single-core
 * runner the multi-worker rows mostly measure scheduling overhead,
 * which is exactly what they are for.
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "serve/server.h"

namespace {

namespace serve = cherisem::serve;

/** The request mix: small programs exercising arithmetic, pointers,
 *  the allocator, and UB detection — each appears many times per
 *  campaign, so the front cache matters like it does for fuzzing and
 *  suite traffic. */
const char *kMix[] = {
    "int main(void) {\n"
    "    int acc = 0;\n"
    "    for (int i = 0; i < 200; i++) acc += i;\n"
    "    return acc & 0xff;\n"
    "}\n",

    "int main(void) {\n"
    "    int a[32];\n"
    "    for (int i = 0; i < 32; i++) a[i] = i * i;\n"
    "    int sum = 0;\n"
    "    for (int i = 0; i < 32; i++) sum += a[i];\n"
    "    return sum & 0xff;\n"
    "}\n",

    "#include <stdlib.h>\n"
    "int main(void) {\n"
    "    int total = 0;\n"
    "    for (int r = 0; r < 10; r++) {\n"
    "        int *p = malloc(16 * sizeof(int));\n"
    "        for (int i = 0; i < 16; i++) p[i] = r + i;\n"
    "        total += p[7];\n"
    "        free(p);\n"
    "    }\n"
    "    return total & 0xff;\n"
    "}\n",

    "int main(void) {\n"
    "    int *p = 0;\n"
    "    return *p;\n" // ub verdict path
    "}\n",
};
constexpr size_t kMixSize = sizeof kMix / sizeof kMix[0];

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct ThroughputRow
{
    unsigned threads;
    uint64_t programs;
    double wallMs;
    double programsPerSec;
    double cacheHitRate;
};

/** Run @p programs requests drawn round-robin from the mix on a
 *  fresh @p threads-worker server; report wall clock and hit rate. */
ThroughputRow
throughputRun(unsigned threads, uint64_t programs)
{
    serve::ServerOptions opts;
    opts.threads = threads;
    serve::Server server(opts);

    double t0 = nowMs();
    for (uint64_t i = 0; i < programs; ++i) {
        serve::Request req;
        req.id = std::to_string(i);
        req.source = kMix[i % kMixSize];
        req.wantOutput = false;
        server.submit(std::move(req), nullptr);
    }
    server.drain();
    double wallMs = nowMs() - t0;

    serve::Metrics::Snapshot s = server.stats();
    ThroughputRow row;
    row.threads = threads;
    row.programs = programs;
    row.wallMs = wallMs;
    row.programsPerSec =
        wallMs > 0 ? static_cast<double>(programs) * 1000.0 / wallMs
                   : 0;
    row.cacheHitRate = s.cacheHitRate;
    return row;
}

/** Mean ns of runNow over @p iters requests produced by @p source. */
template <typename SourceFn>
double
latencyNs(serve::Server &server, SourceFn &&source, int iters)
{
    using clock = std::chrono::steady_clock;
    double total = 0;
    for (int i = 0; i < iters; ++i) {
        serve::Request req;
        req.source = source(i);
        req.wantOutput = false;
        auto t0 = clock::now();
        serve::Response r = server.runNow(req);
        auto t1 = clock::now();
        benchmark::DoNotOptimize(r.steps);
        total += static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 -
                                                                 t0)
                .count());
    }
    return total / iters;
}

void
writeBenchJson(const char *path)
{
    const unsigned threadCounts[] = {1, 2, 4, 8};
    constexpr uint64_t kPrograms = 400;

    std::vector<ThroughputRow> rows;
    for (unsigned t : threadCounts)
        rows.push_back(throughputRun(t, kPrograms));

    // Latency: cold misses (every request a distinct program) vs a
    // fully warmed cache (one program repeated).
    serve::ServerOptions opts;
    opts.threads = 1;
    serve::Server server(opts);
    double coldNs = latencyNs(
        server,
        [](int i) {
            return "int main(void){return " + std::to_string(i % 251) +
                ";}";
        },
        200);
    // Same shape of program, now a guaranteed hit every time.
    (void)latencyNs(
        server, [](int) { return std::string("int main(void){return 9;}"); },
        1); // populate
    double warmNs = latencyNs(
        server, [](int) { return std::string("int main(void){return 9;}"); },
        200);

    // Warm serving: the same prelude-heavy program served from a
    // front-cache hit (compilation skipped, globals + prelude
    // re-executed) vs a warm snapshot restore (both skipped).  The
    // two caches are distinct layers and the stats op reports them
    // separately; this measures the gap between them.
    const char *kWarmPrelude = "int table[4096];\n"
                               "void __prelude(void)\n"
                               "{\n"
                               "  for (int i = 0; i < 4096; i++)\n"
                               "    table[i] = i * i;\n"
                               "}\n";
    auto warmMain = [](int) {
        return std::string("int main(void){return table[1234] & 0xff;}");
    };
    serve::ServerOptions cacheHitOpts;
    cacheHitOpts.threads = 1;
    cacheHitOpts.warmPrelude = kWarmPrelude;
    cacheHitOpts.warmCapacity = 0; // warm disabled: hits re-run the prelude
    serve::Server cacheHitServer(cacheHitOpts);
    (void)latencyNs(cacheHitServer, warmMain, 1); // populate front cache
    double cacheHitNs = latencyNs(cacheHitServer, warmMain, 50);
    serve::ServerOptions warmOpts = cacheHitOpts;
    warmOpts.warmCapacity = 16;
    serve::Server warmServer(warmOpts);
    (void)latencyNs(warmServer, warmMain, 1); // warm build
    double warmHitNs = latencyNs(warmServer, warmMain, 50);

    double best = 0;
    for (const ThroughputRow &r : rows)
        best = r.programsPerSec > best ? r.programsPerSec : best;

    FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n  \"throughput\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const ThroughputRow &r = rows[i];
        std::fprintf(f,
                     "    {\"threads\": %u, \"programs\": %llu, "
                     "\"wall_ms\": %.1f, \"programs_per_sec\": %.1f, "
                     "\"cache_hit_rate\": %.4f}%s\n",
                     r.threads, (unsigned long long)r.programs,
                     r.wallMs, r.programsPerSec, r.cacheHitRate,
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"latency\": {\"cold_ns\": %.1f, "
                 "\"cached_ns\": %.1f, \"cached_speedup\": %.2f},\n"
                 "  \"warm\": {\"cache_hit_ns\": %.1f, "
                 "\"warm_hit_ns\": %.1f, \"warm_speedup\": %.2f},\n"
                 "  \"programs_per_sec_best\": %.1f\n}\n",
                 coldNs, warmNs, warmNs > 0 ? coldNs / warmNs : 0,
                 cacheHitNs, warmHitNs,
                 warmHitNs > 0 ? cacheHitNs / warmHitNs : 0, best);
    std::fclose(f);
    std::fprintf(stderr,
                 "BENCH_serve.json written: best %.0f programs/s, "
                 "cached latency %.2fx faster than cold, "
                 "warm restore %.2fx faster than a cache hit\n",
                 best, warmNs > 0 ? coldNs / warmNs : 0,
                 warmHitNs > 0 ? cacheHitNs / warmHitNs : 0);
}

// ---------------------------------------------------------------------
// google-benchmark suite.
// ---------------------------------------------------------------------

void
BM_Serve_RunNow_Cold(benchmark::State &state)
{
    serve::ServerOptions opts;
    opts.threads = 1;
    opts.cacheCapacity = 0; // every request compiles
    serve::Server server(opts);
    serve::Request req;
    req.source = kMix[0];
    req.wantOutput = false;
    for (auto _ : state) {
        serve::Response r = server.runNow(req);
        benchmark::DoNotOptimize(r.steps);
    }
}
BENCHMARK(BM_Serve_RunNow_Cold);

void
BM_Serve_RunNow_Cached(benchmark::State &state)
{
    serve::ServerOptions opts;
    opts.threads = 1;
    serve::Server server(opts);
    serve::Request req;
    req.source = kMix[0];
    req.wantOutput = false;
    server.runNow(req); // populate
    for (auto _ : state) {
        serve::Response r = server.runNow(req);
        benchmark::DoNotOptimize(r.steps);
    }
}
BENCHMARK(BM_Serve_RunNow_Cached);

void
BM_Serve_Pool_Mix(benchmark::State &state)
{
    serve::ServerOptions opts;
    opts.threads = static_cast<unsigned>(state.range(0));
    serve::Server server(opts);
    uint64_t i = 0;
    for (auto _ : state) {
        for (int k = 0; k < 16; ++k) {
            serve::Request req;
            req.id = std::to_string(i++);
            req.source = kMix[i % kMixSize];
            req.wantOutput = false;
            server.submit(std::move(req), nullptr);
        }
        server.drain();
    }
    state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_Serve_Pool_Mix)->Arg(1)->Arg(4);

} // namespace

int
main(int argc, char **argv)
{
    bool write_json = true;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--no-json") {
            write_json = false;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }
    if (write_json)
        writeBenchJson("BENCH_serve.json");

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
