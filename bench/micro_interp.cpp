/**
 * @file
 * End-to-end interpreter benchmarks: whole-pipeline cost of running
 * small CHERI C programs under the reference and hardware profiles,
 * including the optimisation-pass ablation.
 */
#include <benchmark/benchmark.h>

#include "driver/interpreter.h"

namespace {

using namespace cherisem::driver;

const char *ARITH_LOOP = R"(
int main(void) {
    int acc = 0;
    for (int i = 0; i < 1000; i++) acc += i;
    return acc & 0xff;
}
)";

const char *POINTER_CHASE = R"(
struct node { int value; struct node *next; };
int main(void) {
    struct node nodes[32];
    for (int i = 0; i < 31; i++) {
        nodes[i].value = i;
        nodes[i].next = &nodes[i + 1];
    }
    nodes[31].value = 31;
    nodes[31].next = 0;
    int sum = 0;
    for (int r = 0; r < 20; r++)
        for (struct node *n = &nodes[0]; n; n = n->next)
            sum += n->value;
    return sum & 0xff;
}
)";

const char *INTPTR_HEAVY = R"(
#include <stdint.h>
int main(void) {
    int a[64];
    uintptr_t base = (uintptr_t)a;
    for (int i = 0; i < 64; i++) {
        int *p = (int*)(base + i * sizeof(int));
        *p = i;
    }
    int sum = 0;
    for (int i = 0; i < 64; i++) sum += a[i];
    return sum & 0xff;
}
)";

const char *MALLOC_CHURN = R"(
#include <stdlib.h>
#include <string.h>
int main(void) {
    int total = 0;
    for (int r = 0; r < 50; r++) {
        char *p = malloc(64);
        memset(p, r, 64);
        total += p[13];
        free(p);
    }
    return total & 0xff;
}
)";

void
runBench(benchmark::State &state, const char *src,
         const std::string &profile)
{
    const Profile *p = findProfile(profile);
    for (auto _ : state) {
        RunResult r = runSource(src, *p);
        if (r.frontendError ||
            r.outcome.kind != cherisem::corelang::Outcome::Kind::Exit) {
            state.SkipWithError("program did not run to exit");
            return;
        }
        benchmark::DoNotOptimize(r.outcome.exitCode);
    }
}

void
BM_Interp_ArithLoop_Reference(benchmark::State &state)
{
    runBench(state, ARITH_LOOP, "cerberus");
}
BENCHMARK(BM_Interp_ArithLoop_Reference);

void
BM_Interp_ArithLoop_Hardware(benchmark::State &state)
{
    runBench(state, ARITH_LOOP, "clang-morello-O0");
}
BENCHMARK(BM_Interp_ArithLoop_Hardware);

void
BM_Interp_PointerChase_Reference(benchmark::State &state)
{
    runBench(state, POINTER_CHASE, "cerberus");
}
BENCHMARK(BM_Interp_PointerChase_Reference);

void
BM_Interp_PointerChase_Hardware(benchmark::State &state)
{
    runBench(state, POINTER_CHASE, "clang-morello-O0");
}
BENCHMARK(BM_Interp_PointerChase_Hardware);

void
BM_Interp_IntptrHeavy_Reference(benchmark::State &state)
{
    runBench(state, INTPTR_HEAVY, "cerberus");
}
BENCHMARK(BM_Interp_IntptrHeavy_Reference);

void
BM_Interp_IntptrHeavy_Cheriot(benchmark::State &state)
{
    runBench(state, INTPTR_HEAVY, "cerberus-cheriot");
}
BENCHMARK(BM_Interp_IntptrHeavy_Cheriot);

void
BM_Interp_MallocChurn_Reference(benchmark::State &state)
{
    runBench(state, MALLOC_CHURN, "cerberus");
}
BENCHMARK(BM_Interp_MallocChurn_Reference);

void
BM_Interp_MallocChurn_Optimized(benchmark::State &state)
{
    runBench(state, MALLOC_CHURN, "clang-morello-O2");
}
BENCHMARK(BM_Interp_MallocChurn_Optimized);

} // namespace

BENCHMARK_MAIN();
