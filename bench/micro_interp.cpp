/**
 * @file
 * End-to-end interpreter benchmarks: whole-pipeline cost of running
 * small CHERI C programs under the reference and hardware profiles,
 * including the optimisation-pass ablation.
 *
 * Like micro_memory, a fixed harness runs first and writes
 * BENCH_interp.json (same format: a "results" array of ns_per_op
 * entries plus summary ratios) — here the grid is workload x
 * profile, and the summaries are the witness-tracing overhead ratio
 * (traced-into-a-ring vs untraced), which the obs/ subsystem promises
 * stays under 5% when disabled, and the bytecode-vs-tree evaluation
 * speedup (compile once, evaluate many: the fair engine comparison,
 * since the bytecode compiler runs once per program while the tree
 * walker re-dispatches on the AST every step).  Pass --no-json to
 * skip it.
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "corelang/bytecode.h"
#include "corelang/machine.h"
#include "corelang/vm.h"
#include "driver/interpreter.h"
#include "frontend/parser.h"
#include "obs/sinks.h"
#include "sema/sema.h"

namespace {

using namespace cherisem::driver;

const char *ARITH_LOOP = R"(
int main(void) {
    int acc = 0;
    for (int i = 0; i < 1000; i++) acc += i;
    return acc & 0xff;
}
)";

const char *POINTER_CHASE = R"(
struct node { int value; struct node *next; };
int main(void) {
    struct node nodes[32];
    for (int i = 0; i < 31; i++) {
        nodes[i].value = i;
        nodes[i].next = &nodes[i + 1];
    }
    nodes[31].value = 31;
    nodes[31].next = 0;
    int sum = 0;
    for (int r = 0; r < 20; r++)
        for (struct node *n = &nodes[0]; n; n = n->next)
            sum += n->value;
    return sum & 0xff;
}
)";

const char *INTPTR_HEAVY = R"(
#include <stdint.h>
int main(void) {
    int a[64];
    uintptr_t base = (uintptr_t)a;
    for (int i = 0; i < 64; i++) {
        int *p = (int*)(base + i * sizeof(int));
        *p = i;
    }
    int sum = 0;
    for (int i = 0; i < 64; i++) sum += a[i];
    return sum & 0xff;
}
)";

const char *MALLOC_CHURN = R"(
#include <stdlib.h>
#include <string.h>
int main(void) {
    int total = 0;
    for (int r = 0; r < 50; r++) {
        char *p = malloc(64);
        memset(p, r, 64);
        total += p[13];
        free(p);
    }
    return total & 0xff;
}
)";

// ---------------------------------------------------------------------
// BENCH_interp.json: fixed workload x profile grid.
// ---------------------------------------------------------------------

/** Wall-clock ns/op of @p op, warmed up and run until ~0.3 s or
 *  @p max_iters, whichever comes first. */
template <typename F>
double
nsPerOp(F &&op, int max_iters = 64)
{
    using clock = std::chrono::steady_clock;
    op(); // warm-up
    double total_ns = 0;
    int iters = 0;
    while (iters < max_iters && total_ns < 3e8) {
        auto t0 = clock::now();
        op();
        auto t1 = clock::now();
        total_ns += static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 -
                                                                 t0)
                .count());
        ++iters;
    }
    return total_ns / iters;
}

struct Workload
{
    const char *name;
    const char *src;
};

// ---------------------------------------------------------------------
// Engine comparison: evaluation-only, compile once / run many.
// ---------------------------------------------------------------------

namespace corelang = cherisem::corelang;

/** Parse + analyse + optimise @p src once under @p profile. */
cherisem::sema::Program
analyzeOnce(const char *src, const Profile &profile)
{
    cherisem::frontend::TranslationUnit unit =
        cherisem::frontend::parse(src, "<bench>");
    cherisem::ctype::MachineLayout machine{
        profile.memConfig.arch->capSize(),
        profile.memConfig.arch->addrBits() / 8};
    cherisem::sema::Program prog =
        cherisem::sema::analyze(std::move(unit), machine);
    corelang::optimize(prog, profile.optims);
    return prog;
}

/** Minimum evaluation-only ns over repeated runs of one engine
 *  (minimum, not mean: the noise floor on a shared machine is
 *  one-sided).  @p module selects the bytecode VM; null runs the
 *  tree walker. */
double
evalOnlyNs(const cherisem::sema::Program &prog,
           const corelang::EvalOptions &opts,
           const corelang::BytecodeModule *module,
           int max_iters = 200)
{
    using clock = std::chrono::steady_clock;
    auto once = [&] {
        corelang::Outcome o;
        if (module) {
            corelang::Vm vm(prog, opts, module);
            o = vm.run();
        } else {
            corelang::Machine machine(prog, opts);
            o = machine.run();
        }
        benchmark::DoNotOptimize(o.exitCode);
    };
    once(); // warm-up
    double best = 1e18, total = 0;
    int iters = 0;
    while (iters < max_iters && total < 3e8) {
        auto t0 = clock::now();
        once();
        auto t1 = clock::now();
        double ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 -
                                                                 t0)
                .count());
        best = ns < best ? ns : best;
        total += ns;
        ++iters;
    }
    return best;
}

/** One op = one whole runSource() (parse..evaluate). */
double
timeRun(const char *src, const Profile &profile,
        cherisem::obs::TraceSink *sink = nullptr)
{
    Profile p = profile;
    p.memConfig.traceSink = sink;
    return nsPerOp([&] {
        RunResult r = runSource(src, p);
        benchmark::DoNotOptimize(r.outcome.exitCode);
    });
}

void
writeBenchJson(const char *path)
{
    const Workload workloads[] = {
        {"arith_loop", ARITH_LOOP},
        {"pointer_chase", POINTER_CHASE},
        {"intptr_heavy", INTPTR_HEAVY},
        {"malloc_churn", MALLOC_CHURN},
    };
    const char *profiles[] = {"cerberus", "clang-morello-O0"};

    struct Entry
    {
        std::string workload, profile;
        double nsPerRun;
    };
    struct EngineEntry
    {
        std::string workload;
        double treeNs, bytecodeNs;
    };
    std::vector<Entry> entries;
    std::vector<EngineEntry> engineEntries;
    double untraced_total = 0, traced_total = 0;
    double tree_total = 0, bytecode_total = 0;

    for (const Workload &w : workloads) {
        for (const char *name : profiles) {
            const Profile *p = findProfile(name);
            entries.push_back({w.name, name, timeRun(w.src, *p)});
        }
        // Tracing-overhead ablation on the reference profile: the
        // sum over workloads gives the headline ratio.
        const Profile &ref = referenceProfile();
        untraced_total += timeRun(w.src, ref);
        cherisem::obs::RingBufferSink ring;
        traced_total += timeRun(w.src, ref, &ring);

        // Engine comparison, evaluation-only: one frontend pass and
        // one bytecode compile, then repeated evaluations.
        cherisem::sema::Program prog = analyzeOnce(w.src, ref);
        corelang::EvalOptions opts = ref.evalOptions();
        corelang::BytecodeModule module =
            corelang::compileProgram(prog);
        double tree_ns = evalOnlyNs(prog, opts, nullptr);
        double bytecode_ns = evalOnlyNs(prog, opts, &module);
        engineEntries.push_back({w.name, tree_ns, bytecode_ns});
        tree_total += tree_ns;
        bytecode_total += bytecode_ns;
    }

    double ratio =
        untraced_total > 0 ? traced_total / untraced_total : 0;
    double engine_speedup =
        bytecode_total > 0 ? tree_total / bytecode_total : 0;

    FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n  \"results\": [\n");
    for (size_t i = 0; i < entries.size(); ++i) {
        const Entry &e = entries[i];
        std::fprintf(f,
                     "    {\"workload\": \"%s\", \"profile\": \"%s\", "
                     "\"ns_per_run\": %.1f}%s\n",
                     e.workload.c_str(), e.profile.c_str(), e.nsPerRun,
                     i + 1 < entries.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"engine_results\": [\n");
    for (size_t i = 0; i < engineEntries.size(); ++i) {
        const EngineEntry &e = engineEntries[i];
        std::fprintf(
            f,
            "    {\"workload\": \"%s\", \"eval_ns_tree\": %.1f, "
            "\"eval_ns_bytecode\": %.1f, \"speedup\": %.2f}%s\n",
            e.workload.c_str(), e.treeNs, e.bytecodeNs,
            e.bytecodeNs > 0 ? e.treeNs / e.bytecodeNs : 0,
            i + 1 < engineEntries.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"tracing_overhead_ratio_ring_vs_off\": "
                 "%.3f,\n  \"bytecode_speedup_vs_tree\": %.2f\n}\n",
                 ratio, engine_speedup);
    std::fclose(f);
    std::fprintf(stderr,
                 "BENCH_interp.json written: ring-traced vs untraced "
                 "= %.3fx, bytecode vs tree = %.2fx\n",
                 ratio, engine_speedup);
}

// ---------------------------------------------------------------------
// google-benchmark suite.
// ---------------------------------------------------------------------

void
runBench(benchmark::State &state, const char *src,
         const std::string &profile,
         corelang::Engine engine = corelang::Engine::Tree)
{
    Profile p = *findProfile(profile);
    p.engine = engine;
    for (auto _ : state) {
        RunResult r = runSource(src, p);
        if (r.frontendError ||
            r.outcome.kind != cherisem::corelang::Outcome::Kind::Exit) {
            state.SkipWithError("program did not run to exit");
            return;
        }
        benchmark::DoNotOptimize(r.outcome.exitCode);
    }
}

void
BM_Interp_ArithLoop_Reference(benchmark::State &state)
{
    runBench(state, ARITH_LOOP, "cerberus");
}
BENCHMARK(BM_Interp_ArithLoop_Reference);

void
BM_Interp_ArithLoop_Hardware(benchmark::State &state)
{
    runBench(state, ARITH_LOOP, "clang-morello-O0");
}
BENCHMARK(BM_Interp_ArithLoop_Hardware);

void
BM_Interp_ArithLoop_Bytecode(benchmark::State &state)
{
    runBench(state, ARITH_LOOP, "cerberus",
             corelang::Engine::Bytecode);
}
BENCHMARK(BM_Interp_ArithLoop_Bytecode);

void
BM_Interp_PointerChase_Bytecode(benchmark::State &state)
{
    runBench(state, POINTER_CHASE, "cerberus",
             corelang::Engine::Bytecode);
}
BENCHMARK(BM_Interp_PointerChase_Bytecode);

void
BM_Interp_PointerChase_Reference(benchmark::State &state)
{
    runBench(state, POINTER_CHASE, "cerberus");
}
BENCHMARK(BM_Interp_PointerChase_Reference);

void
BM_Interp_PointerChase_Hardware(benchmark::State &state)
{
    runBench(state, POINTER_CHASE, "clang-morello-O0");
}
BENCHMARK(BM_Interp_PointerChase_Hardware);

void
BM_Interp_IntptrHeavy_Reference(benchmark::State &state)
{
    runBench(state, INTPTR_HEAVY, "cerberus");
}
BENCHMARK(BM_Interp_IntptrHeavy_Reference);

void
BM_Interp_IntptrHeavy_Cheriot(benchmark::State &state)
{
    runBench(state, INTPTR_HEAVY, "cerberus-cheriot");
}
BENCHMARK(BM_Interp_IntptrHeavy_Cheriot);

void
BM_Interp_MallocChurn_Reference(benchmark::State &state)
{
    runBench(state, MALLOC_CHURN, "cerberus");
}
BENCHMARK(BM_Interp_MallocChurn_Reference);

void
BM_Interp_MallocChurn_Optimized(benchmark::State &state)
{
    runBench(state, MALLOC_CHURN, "clang-morello-O2");
}
BENCHMARK(BM_Interp_MallocChurn_Optimized);

} // namespace

int
main(int argc, char **argv)
{
    bool write_json = true;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--no-json") {
            write_json = false;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }
    if (write_json)
        writeBenchJson("BENCH_interp.json");

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
