/**
 * @file
 * COW snapshot benchmarks: the three workloads the snapshot layer
 * exists for, measured end to end.
 *
 *  - warm restore: a __prelude() building a >= 256 KiB footprint is
 *    executed once and captured; serving a request then costs one
 *    restoreSnapshot() (a page-table copy) + main(), versus cold
 *    re-execution of the whole prelude (ISSUE criterion: >= 10x);
 *  - fork fuzzing: fuzz::runForkCase on generated fork-shaped
 *    programs, forked eval vs the cold oracle (criterion: >= 3x);
 *  - the store primitive itself: snapshot() cost on a 1 MiB resident
 *    store, and the copy-before-write cost as a function of pages
 *    touched after the snapshot — the O(pages-touched) claim made
 *    concrete.
 *
 * Like the other micro_* harnesses, the fixed grid runs first and
 * writes BENCH_snapshot.json (the schema CI validates), then the
 * google-benchmark suite runs.  Pass --no-json to skip the file.
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "corelang/bytecode.h"
#include "corelang/machine.h"
#include "corelang/optimize.h"
#include "corelang/vm.h"
#include "driver/profiles.h"
#include "frontend/parser.h"
#include "fuzz/fork_runner.h"
#include "fuzz/generator.h"
#include "mem/store.h"
#include "sema/sema.h"

namespace {

using namespace cherisem;

/** 256 KiB global table + 64 KiB heap buffer, both filled by the
 *  prelude; main() reads a handful of entries.  The shape every warm
 *  workload shares: heavy shared prefix, light per-request tail. */
const char *kWarmProgram = R"(int table[65536];
int *heap;
void __prelude(void) {
    int i;
    for (i = 0; i < 65536; i++) table[i] = i * 3;
    heap = (int *)malloc(16384 * sizeof(int));
    for (i = 0; i < 16384; i++) heap[i] = table[i * 4];
}
int main(void) {
    long sum = 0;
    int i;
    for (i = 0; i < 64; i++) sum += table[i * 1024] + heap[i * 256];
    return (int)(sum % 256);
}
)";
constexpr uint64_t kWarmFootprintBytes = 65536 * 4 + 16384 * 4;

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

struct Compiled
{
    sema::Program prog;
    corelang::BytecodeModule module;
};

Compiled
compile(const std::string &src, const driver::Profile &p)
{
    Compiled c;
    frontend::TranslationUnit unit = frontend::parse(src, "<bench>");
    ctype::MachineLayout machine{p.memConfig.arch->capSize(),
                                 p.memConfig.arch->addrBits() / 8};
    c.prog = sema::analyze(std::move(unit), machine);
    corelang::optimize(c.prog, p.optims);
    c.module = corelang::compileProgram(c.prog);
    return c;
}

std::unique_ptr<corelang::Machine>
makeEngine(const Compiled &c, const corelang::EvalOptions &opts)
{
    if (opts.engine == corelang::Engine::Bytecode)
        return std::make_unique<corelang::Vm>(c.prog, opts,
                                              &c.module);
    return std::make_unique<corelang::Machine>(c.prog, opts);
}

struct WarmRow
{
    const char *engine;
    uint64_t preludeSteps;
    uint64_t mainSteps;
    double coldNs;
    double warmNs;
    double speedup;
};

/** Cold (prelude + main every time) vs warm (restore + main) on the
 *  same compiled program; both sides report the mean over reps. */
WarmRow
warmRestoreRun(const Compiled &c, corelang::Engine engine)
{
    const driver::Profile &p = driver::referenceProfile();
    corelang::EvalOptions opts = p.evalOptions();
    opts.engine = engine;

    // Build once: the snapshot every warm iteration restores.
    auto builder = makeEngine(c, opts);
    std::optional<corelang::Outcome> pre = builder->runPrelude();
    corelang::Machine::SnapshotPtr snap = builder->capture();
    (void)pre;

    WarmRow row;
    row.engine = engine == corelang::Engine::Bytecode ? "bytecode"
                                                      : "tree";
    row.preludeSteps = snap->steps;

    constexpr int kColdReps = 5;
    constexpr int kWarmReps = 50;

    uint64_t t0 = nowNs();
    uint64_t mainSteps = 0;
    for (int i = 0; i < kColdReps; ++i) {
        auto m = makeEngine(c, opts);
        (void)m->runPrelude();
        corelang::Outcome out = m->runMain();
        mainSteps = out.steps - row.preludeSteps;
        benchmark::DoNotOptimize(out.exitCode);
    }
    row.coldNs = static_cast<double>(nowNs() - t0) / kColdReps;
    row.mainSteps = mainSteps;

    t0 = nowNs();
    for (int i = 0; i < kWarmReps; ++i) {
        auto m = makeEngine(c, opts);
        m->restoreSnapshot(snap);
        corelang::Outcome out = m->runMain();
        benchmark::DoNotOptimize(out.exitCode);
    }
    row.warmNs = static_cast<double>(nowNs() - t0) / kWarmReps;
    row.speedup = row.warmNs > 0 ? row.coldNs / row.warmNs : 0;
    return row;
}

/** Fork campaign over generated fork-shaped programs (the fuzz
 *  driver's --fork workload, condensed). */
fuzz::ForkStats
forkRun()
{
    fuzz::ForkStats total;
    for (uint64_t seed = 0; seed < 8; ++seed) {
        fuzz::GenOptions g;
        g.seed = seed;
        g.forkPrefix = true;
        // Prelude-heavy corpus (the ISSUE's >= 3x criterion): the
        // prefix grows with numStmts, the suffix stays at its
        // default, so the snapshot amortises more per variant.
        g.numStmts = 48;
        fuzz::ForkOptions fopts;
        fopts.variants = 8;
        fuzz::ForkStats s;
        std::vector<fuzz::Divergence> findings = fuzz::runForkCase(
            seed, fuzz::generateProgram(g), fopts, &s);
        if (!findings.empty())
            std::fprintf(stderr,
                         "micro_snapshot: fork divergence at seed "
                         "%llu: %s\n",
                         (unsigned long long)seed,
                         findings[0].detail.c_str());
        total.variants += s.variants;
        total.forkNs += s.forkNs;
        total.coldNs += s.coldNs;
    }
    return total;
}

/** A PagedStore with @p pages resident, every byte written clean. */
std::unique_ptr<mem::PagedStore>
populatedStore(unsigned pages)
{
    auto store = std::make_unique<mem::PagedStore>(16);
    std::vector<uint8_t> raw(mem::PagedStore::kPageBytes, 0xab);
    for (unsigned p = 0; p < pages; ++p)
        store->writeScalarClean(
            static_cast<uint64_t>(p) * mem::PagedStore::kPageBytes,
            raw.data(), 64, false); // resident page, cheap to build
    return store;
}

struct CowRow
{
    unsigned pagesTouched;
    double ns;
    double nsPerPage;
};

void
writeBenchJson(const char *path)
{
    const driver::Profile &p = driver::referenceProfile();
    Compiled warm = compile(kWarmProgram, p);
    WarmRow tree = warmRestoreRun(warm, corelang::Engine::Tree);
    WarmRow bc = warmRestoreRun(warm, corelang::Engine::Bytecode);
    fuzz::ForkStats fork = forkRun();
    double forkSpeedup = fork.forkNs
        ? static_cast<double>(fork.coldNs) /
            static_cast<double>(fork.forkNs)
        : 0;

    // Store primitive: snapshot cost, then copy-before-write cost as
    // a function of pages touched after the snapshot.
    constexpr unsigned kResidentPages = 256; // 1 MiB
    constexpr int kReps = 200;
    auto store = populatedStore(kResidentPages);
    uint64_t t0 = nowNs();
    for (int i = 0; i < kReps; ++i) {
        mem::StoreSnapshotPtr s = store->snapshot();
        benchmark::DoNotOptimize(s);
    }
    double snapshotNs = static_cast<double>(nowNs() - t0) / kReps;

    const unsigned touchGrid[] = {1, 4, 16, 64, 256};
    std::vector<CowRow> cow;
    uint8_t one = 0xcd;
    for (unsigned k : touchGrid) {
        mem::StoreSnapshotPtr base = store->snapshot();
        t0 = nowNs();
        for (int i = 0; i < kReps; ++i) {
            store->restore(base); // back to fully shared pages
            for (unsigned pg = 0; pg < k; ++pg)
                store->writeScalarClean(
                    static_cast<uint64_t>(pg) *
                        mem::PagedStore::kPageBytes,
                    &one, 1, false); // first write clones the page
        }
        double ns = static_cast<double>(nowNs() - t0) / kReps;
        cow.push_back({k, ns, ns / k});
    }

    FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n  \"warm_restore\": [\n");
    const WarmRow *rows[] = {&tree, &bc};
    for (size_t i = 0; i < 2; ++i) {
        const WarmRow &r = *rows[i];
        std::fprintf(
            f,
            "    {\"engine\": \"%s\", \"prelude_bytes\": %llu, "
            "\"prelude_steps\": %llu, \"main_steps\": %llu, "
            "\"cold_ns\": %.0f, \"warm_ns\": %.0f, "
            "\"speedup\": %.2f}%s\n",
            r.engine, (unsigned long long)kWarmFootprintBytes,
            (unsigned long long)r.preludeSteps,
            (unsigned long long)r.mainSteps, r.coldNs, r.warmNs,
            r.speedup, i == 0 ? "," : "");
    }
    std::fprintf(
        f,
        "  ],\n  \"fork_fuzz\": {\"variants\": %llu, "
        "\"fork_ns\": %llu, \"cold_ns\": %llu, "
        "\"speedup\": %.2f},\n",
        (unsigned long long)fork.variants,
        (unsigned long long)fork.forkNs,
        (unsigned long long)fork.coldNs, forkSpeedup);
    std::fprintf(f,
                 "  \"cow\": {\"pages_resident\": %u, "
                 "\"snapshot_ns\": %.0f, \"touch\": [\n",
                 kResidentPages, snapshotNs);
    for (size_t i = 0; i < cow.size(); ++i)
        std::fprintf(f,
                     "    {\"pages_touched\": %u, \"ns\": %.0f, "
                     "\"ns_per_page\": %.0f}%s\n",
                     cow[i].pagesTouched, cow[i].ns,
                     cow[i].nsPerPage,
                     i + 1 < cow.size() ? "," : "");
    double warmSpeedupMin =
        tree.speedup < bc.speedup ? tree.speedup : bc.speedup;
    std::fprintf(f,
                 "  ]},\n  \"warm_speedup_min\": %.2f,\n"
                 "  \"fork_speedup\": %.2f\n}\n",
                 warmSpeedupMin, forkSpeedup);
    std::fclose(f);
    std::fprintf(stderr,
                 "BENCH_snapshot.json written: warm restore %.1fx "
                 "(tree) / %.1fx (bytecode), fork fuzz %.1fx\n",
                 tree.speedup, bc.speedup, forkSpeedup);
}

// ---------------------------------------------------------------------
// google-benchmark suite.
// ---------------------------------------------------------------------

void
BM_Store_Snapshot(benchmark::State &state)
{
    auto store =
        populatedStore(static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        mem::StoreSnapshotPtr s = store->snapshot();
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_Store_Snapshot)->Arg(16)->Arg(256)->Arg(1024);

void
BM_Store_WriteAfterSnapshot(benchmark::State &state)
{
    auto store = populatedStore(256);
    mem::StoreSnapshotPtr base = store->snapshot();
    unsigned touch = static_cast<unsigned>(state.range(0));
    uint8_t one = 0xcd;
    for (auto _ : state) {
        store->restore(base);
        for (unsigned pg = 0; pg < touch; ++pg)
            store->writeScalarClean(static_cast<uint64_t>(pg) *
                                        mem::PagedStore::kPageBytes,
                                    &one, 1, false);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * touch);
}
BENCHMARK(BM_Store_WriteAfterSnapshot)->Arg(1)->Arg(16)->Arg(256);

void
BM_Machine_WarmRestoreRun(benchmark::State &state)
{
    const driver::Profile &p = driver::referenceProfile();
    Compiled c = compile(kWarmProgram, p);
    corelang::EvalOptions opts = p.evalOptions();
    opts.engine = corelang::Engine::Bytecode;
    auto builder = makeEngine(c, opts);
    (void)builder->runPrelude();
    corelang::Machine::SnapshotPtr snap = builder->capture();
    for (auto _ : state) {
        auto m = makeEngine(c, opts);
        m->restoreSnapshot(snap);
        corelang::Outcome out = m->runMain();
        benchmark::DoNotOptimize(out.exitCode);
    }
}
BENCHMARK(BM_Machine_WarmRestoreRun);

void
BM_Machine_ColdPreludeRun(benchmark::State &state)
{
    const driver::Profile &p = driver::referenceProfile();
    Compiled c = compile(kWarmProgram, p);
    corelang::EvalOptions opts = p.evalOptions();
    opts.engine = corelang::Engine::Bytecode;
    for (auto _ : state) {
        auto m = makeEngine(c, opts);
        (void)m->runPrelude();
        corelang::Outcome out = m->runMain();
        benchmark::DoNotOptimize(out.exitCode);
    }
}
BENCHMARK(BM_Machine_ColdPreludeRun);

} // namespace

int
main(int argc, char **argv)
{
    bool write_json = true;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--no-json") {
            write_json = false;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }
    if (write_json)
        writeBenchJson("BENCH_snapshot.json");

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
