/**
 * @file
 * Micro-benchmarks of the memory object model: typed load/store,
 * allocation, capability-preserving memcpy — plus the ghost-state
 * ablation (abstract semantics vs hardware mode) called out in
 * DESIGN.md.
 *
 * Every store-touching benchmark runs against both AbstractStore
 * backends (the reference MapStore and the default PagedStore) so the
 * store layer's effect is visible side by side.  Before the
 * google-benchmark suite runs, a fixed harness times load / store /
 * memcpy at 16 B, 4 KiB, and 1 MiB on both backends and writes the
 * results to BENCH_memory.json — the machine-readable perf trajectory
 * the ROADMAP tracks from PR 1 on.
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "mem/memory_model.h"

namespace {

using namespace cherisem;
using namespace cherisem::mem;
using ctype::IntKind;
using ctype::intType;
using ctype::pointerTo;

MemoryModel::Config
config(bool ghost, StoreBackend backend = StoreBackend::Paged)
{
    MemoryModel::Config c;
    c.ghostState = ghost;
    c.checkProvenance = ghost;
    c.readUninitIsUb = false;
    c.storeBackend = backend;
    return c;
}

// ---------------------------------------------------------------------
// BENCH_memory.json: fixed load/store/memcpy grid over both backends.
// ---------------------------------------------------------------------

/** Wall-clock ns/op of @p op, warmed up and run until ~0.3 s or
 *  @p max_iters, whichever comes first. */
template <typename F>
double
nsPerOp(F &&op, int max_iters = 64)
{
    using clock = std::chrono::steady_clock;
    op(); // warm-up (page faults, lazy allocation)
    // Report the fastest iteration: scheduler/VM noise is strictly
    // additive, so the minimum is the stable estimate of the true cost
    // (the mean tracks machine load, not the code under test).
    double best_ns = 0;
    double total_ns = 0;
    int iters = 0;
    while (iters < max_iters && total_ns < 3e8) {
        auto t0 = clock::now();
        op();
        auto t1 = clock::now();
        double ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 -
                                                                 t0)
                .count());
        total_ns += ns;
        if (iters == 0 || ns < best_ns)
            best_ns = ns;
        ++iters;
    }
    return best_ns;
}

struct JsonEntry
{
    std::string op;
    uint64_t size;
    std::string backend;
    double nsPerOp;
    uint64_t pagesAllocated;
};

/** The sweep pointers, derived once outside the timed region: the
 *  interpreter equivalent is an induction pointer kept in a local, so
 *  re-deriving bounds via withAddress() per access would time
 *  capability construction, not the memory pipeline. */
std::vector<PointerValue>
sweepPointers(const PointerValue &region, uint64_t size)
{
    std::vector<PointerValue> ptrs;
    for (uint64_t off = 0; off + 8 <= size; off += 8) {
        PointerValue p = region;
        p.cap = region.cap->withAddress(region.address() + off);
        ptrs.push_back(p);
    }
    return ptrs;
}

/** One op = one pass over @p size bytes (8-byte stores). */
double
timeStoreSweep(StoreBackend b, uint64_t size, uint64_t *pages_out)
{
    MemoryModel mm(config(true, b));
    auto region = mm.allocateRegion("r", size, 16);
    auto longTy = intType(IntKind::Long);
    MemValue v(IntegerValue::ofNum(IntKind::Long, 0x0123456789abcdef));
    std::vector<PointerValue> ptrs = sweepPointers(region.value(), size);
    // A stored loc, as the interpreter passes (AST nodes own theirs):
    // a per-call {} temporary would time std::string construction.
    SourceLoc loc{};
    double ns = nsPerOp([&] {
        for (const PointerValue &p : ptrs)
            benchmark::DoNotOptimize(mm.store(loc, longTy, p, v));
        if (size < 8)
            benchmark::DoNotOptimize(
                mm.store({}, intType(IntKind::UChar), region.value(),
                         MemValue(IntegerValue::ofNum(IntKind::UChar,
                                                      1))));
    });
    if (pages_out)
        *pages_out = mm.stats().store.pagesAllocated;
    return ns;
}

/** One op = one pass over @p size bytes (8-byte loads). */
double
timeLoadSweep(StoreBackend b, uint64_t size, uint64_t *pages_out)
{
    MemoryModel mm(config(true, b));
    auto region = mm.allocateRegion("r", size, 16);
    (void)mm.memsetOp({}, region.value(), 7, size);
    auto longTy = intType(IntKind::Long);
    std::vector<PointerValue> ptrs = sweepPointers(region.value(), size);
    SourceLoc loc{};
    double ns = nsPerOp([&] {
        for (const PointerValue &p : ptrs)
            benchmark::DoNotOptimize(mm.load(loc, longTy, p));
        if (size < 8)
            benchmark::DoNotOptimize(
                mm.load({}, intType(IntKind::UChar), region.value()));
    });
    if (pages_out)
        *pages_out = mm.stats().store.pagesAllocated;
    return ns;
}

/** One op = one memcpyOp of @p size bytes. */
double
timeMemcpy(StoreBackend b, uint64_t size, uint64_t *pages_out)
{
    MemoryModel mm(config(true, b));
    auto src = mm.allocateRegion("src", size, 16);
    auto dst = mm.allocateRegion("dst", size, 16);
    (void)mm.memsetOp({}, src.value(), 7, size);
    double ns = nsPerOp(
        [&] {
            benchmark::DoNotOptimize(
                mm.memcpyOp({}, dst.value(), src.value(), size));
        },
        size >= (1u << 20) ? 8 : 64);
    if (pages_out)
        *pages_out = mm.stats().store.pagesAllocated;
    return ns;
}

void
writeBenchJson(const char *path)
{
    const uint64_t sizes[] = {16, 4096, 1u << 20};
    std::vector<JsonEntry> entries;
    double memcpy_1m[2] = {0, 0}; // [map, paged]

    for (StoreBackend b : {StoreBackend::Map, StoreBackend::Paged}) {
        for (uint64_t size : sizes) {
            uint64_t st_pages = 0, ld_pages = 0, mc_pages = 0;
            double st = timeStoreSweep(b, size, &st_pages);
            double ld = timeLoadSweep(b, size, &ld_pages);
            double mc = timeMemcpy(b, size, &mc_pages);
            entries.push_back(
                {"store", size, storeBackendName(b), st, st_pages});
            entries.push_back(
                {"load", size, storeBackendName(b), ld, ld_pages});
            entries.push_back(
                {"memcpy", size, storeBackendName(b), mc, mc_pages});
            if (size == (1u << 20))
                memcpy_1m[b == StoreBackend::Paged ? 1 : 0] = mc;
        }
    }

    FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n  \"results\": [\n");
    for (size_t i = 0; i < entries.size(); ++i) {
        const JsonEntry &e = entries[i];
        std::fprintf(f,
                     "    {\"op\": \"%s\", \"size\": %llu, "
                     "\"backend\": \"%s\", \"ns_per_op\": %.1f, "
                     "\"pages_allocated\": %llu}%s\n",
                     e.op.c_str(),
                     static_cast<unsigned long long>(e.size),
                     e.backend.c_str(), e.nsPerOp,
                     static_cast<unsigned long long>(e.pagesAllocated),
                     i + 1 < entries.size() ? "," : "");
    }
    double speedup =
        memcpy_1m[1] > 0 ? memcpy_1m[0] / memcpy_1m[1] : 0;
    std::fprintf(f,
                 "  ],\n  \"memcpy_1MiB_speedup_paged_vs_map\": "
                 "%.2f\n}\n",
                 speedup);
    std::fclose(f);
    std::fprintf(stderr,
                 "BENCH_memory.json written: 1 MiB memcpy paged vs "
                 "map speedup = %.2fx\n",
                 speedup);
}

// ---------------------------------------------------------------------
// google-benchmark suite (both backends side by side).
// ---------------------------------------------------------------------

void
BM_Mem_AllocateObject(benchmark::State &state)
{
    MemoryModel mm(config(true));
    for (auto _ : state) {
        auto p = mm.allocateObject("x", intType(IntKind::Int), false,
                                   false);
        benchmark::DoNotOptimize(p);
        mm.stackRestore(mm.stackSave() + 0); // keep sp (objects leak
                                             // into the store, which
                                             // is what we measure)
    }
}
BENCHMARK(BM_Mem_AllocateObject);

void
BM_Mem_IntStoreLoad(benchmark::State &state, StoreBackend backend)
{
    MemoryModel mm(config(true, backend));
    auto p = mm.allocateObject("x", intType(IntKind::Int), false,
                               false);
    MemValue v(IntegerValue::ofNum(IntKind::Int, 42));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mm.store({}, intType(IntKind::Int), p.value(), v));
        benchmark::DoNotOptimize(
            mm.load({}, intType(IntKind::Int), p.value()));
    }
}
BENCHMARK_CAPTURE(BM_Mem_IntStoreLoad, map, StoreBackend::Map);
BENCHMARK_CAPTURE(BM_Mem_IntStoreLoad, paged, StoreBackend::Paged);

void
BM_Mem_CapStoreLoad(benchmark::State &state, StoreBackend backend)
{
    MemoryModel mm(config(true, backend));
    auto x = mm.allocateObject("x", intType(IntKind::Int), false,
                               false);
    auto pp = pointerTo(intType(IntKind::Int));
    auto box = mm.allocateObject("box", pp, false, false);
    MemValue v(x.value());
    for (auto _ : state) {
        benchmark::DoNotOptimize(mm.store({}, pp, box.value(), v));
        benchmark::DoNotOptimize(mm.load({}, pp, box.value()));
    }
}
BENCHMARK_CAPTURE(BM_Mem_CapStoreLoad, map, StoreBackend::Map);
BENCHMARK_CAPTURE(BM_Mem_CapStoreLoad, paged, StoreBackend::Paged);

void
BM_Mem_MemcpyCaps(benchmark::State &state, StoreBackend backend)
{
    MemoryModel mm(config(true, backend));
    uint64_t n = static_cast<uint64_t>(state.range(0));
    auto src = mm.allocateRegion("src", n, 16);
    auto dst = mm.allocateRegion("dst", n, 16);
    (void)mm.memsetOp({}, src.value(), 7, n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mm.memcpyOp({}, dst.value(), src.value(), n));
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * n);
    const StoreStats &ss = mm.stats().store;
    state.counters["pages"] =
        static_cast<double>(ss.pagesAllocated);
    state.counters["rangeCopies"] =
        static_cast<double>(ss.rangeCopies);
}
BENCHMARK_CAPTURE(BM_Mem_MemcpyCaps, map, StoreBackend::Map)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(16384);
BENCHMARK_CAPTURE(BM_Mem_MemcpyCaps, paged, StoreBackend::Paged)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(16384);

void
BM_Mem_Memmove_Overlapping(benchmark::State &state,
                           StoreBackend backend)
{
    MemoryModel mm(config(true, backend));
    uint64_t n = static_cast<uint64_t>(state.range(0));
    auto region = mm.allocateRegion("r", n + 64, 16);
    (void)mm.memsetOp({}, region.value(), 7, n + 64);
    PointerValue dst = region.value();
    dst.cap = dst.cap->withAddress(dst.address() + 16);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mm.memmoveOp({}, dst, region.value(), n));
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK_CAPTURE(BM_Mem_Memmove_Overlapping, map, StoreBackend::Map)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_Mem_Memmove_Overlapping, paged,
                  StoreBackend::Paged)
    ->Arg(4096);

/** Ablation: ghost-state bookkeeping vs deterministic hardware tag
 *  clearing on byte writes over capabilities. */
void
BM_Mem_ByteWriteOverCap_Ghost(benchmark::State &state)
{
    MemoryModel mm(config(true));
    auto x = mm.allocateObject("x", intType(IntKind::Int), false,
                               false);
    auto pp = pointerTo(intType(IntKind::Int));
    auto box = mm.allocateObject("box", pp, false, false);
    (void)mm.store({}, pp, box.value(), MemValue(x.value()));
    MemValue byte(IntegerValue::ofNum(IntKind::UChar, 1));
    for (auto _ : state) {
        benchmark::DoNotOptimize(mm.store(
            {}, intType(IntKind::UChar), box.value(), byte));
    }
}
BENCHMARK(BM_Mem_ByteWriteOverCap_Ghost);

void
BM_Mem_ByteWriteOverCap_Hardware(benchmark::State &state)
{
    MemoryModel mm(config(false));
    auto x = mm.allocateObject("x", intType(IntKind::Int), false,
                               false);
    auto pp = pointerTo(intType(IntKind::Int));
    auto box = mm.allocateObject("box", pp, false, false);
    (void)mm.store({}, pp, box.value(), MemValue(x.value()));
    MemValue byte(IntegerValue::ofNum(IntKind::UChar, 1));
    for (auto _ : state) {
        benchmark::DoNotOptimize(mm.store(
            {}, intType(IntKind::UChar), box.value(), byte));
    }
}
BENCHMARK(BM_Mem_ByteWriteOverCap_Hardware);

void
BM_Mem_PtrIntRoundTrip(benchmark::State &state)
{
    MemoryModel mm(config(true));
    auto x = mm.allocateObject("x", intType(IntKind::Int), false,
                               false);
    for (auto _ : state) {
        auto iv = mm.intFromPtr({}, IntKind::Uintptr, x.value());
        benchmark::DoNotOptimize(mm.ptrFromInt({}, iv.value()));
    }
}
BENCHMARK(BM_Mem_PtrIntRoundTrip);

void
BM_Mem_MallocFree(benchmark::State &state)
{
    MemoryModel mm(config(true));
    for (auto _ : state) {
        auto p = mm.allocateRegion("m", 64, 16);
        benchmark::DoNotOptimize(p);
        benchmark::DoNotOptimize(mm.kill({}, true, p.value()));
    }
}
BENCHMARK(BM_Mem_MallocFree);

} // namespace

int
main(int argc, char **argv)
{
    // The fixed perf-trajectory grid always runs first; pass
    // --no-json to skip it (e.g. when only the google benchmarks are
    // wanted).
    bool write_json = true;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--no-json") {
            write_json = false;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }
    if (write_json)
        writeBenchJson("BENCH_memory.json");

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
