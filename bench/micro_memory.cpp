/**
 * @file
 * Micro-benchmarks of the memory object model: typed load/store,
 * allocation, capability-preserving memcpy — plus the ghost-state
 * ablation (abstract semantics vs hardware mode) called out in
 * DESIGN.md.
 */
#include <benchmark/benchmark.h>

#include "mem/memory_model.h"

namespace {

using namespace cherisem;
using namespace cherisem::mem;
using ctype::IntKind;
using ctype::intType;
using ctype::pointerTo;

MemoryModel::Config
config(bool ghost)
{
    MemoryModel::Config c;
    c.ghostState = ghost;
    c.checkProvenance = ghost;
    c.readUninitIsUb = false;
    return c;
}

void
BM_Mem_AllocateObject(benchmark::State &state)
{
    MemoryModel mm(config(true));
    for (auto _ : state) {
        auto p = mm.allocateObject("x", intType(IntKind::Int), false,
                                   false);
        benchmark::DoNotOptimize(p);
        mm.stackRestore(mm.stackSave() + 0); // keep sp (objects leak
                                             // into the map, which is
                                             // what we measure)
    }
}
BENCHMARK(BM_Mem_AllocateObject);

void
BM_Mem_IntStoreLoad(benchmark::State &state)
{
    MemoryModel mm(config(true));
    auto p = mm.allocateObject("x", intType(IntKind::Int), false,
                               false);
    MemValue v(IntegerValue::ofNum(IntKind::Int, 42));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mm.store({}, intType(IntKind::Int), p.value(), v));
        benchmark::DoNotOptimize(
            mm.load({}, intType(IntKind::Int), p.value()));
    }
}
BENCHMARK(BM_Mem_IntStoreLoad);

void
BM_Mem_CapStoreLoad(benchmark::State &state)
{
    MemoryModel mm(config(true));
    auto x = mm.allocateObject("x", intType(IntKind::Int), false,
                               false);
    auto pp = pointerTo(intType(IntKind::Int));
    auto box = mm.allocateObject("box", pp, false, false);
    MemValue v(x.value());
    for (auto _ : state) {
        benchmark::DoNotOptimize(mm.store({}, pp, box.value(), v));
        benchmark::DoNotOptimize(mm.load({}, pp, box.value()));
    }
}
BENCHMARK(BM_Mem_CapStoreLoad);

void
BM_Mem_MemcpyCaps(benchmark::State &state)
{
    MemoryModel mm(config(true));
    uint64_t n = static_cast<uint64_t>(state.range(0));
    auto src = mm.allocateRegion("src", n, 16);
    auto dst = mm.allocateRegion("dst", n, 16);
    (void)mm.memsetOp({}, src.value(), 7, n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mm.memcpyOp({}, dst.value(), src.value(), n));
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_Mem_MemcpyCaps)->Arg(64)->Arg(1024)->Arg(16384);

/** Ablation: ghost-state bookkeeping vs deterministic hardware tag
 *  clearing on byte writes over capabilities. */
void
BM_Mem_ByteWriteOverCap_Ghost(benchmark::State &state)
{
    MemoryModel mm(config(true));
    auto x = mm.allocateObject("x", intType(IntKind::Int), false,
                               false);
    auto pp = pointerTo(intType(IntKind::Int));
    auto box = mm.allocateObject("box", pp, false, false);
    (void)mm.store({}, pp, box.value(), MemValue(x.value()));
    MemValue byte(IntegerValue::ofNum(IntKind::UChar, 1));
    for (auto _ : state) {
        benchmark::DoNotOptimize(mm.store(
            {}, intType(IntKind::UChar), box.value(), byte));
    }
}
BENCHMARK(BM_Mem_ByteWriteOverCap_Ghost);

void
BM_Mem_ByteWriteOverCap_Hardware(benchmark::State &state)
{
    MemoryModel mm(config(false));
    auto x = mm.allocateObject("x", intType(IntKind::Int), false,
                               false);
    auto pp = pointerTo(intType(IntKind::Int));
    auto box = mm.allocateObject("box", pp, false, false);
    (void)mm.store({}, pp, box.value(), MemValue(x.value()));
    MemValue byte(IntegerValue::ofNum(IntKind::UChar, 1));
    for (auto _ : state) {
        benchmark::DoNotOptimize(mm.store(
            {}, intType(IntKind::UChar), box.value(), byte));
    }
}
BENCHMARK(BM_Mem_ByteWriteOverCap_Hardware);

void
BM_Mem_PtrIntRoundTrip(benchmark::State &state)
{
    MemoryModel mm(config(true));
    auto x = mm.allocateObject("x", intType(IntKind::Int), false,
                               false);
    for (auto _ : state) {
        auto iv = mm.intFromPtr({}, IntKind::Uintptr, x.value());
        benchmark::DoNotOptimize(mm.ptrFromInt({}, iv.value()));
    }
}
BENCHMARK(BM_Mem_PtrIntRoundTrip);

void
BM_Mem_MallocFree(benchmark::State &state)
{
    MemoryModel mm(config(true));
    for (auto _ : state) {
        auto p = mm.allocateRegion("m", 64, 16);
        benchmark::DoNotOptimize(p);
        benchmark::DoNotOptimize(mm.kill({}, true, p.value()));
    }
}
BENCHMARK(BM_Mem_MallocFree);

} // namespace

BENCHMARK_MAIN();
