/**
 * @file
 * Regenerates the section 5 experimental comparison: the whole
 * validation suite executed under every implementation profile,
 * reporting per-profile agreement with the expected behaviour.
 *
 * The shape to reproduce (sections 5.1-5.3): the reference
 * (Cerberus-style) profile passes its suite; the concrete hardware
 * profiles are "mostly compatible", diverging exactly on the
 * categories the paper discusses — ghost state vs deterministic tag
 * clearing, temporal safety, strict ISO arithmetic, provenance
 * checks, and optimisation effects.
 */
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "driver/suite.h"

int
main()
{
    using namespace cherisem::driver;
    std::vector<SuiteTest> tests = loadSuite(defaultSuiteDir());
    printf("Section 5: per-implementation compliance over %zu suite "
           "tests\n\n",
           tests.size());
    printf("%-20s %8s %8s %10s  %s\n", "profile", "match", "diverge",
           "frontend", "top divergence categories");

    for (const Profile &p : allProfiles()) {
        int match = 0;
        int diverge = 0;
        int fe = 0;
        std::map<std::string, int> diverging_cats;
        for (const SuiteTest &t : tests) {
            RunResult r = runSource(t.source, p, t.name + ".c");
            if (r.frontendError) {
                ++fe;
                continue;
            }
            // A profile "matches" when it satisfies the expectation
            // recorded for it (its own tag if present, else the
            // reference expectation).
            const std::string &expect = t.expectationFor(p.name);
            if (!expect.empty() &&
                outcomeMatches(r.outcome, expect)) {
                ++match;
            } else {
                ++diverge;
                ++diverging_cats[t.category];
            }
        }
        // Top three diverging categories.
        std::string tops;
        for (int k = 0; k < 3; ++k) {
            std::string best;
            int best_n = 0;
            for (const auto &[cat, n] : diverging_cats) {
                if (n > best_n) {
                    best = cat;
                    best_n = n;
                }
            }
            if (best_n == 0)
                break;
            diverging_cats.erase(best);
            if (!tops.empty())
                tops += "; ";
            tops += best.substr(0, 34) + "(" +
                std::to_string(best_n) + ")";
        }
        printf("%-20s %8d %8d %10d  %s\n", p.name.c_str(), match,
               diverge, fe, tops.c_str());
    }

    printf("\nNote: divergences against the *reference* expectation "
           "are the cross-\nimplementation differences the paper "
           "reports (ghost state vs hardware\ntag clearing, temporal "
           "safety, strict ISO arithmetic, optimisation\neffects); "
           "tests carrying a per-profile expectation count as "
           "matches\nwhen the profile exhibits exactly the divergence "
           "the paper predicts.\n");
    return 0;
}
