/**
 * @file
 * Micro-benchmarks of the temporal-safety revocation engine
 * (src/revoke/): eager per-free sweeps vs quarantine-batched epoch
 * sweeps vs a single manual end-of-run sweep.
 *
 * The workload is the allocation-heavy pattern that made the eager
 * policy quadratic: a registry of long-lived stored capabilities
 * (every sweep must visit and decode each one) plus a 1000-alloc
 * malloc/free churn.  Eager revocation sweeps the full capability
 * index on *every* free; the quarantine amortises the same total
 * revocation work over epoch boundaries.
 *
 * Before the google-benchmark suite runs, a fixed harness times the
 * churn under each policy and writes BENCH_revoke.json — including
 * the headline `quarantine_speedup_vs_eager` the ROADMAP tracks
 * (target: >= 10x on this workload).
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "cap/cc64.h"
#include "mem/memory_model.h"
#include "revoke/revocation.h"

namespace {

using namespace cherisem;
using namespace cherisem::mem;
using ctype::IntKind;
using ctype::intType;
using ctype::pointerTo;
using revoke::RevokePolicy;

constexpr uint64_t kChurnAllocs = 1000;
constexpr uint64_t kChurnBytes = 64;
constexpr uint64_t kRegistrySlots = 4096;

MemoryModel::Config
config(RevokePolicy policy)
{
    // The cheriot-temporal profiles' semantics: hardware checks only,
    // CHERIoT 64-bit capability format.
    MemoryModel::Config c;
    c.arch = &cap::cheriot();
    c.ghostState = false;
    c.checkProvenance = false;
    c.readUninitIsUb = false;
    c.strictPtrArith = false;
    c.heapBase = 0x00100000;
    c.stackBase = 0x7ffff000;
    c.revoke.policy = policy;
    return c;
}

/** Fill a registry region with @p slots long-lived tagged
 *  capabilities (into @p arena), so every revocation sweep has a
 *  realistic capability index to walk and decode. */
void
populateRegistry(MemoryModel &mm, uint64_t slots)
{
    unsigned cs = mm.arch().capSize();
    auto pp = pointerTo(intType(IntKind::Int));
    auto arena = mm.allocateRegion("arena", slots * 4, 16);
    auto registry = mm.allocateRegion("registry", slots * cs, 16);
    PointerValue slotPtr = registry.value();
    PointerValue target = arena.value();
    for (uint64_t i = 0; i < slots; ++i) {
        slotPtr.cap = registry.value().cap->withAddress(
            registry.value().address() + i * cs);
        target.cap = arena.value().cap->withAddress(
            arena.value().address() + i * 4);
        (void)mm.store({}, pp, slotPtr, MemValue(target));
    }
}

/** The 1k-alloc free churn; @p flushAtEnd drains the quarantine so
 *  one op leaves the model in a steady state under every policy. */
void
churn(MemoryModel &mm, bool flushAtEnd)
{
    for (uint64_t i = 0; i < kChurnAllocs; ++i) {
        auto p = mm.allocateRegion("m", kChurnBytes, 16);
        benchmark::DoNotOptimize(p);
        benchmark::DoNotOptimize(mm.kill({}, true, p.value()));
    }
    if (flushAtEnd)
        benchmark::DoNotOptimize(mm.flushQuarantine());
}

/** Wall-clock ns/op of @p op, warmed up and run until ~0.3 s or
 *  @p max_iters, whichever comes first. */
template <typename F>
double
nsPerOp(F &&op, int max_iters = 16)
{
    using clock = std::chrono::steady_clock;
    op(); // warm-up
    double total_ns = 0;
    int iters = 0;
    while (iters < max_iters && total_ns < 3e8) {
        auto t0 = clock::now();
        op();
        auto t1 = clock::now();
        total_ns += static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 -
                                                                 t0)
                .count());
        ++iters;
    }
    return total_ns / iters;
}

// ---------------------------------------------------------------------
// BENCH_revoke.json: the fixed policy grid.
// ---------------------------------------------------------------------

struct PolicyRun
{
    std::string name;
    double nsPerChurn = 0;
    uint64_t sweepsPerChurn = 0;
    uint64_t slotsVisitedPerChurn = 0;
    uint64_t tagsRevokedPerChurn = 0;
};

PolicyRun
runPolicy(const std::string &name, RevokePolicy policy,
          uint64_t maxBytes, uint64_t maxRegions)
{
    MemoryModel::Config cfg = config(policy);
    cfg.revoke.quarantineMaxBytes = maxBytes;
    cfg.revoke.quarantineMaxRegions = maxRegions;
    MemoryModel mm(cfg);
    populateRegistry(mm, kRegistrySlots);

    // Per-churn engine counters, measured over one untimed pass.
    bool flushAtEnd = policy != RevokePolicy::Eager;
    revoke::RevokeStats before = mm.stats().revoke;
    churn(mm, flushAtEnd);
    revoke::RevokeStats after = mm.stats().revoke;

    PolicyRun r;
    r.name = name;
    r.sweepsPerChurn = after.sweeps - before.sweeps;
    r.slotsVisitedPerChurn = after.slotsVisited - before.slotsVisited;
    r.tagsRevokedPerChurn = after.tagsRevoked - before.tagsRevoked;
    r.nsPerChurn = nsPerOp([&] { churn(mm, flushAtEnd); });
    return r;
}

void
writeBenchJson(const char *path)
{
    std::vector<PolicyRun> runs;
    runs.push_back(runPolicy("eager", RevokePolicy::Eager, 0, 0));
    runs.push_back(runPolicy("quarantine-default",
                             RevokePolicy::Quarantine,
                             revoke::RevokeConfig{}.quarantineMaxBytes,
                             revoke::RevokeConfig{}.quarantineMaxRegions));
    runs.push_back(runPolicy("quarantine-profile",
                             RevokePolicy::Quarantine, 4096, 8));
    runs.push_back(
        runPolicy("manual-single-sweep", RevokePolicy::Manual, 0, 0));

    FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f,
                 "{\n  \"workload\": {\"churn_allocs\": %llu, "
                 "\"alloc_bytes\": %llu, \"registry_slots\": %llu},\n"
                 "  \"results\": [\n",
                 static_cast<unsigned long long>(kChurnAllocs),
                 static_cast<unsigned long long>(kChurnBytes),
                 static_cast<unsigned long long>(kRegistrySlots));
    for (size_t i = 0; i < runs.size(); ++i) {
        const PolicyRun &r = runs[i];
        std::fprintf(
            f,
            "    {\"policy\": \"%s\", \"ns_per_churn\": %.0f, "
            "\"sweeps\": %llu, \"slots_visited\": %llu, "
            "\"tags_revoked\": %llu}%s\n",
            r.name.c_str(), r.nsPerChurn,
            static_cast<unsigned long long>(r.sweepsPerChurn),
            static_cast<unsigned long long>(r.slotsVisitedPerChurn),
            static_cast<unsigned long long>(r.tagsRevokedPerChurn),
            i + 1 < runs.size() ? "," : "");
    }
    double speedup = runs[1].nsPerChurn > 0
        ? runs[0].nsPerChurn / runs[1].nsPerChurn
        : 0;
    std::fprintf(f,
                 "  ],\n  \"quarantine_speedup_vs_eager\": %.2f\n}\n",
                 speedup);
    std::fclose(f);
    std::fprintf(stderr,
                 "BENCH_revoke.json written: 1k-alloc churn "
                 "quarantine vs eager speedup = %.2fx\n",
                 speedup);
}

// ---------------------------------------------------------------------
// google-benchmark suite.
// ---------------------------------------------------------------------

void
BM_Revoke_FreeChurn(benchmark::State &state, RevokePolicy policy,
                    uint64_t maxBytes, uint64_t maxRegions)
{
    MemoryModel::Config cfg = config(policy);
    cfg.revoke.quarantineMaxBytes = maxBytes;
    cfg.revoke.quarantineMaxRegions = maxRegions;
    MemoryModel mm(cfg);
    uint64_t slots = static_cast<uint64_t>(state.range(0));
    populateRegistry(mm, slots);
    bool flushAtEnd = policy != RevokePolicy::Eager;
    uint64_t frees = 0;
    for (auto _ : state) {
        for (int i = 0; i < 100; ++i) {
            auto p = mm.allocateRegion("m", kChurnBytes, 16);
            benchmark::DoNotOptimize(mm.kill({}, true, p.value()));
        }
        if (flushAtEnd)
            benchmark::DoNotOptimize(mm.flushQuarantine());
        frees += 100;
    }
    state.SetItemsProcessed(static_cast<int64_t>(frees));
    const revoke::RevokeStats &rs = mm.stats().revoke;
    state.counters["sweeps"] = static_cast<double>(rs.sweeps);
    state.counters["slotsVisited"] =
        static_cast<double>(rs.slotsVisited);
}
BENCHMARK_CAPTURE(BM_Revoke_FreeChurn, eager, RevokePolicy::Eager, 0,
                  0)
    ->Arg(256)
    ->Arg(2048);
BENCHMARK_CAPTURE(BM_Revoke_FreeChurn, quarantine,
                  RevokePolicy::Quarantine, 1 << 16, 64)
    ->Arg(256)
    ->Arg(2048);
BENCHMARK_CAPTURE(BM_Revoke_FreeChurn, manual, RevokePolicy::Manual,
                  0, 0)
    ->Arg(256)
    ->Arg(2048);

/** The bitmap's classify cost on its own: marked vs unmarked
 *  lookups over a quarantine-shaped mark set. */
void
BM_Revoke_BitmapIntersect(benchmark::State &state)
{
    revoke::ShadowBitmap bm(8);
    for (uint64_t i = 0; i < 64; ++i)
        bm.mark(0x00100000 + i * 1024, 64);
    uint64_t addr = 0x00100000;
    bool acc = false;
    for (auto _ : state) {
        acc ^= bm.intersects(addr, uint128(addr) + 32);
        addr += 512;
        if (addr > 0x00200000)
            addr = 0x00100000;
    }
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Revoke_BitmapIntersect);

} // namespace

int
main(int argc, char **argv)
{
    // The fixed policy grid always runs first; pass --no-json to skip
    // it (e.g. when only the google benchmarks are wanted).
    bool write_json = true;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--no-json") {
            write_json = false;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }
    if (write_json)
        writeBenchJson("BENCH_revoke.json");

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
