/**
 * @file
 * Regenerates Appendix A of the paper: the bitwise-operations test
 * (intptr_t & UINT_MAX / & INT_MAX) executed under every
 * implementation profile, printing each profile's capability output
 * in its native style.
 *
 * The shape to reproduce (paper Appendix A):
 *  - cerberus: cap healthy; cap&uint healthy (high stack fits in 32
 *    bits); cap&int -> "(@empty, ... [?-?] (notag))" — ghost state;
 *  - clang profiles (high stacks): both masks truncate the address,
 *    "(invalid)";
 *  - gcc profiles (allocator below 2^31): no truncation, no
 *    invalidation.
 *
 * `--layout` additionally prints the Fig. 1 style bit-field layout of
 * a freshly derived Morello capability.
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "cap/cap_format.h"
#include "cap/cc128.h"
#include "driver/interpreter.h"

namespace {

const char *APPENDIX_TEST = R"(#include <stdint.h>
#include <stdio.h>
#include <limits.h>
#include "capprint.h"

int main(void) {
    int x[2]={42,43};
    intptr_t ip = (intptr_t)&x;
    print_cap("cap", (void*)ip);
    intptr_t ip2 = ip & UINT_MAX;
    print_cap("cap&uint", (void*)ip2);
    intptr_t ip3 = ip & INT_MAX;
    print_cap("cap&int", (void*)ip3);
}
)";

void
printLayout()
{
    using namespace cherisem;
    printf("Fig. 1: bit-field layout of a Morello-style capability\n");
    printf("  [63:0]    address\n");
    printf("  [77:64]   bottom (14-bit mantissa; low 3 = E[2:0] when "
           "IE)\n");
    printf("  [89:78]   top (12 stored bits; low 3 = E[5:3] when "
           "IE)\n");
    printf("  [90]      internal exponent (IE)\n");
    printf("  [105:91]  otype (15)\n");
    printf("  [123:106] perms (18)\n");
    printf("  [128]     tag (out of band)\n\n");

    cap::Capability c = cap::Capability::make(
        cap::morello(), 0xffffe6dc, 0xffffe6dc + 8,
        cap::PermSet::data());
    printf("example: int x[2] at 0xffffe6dc\n  %s\n  %s\n",
           cap::formatCap(c, cap::FormatStyle::Abstract).c_str(),
           cap::formatFields(c).c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cherisem::driver;
    if (argc > 1 && std::strcmp(argv[1], "--layout") == 0) {
        printLayout();
        return 0;
    }

    printf("Appendix A: sample test suite output\n");
    printf("(bitwise ops on intptr_t under every implementation "
           "profile)\n\n");
    for (const Profile &p : allProfiles()) {
        if (p.name == "cerberus-cheriot")
            continue; // 32-bit layout; not part of the appendix.
        RunResult r = runSource(APPENDIX_TEST, p, "appendix_a.c");
        printf("%s:\n", p.name.c_str());
        if (r.frontendError) {
            printf("  frontend error: %s\n",
                   r.frontendMessage.c_str());
            continue;
        }
        // Indent the program's output.
        std::string line;
        for (char c : r.outcome.output) {
            if (c == '\n') {
                printf("  %s\n", line.c_str());
                line.clear();
            } else {
                line += c;
            }
        }
        printf("\n");
    }
    return 0;
}
