/**
 * @file
 * Regenerates Table 1 of the paper: the semantic categories covered
 * by the validation suite with the number of tests per category.
 *
 * The paper's suite has 94 tests, each potentially counted in several
 * categories; ours uses one file per category entry, so the per-
 * category counts are directly comparable (the paper's counts are
 * printed alongside).
 */
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "driver/suite.h"

namespace {

// Table 1 of the paper: category -> test count.
const std::vector<std::pair<std::string, int>> PAPER_TABLE1 = {
    {"Checking capability alignment in the memory", 10},
    {"Memory allocator interface (locals, globals, and heap)", 10},
    {"Capabilities produced by taking addresses of arrays and their "
     "elements", 2},
    {"Operations offseting pointers as in taking an address of array "
     "element at an index", 3},
    {"Assigning constants and values of capability-carrying types to "
     "capability-typed variables", 2},
    {"Issues related to calling convention: passing arguments, "
     "variable argument functions, etc.", 1},
    {"Implicit/explicit casts between capability-carrying types", 5},
    {"C const modifier and its effects on capabilities", 5},
    {"Equality between capability-carrying types", 10},
    {"Pointers to functions", 11},
    {"Pointers to global vs local variables", 6},
    {"Initialization of variables carrying capabilities", 4},
    {"Properties and definition of (u)intptr_t types", 19},
    {"Arithmetic operations on (u)intptr_t values", 9},
    {"Bitwise operations on (u)intptr_t values", 3},
    {"Semantics of CHERI C intrinsic functions (e.g, permission "
     "manipulation)", 16},
    {"Unforgeability enforcement for capabilities", 15},
    {"Capabilities encoding for Arm Morello architecture", 6},
    {"null pointers and NULL constant as capabilities", 6},
    {"ISO-legal pointers one-past an object's footprint and their "
     "bounds", 1},
    {"Out-of-bounds memory-access handling", 5},
    {"Effects of compiler optimisations", 10},
    {"Capability permissions: setting and enforcement", 5},
    {"pointer provenance tracking per [18]", 7},
    {"New ptraddr_t type definition and usage", 2},
    {"Implementation of pointer arithmetic on capabilities", 2},
    {"Conversion between pointer and integer types", 9},
    {"Relational comparison operators (e.g. <,>,<= and >=) for "
     "capabilities", 4},
    {"Issues related to potential non-representability of some "
     "combinations of capability fields", 6},
    {"Tests related to accessing capabilities in-memory "
     "representation", 9},
    {"Accessing memory via capabilities after the region has been "
     "deallocated", 5},
    {"Handling of (un)signed integer types in casts, accessing "
     "capability fields, and intrinsics", 5},
    {"Standard C library functions handling of capabilities", 6},
    {"Sub-objects bound enforcement via capabilities", 3},
};

} // namespace

int
main()
{
    using namespace cherisem::driver;
    std::vector<SuiteTest> tests = loadSuite(defaultSuiteDir());
    std::map<std::string, int> ours;
    for (const SuiteTest &t : tests)
        ++ours[t.category];

    printf("Table 1: summary of the tests comparing CHERI C "
           "implementations\n");
    printf("(paper count vs this reproduction's count per "
           "category)\n\n");
    printf("%5s %5s  %s\n", "paper", "ours", "Description");
    printf("%5s %5s  %s\n", "-----", "----", "-----------");
    int paper_total = 0;
    int ours_total = 0;
    int matched = 0;
    for (const auto &[cat, paper_n] : PAPER_TABLE1) {
        int n = ours.count(cat) ? ours[cat] : 0;
        printf("%5d %5d  %.70s\n", paper_n, n, cat.c_str());
        paper_total += paper_n;
        ours_total += n;
        if (n >= paper_n)
            ++matched;
        ours.erase(cat);
    }
    for (const auto &[cat, n] : ours)
        printf("%5s %5d  %.70s (extra)\n", "-", n, cat.c_str());
    printf("\ncategory entries: paper %d, ours %d; categories met: "
           "%d/%zu\n",
           paper_total, ours_total, matched, PAPER_TABLE1.size());
    printf("suite files: %zu (the paper's 94 tests count one test in "
           "several categories;\nthis suite uses one file per entry)\n",
           tests.size());
    return 0;
}
