file(REMOVE_RECURSE
  "CMakeFiles/cherisem_tests.dir/cap/capability_test.cc.o"
  "CMakeFiles/cherisem_tests.dir/cap/capability_test.cc.o.d"
  "CMakeFiles/cherisem_tests.dir/cap/compression_test.cc.o"
  "CMakeFiles/cherisem_tests.dir/cap/compression_test.cc.o.d"
  "CMakeFiles/cherisem_tests.dir/corelang/optimize_test.cc.o"
  "CMakeFiles/cherisem_tests.dir/corelang/optimize_test.cc.o.d"
  "CMakeFiles/cherisem_tests.dir/ctype/ctype_test.cc.o"
  "CMakeFiles/cherisem_tests.dir/ctype/ctype_test.cc.o.d"
  "CMakeFiles/cherisem_tests.dir/driver/extensions_test.cc.o"
  "CMakeFiles/cherisem_tests.dir/driver/extensions_test.cc.o.d"
  "CMakeFiles/cherisem_tests.dir/driver/interpreter_test.cc.o"
  "CMakeFiles/cherisem_tests.dir/driver/interpreter_test.cc.o.d"
  "CMakeFiles/cherisem_tests.dir/driver/language_test.cc.o"
  "CMakeFiles/cherisem_tests.dir/driver/language_test.cc.o.d"
  "CMakeFiles/cherisem_tests.dir/driver/suite_test.cc.o"
  "CMakeFiles/cherisem_tests.dir/driver/suite_test.cc.o.d"
  "CMakeFiles/cherisem_tests.dir/frontend/frontend_test.cc.o"
  "CMakeFiles/cherisem_tests.dir/frontend/frontend_test.cc.o.d"
  "CMakeFiles/cherisem_tests.dir/intrinsics/intrinsics_test.cc.o"
  "CMakeFiles/cherisem_tests.dir/intrinsics/intrinsics_test.cc.o.d"
  "CMakeFiles/cherisem_tests.dir/mem/memory_model_test.cc.o"
  "CMakeFiles/cherisem_tests.dir/mem/memory_model_test.cc.o.d"
  "CMakeFiles/cherisem_tests.dir/mem/pnvi_test.cc.o"
  "CMakeFiles/cherisem_tests.dir/mem/pnvi_test.cc.o.d"
  "CMakeFiles/cherisem_tests.dir/mem/soak_test.cc.o"
  "CMakeFiles/cherisem_tests.dir/mem/soak_test.cc.o.d"
  "CMakeFiles/cherisem_tests.dir/sema/sema_test.cc.o"
  "CMakeFiles/cherisem_tests.dir/sema/sema_test.cc.o.d"
  "cherisem_tests"
  "cherisem_tests.pdb"
  "cherisem_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cherisem_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
