# Empty compiler generated dependencies file for cherisem_tests.
# This may be replaced when dependencies are built.
