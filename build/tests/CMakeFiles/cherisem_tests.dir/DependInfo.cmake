
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cap/capability_test.cc" "tests/CMakeFiles/cherisem_tests.dir/cap/capability_test.cc.o" "gcc" "tests/CMakeFiles/cherisem_tests.dir/cap/capability_test.cc.o.d"
  "/root/repo/tests/cap/compression_test.cc" "tests/CMakeFiles/cherisem_tests.dir/cap/compression_test.cc.o" "gcc" "tests/CMakeFiles/cherisem_tests.dir/cap/compression_test.cc.o.d"
  "/root/repo/tests/corelang/optimize_test.cc" "tests/CMakeFiles/cherisem_tests.dir/corelang/optimize_test.cc.o" "gcc" "tests/CMakeFiles/cherisem_tests.dir/corelang/optimize_test.cc.o.d"
  "/root/repo/tests/ctype/ctype_test.cc" "tests/CMakeFiles/cherisem_tests.dir/ctype/ctype_test.cc.o" "gcc" "tests/CMakeFiles/cherisem_tests.dir/ctype/ctype_test.cc.o.d"
  "/root/repo/tests/driver/extensions_test.cc" "tests/CMakeFiles/cherisem_tests.dir/driver/extensions_test.cc.o" "gcc" "tests/CMakeFiles/cherisem_tests.dir/driver/extensions_test.cc.o.d"
  "/root/repo/tests/driver/interpreter_test.cc" "tests/CMakeFiles/cherisem_tests.dir/driver/interpreter_test.cc.o" "gcc" "tests/CMakeFiles/cherisem_tests.dir/driver/interpreter_test.cc.o.d"
  "/root/repo/tests/driver/language_test.cc" "tests/CMakeFiles/cherisem_tests.dir/driver/language_test.cc.o" "gcc" "tests/CMakeFiles/cherisem_tests.dir/driver/language_test.cc.o.d"
  "/root/repo/tests/driver/suite_test.cc" "tests/CMakeFiles/cherisem_tests.dir/driver/suite_test.cc.o" "gcc" "tests/CMakeFiles/cherisem_tests.dir/driver/suite_test.cc.o.d"
  "/root/repo/tests/frontend/frontend_test.cc" "tests/CMakeFiles/cherisem_tests.dir/frontend/frontend_test.cc.o" "gcc" "tests/CMakeFiles/cherisem_tests.dir/frontend/frontend_test.cc.o.d"
  "/root/repo/tests/intrinsics/intrinsics_test.cc" "tests/CMakeFiles/cherisem_tests.dir/intrinsics/intrinsics_test.cc.o" "gcc" "tests/CMakeFiles/cherisem_tests.dir/intrinsics/intrinsics_test.cc.o.d"
  "/root/repo/tests/mem/memory_model_test.cc" "tests/CMakeFiles/cherisem_tests.dir/mem/memory_model_test.cc.o" "gcc" "tests/CMakeFiles/cherisem_tests.dir/mem/memory_model_test.cc.o.d"
  "/root/repo/tests/mem/pnvi_test.cc" "tests/CMakeFiles/cherisem_tests.dir/mem/pnvi_test.cc.o" "gcc" "tests/CMakeFiles/cherisem_tests.dir/mem/pnvi_test.cc.o.d"
  "/root/repo/tests/mem/soak_test.cc" "tests/CMakeFiles/cherisem_tests.dir/mem/soak_test.cc.o" "gcc" "tests/CMakeFiles/cherisem_tests.dir/mem/soak_test.cc.o.d"
  "/root/repo/tests/sema/sema_test.cc" "tests/CMakeFiles/cherisem_tests.dir/sema/sema_test.cc.o" "gcc" "tests/CMakeFiles/cherisem_tests.dir/sema/sema_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cherisem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
