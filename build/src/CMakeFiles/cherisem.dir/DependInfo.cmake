
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cap/cap_format.cc" "src/CMakeFiles/cherisem.dir/cap/cap_format.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/cap/cap_format.cc.o.d"
  "/root/repo/src/cap/capability.cc" "src/CMakeFiles/cherisem.dir/cap/capability.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/cap/capability.cc.o.d"
  "/root/repo/src/cap/cc128.cc" "src/CMakeFiles/cherisem.dir/cap/cc128.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/cap/cc128.cc.o.d"
  "/root/repo/src/cap/cc64.cc" "src/CMakeFiles/cherisem.dir/cap/cc64.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/cap/cc64.cc.o.d"
  "/root/repo/src/cap/permissions.cc" "src/CMakeFiles/cherisem.dir/cap/permissions.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/cap/permissions.cc.o.d"
  "/root/repo/src/corelang/eval.cc" "src/CMakeFiles/cherisem.dir/corelang/eval.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/corelang/eval.cc.o.d"
  "/root/repo/src/corelang/optimize.cc" "src/CMakeFiles/cherisem.dir/corelang/optimize.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/corelang/optimize.cc.o.d"
  "/root/repo/src/ctype/ctype.cc" "src/CMakeFiles/cherisem.dir/ctype/ctype.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/ctype/ctype.cc.o.d"
  "/root/repo/src/ctype/layout.cc" "src/CMakeFiles/cherisem.dir/ctype/layout.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/ctype/layout.cc.o.d"
  "/root/repo/src/driver/interpreter.cc" "src/CMakeFiles/cherisem.dir/driver/interpreter.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/driver/interpreter.cc.o.d"
  "/root/repo/src/driver/profiles.cc" "src/CMakeFiles/cherisem.dir/driver/profiles.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/driver/profiles.cc.o.d"
  "/root/repo/src/driver/suite.cc" "src/CMakeFiles/cherisem.dir/driver/suite.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/driver/suite.cc.o.d"
  "/root/repo/src/frontend/ast.cc" "src/CMakeFiles/cherisem.dir/frontend/ast.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/frontend/ast.cc.o.d"
  "/root/repo/src/frontend/lexer.cc" "src/CMakeFiles/cherisem.dir/frontend/lexer.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/frontend/lexer.cc.o.d"
  "/root/repo/src/frontend/parser.cc" "src/CMakeFiles/cherisem.dir/frontend/parser.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/frontend/parser.cc.o.d"
  "/root/repo/src/frontend/token.cc" "src/CMakeFiles/cherisem.dir/frontend/token.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/frontend/token.cc.o.d"
  "/root/repo/src/intrinsics/intrinsics.cc" "src/CMakeFiles/cherisem.dir/intrinsics/intrinsics.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/intrinsics/intrinsics.cc.o.d"
  "/root/repo/src/mem/load_store.cc" "src/CMakeFiles/cherisem.dir/mem/load_store.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/mem/load_store.cc.o.d"
  "/root/repo/src/mem/mem_value.cc" "src/CMakeFiles/cherisem.dir/mem/mem_value.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/mem/mem_value.cc.o.d"
  "/root/repo/src/mem/memory_model.cc" "src/CMakeFiles/cherisem.dir/mem/memory_model.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/mem/memory_model.cc.o.d"
  "/root/repo/src/mem/provenance.cc" "src/CMakeFiles/cherisem.dir/mem/provenance.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/mem/provenance.cc.o.d"
  "/root/repo/src/mem/ub.cc" "src/CMakeFiles/cherisem.dir/mem/ub.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/mem/ub.cc.o.d"
  "/root/repo/src/sema/sema.cc" "src/CMakeFiles/cherisem.dir/sema/sema.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/sema/sema.cc.o.d"
  "/root/repo/src/support/format.cc" "src/CMakeFiles/cherisem.dir/support/format.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/support/format.cc.o.d"
  "/root/repo/src/support/source_loc.cc" "src/CMakeFiles/cherisem.dir/support/source_loc.cc.o" "gcc" "src/CMakeFiles/cherisem.dir/support/source_loc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
