file(REMOVE_RECURSE
  "libcherisem.a"
)
