# Empty dependencies file for cherisem.
# This may be replaced when dependencies are built.
