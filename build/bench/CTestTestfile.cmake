# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(differential_fuzz "/root/repo/build/bench/differential_fuzz" "60")
set_tests_properties(differential_fuzz PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
