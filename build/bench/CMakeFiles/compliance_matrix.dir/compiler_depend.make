# Empty compiler generated dependencies file for compliance_matrix.
# This may be replaced when dependencies are built.
