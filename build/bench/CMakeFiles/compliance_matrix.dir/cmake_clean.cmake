file(REMOVE_RECURSE
  "CMakeFiles/compliance_matrix.dir/compliance_matrix.cpp.o"
  "CMakeFiles/compliance_matrix.dir/compliance_matrix.cpp.o.d"
  "compliance_matrix"
  "compliance_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compliance_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
