# Empty compiler generated dependencies file for micro_memory.
# This may be replaced when dependencies are built.
