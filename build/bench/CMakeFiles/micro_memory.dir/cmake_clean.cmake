file(REMOVE_RECURSE
  "CMakeFiles/micro_memory.dir/micro_memory.cpp.o"
  "CMakeFiles/micro_memory.dir/micro_memory.cpp.o.d"
  "micro_memory"
  "micro_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
