file(REMOVE_RECURSE
  "CMakeFiles/table1_categories.dir/table1_categories.cpp.o"
  "CMakeFiles/table1_categories.dir/table1_categories.cpp.o.d"
  "table1_categories"
  "table1_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
