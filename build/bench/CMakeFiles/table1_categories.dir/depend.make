# Empty dependencies file for table1_categories.
# This may be replaced when dependencies are built.
