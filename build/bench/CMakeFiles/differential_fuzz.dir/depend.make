# Empty dependencies file for differential_fuzz.
# This may be replaced when dependencies are built.
