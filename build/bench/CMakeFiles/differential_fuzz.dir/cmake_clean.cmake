file(REMOVE_RECURSE
  "CMakeFiles/differential_fuzz.dir/differential_fuzz.cpp.o"
  "CMakeFiles/differential_fuzz.dir/differential_fuzz.cpp.o.d"
  "differential_fuzz"
  "differential_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differential_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
