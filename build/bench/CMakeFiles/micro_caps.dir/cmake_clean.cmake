file(REMOVE_RECURSE
  "CMakeFiles/micro_caps.dir/micro_caps.cpp.o"
  "CMakeFiles/micro_caps.dir/micro_caps.cpp.o.d"
  "micro_caps"
  "micro_caps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_caps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
