file(REMOVE_RECURSE
  "CMakeFiles/ub_explorer.dir/ub_explorer.cpp.o"
  "CMakeFiles/ub_explorer.dir/ub_explorer.cpp.o.d"
  "ub_explorer"
  "ub_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ub_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
