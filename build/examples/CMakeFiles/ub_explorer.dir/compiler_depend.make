# Empty compiler generated dependencies file for ub_explorer.
# This may be replaced when dependencies are built.
