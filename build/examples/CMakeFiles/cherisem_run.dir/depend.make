# Empty dependencies file for cherisem_run.
# This may be replaced when dependencies are built.
