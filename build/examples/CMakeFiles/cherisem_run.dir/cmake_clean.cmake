file(REMOVE_RECURSE
  "CMakeFiles/cherisem_run.dir/cherisem_run.cpp.o"
  "CMakeFiles/cherisem_run.dir/cherisem_run.cpp.o.d"
  "cherisem_run"
  "cherisem_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cherisem_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
