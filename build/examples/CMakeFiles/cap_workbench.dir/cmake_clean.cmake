file(REMOVE_RECURSE
  "CMakeFiles/cap_workbench.dir/cap_workbench.cpp.o"
  "CMakeFiles/cap_workbench.dir/cap_workbench.cpp.o.d"
  "cap_workbench"
  "cap_workbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cap_workbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
