# Empty compiler generated dependencies file for cap_workbench.
# This may be replaced when dependencies are built.
