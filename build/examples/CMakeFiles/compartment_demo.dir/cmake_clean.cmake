file(REMOVE_RECURSE
  "CMakeFiles/compartment_demo.dir/compartment_demo.cpp.o"
  "CMakeFiles/compartment_demo.dir/compartment_demo.cpp.o.d"
  "compartment_demo"
  "compartment_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compartment_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
