# Empty compiler generated dependencies file for compartment_demo.
# This may be replaced when dependencies are built.
