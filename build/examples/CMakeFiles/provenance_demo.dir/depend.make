# Empty dependencies file for provenance_demo.
# This may be replaced when dependencies are built.
