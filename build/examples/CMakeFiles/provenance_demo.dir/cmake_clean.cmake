file(REMOVE_RECURSE
  "CMakeFiles/provenance_demo.dir/provenance_demo.cpp.o"
  "CMakeFiles/provenance_demo.dir/provenance_demo.cpp.o.d"
  "provenance_demo"
  "provenance_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provenance_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
