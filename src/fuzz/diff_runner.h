/**
 * @file
 * Differential executor for generated programs.
 *
 * One fuzz case runs across the profile x store-backend grid:
 *
 *  - per profile, MapStore vs PagedStore under RingBufferSink tracing
 *    (obs::diffStoreBackends): the streams and outcomes must be
 *    bit-identical — any divergence is a bug, full stop;
 *  - per profile, tree-walking oracle vs bytecode VM
 *    (obs::diffEngines): the engine is likewise below the
 *    semantics, so streams and outcomes must be bit-identical — any
 *    divergence is a compiler or VM bug, full stop;
 *  - reference profile vs each hardware profile
 *    (obs::diffProfiles, addresses/labels not compared): divergences
 *    are findings, and are *expected* exactly when they sit on one of
 *    the documented semantic axes (see DESIGN.md / the paper's
 *    section 5): the UB classes the profiles disagree on, ghost
 *    state vs hardware tag clearing, provenance/liveness checking,
 *    strict vs permissive pointer arithmetic, uninitialised-read
 *    detection, revocation, and capability-format precision;
 *  - eager vs deferred revocation (cheriot-temporal vs
 *    cheriot-temporal-quarantine): the policies clear the same tags
 *    but at different times, so they must agree exactly on UB-free
 *    programs (a mismatch is a hard finding), while allow-ub
 *    programs may observe the epoch boundary through stale pointers
 *    (an expected divergence).
 *
 * Any run ending in Outcome::Kind::Error or a frontend error is a
 * crash finding: the generator only emits well-formed programs, so
 * either the generator or the pipeline has a bug.
 */
#ifndef CHERISEM_FUZZ_DIFF_RUNNER_H
#define CHERISEM_FUZZ_DIFF_RUNNER_H

#include <cstdint>
#include <string>
#include <vector>

#include "driver/profiles.h"

namespace cherisem::fuzz {

/** One finding from a differential run. */
struct Divergence
{
    enum class Kind
    {
        Backend,  ///< Map vs Paged disagreed (always a bug)
        Engine,   ///< tree vs bytecode disagreed (always a bug)
        Crash,    ///< internal error / frontend error on a run
        Profile,  ///< cross-profile semantic divergence
        UbFree,   ///< UB-free-by-construction program didn't Exit
        Fork,     ///< snapshot-forked run diverged from a cold run
                  ///< of the same variant (always a bug)
    };

    Kind kind = Kind::Backend;
    uint64_t seed = 0;
    /** Profile (Backend/Crash) or "ref|other" (Profile). */
    std::string where;
    /** Diff/outcome summary. */
    std::string detail;
    /** Profile divergences only: on a documented semantic axis? */
    bool expected = false;

    /** One JSON object (single line, JSONL-ready); the program text
     *  is included when @p source is non-empty. */
    std::string jsonl(const std::string &source = {}) const;
};

struct RunnerOptions
{
    /** Profiles for the backend grid; empty = all built-ins. */
    std::vector<std::string> profiles;
    /** Also diff the reference profile against every other one. */
    bool crossProfiles = true;
    /** Per profile, diff the tree-walking oracle against the
     *  bytecode VM (streams must be bit-identical). */
    bool engineAxis = true;
    /** The program is UB-free by construction: any outcome other
     *  than Exit, on any profile, is a hard finding (the generator
     *  or the semantics is wrong).  Set for the UB-free corpus. */
    bool requireExit = false;
    size_t ringCapacity = 1 << 17;
};

/** Run one generated program across the grid; returns all findings
 *  (expected profile divergences included, flagged). */
std::vector<Divergence> runCase(uint64_t seed,
                                const std::string &source,
                                const RunnerOptions &opts);

/** True when a finding is a hard failure (backend divergence, crash,
 *  or an unexpected profile divergence). */
bool isHardFailure(const Divergence &d);

} // namespace cherisem::fuzz

#endif // CHERISEM_FUZZ_DIFF_RUNNER_H
