/**
 * @file
 * Differential executor (see diff_runner.h for the oracle rules).
 */
#include "fuzz/diff_runner.h"

#include "corelang/eval.h"
#include "obs/differential.h"

namespace cherisem::fuzz {

namespace {

using corelang::Outcome;

bool
isCrash(const driver::RunResult &r)
{
    // ResourceExhausted counts: generated programs terminate well
    // inside the default step budget, so exhausting it means the
    // generator or the pipeline looped.
    return r.frontendError ||
        r.outcome.kind == Outcome::Kind::Error ||
        r.outcome.kind == Outcome::Kind::ResourceExhausted;
}

bool
sameOutcome(const driver::RunResult &a, const driver::RunResult &b)
{
    return a.summary() == b.summary() && a.outcome.output == b.outcome.output;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char ch : s) {
        switch (ch) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                snprintf(buf, sizeof buf, "\\u%04x",
                         static_cast<unsigned char>(ch));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

/**
 * Is a cross-profile divergence on a documented semantic axis?
 *
 * The documented axes (paper section 5, DESIGN.md) all surface as
 * *verdict-class* differences: one side raises UB (or an assert)
 * where the other exits, or the two sides raise different UB names
 * (temporal checks, ghost vs hardware tags, provenance checks,
 * strict arithmetic, uninitialised reads).  Capability-format
 * precision (cheriot profiles) can additionally shift an exit code
 * through cheri_length_get/representable-length values.
 *
 * By the generator's sink discipline a UB-free program never folds
 * addresses into its exit code, so two profiles that both Exit must
 * agree — unless their capability formats differ.  An Exit-vs-Exit
 * mismatch between same-format profiles is therefore NOT expected.
 */
bool
expectedProfileDivergence(const driver::Profile &a,
                          const driver::Profile &b,
                          const driver::RunResult &ra,
                          const driver::RunResult &rb)
{
    bool a_exit = !ra.frontendError &&
        ra.outcome.kind == Outcome::Kind::Exit;
    bool b_exit = !rb.frontendError &&
        rb.outcome.kind == Outcome::Kind::Exit;
    if (!a_exit || !b_exit)
        return true; // some side stopped on UB/assert: semantic axis
    // Both exited: expected only across capability formats.
    return a.memConfig.arch != b.memConfig.arch;
}

} // namespace

std::string
Divergence::jsonl(const std::string &source) const
{
    const char *k = "profile";
    switch (kind) {
      case Kind::Backend: k = "backend"; break;
      case Kind::Engine: k = "engine"; break;
      case Kind::Crash: k = "crash"; break;
      case Kind::UbFree: k = "ub-free-violation"; break;
      case Kind::Fork: k = "fork"; break;
      case Kind::Profile: break;
    }
    std::string s = "{\"seed\": " + std::to_string(seed) +
        ", \"kind\": \"" + k + "\", \"where\": \"" +
        jsonEscape(where) + "\", \"expected\": " +
        (expected ? "true" : "false") + ", \"detail\": \"" +
        jsonEscape(detail) + "\"";
    if (!source.empty())
        s += ", \"source\": \"" + jsonEscape(source) + "\"";
    return s + "}";
}

bool
isHardFailure(const Divergence &d)
{
    return d.kind != Divergence::Kind::Profile || !d.expected;
}

std::vector<Divergence>
runCase(uint64_t seed, const std::string &source,
        const RunnerOptions &opts)
{
    std::vector<Divergence> out;

    std::vector<const driver::Profile *> grid;
    if (opts.profiles.empty()) {
        for (const driver::Profile &p : driver::allProfiles())
            grid.push_back(&p);
    } else {
        for (const std::string &name : opts.profiles) {
            if (const driver::Profile *p = driver::findProfile(name))
                grid.push_back(p);
        }
    }

    // Backend grid: Map vs Paged per profile.
    for (const driver::Profile *p : grid) {
        obs::DifferentialResult r =
            obs::diffStoreBackends(source, *p, opts.ringCapacity);
        if (isCrash(r.left) || isCrash(r.right)) {
            out.push_back({Divergence::Kind::Crash, seed, p->name,
                           r.left.summary() + " | " +
                               r.right.summary(),
                           false});
            continue;
        }
        if (!r.equivalent() || !sameOutcome(r.left, r.right)) {
            out.push_back({Divergence::Kind::Backend, seed, p->name,
                           r.summary(), false});
        }
        if (opts.requireExit &&
            r.left.outcome.kind != Outcome::Kind::Exit) {
            out.push_back({Divergence::Kind::UbFree, seed, p->name,
                           r.left.summary(), false});
        }
    }

    // Engine grid: tree oracle vs bytecode VM per profile.  Both
    // runs use the default store backend; the backend grid above
    // already pins Map against Paged.
    if (opts.engineAxis) {
        for (const driver::Profile *p : grid) {
            obs::DifferentialResult r =
                obs::diffEngines(source, *p, opts.ringCapacity);
            if (isCrash(r.left) || isCrash(r.right)) {
                out.push_back({Divergence::Kind::Crash, seed,
                               p->name + ":tree|bytecode",
                               r.left.summary() + " | " +
                                   r.right.summary(),
                               false});
                continue;
            }
            if (!r.equivalent() || !sameOutcome(r.left, r.right)) {
                out.push_back({Divergence::Kind::Engine, seed,
                               p->name, r.summary(), false});
            }
        }
    }

    // Profile grid: reference vs each of the others.
    if (opts.crossProfiles) {
        const driver::Profile &ref = driver::referenceProfile();
        obs::DiffOptions dopts;
        dopts.compareAddresses = false;
        dopts.compareLabels = false;
        dopts.compareLines = false;
        for (const driver::Profile *p : grid) {
            if (p->name == ref.name)
                continue;
            obs::DifferentialResult r = obs::diffProfiles(
                source, ref, *p, dopts, opts.ringCapacity);
            if (isCrash(r.left) || isCrash(r.right)) {
                out.push_back({Divergence::Kind::Crash, seed,
                               ref.name + "|" + p->name,
                               r.left.summary() + " | " +
                                   r.right.summary(),
                               false});
                continue;
            }
            if (sameOutcome(r.left, r.right))
                continue; // stream-level diffs with equal outcomes
                          // are below the profile oracle's bar
            out.push_back(
                {Divergence::Kind::Profile, seed,
                 ref.name + "|" + p->name,
                 r.left.summary() + " | " + r.right.summary(),
                 expectedProfileDivergence(ref, *p, r.left,
                                           r.right)});
        }

        // Temporal-policy axis: eager vs deferred (quarantine/manual)
        // revocation over the same capability format differ only in
        // *when* stale tags die.  A UB-free program never observes a
        // dead pointer, so the pair must agree exactly — any mismatch
        // is a hard finding.  An allow-ub program can watch the epoch
        // boundary (cheri_tag_get on a freed pointer, a UAF load that
        // faults eagerly but reads stale bytes under quarantine), so
        // there a mismatch is the documented expected divergence.
        for (const driver::Profile *a : grid) {
            if (a->memConfig.revoke.policy !=
                revoke::RevokePolicy::Eager)
                continue;
            for (const driver::Profile *b : grid) {
                if (b->memConfig.revoke.policy ==
                        revoke::RevokePolicy::Off ||
                    b->memConfig.revoke.policy ==
                        revoke::RevokePolicy::Eager ||
                    a->memConfig.arch != b->memConfig.arch)
                    continue;
                obs::DifferentialResult r = obs::diffProfiles(
                    source, *a, *b, dopts, opts.ringCapacity);
                if (isCrash(r.left) || isCrash(r.right)) {
                    out.push_back({Divergence::Kind::Crash, seed,
                                   a->name + "|" + b->name,
                                   r.left.summary() + " | " +
                                       r.right.summary(),
                                   false});
                    continue;
                }
                if (sameOutcome(r.left, r.right))
                    continue;
                out.push_back({Divergence::Kind::Profile, seed,
                               a->name + "|" + b->name,
                               r.left.summary() + " | " +
                                   r.right.summary(),
                               !opts.requireExit});
            }
        }
    }

    return out;
}

} // namespace cherisem::fuzz
