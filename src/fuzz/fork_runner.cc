/**
 * @file
 * Fork-based fuzzing executor (see fork_runner.h for the oracle).
 */
#include "fuzz/fork_runner.h"

#include <chrono>
#include <memory>
#include <optional>

#include "corelang/machine.h"
#include "corelang/optimize.h"
#include "corelang/vm.h"
#include "frontend/parser.h"
#include "obs/sinks.h"
#include "obs/trace_diff.h"
#include "sema/sema.h"

namespace cherisem::fuzz {

namespace {

using corelang::Outcome;

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::unique_ptr<corelang::Machine>
makeEngine(const sema::Program &prog,
           const corelang::BytecodeModule *module,
           const corelang::EvalOptions &opts)
{
    if (opts.engine == corelang::Engine::Bytecode)
        return std::make_unique<corelang::Vm>(prog, opts, module);
    return std::make_unique<corelang::Machine>(prog, opts);
}

} // namespace

std::vector<Divergence>
runForkCase(uint64_t seed, const std::string &source,
            const ForkOptions &opts, ForkStats *stats)
{
    std::vector<Divergence> out;

    const driver::Profile *profile = opts.profile.empty()
        ? &driver::referenceProfile()
        : driver::findProfile(opts.profile);
    if (!profile) {
        out.push_back({Divergence::Kind::Crash, seed, opts.profile,
                       "unknown profile", false});
        return out;
    }

    // Compile once — the whole point of forking.
    sema::Program prog;
    corelang::BytecodeModule module;
    try {
        frontend::TranslationUnit unit =
            frontend::parse(source, "<fork>");
        ctype::MachineLayout machine{
            profile->memConfig.arch->capSize(),
            profile->memConfig.arch->addrBits() / 8};
        prog = sema::analyze(std::move(unit), machine);
        corelang::optimize(prog, profile->optims);
        module = corelang::compileProgram(prog);
    } catch (const frontend::FrontendError &e) {
        out.push_back({Divergence::Kind::Crash, seed, profile->name,
                       "frontend-error " + e.str(), false});
        return out;
    } catch (const sema::SemaError &e) {
        out.push_back({Divergence::Kind::Crash, seed, profile->name,
                       "sema-error " + e.str(), false});
        return out;
    }

    corelang::EvalOptions eopts = profile->evalOptions();

    // Build: globals + __prelude() once, captured at the quiescent
    // point.  The recorded events are the cold stream's prefix.
    obs::RingBufferSink preludeRing(opts.ringCapacity);
    corelang::EvalOptions bopts = eopts;
    bopts.memConfig.traceSink = &preludeRing;
    std::unique_ptr<corelang::Machine> builder =
        makeEngine(prog, &module, bopts);
    std::optional<Outcome> preTerminal = builder->runPrelude();
    corelang::Machine::SnapshotPtr snap;
    if (!preTerminal)
        snap = builder->capture();
    std::vector<obs::TraceEvent> preludeEvents =
        preludeRing.snapshot();
    if (stats && snap)
        stats->preludeSteps = snap->steps;

    obs::DiffOptions dopts; // same profile both sides: full strength

    for (unsigned k = 0; k < opts.variants; ++k) {
        // Forked run: restore, replay the prefix, poke, run main.
        obs::RingBufferSink forkRing(opts.ringCapacity);
        corelang::EvalOptions fopts = eopts;
        fopts.memConfig.traceSink = &forkRing;
        Outcome forkOut;
        uint64_t t0 = nowNs();
        if (preTerminal) {
            forkOut = *preTerminal;
            for (const obs::TraceEvent &e : preludeEvents)
                forkRing.emit(e);
        } else {
            std::unique_ptr<corelang::Machine> m =
                makeEngine(prog, &module, fopts);
            m->restoreSnapshot(snap);
            for (const obs::TraceEvent &e : preludeEvents)
                forkRing.emit(e);
            m->pokeGlobalInt("__variant",
                             static_cast<int64_t>(k));
            forkOut = m->runMain();
        }
        if (stats)
            stats->forkNs += nowNs() - t0;

        // Cold oracle: fresh machine, full prelude, identical poke
        // at the identical quiescent point.
        obs::RingBufferSink coldRing(opts.ringCapacity);
        corelang::EvalOptions copts = eopts;
        copts.memConfig.traceSink = &coldRing;
        Outcome coldOut;
        t0 = nowNs();
        {
            std::unique_ptr<corelang::Machine> m =
                makeEngine(prog, &module, copts);
            std::optional<Outcome> pre = m->runPrelude();
            if (pre) {
                coldOut = *pre;
            } else {
                m->pokeGlobalInt("__variant",
                                 static_cast<int64_t>(k));
                coldOut = m->runMain();
            }
        }
        if (stats) {
            stats->coldNs += nowNs() - t0;
            ++stats->variants;
        }

        std::string why;
        if (forkOut.summary() != coldOut.summary() ||
            forkOut.output != coldOut.output) {
            why = "outcome: fork " + forkOut.summary() + " | cold " +
                coldOut.summary();
        } else if (forkOut.steps != coldOut.steps) {
            why = "steps: fork " + std::to_string(forkOut.steps) +
                " | cold " + std::to_string(coldOut.steps);
        } else if (forkOut.memStats.loads != coldOut.memStats.loads ||
                   forkOut.memStats.stores !=
                       coldOut.memStats.stores) {
            why = "mem counters diverged";
        } else {
            obs::DiffResult d = obs::diffEventStreams(
                forkRing.snapshot(), coldRing.snapshot(), dopts);
            if (!d.equivalent)
                why = d.summary();
        }
        if (!why.empty())
            out.push_back({Divergence::Kind::Fork, seed,
                           profile->name + ":variant" +
                               std::to_string(k),
                           why, false});
    }
    return out;
}

} // namespace cherisem::fuzz
