/**
 * @file
 * Seeded, deterministic MiniC program generator for differential
 * fuzzing.
 *
 * Programs are biased toward the semantics' hot spots: pointer
 * arithmetic near allocation bounds, int<->pointer round trips across
 * exposed allocations, memcpy/memmove/realloc chains, capability
 * intrinsics, and struct/union loads — the scenarios of paper
 * sections 3 and 6.
 *
 * Two corpus modes:
 *
 *  - UB-free by construction (the default): the generator tracks
 *    allocation sizes, liveness, and initialisation, and only emits
 *    accesses it can prove in-bounds, live, and initialised.  A
 *    UB-free program must run to Exit under the reference profile;
 *    anything else is a semantics bug.
 *  - UB-allowed (GenOptions::allowUb): a fraction of statements
 *    deliberately step outside (one-past dereference, use after free,
 *    double free, overlapping memcpy, ...) so the *reporting* of UB
 *    is exercised; the differential oracle still requires the two
 *    store backends to agree bit-for-bit on whatever happens.
 *
 * Observability rule: results funnel into a `sink` accumulator that
 * becomes the exit code.  The generator never folds raw addresses
 * into the sink (only address-independent values: offsets, lengths,
 * tag bits, equality of pointers) so that cross-profile runs of a
 * UB-free program must agree on the exit code even though their
 * allocators place objects differently.
 */
#ifndef CHERISEM_FUZZ_GENERATOR_H
#define CHERISEM_FUZZ_GENERATOR_H

#include <cstdint>
#include <string>

namespace cherisem::fuzz {

struct GenOptions
{
    /** Corpus seed: same seed + options => byte-identical source. */
    uint64_t seed = 0;
    /** Allow deliberately-UB statements (see file comment). */
    bool allowUb = false;
    /** Approximate number of statements in main(). */
    unsigned numStmts = 24;
    /** Fork-prefix shape: the numStmts-statement body becomes a
     *  `__prelude()` function mutating file-scope state, and main()
     *  mixes the fork driver's poked `__variant` global into the
     *  sink before running suffixStmts further statements (and the
     *  tail frees).  One compiled program then serves N variants
     *  from one post-prelude snapshot — the fork-fuzzing corpus. */
    bool forkPrefix = false;
    /** Statements in main() after the variant mix (forkPrefix). */
    unsigned suffixStmts = 8;
};

/** Generate one deterministic MiniC program. */
std::string generateProgram(const GenOptions &opts);

} // namespace cherisem::fuzz

#endif // CHERISEM_FUZZ_GENERATOR_H
