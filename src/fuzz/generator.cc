/**
 * @file
 * Seeded MiniC program generator (see generator.h for the contract).
 *
 * Implementation notes:
 *
 *  - All randomness comes from a private SplitMix64 stream, so a seed
 *    reproduces byte-identical source on every platform (the golden
 *    test relies on this).
 *  - The symbol table tracks, per heap region: element count,
 *    liveness, and whether every element has been written.  UB-free
 *    mode only emits accesses the table proves valid; derived
 *    pointers (round trips, bounds-narrowed views) live in their own
 *    { } block and never outlive the statement that made them, so a
 *    later free/realloc cannot turn them stale.
 *  - The sink discipline (see header): nothing address-dependent is
 *    ever added to `sink`.
 */
#include "fuzz/generator.h"

#include <algorithm>
#include <vector>

namespace cherisem::fuzz {

namespace {

/** SplitMix64: tiny, deterministic, well-distributed. */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : s_(seed + 0x9e3779b97f4a7c15ull) {}

    uint64_t
    next()
    {
        uint64_t z = (s_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }
    /** Uniform in [0, n). */
    uint64_t below(uint64_t n) { return n ? next() % n : 0; }
    /** Uniform in [lo, hi]. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }
    bool chance(unsigned pct) { return below(100) < pct; }

  private:
    uint64_t s_;
};

struct HeapPtr
{
    std::string name;
    unsigned elems = 0;   ///< int elements
    bool alive = true;
    bool initialized = false;
    /** Freed but not nulled (allowUb corpora only). */
    bool dangling = false;
};

struct StackArr
{
    std::string name;
    unsigned elems = 0;
};

class Gen
{
  public:
    explicit Gen(const GenOptions &opts)
        : opts_(opts), rng_(opts.seed)
    {
    }

    std::string
    run()
    {
        emitStmt(declArr());
        emitStmt(mallocStmt());
        unsigned emitted = 2;
        while (emitted < opts_.numStmts) {
            if (emitStmt(pickStmt()))
                ++emitted;
        }
        if (opts_.forkPrefix) {
            // Everything past this point lands in main(), executing
            // after the fork driver restored the post-prelude
            // snapshot and poked __variant.
            inSuffix_ = true;
            unsigned sfx = 0;
            while (sfx < opts_.suffixStmts) {
                if (emitStmt(pickStmt()))
                    ++sfx;
            }
        }
        // Free what's still live (UB-free mode leaks nothing; the
        // trace-differential then also covers the frees).
        std::string tail;
        for (HeapPtr &p : ptrs_) {
            if (p.alive)
                tail += "  free(" + p.name + ");\n";
            p.alive = false;
        }

        std::string out;
        out += "// cherisem_fuzz seed=" + std::to_string(opts_.seed) +
            (opts_.allowUb ? " mode=ub-allowed" : " mode=ub-free") +
            (opts_.forkPrefix ? " fork" : "") + "\n";
        out += "#include <stdint.h>\n";
        out += "#include <stdlib.h>\n";
        out += "#include <string.h>\n";
        out += "struct S { long a; int b[4]; int *p; };\n";
        out += "union U { unsigned long l; unsigned int w[2]; };\n";
        if (opts_.forkPrefix) {
            // Fork shape: state lives at file scope so it survives
            // __prelude()'s frame and is captured by the snapshot;
            // main() folds the poked variant into the sink first so
            // every variant's observable behaviour differs.
            out += "unsigned long sink;\n";
            out += "long __variant;\n";
            out += globals_;
            out += "void __prelude(void) {\n";
            out += body_;
            out += "}\n";
            out += "int main(void) {\n";
            out += "  sink += (unsigned long)(__variant * 17 + 3);\n";
            out += "  if ((__variant & 1) == 1) {\n";
            out += "    sink ^= 29u;\n";
            out += "  }\n";
            out += suffix_;
            out += tail;
            out += "  return (int)(sink % 256u);\n";
            out += "}\n";
            return out;
        }
        out += "int main(void) {\n";
        out += "  unsigned long sink = 0;\n";
        out += body_;
        out += tail;
        out += "  return (int)(sink % 256u);\n";
        out += "}\n";
        return out;
    }

  private:
    GenOptions opts_;
    Rng rng_;
    std::string body_;
    /** Fork shape only: file-scope declarations and the main()
     *  statements after the variant mix. */
    std::string globals_;
    std::string suffix_;
    bool inSuffix_ = false;
    unsigned id_ = 0;
    std::vector<HeapPtr> ptrs_;
    std::vector<StackArr> arrs_;
    std::vector<std::string> ints_;

    std::string fresh(const char *prefix)
    {
        return prefix + std::to_string(id_++);
    }
    std::string num(uint64_t lo, uint64_t hi)
    {
        return std::to_string(rng_.range(lo, hi));
    }

    bool
    emitStmt(const std::string &s)
    {
        if (s.empty())
            return false;
        (inSuffix_ ? suffix_ : body_) += s;
        return true;
    }

    /** Fork shape: declarations are hoisted to file scope (so the
     *  snapshot carries them) and the statement only assigns. */
    void
    hoist(const std::string &decl)
    {
        globals_ += decl;
    }

    /** A live heap pointer, or null. */
    HeapPtr *
    livePtr(bool need_init = false)
    {
        std::vector<HeapPtr *> live;
        for (HeapPtr &p : ptrs_)
            if (p.alive && (!need_init || p.initialized))
                live.push_back(&p);
        if (live.empty())
            return nullptr;
        return live[rng_.below(live.size())];
    }

    HeapPtr *
    deadPtr()
    {
        std::vector<HeapPtr *> dead;
        for (HeapPtr &p : ptrs_)
            if (!p.alive)
                dead.push_back(&p);
        if (dead.empty())
            return nullptr;
        return dead[rng_.below(dead.size())];
    }

    // ---- UB-free statement templates ----

    std::string
    declInt()
    {
        std::string n = fresh("x");
        ints_.push_back(n);
        std::string v = num(0, 99);
        if (opts_.forkPrefix) {
            hoist("long " + n + ";\n");
            return "  " + n + " = " + v + ";\n";
        }
        return "  long " + n + " = " + v + ";\n";
    }

    std::string
    declArr()
    {
        std::string n = fresh("a");
        unsigned k = static_cast<unsigned>(rng_.range(2, 8));
        std::vector<std::string> init;
        for (unsigned i = 0; i < k; ++i)
            init.push_back(num(0, 50));
        arrs_.push_back({n, k});
        if (opts_.forkPrefix) {
            hoist("int " + n + "[" + std::to_string(k) + "];\n");
            std::string s;
            for (unsigned i = 0; i < k; ++i)
                s += "  " + n + "[" + std::to_string(i) + "] = " +
                    init[i] + ";\n";
            return s;
        }
        std::string list;
        for (unsigned i = 0; i < k; ++i)
            list += (i ? ", " : "") + init[i];
        return "  int " + n + "[" + std::to_string(k) + "] = {" +
            list + "};\n";
    }

    std::string
    mallocStmt()
    {
        std::string n = fresh("p");
        unsigned k = static_cast<unsigned>(rng_.range(2, 8));
        std::string s;
        if (opts_.forkPrefix) {
            hoist("int *" + n + ";\n");
            s = "  " + n + " = malloc(" + std::to_string(k) +
                " * sizeof(int));\n";
        } else {
            s = "  int *" + n + " = malloc(" + std::to_string(k) +
                " * sizeof(int));\n";
        }
        s += "  for (int i = 0; i < " + std::to_string(k) + "; i++) " +
            n + "[i] = " + num(1, 40) + " + i;\n";
        ptrs_.push_back({n, k, true, true});
        return s;
    }

    std::string
    sinkFromInts()
    {
        if (ints_.empty())
            return {};
        const std::string &a = ints_[rng_.below(ints_.size())];
        const std::string &b = ints_[rng_.below(ints_.size())];
        const char *ops[] = {"+", "*", "^", "-"};
        return "  sink += (unsigned long)(" + a + " " +
            ops[rng_.below(4)] + " " + b + " + " + num(1, 9) + ");\n";
    }

    std::string
    heapStore()
    {
        HeapPtr *p = livePtr();
        if (!p)
            return {};
        unsigned j = static_cast<unsigned>(rng_.below(p->elems));
        return "  " + p->name + "[" + std::to_string(j) + "] = " +
            num(1, 60) + ";\n";
    }

    std::string
    heapLoad()
    {
        HeapPtr *p = livePtr(true);
        if (!p)
            return {};
        unsigned j = static_cast<unsigned>(rng_.below(p->elems));
        return "  sink += (unsigned long)" + p->name + "[" +
            std::to_string(j) + "];\n";
    }

    std::string
    arrLoad()
    {
        if (arrs_.empty())
            return {};
        const StackArr &a = arrs_[rng_.below(arrs_.size())];
        unsigned j = static_cast<unsigned>(rng_.below(a.elems));
        return "  sink += (unsigned long)" + a.name + "[" +
            std::to_string(j) + "];\n";
    }

    /** Pointer arithmetic to (at most) one-past; only differences and
     *  comparisons flow into sink — never addresses. */
    std::string
    ptrArithNearBounds()
    {
        HeapPtr *p = livePtr();
        if (!p)
            return {};
        unsigned k = static_cast<unsigned>(rng_.range(1, p->elems));
        std::string t = fresh("q");
        std::string s = "  {\n";
        s += "    int *" + t + " = " + p->name + " + " +
            std::to_string(k) + ";\n";
        s += "    sink += (unsigned long)(" + t + " - " + p->name +
            ");\n";
        s += "    sink += (unsigned long)(" + t + " > " + p->name +
            ");\n";
        if (k > 0 && k <= p->elems && rng_.chance(50) && p->initialized)
            s += "    sink += (unsigned long)" + t + "[-1];\n";
        s += "  }\n";
        return s;
    }

    /** (u)intptr_t round trip: capability preserved, deref legal. */
    std::string
    uintptrRoundTrip()
    {
        HeapPtr *p = livePtr(true);
        if (!p)
            return {};
        unsigned k = static_cast<unsigned>(rng_.below(p->elems));
        std::string u = fresh("u");
        std::string q = fresh("q");
        std::string s = "  {\n";
        s += "    uintptr_t " + u + " = (uintptr_t)" + p->name +
            " + " + std::to_string(4 * k) + ";\n";
        s += "    int *" + q + " = (int *)" + u + ";\n";
        s += "    sink += (unsigned long)(" + q + " == " + p->name +
            " + " + std::to_string(k) + ");\n";
        s += "    sink += (unsigned long)*" + q + ";\n";
        s += "  }\n";
        return s;
    }

    /** Expose via plain integer, re-attach, compare (no deref: the
     *  attached pointer is untagged in CHERI C). */
    std::string
    exposeAttach()
    {
        HeapPtr *p = livePtr();
        if (!p)
            return {};
        std::string l = fresh("l");
        std::string w = fresh("w");
        std::string s = "  {\n";
        s += "    long " + l + " = (long)" + p->name + ";\n";
        s += "    int *" + w + " = (int *)" + l + ";\n";
        s += "    sink += (unsigned long)(" + w + " == " + p->name +
            ");\n";
        s += "    sink += (unsigned long)(cheri_tag_get(" + w +
            ") == 0);\n";
        s += "  }\n";
        return s;
    }

    std::string
    memcpyStmt()
    {
        HeapPtr *dst = livePtr();
        HeapPtr *src = livePtr(true);
        if (!dst || !src || dst == src)
            return {};
        unsigned n = static_cast<unsigned>(
            rng_.range(1, std::min(dst->elems, src->elems)));
        dst->initialized = dst->initialized || n >= dst->elems;
        std::string s = "  memcpy(" + dst->name + ", " + src->name +
            ", " + std::to_string(n) + " * sizeof(int));\n";
        if (src->initialized)
            s += "  sink += (unsigned long)" + dst->name + "[" +
                std::to_string(rng_.below(n)) + "];\n";
        return s;
    }

    std::string
    memmoveOverlap()
    {
        HeapPtr *p = livePtr(true);
        if (!p || p->elems < 2)
            return {};
        unsigned n = p->elems - 1;
        std::string s = "  memmove(" + p->name + " + 1, " + p->name +
            ", " + std::to_string(n) + " * sizeof(int));\n";
        s += "  sink += (unsigned long)" + p->name + "[" +
            std::to_string(rng_.below(p->elems)) + "];\n";
        return s;
    }

    std::string
    reallocStmt()
    {
        HeapPtr *p = livePtr();
        if (!p)
            return {};
        unsigned m = static_cast<unsigned>(rng_.range(1, 10));
        std::string s = "  " + p->name + " = realloc(" + p->name +
            ", " + std::to_string(m) + " * sizeof(int));\n";
        if (m > p->elems || !p->initialized) {
            s += "  for (int i = " +
                std::to_string(p->initialized ? p->elems : 0) +
                "; i < " + std::to_string(m) + "; i++) " + p->name +
                "[i] = " + num(1, 30) + ";\n";
            p->initialized = true;
        }
        p->elems = m;
        return s;
    }

    std::string
    freeStmt()
    {
        HeapPtr *p = livePtr();
        if (!p)
            return {};
        p->alive = false;
        if (opts_.allowUb && rng_.chance(40)) {
            // Leave the name dangling so the UAF/double-free
            // templates can find it.
            p->dangling = true;
            return "  free(" + p->name + ");\n";
        }
        return "  free(" + p->name + ");\n  " + p->name + " = 0;\n";
    }

    std::string
    intrinsics()
    {
        HeapPtr *p = livePtr();
        if (!p)
            return {};
        switch (rng_.below(5)) {
          case 0:
            return "  sink += (unsigned long)cheri_length_get(" +
                p->name + ");\n";
          case 1:
            return "  sink += (unsigned long)cheri_tag_get(" +
                p->name + ");\n";
          case 2: {
            unsigned k =
                static_cast<unsigned>(rng_.range(0, p->elems));
            return "  sink += (unsigned long)cheri_offset_get(" +
                p->name + " + " + std::to_string(k) + ");\n";
          }
          case 3:
            return "  sink += "
                   "(unsigned long)cheri_representable_length(" +
                num(1, 100000) + ");\n";
          default: {
            if (p->elems < 1)
                return {};
            unsigned j =
                static_cast<unsigned>(rng_.range(1, p->elems));
            std::string t = fresh("b");
            std::string s = "  {\n";
            s += "    int *" + t + " = cheri_bounds_set(" + p->name +
                ", " + std::to_string(j) + " * sizeof(int));\n";
            s += "    " + t + "[" + std::to_string(j - 1) + "] = " +
                num(1, 25) + ";\n";
            s += "    sink += (unsigned long)cheri_length_get(" + t +
                ");\n";
            s += "  }\n";
            return s;
          }
        }
    }

    std::string
    structStmt()
    {
        HeapPtr *p = livePtr();
        std::string v = fresh("s");
        std::string s = "  {\n";
        s += "    struct S " + v + ";\n";
        s += "    " + v + ".a = " + num(1, 90) + ";\n";
        std::string idx = num(0, 3);
        s += "    " + v + ".b[" + idx + "] = " + num(1, 70) + ";\n";
        s += "    " + v + ".p = " + (p ? p->name : "0") + ";\n";
        s += "    sink += (unsigned long)(" + v + ".a + " + v +
            ".b[" + idx + "]);\n";
        if (p)
            s += "    sink += (unsigned long)(" + v + ".p == " +
                p->name + ");\n";
        s += "  }\n";
        return s;
    }

    std::string
    unionStmt()
    {
        std::string v = fresh("v");
        std::string s = "  {\n";
        s += "    union U " + v + ";\n";
        s += "    " + v + ".l = " + num(1, 1000000) + "ul;\n";
        s += "    sink += (unsigned long)" + v + ".w[0];\n";
        s += "    sink += (unsigned long)" + v + ".w[1];\n";
        s += "  }\n";
        return s;
    }

    std::string
    loopStmt()
    {
        if (arrs_.empty())
            return {};
        const StackArr &a = arrs_[rng_.below(arrs_.size())];
        std::string s = "  for (int i = 0; i < " +
            std::to_string(a.elems) + "; i++) {\n";
        s += "    sink += (unsigned long)" + a.name + "[i];\n";
        s += "  }\n";
        return s;
    }

    std::string
    condStmt()
    {
        std::string s = "  if (sink % " + num(2, 7) + "u == " +
            num(0, 1) + "u) {\n";
        s += "    sink += " + num(1, 13) + "u;\n";
        s += "  } else {\n";
        s += "    sink ^= " + num(1, 13) + "u;\n";
        s += "  }\n";
        return s;
    }

    // ---- deliberately-UB templates (allowUb corpora only) ----

    std::string
    ubStmt()
    {
        switch (rng_.below(8)) {
          case 0: { // out-of-bounds write (capability fault)
            HeapPtr *p = livePtr();
            if (!p)
                return {};
            return "  " + p->name + "[" +
                std::to_string(p->elems) + "] = " + num(1, 9) +
                ";\n";
          }
          case 1: { // use after free / double free via dangling name
            HeapPtr *p = deadPtr();
            if (!p || !p->dangling)
                return {};
            if (rng_.chance(50))
                return "  sink += (unsigned long)" + p->name +
                    "[0];\n";
            return "  free(" + p->name + ");\n";
          }
          case 2: { // one-past dereference
            HeapPtr *p = livePtr();
            if (!p)
                return {};
            std::string t = fresh("q");
            return "  {\n    int *" + t + " = " + p->name + " + " +
                std::to_string(p->elems) + ";\n    sink += "
                "(unsigned long)*" + t + ";\n  }\n";
          }
          case 3: { // overlapping memcpy
            HeapPtr *p = livePtr(true);
            if (!p || p->elems < 2)
                return {};
            return "  memcpy(" + p->name + " + 1, " + p->name +
                ", " + std::to_string(p->elems - 1) +
                " * sizeof(int));\n";
          }
          case 4: { // dereference an int-attached (untagged) pointer
            HeapPtr *p = livePtr();
            if (!p)
                return {};
            std::string l = fresh("l");
            std::string w = fresh("w");
            return "  {\n    long " + l + " = (long)" + p->name +
                ";\n    int *" + w + " = (int *)" + l +
                ";\n    sink += (unsigned long)*" + w + ";\n  }\n";
          }
          case 5: { // uninitialised read (reference profile flags it)
            std::string n = fresh("x");
            return "  {\n    long " + n +
                ";\n    sink += (unsigned long)" + n + ";\n  }\n";
          }
          case 6: { // free() of a non-heap pointer
            if (arrs_.empty())
                return {};
            const StackArr &a = arrs_[rng_.below(arrs_.size())];
            return "  free(" + a.name + ");\n";
          }
          default: { // free-then-probe: stale-tag observation + UAF.
            // The probe makes revocation *timing* observable: an
            // eager sweep has already cleared the stale capability
            // held in the variable (tag_get folds 0 into the sink,
            // the load faults with UB_CHERI_InvalidCap), while a
            // quarantine policy leaves the tag alive until the next
            // epoch — the documented eager-vs-quarantine divergence
            // axis the diff runner tolerates in allow-ub mode.
            HeapPtr *p = livePtr();
            if (!p)
                return {};
            p->alive = false;
            p->dangling = true;
            std::string s = "  free(" + p->name + ");\n";
            s += "  sink += (unsigned long)cheri_tag_get(" + p->name +
                ");\n";
            if (rng_.chance(50))
                s += "  sink += (unsigned long)" + p->name + "[0];\n";
            return s;
          }
        }
    }

    std::string
    pickStmt()
    {
        if (opts_.allowUb && rng_.chance(12))
            return ubStmt();
        switch (rng_.below(17)) {
          case 0: return declInt();
          case 1: return declArr();
          case 2: return mallocStmt();
          case 3: return sinkFromInts();
          case 4: return heapStore();
          case 5: return heapLoad();
          case 6: return arrLoad();
          case 7: return ptrArithNearBounds();
          case 8: return uintptrRoundTrip();
          case 9: return exposeAttach();
          case 10: return memcpyStmt();
          case 11: return memmoveOverlap();
          case 12: return reallocStmt();
          case 13: return freeStmt();
          case 14: return intrinsics();
          case 15: return structStmt();
          default:
            return rng_.chance(40)
                       ? unionStmt()
                       : (rng_.chance(50) ? loopStmt() : condStmt());
        }
    }
};

} // namespace

std::string
generateProgram(const GenOptions &opts)
{
    return Gen(opts).run();
}

} // namespace cherisem::fuzz
