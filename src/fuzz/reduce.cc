/**
 * @file
 * Delta-debugging shrinker (see reduce.h).
 */
#include "fuzz/reduce.h"

#include "frontend/parser.h"
#include "frontend/printer.h"

namespace cherisem::fuzz {

namespace {

using frontend::Stmt;
using frontend::StmtPtr;

/**
 * Pre-order statement walker.  With target == UINT_MAX it only
 * counts; otherwise it deletes the target-th statement and stops.
 */
struct Walker
{
    unsigned target;
    unsigned counter = 0;
    bool removed = false;

    bool
    removeIn(std::vector<StmtPtr> &body)
    {
        for (auto it = body.begin(); it != body.end(); ++it) {
            if (counter++ == target) {
                body.erase(it);
                removed = true;
                return true;
            }
            if (descend(**it))
                return true;
        }
        return false;
    }

    /** Mandatory child slot: replaced by an empty statement. */
    bool
    removeChild(StmtPtr &slot)
    {
        if (!slot)
            return false;
        if (counter++ == target) {
            slot = Stmt::make(Stmt::Kind::Empty, slot->loc);
            removed = true;
            return true;
        }
        return descend(*slot);
    }

    bool
    descend(Stmt &s)
    {
        switch (s.kind) {
          case Stmt::Kind::Block:
            return removeIn(s.body);
          case Stmt::Kind::If:
            return removeChild(s.thenStmt) || removeChild(s.elseStmt);
          case Stmt::Kind::While:
          case Stmt::Kind::DoWhile:
          case Stmt::Kind::Switch:
            return removeChild(s.thenStmt);
          case Stmt::Kind::For:
            return removeChild(s.forInit) || removeChild(s.thenStmt);
          default:
            return false;
        }
    }
};

/** Delete statement @p k (pre-order) across all function bodies;
 *  returns the number of statements seen (when k is out of range)
 *  and sets @p removed. */
unsigned
removeStmt(frontend::TranslationUnit &tu, unsigned k, bool &removed)
{
    Walker w{k};
    for (frontend::FunctionDef &f : tu.functions) {
        if (!f.body)
            continue;
        if (f.body->kind == Stmt::Kind::Block ? w.removeIn(f.body->body)
                                              : w.removeChild(f.body))
            break;
    }
    removed = w.removed;
    return w.counter;
}

} // namespace

std::string
reduceProgram(std::string source, const Oracle &oracle,
              ReduceStats *stats)
{
    ReduceStats local;
    unsigned k = 0;
    for (;;) {
        frontend::TranslationUnit tu;
        try {
            tu = frontend::parse(source, "<reduce>");
        } catch (...) {
            break; // current source no longer parses: give up
        }
        bool removed = false;
        removeStmt(tu, k, removed);
        if (!removed)
            break; // k walked past the last statement: done
        std::string candidate = frontend::printUnit(tu);
        ++local.attempts;
        bool still = false;
        try {
            still = oracle(candidate);
        } catch (...) {
            still = false;
        }
        if (still) {
            source = std::move(candidate);
            ++local.removed;
            // keep k: indices after the deleted statement shifted down
        } else {
            ++k;
        }
    }
    if (stats)
        *stats = local;
    return source;
}

} // namespace cherisem::fuzz
