/**
 * @file
 * Fork-based fuzzing over COW snapshots.
 *
 * One fork case compiles a fork-shaped program (GenOptions::
 * forkPrefix: a `__prelude()` prefix mutating file-scope state, a
 * main() keyed on the `__variant` global) ONCE, executes globals +
 * prelude once, captures the post-prelude snapshot, and then forks N
 * variants from it: each variant restores the snapshot into a fresh
 * engine, pokes `__variant = k`, and runs only main().
 *
 * The oracle is the strongest the observability layer offers: every
 * forked variant is re-run cold (fresh machine, full prelude, same
 * poke at the same quiescent point), and the two runs must agree on
 * outcome, output, step count, memory-op counters, AND the full
 * witness-event stream bit-for-bit — a Kind::Fork divergence
 * (always a hard failure) means restore() is not equivalent to
 * never having diverged.
 *
 * The throughput claim (ISSUE: >= 3x on prelude-heavy corpora)
 * falls out of the same loop: ForkStats separates forked eval time
 * (restore + main) from cold eval time (prelude + main).
 */
#ifndef CHERISEM_FUZZ_FORK_RUNNER_H
#define CHERISEM_FUZZ_FORK_RUNNER_H

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/diff_runner.h"

namespace cherisem::fuzz {

struct ForkOptions
{
    /** Profile name; empty = reference profile. */
    std::string profile;
    /** Variants forked from one post-prelude snapshot. */
    unsigned variants = 8;
    size_t ringCapacity = 1 << 17;
};

struct ForkStats
{
    uint64_t variants = 0;
    uint64_t preludeSteps = 0;
    /** Forked path eval time (restore + poke + main), summed. */
    uint64_t forkNs = 0;
    /** Cold oracle eval time (prelude + poke + main), summed. */
    uint64_t coldNs = 0;
};

/** Run one fork case; returns all divergences (each one a hard
 *  failure).  @p stats accumulates across calls when non-null. */
std::vector<Divergence> runForkCase(uint64_t seed,
                                    const std::string &source,
                                    const ForkOptions &opts,
                                    ForkStats *stats);

} // namespace cherisem::fuzz

#endif // CHERISEM_FUZZ_FORK_RUNNER_H
