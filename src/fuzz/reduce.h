/**
 * @file
 * Statement-level delta-debugging shrinker for diverging programs.
 *
 * The reducer works on the AST, not on text: each attempt re-parses
 * the current source, deletes the k-th statement of a deterministic
 * pre-order walk (erased from its enclosing block, or replaced by an
 * empty statement when it is a mandatory child such as a loop body),
 * re-prints via frontend::printUnit, and asks the oracle whether the
 * candidate still exhibits the failure.  Accepted candidates restart
 * the scan greedily at the same index; the loop ends when no single
 * statement can be removed.
 *
 * The oracle owns the definition of "still failing" — reducers for
 * crashes should reject candidates that fail for a *different* reason
 * (e.g. a frontend error introduced by deleting a declaration), or
 * the minimisation will wander.
 */
#ifndef CHERISEM_FUZZ_REDUCE_H
#define CHERISEM_FUZZ_REDUCE_H

#include <functional>
#include <string>

namespace cherisem::fuzz {

/** Returns true when @p source still exhibits the target failure. */
using Oracle = std::function<bool(const std::string &source)>;

struct ReduceStats
{
    unsigned attempts = 0; ///< oracle invocations
    unsigned removed = 0;  ///< statements successfully deleted
};

/**
 * Greedily minimise @p source under @p oracle.  @p source must
 * already satisfy the oracle; the result is 1-minimal at statement
 * granularity (no single further deletion keeps the failure).
 */
std::string reduceProgram(std::string source, const Oracle &oracle,
                          ReduceStats *stats = nullptr);

} // namespace cherisem::fuzz

#endif // CHERISEM_FUZZ_REDUCE_H
