/**
 * @file
 * Recursive-descent parser for MiniC.
 */
#ifndef CHERISEM_FRONTEND_PARSER_H
#define CHERISEM_FRONTEND_PARSER_H

#include <string>

#include "frontend/ast.h"
#include "frontend/lexer.h"

namespace cherisem::frontend {

/**
 * Parse @p source into a TranslationUnit.  Throws FrontendError on
 * syntax errors.  Built-in typedefs (size_t, (u)intptr_t, ptraddr_t,
 * the stdint fixed-width names) are predefined.
 */
TranslationUnit parse(const std::string &source,
                      const std::string &filename);

} // namespace cherisem::frontend

#endif // CHERISEM_FRONTEND_PARSER_H
