/**
 * @file
 * Abstract syntax tree for MiniC.
 *
 * One node type per syntactic class, with the fields the type checker
 * (sema) fills in: every expression gets a type, an lvalue flag, and —
 * the CHERI C specific part — binary operations get a *derivation
 * source* recording which operand the result capability derives from
 * (sections 3.7, 4.4 of the paper: derivation is an explicit
 * elaboration step).
 */
#ifndef CHERISEM_FRONTEND_AST_H
#define CHERISEM_FRONTEND_AST_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ctype/ctype.h"
#include "support/source_loc.h"

namespace cherisem::frontend {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class UnOp
{
    Plus, Minus, LogNot, BitNot, Deref, AddrOf,
    PreInc, PreDec, PostInc, PostDec,
};

enum class BinOp
{
    Add, Sub, Mul, Div, Rem,
    Shl, Shr,
    Lt, Gt, Le, Ge, Eq, Ne,
    BitAnd, BitXor, BitOr,
    LogAnd, LogOr,
    Comma,
};

/** Which operand a binary op's result capability derives from
 *  (section 3.7). */
enum class DerivSource { Left, Right, None };

struct Expr
{
    enum class Kind
    {
        IntLit,
        FloatLit,
        StringLit,
        Ident,
        Unary,
        Binary,
        Assign,      ///< op == BinOp::Comma means plain '='.
        Cond,        ///< c ? a : b
        Cast,        ///< explicit cast, or sema-inserted implicit one
        Call,
        Index,       ///< a[i]
        Member,      ///< a.m / a->m (arrow flag)
        SizeofExpr,
        SizeofType,
        AlignofType,
        OffsetOf,    ///< offsetof(struct, member) builtin
    };

    Kind kind;
    SourceLoc loc;

    // Literals / identifiers.
    uint64_t intValue = 0;
    bool litUnsigned = false;
    bool litLong = false;
    double floatValue = 0;
    std::string text; ///< identifier, string value, or member name.

    // Operators and operands.
    UnOp unop = UnOp::Plus;
    BinOp binop = BinOp::Add;
    bool isArrow = false;
    ExprPtr lhs;
    ExprPtr rhs;
    ExprPtr cond;
    std::vector<ExprPtr> args;

    // Cast / sizeof / offsetof type operand.
    ctype::TypeRef typeOperand;

    // ---- Filled by sema ----
    ctype::TypeRef type;
    bool isLValue = false;
    /** For Cast: inserted implicitly by the usual conversions. */
    bool implicitCast = false;
    /** For Binary/Assign on capability-carrying types. */
    DerivSource deriv = DerivSource::None;
    /** Resolved enumerator constant (Ident naming an enum value). */
    bool isEnumConst = false;
    __int128 enumValue = 0;
    /** Resolved builtin/intrinsic call (Call with Ident callee). */
    int builtinId = -1;

    static ExprPtr
    make(Kind k, SourceLoc loc)
    {
        auto e = std::make_unique<Expr>();
        e->kind = k;
        e->loc = std::move(loc);
        return e;
    }
};

/** An initializer: a single expression or a brace-enclosed list. */
struct Initializer
{
    ExprPtr expr;                          // when scalar
    std::vector<Initializer> list;         // when braced
    bool isList = false;
    SourceLoc loc;
};

/** One declared variable (local or global). */
struct VarDecl
{
    std::string name;
    ctype::TypeRef type;
    Initializer init;
    bool hasInit = false;
    bool isStatic = false;
    bool isExtern = false;
    SourceLoc loc;
};

struct Stmt
{
    enum class Kind
    {
        Expr,
        Decl,
        Block,
        If,
        While,
        DoWhile,
        For,
        Return,
        Break,
        Continue,
        Switch,
        Empty,
    };

    Kind kind;
    SourceLoc loc;

    ExprPtr expr;                 // Expr, Return (may be null), If cond...
    std::vector<VarDecl> decls;   // Decl
    std::vector<StmtPtr> body;    // Block
    StmtPtr thenStmt;             // If / loop body
    StmtPtr elseStmt;             // If
    // For: init (Decl/Expr stmt), cond expr, step expr.
    StmtPtr forInit;
    ExprPtr forCond;
    ExprPtr forStep;
    // Labels attached to this statement inside a switch body
    // (constant expressions), plus the default marker.
    std::vector<ExprPtr> caseExprs;
    bool isDefault = false;

    static StmtPtr
    make(Kind k, SourceLoc loc)
    {
        auto s = std::make_unique<Stmt>();
        s->kind = k;
        s->loc = std::move(loc);
        return s;
    }
};

struct FunctionDef
{
    std::string name;
    ctype::TypeRef type; ///< Kind::Function
    std::vector<std::string> paramNames;
    StmtPtr body;        ///< null for a prototype
    SourceLoc loc;
};

/** A parsed translation unit. */
struct TranslationUnit
{
    ctype::TagTable tags;
    std::vector<FunctionDef> functions;
    std::vector<VarDecl> globals;
    /** Enumerator constants (sema resolves Ident against these). */
    std::map<std::string, long long> enumConstants;
};

} // namespace cherisem::frontend

#endif // CHERISEM_FRONTEND_AST_H
