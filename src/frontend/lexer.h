/**
 * @file
 * Lexer for MiniC, with a miniature preprocessor.
 *
 * Preprocessing support is intentionally small: `#include` lines are
 * skipped (the standard-library subset the test corpus needs is built
 * in), object-like `#define` macros are substituted, and the constants
 * the paper's examples use (UINT_MAX, INT_MAX, NULL, ...) are
 * predefined.
 */
#ifndef CHERISEM_FRONTEND_LEXER_H
#define CHERISEM_FRONTEND_LEXER_H

#include <map>
#include <string>
#include <vector>

#include "frontend/token.h"

namespace cherisem::frontend {

/** A frontend error (lex or parse). */
struct FrontendError
{
    SourceLoc loc;
    std::string message;

    std::string str() const { return loc.str() + ": " + message; }
};

/**
 * Tokenize @p source.  Throws FrontendError on malformed input.
 */
std::vector<Token> lex(const std::string &source,
                       const std::string &filename);

} // namespace cherisem::frontend

#endif // CHERISEM_FRONTEND_LEXER_H
