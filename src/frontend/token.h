/**
 * @file
 * Tokens for the MiniC (CHERI C subset) frontend.
 */
#ifndef CHERISEM_FRONTEND_TOKEN_H
#define CHERISEM_FRONTEND_TOKEN_H

#include <cstdint>
#include <string>

#include "support/source_loc.h"

namespace cherisem::frontend {

enum class Tok
{
    End,
    Ident,
    IntLit,
    FloatLit,
    CharLit,
    StringLit,

    // Keywords.
    KwVoid, KwChar, KwShort, KwInt, KwLong, KwSigned, KwUnsigned,
    KwFloat, KwDouble, KwBool, KwStruct, KwUnion, KwEnum, KwTypedef,
    KwConst, KwVolatile, KwStatic, KwExtern, KwReturn, KwIf, KwElse,
    KwWhile, KwDo, KwFor, KwBreak, KwContinue, KwSizeof, KwAlignof,
    KwSwitch, KwCase, KwDefault,

    // Punctuation.
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Semi, Comma, Dot, Arrow, Ellipsis, Question, Colon,
    Plus, Minus, Star, Slash, Percent,
    PlusPlus, MinusMinus,
    Amp, Pipe, Caret, Tilde, Bang,
    AmpAmp, PipePipe,
    Shl, Shr,
    Lt, Gt, Le, Ge, EqEq, NotEq,
    Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign,
    PercentAssign, AmpAssign, PipeAssign, CaretAssign, ShlAssign,
    ShrAssign,
};

struct Token
{
    Tok kind = Tok::End;
    SourceLoc loc;
    /** Identifier / string-literal spelling. */
    std::string text;
    /** Integer / char literal value. */
    uint64_t intValue = 0;
    double floatValue = 0;
    /** Literal suffix info: unsigned / long. */
    bool litUnsigned = false;
    bool litLong = false;

    bool is(Tok k) const { return kind == k; }
};

/** Spelling of a token kind for diagnostics. */
const char *tokName(Tok t);

} // namespace cherisem::frontend

#endif // CHERISEM_FRONTEND_TOKEN_H
