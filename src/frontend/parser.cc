#include "frontend/parser.h"

#include "ctype/layout.h"

#include <cassert>
#include <functional>
#include <map>

namespace cherisem::frontend {

using ctype::IntKind;
using ctype::TypeRef;

namespace {

/** A parsed declarator: name (may be empty for abstract declarators)
 *  plus a builder composing the declarator's type around a base. */
struct Decltor
{
    std::string name;
    std::function<TypeRef(TypeRef)> build = [](TypeRef t) { return t; };
    /** Parameter names of the outermost function suffix attached
     *  directly to the identifier (for function definitions). */
    std::vector<std::string> paramNames;
    SourceLoc loc;
};

class Parser
{
  public:
    Parser(std::vector<Token> toks) : toks_(std::move(toks))
    {
        typedefs_["size_t"] = ctype::intType(IntKind::ULong);
        typedefs_["ssize_t"] = ctype::intType(IntKind::Long);
        typedefs_["ptrdiff_t"] = ctype::intType(IntKind::Long);
        typedefs_["ptraddr_t"] = ctype::intType(IntKind::Ptraddr);
        typedefs_["vaddr_t"] = ctype::intType(IntKind::Ptraddr);
        typedefs_["intptr_t"] = ctype::intType(IntKind::Intptr);
        typedefs_["uintptr_t"] = ctype::intType(IntKind::Uintptr);
        typedefs_["intmax_t"] = ctype::intType(IntKind::LongLong);
        typedefs_["uintmax_t"] = ctype::intType(IntKind::ULongLong);
        typedefs_["int8_t"] = ctype::intType(IntKind::SChar);
        typedefs_["uint8_t"] = ctype::intType(IntKind::UChar);
        typedefs_["int16_t"] = ctype::intType(IntKind::Short);
        typedefs_["uint16_t"] = ctype::intType(IntKind::UShort);
        typedefs_["int32_t"] = ctype::intType(IntKind::Int);
        typedefs_["uint32_t"] = ctype::intType(IntKind::UInt);
        typedefs_["int64_t"] = ctype::intType(IntKind::Long);
        typedefs_["uint64_t"] = ctype::intType(IntKind::ULong);
    }

    TranslationUnit
    run()
    {
        while (!at(Tok::End))
            topLevel();
        return std::move(unit_);
    }

  private:
    // ---- token helpers ----

    const Token &cur() const { return toks_[pos_]; }
    const Token &peekTok(size_t off = 1) const
    {
        size_t i = pos_ + off;
        return i < toks_.size() ? toks_[i] : toks_.back();
    }
    bool at(Tok k) const { return cur().kind == k; }

    Token
    advance()
    {
        Token t = toks_[pos_];
        if (pos_ + 1 < toks_.size())
            ++pos_;
        return t;
    }

    bool
    accept(Tok k)
    {
        if (at(k)) {
            advance();
            return true;
        }
        return false;
    }

    Token
    expect(Tok k, const char *what)
    {
        if (!at(k)) {
            fail(std::string("expected ") + tokName(k) + " (" + what +
                 "), got " + tokName(cur().kind));
        }
        return advance();
    }

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw FrontendError{cur().loc, msg};
    }

    // ---- type parsing ----

    bool
    isTypeStart(const Token &t) const
    {
        switch (t.kind) {
          case Tok::KwVoid: case Tok::KwChar: case Tok::KwShort:
          case Tok::KwInt: case Tok::KwLong: case Tok::KwSigned:
          case Tok::KwUnsigned: case Tok::KwFloat: case Tok::KwDouble:
          case Tok::KwBool: case Tok::KwStruct: case Tok::KwUnion:
          case Tok::KwEnum: case Tok::KwConst: case Tok::KwVolatile:
          case Tok::KwStatic: case Tok::KwExtern: case Tok::KwTypedef:
            return true;
          case Tok::Ident:
            return typedefs_.count(t.text) > 0;
          default:
            return false;
        }
    }

    struct DeclSpec
    {
        TypeRef type;
        bool isTypedef = false;
        bool isStatic = false;
        bool isExtern = false;
        bool isConst = false;
    };

    DeclSpec
    parseDeclSpecifiers()
    {
        DeclSpec ds;
        int n_long = 0;
        bool is_unsigned = false, is_signed = false;
        bool saw_base = false;
        TypeRef base;
        for (;;) {
            switch (cur().kind) {
              case Tok::KwTypedef: ds.isTypedef = true; advance(); break;
              case Tok::KwStatic: ds.isStatic = true; advance(); break;
              case Tok::KwExtern: ds.isExtern = true; advance(); break;
              case Tok::KwConst: ds.isConst = true; advance(); break;
              case Tok::KwVolatile: advance(); break;
              case Tok::KwVoid:
                base = ctype::voidType(); saw_base = true; advance();
                break;
              case Tok::KwChar:
                base = ctype::intType(IntKind::Char); saw_base = true;
                advance();
                break;
              case Tok::KwShort:
                base = ctype::intType(IntKind::Short); saw_base = true;
                advance();
                break;
              case Tok::KwInt:
                if (!base)
                    base = ctype::intType(IntKind::Int);
                saw_base = true;
                advance();
                break;
              case Tok::KwLong:
                ++n_long; saw_base = true; advance();
                break;
              case Tok::KwSigned:
                is_signed = true; saw_base = true; advance();
                break;
              case Tok::KwUnsigned:
                is_unsigned = true; saw_base = true; advance();
                break;
              case Tok::KwFloat:
                base = ctype::floatType(ctype::FloatKind::Float);
                saw_base = true; advance();
                break;
              case Tok::KwDouble:
                base = ctype::floatType(ctype::FloatKind::Double);
                saw_base = true; advance();
                break;
              case Tok::KwBool:
                base = ctype::intType(IntKind::Bool); saw_base = true;
                advance();
                break;
              case Tok::KwStruct:
              case Tok::KwUnion:
                base = parseStructOrUnion(); saw_base = true;
                break;
              case Tok::KwEnum:
                base = parseEnum(); saw_base = true;
                break;
              case Tok::Ident: {
                auto it = typedefs_.find(cur().text);
                if (it != typedefs_.end() && !saw_base && !base) {
                    base = it->second;
                    saw_base = true;
                    advance();
                    break;
                }
                goto done;
              }
              default:
                goto done;
            }
        }
      done:
        if (!saw_base)
            fail("expected type specifier");
        if (!base || (base->isInteger() &&
                      (n_long || is_unsigned || is_signed))) {
            IntKind k = IntKind::Int;
            if (base && base->isInteger())
                k = base->intKind;
            if (n_long == 1)
                k = IntKind::Long;
            else if (n_long >= 2)
                k = IntKind::LongLong;
            if (is_unsigned)
                k = ctype::toUnsigned(k);
            else if (is_signed && k == IntKind::Char)
                k = IntKind::SChar;
            base = ctype::intType(k);
        }
        if (!base)
            base = ctype::intType(IntKind::Int);
        if (ds.isConst)
            base = ctype::withConst(base, true);
        ds.type = base;
        return ds;
    }

    TypeRef
    parseStructOrUnion()
    {
        bool is_union = cur().kind == Tok::KwUnion;
        advance();
        std::string tag_name;
        if (at(Tok::Ident))
            tag_name = advance().text;
        ctype::TagId tag = unit_.tags.declare(tag_name, is_union);
        if (accept(Tok::LBrace)) {
            std::vector<ctype::Member> members;
            while (!accept(Tok::RBrace)) {
                DeclSpec ds = parseDeclSpecifiers();
                if (accept(Tok::Semi))
                    continue; // Anonymous member-less decl.
                for (;;) {
                    Decltor d = parseDeclarator(false);
                    members.push_back(
                        ctype::Member{d.name, d.build(ds.type)});
                    if (!accept(Tok::Comma))
                        break;
                }
                expect(Tok::Semi, "after struct member");
            }
            unit_.tags.complete(tag, std::move(members));
        }
        return ctype::structOrUnionType(tag);
    }

    TypeRef
    parseEnum()
    {
        advance(); // 'enum'
        if (at(Tok::Ident))
            advance();
        if (accept(Tok::LBrace)) {
            long long next = 0;
            while (!accept(Tok::RBrace)) {
                std::string name = expect(Tok::Ident,
                                          "enumerator").text;
                if (accept(Tok::Assign)) {
                    // Constant expressions: integer literals with an
                    // optional sign (the corpus needs no more).
                    bool neg = accept(Tok::Minus);
                    Token v = expect(Tok::IntLit, "enumerator value");
                    next = static_cast<long long>(v.intValue);
                    if (neg)
                        next = -next;
                }
                unit_.enumConstants[name] = next++;
                if (!accept(Tok::Comma))
                    expect(Tok::RBrace, "after enumerators"), --pos_;
            }
        }
        return ctype::intType(IntKind::Int);
    }

    /** Parse a declarator; @p abstract_ok allows a missing name. */
    Decltor
    parseDeclarator(bool abstract_ok)
    {
        if (accept(Tok::Star)) {
            bool ptr_const = false;
            while (at(Tok::KwConst) || at(Tok::KwVolatile)) {
                if (cur().kind == Tok::KwConst)
                    ptr_const = true;
                advance();
            }
            Decltor inner = parseDeclarator(abstract_ok);
            auto inner_build = inner.build;
            inner.build = [inner_build, ptr_const](TypeRef t) {
                TypeRef p = ctype::pointerTo(t);
                if (ptr_const)
                    p = ctype::withConst(p, true);
                return inner_build(p);
            };
            return inner;
        }
        return parseDirectDeclarator(abstract_ok);
    }

    Decltor
    parseDirectDeclarator(bool abstract_ok)
    {
        Decltor d;
        d.loc = cur().loc;
        bool is_ident_core = false;
        if (at(Tok::Ident) && typedefs_.count(cur().text) == 0) {
            d.name = advance().text;
            is_ident_core = true;
        } else if (at(Tok::LParen) &&
                   (peekTok().kind == Tok::Star ||
                    (peekTok().kind == Tok::Ident &&
                     typedefs_.count(peekTok().text) == 0))) {
            advance();
            d = parseDeclarator(abstract_ok);
            expect(Tok::RParen, "after nested declarator");
        } else if (!abstract_ok) {
            fail("expected declarator name");
        }

        // Postfix suffixes, applied innermost-first.
        std::vector<std::function<TypeRef(TypeRef)>> suffixes;
        for (;;) {
            if (accept(Tok::LBracket)) {
                uint64_t n = 0;
                bool sized = false;
                if (!at(Tok::RBracket)) {
                    n = parseConstArraySize();
                    sized = true;
                }
                expect(Tok::RBracket, "after array size");
                (void)sized;
                suffixes.push_back([n](TypeRef t) {
                    return ctype::arrayOf(t, n);
                });
            } else if (at(Tok::LParen)) {
                advance();
                std::vector<TypeRef> params;
                std::vector<std::string> names;
                bool variadic = false;
                if (at(Tok::KwVoid) &&
                    peekTok().kind == Tok::RParen) {
                    advance();
                } else if (!at(Tok::RParen)) {
                    for (;;) {
                        if (accept(Tok::Ellipsis)) {
                            variadic = true;
                            break;
                        }
                        DeclSpec ps = parseDeclSpecifiers();
                        Decltor pd = parseDeclarator(true);
                        TypeRef pt = pd.build(ps.type);
                        // Array/function params decay.
                        if (pt->isArray())
                            pt = ctype::pointerTo(pt->element);
                        else if (pt->isFunction())
                            pt = ctype::pointerTo(pt);
                        params.push_back(pt);
                        names.push_back(pd.name);
                        if (!accept(Tok::Comma))
                            break;
                    }
                }
                expect(Tok::RParen, "after parameter list");
                if (is_ident_core && d.paramNames.empty())
                    d.paramNames = names;
                suffixes.push_back(
                    [params = std::move(params), variadic](TypeRef t) {
                        return ctype::functionType(t, params, variadic);
                    });
            } else {
                break;
            }
        }
        if (!suffixes.empty()) {
            auto inner_build = d.build;
            d.build = [inner_build,
                       suffixes = std::move(suffixes)](TypeRef t) {
                // int (*p)[3]: suffixes seen left-to-right wrap the
                // base right-to-left.
                for (auto it = suffixes.rbegin(); it != suffixes.rend();
                     ++it) {
                    t = (*it)(t);
                }
                return inner_build(t);
            };
        }
        return d;
    }

    uint64_t
    parseConstArraySize()
    {
        // Array sizes in the corpus are integer literals or trivial
        // products/sums of them, or sizeof(type).
        std::function<uint64_t()> primary = [&]() -> uint64_t {
            if (at(Tok::IntLit))
                return advance().intValue;
            if (at(Tok::KwSizeof)) {
                advance();
                expect(Tok::LParen, "after sizeof");
                TypeRef t = parseTypeName();
                expect(Tok::RParen, "after sizeof type");
                // Layout needs the machine; use the Morello layout (a
                // constant array size cannot depend on the profile in
                // the corpus).
                ctype::LayoutEngine le(ctype::MachineLayout{16, 8},
                                       &unit_.tags);
                return le.sizeOf(t);
            }
            if (accept(Tok::LParen)) {
                uint64_t v = parseConstArraySize();
                expect(Tok::RParen, "in constant expression");
                return v;
            }
            fail("expected constant array size");
        };
        uint64_t v = primary();
        for (;;) {
            if (accept(Tok::Star))
                v *= primary();
            else if (accept(Tok::Plus))
                v += primary();
            else if (accept(Tok::Minus))
                v -= primary();
            else
                break;
        }
        return v;
    }

    TypeRef
    parseTypeName()
    {
        DeclSpec ds = parseDeclSpecifiers();
        Decltor d = parseDeclarator(true);
        if (!d.name.empty())
            fail("unexpected name in type name");
        return d.build(ds.type);
    }

    // ---- expressions ----

    ExprPtr
    parseExpr()
    {
        ExprPtr e = parseAssign();
        while (at(Tok::Comma)) {
            SourceLoc loc = advance().loc;
            ExprPtr rhs = parseAssign();
            ExprPtr n = Expr::make(Expr::Kind::Binary, loc);
            n->binop = BinOp::Comma;
            n->lhs = std::move(e);
            n->rhs = std::move(rhs);
            e = std::move(n);
        }
        return e;
    }

    ExprPtr
    parseAssign()
    {
        ExprPtr lhs = parseConditional();
        BinOp op;
        switch (cur().kind) {
          case Tok::Assign: op = BinOp::Comma; break; // plain '='
          case Tok::PlusAssign: op = BinOp::Add; break;
          case Tok::MinusAssign: op = BinOp::Sub; break;
          case Tok::StarAssign: op = BinOp::Mul; break;
          case Tok::SlashAssign: op = BinOp::Div; break;
          case Tok::PercentAssign: op = BinOp::Rem; break;
          case Tok::AmpAssign: op = BinOp::BitAnd; break;
          case Tok::PipeAssign: op = BinOp::BitOr; break;
          case Tok::CaretAssign: op = BinOp::BitXor; break;
          case Tok::ShlAssign: op = BinOp::Shl; break;
          case Tok::ShrAssign: op = BinOp::Shr; break;
          default:
            return lhs;
        }
        SourceLoc loc = advance().loc;
        ExprPtr rhs = parseAssign();
        ExprPtr n = Expr::make(Expr::Kind::Assign, loc);
        n->binop = op;
        n->lhs = std::move(lhs);
        n->rhs = std::move(rhs);
        return n;
    }

    ExprPtr
    parseConditional()
    {
        ExprPtr c = parseBinary(0);
        if (!at(Tok::Question))
            return c;
        SourceLoc loc = advance().loc;
        ExprPtr t = parseExpr();
        expect(Tok::Colon, "in conditional expression");
        ExprPtr f = parseConditional();
        ExprPtr n = Expr::make(Expr::Kind::Cond, loc);
        n->cond = std::move(c);
        n->lhs = std::move(t);
        n->rhs = std::move(f);
        return n;
    }

    static int
    precedence(Tok t)
    {
        switch (t) {
          case Tok::PipePipe: return 1;
          case Tok::AmpAmp: return 2;
          case Tok::Pipe: return 3;
          case Tok::Caret: return 4;
          case Tok::Amp: return 5;
          case Tok::EqEq: case Tok::NotEq: return 6;
          case Tok::Lt: case Tok::Gt: case Tok::Le: case Tok::Ge:
            return 7;
          case Tok::Shl: case Tok::Shr: return 8;
          case Tok::Plus: case Tok::Minus: return 9;
          case Tok::Star: case Tok::Slash: case Tok::Percent:
            return 10;
          default:
            return -1;
        }
    }

    static BinOp
    tokToBinOp(Tok t)
    {
        switch (t) {
          case Tok::PipePipe: return BinOp::LogOr;
          case Tok::AmpAmp: return BinOp::LogAnd;
          case Tok::Pipe: return BinOp::BitOr;
          case Tok::Caret: return BinOp::BitXor;
          case Tok::Amp: return BinOp::BitAnd;
          case Tok::EqEq: return BinOp::Eq;
          case Tok::NotEq: return BinOp::Ne;
          case Tok::Lt: return BinOp::Lt;
          case Tok::Gt: return BinOp::Gt;
          case Tok::Le: return BinOp::Le;
          case Tok::Ge: return BinOp::Ge;
          case Tok::Shl: return BinOp::Shl;
          case Tok::Shr: return BinOp::Shr;
          case Tok::Plus: return BinOp::Add;
          case Tok::Minus: return BinOp::Sub;
          case Tok::Star: return BinOp::Mul;
          case Tok::Slash: return BinOp::Div;
          case Tok::Percent: return BinOp::Rem;
          default:
            assert(false);
            return BinOp::Add;
        }
    }

    ExprPtr
    parseBinary(int min_prec)
    {
        ExprPtr lhs = parseUnary();
        for (;;) {
            int prec = precedence(cur().kind);
            if (prec < 0 || prec < min_prec)
                return lhs;
            Tok op = cur().kind;
            SourceLoc loc = advance().loc;
            ExprPtr rhs = parseBinary(prec + 1);
            ExprPtr n = Expr::make(Expr::Kind::Binary, loc);
            n->binop = tokToBinOp(op);
            n->lhs = std::move(lhs);
            n->rhs = std::move(rhs);
            lhs = std::move(n);
        }
    }

    ExprPtr
    parseUnary()
    {
        SourceLoc loc = cur().loc;
        switch (cur().kind) {
          case Tok::Plus: case Tok::Minus: case Tok::Bang:
          case Tok::Tilde: case Tok::Star: case Tok::Amp: {
            Tok t = advance().kind;
            ExprPtr e = Expr::make(Expr::Kind::Unary, loc);
            switch (t) {
              case Tok::Plus: e->unop = UnOp::Plus; break;
              case Tok::Minus: e->unop = UnOp::Minus; break;
              case Tok::Bang: e->unop = UnOp::LogNot; break;
              case Tok::Tilde: e->unop = UnOp::BitNot; break;
              case Tok::Star: e->unop = UnOp::Deref; break;
              case Tok::Amp: e->unop = UnOp::AddrOf; break;
              default: break;
            }
            e->lhs = parseUnary();
            return e;
          }
          case Tok::PlusPlus:
          case Tok::MinusMinus: {
            bool inc = advance().kind == Tok::PlusPlus;
            ExprPtr e = Expr::make(Expr::Kind::Unary, loc);
            e->unop = inc ? UnOp::PreInc : UnOp::PreDec;
            e->lhs = parseUnary();
            return e;
          }
          case Tok::KwSizeof: {
            advance();
            if (at(Tok::LParen) && isTypeStart(peekTok())) {
                advance();
                ExprPtr e = Expr::make(Expr::Kind::SizeofType, loc);
                e->typeOperand = parseTypeName();
                expect(Tok::RParen, "after sizeof type");
                return e;
            }
            ExprPtr e = Expr::make(Expr::Kind::SizeofExpr, loc);
            e->lhs = parseUnary();
            return e;
          }
          case Tok::KwAlignof: {
            advance();
            expect(Tok::LParen, "after _Alignof");
            ExprPtr e = Expr::make(Expr::Kind::AlignofType, loc);
            e->typeOperand = parseTypeName();
            expect(Tok::RParen, "after _Alignof type");
            return e;
          }
          case Tok::LParen:
            if (isTypeStart(peekTok())) {
                advance();
                TypeRef t = parseTypeName();
                expect(Tok::RParen, "after cast type");
                ExprPtr e = Expr::make(Expr::Kind::Cast, loc);
                e->typeOperand = t;
                e->lhs = parseUnary();
                return e;
            }
            return parsePostfix();
          default:
            return parsePostfix();
        }
    }

    ExprPtr
    parsePostfix()
    {
        ExprPtr e = parsePrimary();
        for (;;) {
            SourceLoc loc = cur().loc;
            if (accept(Tok::LBracket)) {
                ExprPtr idx = parseExpr();
                expect(Tok::RBracket, "after index");
                ExprPtr n = Expr::make(Expr::Kind::Index, loc);
                n->lhs = std::move(e);
                n->rhs = std::move(idx);
                e = std::move(n);
            } else if (accept(Tok::LParen)) {
                ExprPtr n = Expr::make(Expr::Kind::Call, loc);
                n->lhs = std::move(e);
                if (!at(Tok::RParen)) {
                    for (;;) {
                        n->args.push_back(parseAssign());
                        if (!accept(Tok::Comma))
                            break;
                    }
                }
                expect(Tok::RParen, "after call arguments");
                e = std::move(n);
            } else if (at(Tok::Dot) || at(Tok::Arrow)) {
                bool arrow = advance().kind == Tok::Arrow;
                std::string m = expect(Tok::Ident, "member name").text;
                ExprPtr n = Expr::make(Expr::Kind::Member, loc);
                n->isArrow = arrow;
                n->text = m;
                n->lhs = std::move(e);
                e = std::move(n);
            } else if (at(Tok::PlusPlus) || at(Tok::MinusMinus)) {
                bool inc = advance().kind == Tok::PlusPlus;
                ExprPtr n = Expr::make(Expr::Kind::Unary, loc);
                n->unop = inc ? UnOp::PostInc : UnOp::PostDec;
                n->lhs = std::move(e);
                e = std::move(n);
            } else {
                return e;
            }
        }
    }

    ExprPtr
    parsePrimary()
    {
        SourceLoc loc = cur().loc;
        switch (cur().kind) {
          case Tok::IntLit: {
            Token t = advance();
            ExprPtr e = Expr::make(Expr::Kind::IntLit, loc);
            e->intValue = t.intValue;
            e->litUnsigned = t.litUnsigned;
            e->litLong = t.litLong;
            return e;
          }
          case Tok::CharLit: {
            Token t = advance();
            ExprPtr e = Expr::make(Expr::Kind::IntLit, loc);
            e->intValue = t.intValue;
            return e;
          }
          case Tok::FloatLit: {
            Token t = advance();
            ExprPtr e = Expr::make(Expr::Kind::FloatLit, loc);
            e->floatValue = t.floatValue;
            return e;
          }
          case Tok::StringLit: {
            Token t = advance();
            ExprPtr e = Expr::make(Expr::Kind::StringLit, loc);
            e->text = t.text;
            // Adjacent string literals concatenate.
            while (at(Tok::StringLit))
                e->text += advance().text;
            return e;
          }
          case Tok::Ident: {
            Token t = advance();
            if (t.text == "offsetof" && at(Tok::LParen)) {
                advance();
                ExprPtr e = Expr::make(Expr::Kind::OffsetOf, loc);
                e->typeOperand = parseTypeName();
                expect(Tok::Comma, "in offsetof");
                e->text = expect(Tok::Ident, "offsetof member").text;
                expect(Tok::RParen, "after offsetof");
                return e;
            }
            ExprPtr e = Expr::make(Expr::Kind::Ident, loc);
            e->text = t.text;
            return e;
          }
          case Tok::LParen: {
            advance();
            ExprPtr e = parseExpr();
            expect(Tok::RParen, "after parenthesised expression");
            return e;
          }
          default:
            fail(std::string("expected expression, got ") +
                 tokName(cur().kind));
        }
    }

    // ---- statements ----

    Initializer
    parseInitializer()
    {
        Initializer init;
        init.loc = cur().loc;
        if (accept(Tok::LBrace)) {
            init.isList = true;
            if (!at(Tok::RBrace)) {
                for (;;) {
                    init.list.push_back(parseInitializer());
                    if (!accept(Tok::Comma))
                        break;
                    if (at(Tok::RBrace))
                        break; // trailing comma
                }
            }
            expect(Tok::RBrace, "after initializer list");
        } else {
            init.expr = parseAssign();
        }
        return init;
    }

    std::vector<VarDecl>
    parseDeclBody(const DeclSpec &ds)
    {
        std::vector<VarDecl> out;
        for (;;) {
            Decltor d = parseDeclarator(false);
            VarDecl vd;
            vd.name = d.name;
            vd.type = d.build(ds.type);
            vd.isStatic = ds.isStatic;
            vd.isExtern = ds.isExtern;
            vd.loc = d.loc;
            if (accept(Tok::Assign)) {
                vd.init = parseInitializer();
                vd.hasInit = true;
            }
            out.push_back(std::move(vd));
            if (!accept(Tok::Comma))
                break;
        }
        expect(Tok::Semi, "after declaration");
        return out;
    }

    StmtPtr
    parseStmt()
    {
        SourceLoc loc = cur().loc;
        switch (cur().kind) {
          case Tok::LBrace:
            return parseBlock();
          case Tok::Semi:
            advance();
            return Stmt::make(Stmt::Kind::Empty, loc);
          case Tok::KwIf: {
            advance();
            expect(Tok::LParen, "after if");
            StmtPtr s = Stmt::make(Stmt::Kind::If, loc);
            s->expr = parseExpr();
            expect(Tok::RParen, "after if condition");
            s->thenStmt = parseStmt();
            if (accept(Tok::KwElse))
                s->elseStmt = parseStmt();
            return s;
          }
          case Tok::KwWhile: {
            advance();
            expect(Tok::LParen, "after while");
            StmtPtr s = Stmt::make(Stmt::Kind::While, loc);
            s->expr = parseExpr();
            expect(Tok::RParen, "after while condition");
            s->thenStmt = parseStmt();
            return s;
          }
          case Tok::KwDo: {
            advance();
            StmtPtr s = Stmt::make(Stmt::Kind::DoWhile, loc);
            s->thenStmt = parseStmt();
            expect(Tok::KwWhile, "after do body");
            expect(Tok::LParen, "after while");
            s->expr = parseExpr();
            expect(Tok::RParen, "after do-while condition");
            expect(Tok::Semi, "after do-while");
            return s;
          }
          case Tok::KwFor: {
            advance();
            expect(Tok::LParen, "after for");
            StmtPtr s = Stmt::make(Stmt::Kind::For, loc);
            if (!accept(Tok::Semi)) {
                if (isTypeStart(cur())) {
                    DeclSpec ds = parseDeclSpecifiers();
                    StmtPtr d = Stmt::make(Stmt::Kind::Decl, loc);
                    d->decls = parseDeclBody(ds);
                    s->forInit = std::move(d);
                } else {
                    StmtPtr e = Stmt::make(Stmt::Kind::Expr, loc);
                    e->expr = parseExpr();
                    expect(Tok::Semi, "after for init");
                    s->forInit = std::move(e);
                }
            }
            if (!at(Tok::Semi))
                s->forCond = parseExpr();
            expect(Tok::Semi, "after for condition");
            if (!at(Tok::RParen))
                s->forStep = parseExpr();
            expect(Tok::RParen, "after for step");
            s->thenStmt = parseStmt();
            return s;
          }
          case Tok::KwSwitch: {
            advance();
            expect(Tok::LParen, "after switch");
            StmtPtr s = Stmt::make(Stmt::Kind::Switch, loc);
            s->expr = parseExpr();
            expect(Tok::RParen, "after switch expression");
            s->thenStmt = parseStmt();
            return s;
          }
          case Tok::KwCase:
          case Tok::KwDefault: {
            // Labeled statement: collect stacked labels, then the
            // statement they prefix.
            std::vector<ExprPtr> labels;
            bool is_default = false;
            while (at(Tok::KwCase) || at(Tok::KwDefault)) {
                if (accept(Tok::KwDefault)) {
                    is_default = true;
                } else {
                    advance();
                    labels.push_back(parseConditional());
                }
                expect(Tok::Colon, "after case label");
            }
            StmtPtr s = parseStmt();
            s->caseExprs = std::move(labels);
            s->isDefault = is_default;
            return s;
          }
          case Tok::KwReturn: {
            advance();
            StmtPtr s = Stmt::make(Stmt::Kind::Return, loc);
            if (!at(Tok::Semi))
                s->expr = parseExpr();
            expect(Tok::Semi, "after return");
            return s;
          }
          case Tok::KwBreak:
            advance();
            expect(Tok::Semi, "after break");
            return Stmt::make(Stmt::Kind::Break, loc);
          case Tok::KwContinue:
            advance();
            expect(Tok::Semi, "after continue");
            return Stmt::make(Stmt::Kind::Continue, loc);
          default:
            if (isTypeStart(cur())) {
                DeclSpec ds = parseDeclSpecifiers();
                StmtPtr s = Stmt::make(Stmt::Kind::Decl, loc);
                s->decls = parseDeclBody(ds);
                return s;
            }
            {
                StmtPtr s = Stmt::make(Stmt::Kind::Expr, loc);
                s->expr = parseExpr();
                expect(Tok::Semi, "after expression");
                return s;
            }
        }
    }

    StmtPtr
    parseBlock()
    {
        SourceLoc loc = cur().loc;
        expect(Tok::LBrace, "block");
        StmtPtr s = Stmt::make(Stmt::Kind::Block, loc);
        while (!accept(Tok::RBrace))
            s->body.push_back(parseStmt());
        return s;
    }

    // ---- top level ----

    void
    topLevel()
    {
        DeclSpec ds = parseDeclSpecifiers();
        if (ds.isTypedef) {
            for (;;) {
                Decltor d = parseDeclarator(false);
                typedefs_[d.name] = d.build(ds.type);
                if (!accept(Tok::Comma))
                    break;
            }
            expect(Tok::Semi, "after typedef");
            return;
        }
        if (accept(Tok::Semi))
            return; // struct/union/enum declaration only

        Decltor d = parseDeclarator(false);
        TypeRef ty = d.build(ds.type);
        if (ty->isFunction() && at(Tok::LBrace)) {
            FunctionDef fn;
            fn.name = d.name;
            fn.type = ty;
            fn.paramNames = d.paramNames;
            fn.loc = d.loc;
            fn.body = parseBlock();
            unit_.functions.push_back(std::move(fn));
            return;
        }
        if (ty->isFunction()) {
            // Prototype.
            FunctionDef fn;
            fn.name = d.name;
            fn.type = ty;
            fn.paramNames = d.paramNames;
            fn.loc = d.loc;
            unit_.functions.push_back(std::move(fn));
            while (accept(Tok::Comma)) {
                Decltor d2 = parseDeclarator(false);
                FunctionDef fn2;
                fn2.name = d2.name;
                fn2.type = d2.build(ds.type);
                fn2.loc = d2.loc;
                unit_.functions.push_back(std::move(fn2));
            }
            expect(Tok::Semi, "after function prototype");
            return;
        }

        // Global variable(s).
        VarDecl vd;
        vd.name = d.name;
        vd.type = ty;
        vd.isStatic = ds.isStatic;
        vd.isExtern = ds.isExtern;
        vd.loc = d.loc;
        if (accept(Tok::Assign)) {
            vd.init = parseInitializer();
            vd.hasInit = true;
        }
        unit_.globals.push_back(std::move(vd));
        while (accept(Tok::Comma)) {
            Decltor d2 = parseDeclarator(false);
            VarDecl v2;
            v2.name = d2.name;
            v2.type = d2.build(ds.type);
            v2.isStatic = ds.isStatic;
            v2.isExtern = ds.isExtern;
            v2.loc = d2.loc;
            if (accept(Tok::Assign)) {
                v2.init = parseInitializer();
                v2.hasInit = true;
            }
            unit_.globals.push_back(std::move(v2));
        }
        expect(Tok::Semi, "after global declaration");
    }

    std::vector<Token> toks_;
    size_t pos_ = 0;
    TranslationUnit unit_;
    std::map<std::string, TypeRef> typedefs_;
};

} // namespace

TranslationUnit
parse(const std::string &source, const std::string &filename)
{
    Parser p(lex(source, filename));
    return p.run();
}

} // namespace cherisem::frontend
