/**
 * @file
 * AST -> MiniC source printer (see printer.h for the contract).
 */
#include "frontend/printer.h"

#include <cassert>

namespace cherisem::frontend {

namespace {

using ctype::Type;
using ctype::TypeRef;

std::string
baseTypeStr(const Type &t, const ctype::TagTable &tags)
{
    std::string c = t.isConst ? "const " : "";
    switch (t.kind) {
      case Type::Kind::Void:
        return c + "void";
      case Type::Kind::Integer:
      case Type::Kind::Floating:
        // typeStr spells scalars exactly the way the lexer reads
        // them (intptr_t etc. are predefined typedefs).
        return ctype::typeStr(
            std::make_shared<const Type>(t), &tags);
      case Type::Kind::StructOrUnion: {
        const ctype::TagDef &d = tags.get(t.tag);
        return c + (d.isUnion ? "union " : "struct ") + d.name;
      }
      default:
        assert(false && "not a base type");
        return "<?>";
    }
}

} // namespace

std::string
declString(const TypeRef &t, const std::string &name,
           const ctype::TagTable &tags)
{
    // Build the declarator inside-out: walk the type outside-in,
    // appending [] / () on the right and * on the left, inserting
    // parens whenever a suffix would otherwise bind the '*' first.
    std::string d = name;
    const Type *cur = t.get();
    while (cur) {
        switch (cur->kind) {
          case Type::Kind::Pointer:
            d = std::string("*") + (cur->isConst ? "const " : "") + d;
            cur = cur->pointee.get();
            continue;
          case Type::Kind::Array:
            if (!d.empty() && d[0] == '*')
                d = "(" + d + ")";
            d += "[" + std::to_string(cur->arraySize) + "]";
            cur = cur->element.get();
            continue;
          case Type::Kind::Function: {
            if (!d.empty() && d[0] == '*')
                d = "(" + d + ")";
            std::string ps;
            for (size_t i = 0; i < cur->params.size(); ++i) {
                if (i)
                    ps += ", ";
                ps += declString(cur->params[i], "", tags);
            }
            if (cur->variadic)
                ps += ps.empty() ? "..." : ", ...";
            if (ps.empty())
                ps = "void";
            d += "(" + ps + ")";
            cur = cur->returnType.get();
            continue;
          }
          default: {
            std::string base = baseTypeStr(*cur, tags);
            return d.empty() ? base : base + " " + d;
          }
        }
    }
    return d;
}

namespace {

std::string
escapeString(const std::string &s)
{
    std::string out = "\"";
    for (char ch : s) {
        switch (ch) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\0': out += "\\0"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                snprintf(buf, sizeof buf, "\\x%02x",
                         static_cast<unsigned char>(ch));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out + "\"";
}

const char *
binOpStr(BinOp op)
{
    switch (op) {
      case BinOp::Add: return "+";
      case BinOp::Sub: return "-";
      case BinOp::Mul: return "*";
      case BinOp::Div: return "/";
      case BinOp::Rem: return "%";
      case BinOp::Shl: return "<<";
      case BinOp::Shr: return ">>";
      case BinOp::Lt: return "<";
      case BinOp::Gt: return ">";
      case BinOp::Le: return "<=";
      case BinOp::Ge: return ">=";
      case BinOp::Eq: return "==";
      case BinOp::Ne: return "!=";
      case BinOp::BitAnd: return "&";
      case BinOp::BitXor: return "^";
      case BinOp::BitOr: return "|";
      case BinOp::LogAnd: return "&&";
      case BinOp::LogOr: return "||";
      case BinOp::Comma: return ",";
    }
    return "?";
}

std::string
printInit(const Initializer &init, const ctype::TagTable &tags)
{
    if (!init.isList)
        return printExpr(*init.expr, tags);
    std::string s = "{";
    for (size_t i = 0; i < init.list.size(); ++i) {
        if (i)
            s += ", ";
        s += printInit(init.list[i], tags);
    }
    return s + "}";
}

std::string
printVarDecl(const VarDecl &d, const ctype::TagTable &tags)
{
    std::string s;
    if (d.isStatic)
        s += "static ";
    if (d.isExtern)
        s += "extern ";
    s += declString(d.type, d.name, tags);
    if (d.hasInit)
        s += " = " + printInit(d.init, tags);
    return s + ";";
}

std::string
indentStr(int n)
{
    return std::string(static_cast<size_t>(n) * 2, ' ');
}

} // namespace

std::string
printExpr(const Expr &e, const ctype::TagTable &tags)
{
    switch (e.kind) {
      case Expr::Kind::IntLit: {
        std::string s = std::to_string(e.intValue);
        if (e.litUnsigned)
            s += "u";
        if (e.litLong)
            s += "l";
        return s;
      }
      case Expr::Kind::FloatLit: {
        char buf[64];
        snprintf(buf, sizeof buf, "%.17g", e.floatValue);
        std::string s = buf;
        // Keep it a FloatLit on re-parse.
        if (s.find('.') == std::string::npos &&
            s.find('e') == std::string::npos &&
            s.find("inf") == std::string::npos &&
            s.find("nan") == std::string::npos)
            s += ".0";
        return s;
      }
      case Expr::Kind::StringLit:
        return escapeString(e.text);
      case Expr::Kind::Ident:
        return e.text;
      case Expr::Kind::Unary: {
        std::string v = printExpr(*e.lhs, tags);
        switch (e.unop) {
          case UnOp::Plus: return "(+" + v + ")";
          case UnOp::Minus: return "(-" + v + ")";
          case UnOp::LogNot: return "(!" + v + ")";
          case UnOp::BitNot: return "(~" + v + ")";
          case UnOp::Deref: return "(*" + v + ")";
          case UnOp::AddrOf: return "(&" + v + ")";
          case UnOp::PreInc: return "(++" + v + ")";
          case UnOp::PreDec: return "(--" + v + ")";
          case UnOp::PostInc: return "(" + v + "++)";
          case UnOp::PostDec: return "(" + v + "--)";
        }
        return "(?" + v + ")";
      }
      case Expr::Kind::Binary:
        return "(" + printExpr(*e.lhs, tags) + " " +
            binOpStr(e.binop) + " " + printExpr(*e.rhs, tags) + ")";
      case Expr::Kind::Assign: {
        std::string op = e.binop == BinOp::Comma
                             ? "="
                             : std::string(binOpStr(e.binop)) + "=";
        return "(" + printExpr(*e.lhs, tags) + " " + op + " " +
            printExpr(*e.rhs, tags) + ")";
      }
      case Expr::Kind::Cond:
        return "(" + printExpr(*e.cond, tags) + " ? " +
            printExpr(*e.lhs, tags) + " : " +
            printExpr(*e.rhs, tags) + ")";
      case Expr::Kind::Cast:
        // Sema-inserted conversions are not source syntax.
        if (e.implicitCast)
            return printExpr(*e.lhs, tags);
        return "((" + declString(e.typeOperand, "", tags) + ")" +
            printExpr(*e.lhs, tags) + ")";
      case Expr::Kind::Call: {
        std::string s = printExpr(*e.lhs, tags) + "(";
        for (size_t i = 0; i < e.args.size(); ++i) {
            if (i)
                s += ", ";
            s += printExpr(*e.args[i], tags);
        }
        return s + ")";
      }
      case Expr::Kind::Index:
        return printExpr(*e.lhs, tags) + "[" +
            printExpr(*e.rhs, tags) + "]";
      case Expr::Kind::Member:
        return printExpr(*e.lhs, tags) + (e.isArrow ? "->" : ".") +
            e.text;
      case Expr::Kind::SizeofExpr:
        return "sizeof(" + printExpr(*e.lhs, tags) + ")";
      case Expr::Kind::SizeofType:
        return "sizeof(" + declString(e.typeOperand, "", tags) + ")";
      case Expr::Kind::AlignofType:
        return "_Alignof(" + declString(e.typeOperand, "", tags) + ")";
      case Expr::Kind::OffsetOf:
        return "offsetof(" + declString(e.typeOperand, "", tags) +
            ", " + e.text + ")";
    }
    return "<expr?>";
}

std::string
printStmt(const Stmt &s, const ctype::TagTable &tags, int indent)
{
    std::string in = indentStr(indent);
    std::string out;
    // Switch labels attach to the statement itself.
    for (const ExprPtr &ce : s.caseExprs)
        out += indentStr(indent > 0 ? indent - 1 : 0) + "case " +
            printExpr(*ce, tags) + ":\n";
    if (s.isDefault)
        out += indentStr(indent > 0 ? indent - 1 : 0) + "default:\n";

    switch (s.kind) {
      case Stmt::Kind::Expr:
        return out + in + printExpr(*s.expr, tags) + ";\n";
      case Stmt::Kind::Decl: {
        for (const VarDecl &d : s.decls)
            out += in + printVarDecl(d, tags) + "\n";
        return out;
      }
      case Stmt::Kind::Block: {
        out += in + "{\n";
        for (const StmtPtr &b : s.body)
            out += printStmt(*b, tags, indent + 1);
        return out + in + "}\n";
      }
      case Stmt::Kind::If: {
        out += in + "if (" + printExpr(*s.expr, tags) + ")\n";
        out += printStmt(*s.thenStmt, tags, indent + 1);
        if (s.elseStmt) {
            out += in + "else\n";
            out += printStmt(*s.elseStmt, tags, indent + 1);
        }
        return out;
      }
      case Stmt::Kind::While:
        out += in + "while (" + printExpr(*s.expr, tags) + ")\n";
        return out + printStmt(*s.thenStmt, tags, indent + 1);
      case Stmt::Kind::DoWhile:
        out += in + "do\n";
        out += printStmt(*s.thenStmt, tags, indent + 1);
        return out + in + "while (" + printExpr(*s.expr, tags) +
            ");\n";
      case Stmt::Kind::For: {
        // The init clause prints inline (sans newline/indent).
        std::string init;
        if (s.forInit) {
            std::string raw = printStmt(*s.forInit, tags, 0);
            while (!raw.empty() &&
                   (raw.back() == '\n' || raw.back() == ' '))
                raw.pop_back();
            init = raw;
        } else {
            init = ";";
        }
        out += in + "for (" + init + " " +
            (s.forCond ? printExpr(*s.forCond, tags) : "") + "; " +
            (s.forStep ? printExpr(*s.forStep, tags) : "") + ")\n";
        return out + printStmt(*s.thenStmt, tags, indent + 1);
      }
      case Stmt::Kind::Return:
        if (s.expr)
            return out + in + "return " + printExpr(*s.expr, tags) +
                ";\n";
        return out + in + "return;\n";
      case Stmt::Kind::Break:
        return out + in + "break;\n";
      case Stmt::Kind::Continue:
        return out + in + "continue;\n";
      case Stmt::Kind::Switch: {
        out += in + "switch (" + printExpr(*s.expr, tags) + ")\n";
        return out + printStmt(*s.thenStmt, tags, indent + 1);
      }
      case Stmt::Kind::Empty:
        return out + in + ";\n";
    }
    return out + in + "<stmt?>;\n";
}

std::string
printUnit(const TranslationUnit &tu)
{
    std::string out;
    // Enumerator constants come back as #defines (see printer.h).
    for (const auto &[name, value] : tu.enumConstants)
        out += "#define " + name + " " + std::to_string(value) + "\n";

    for (ctype::TagId id = 0; id < tu.tags.size(); ++id) {
        const ctype::TagDef &d = tu.tags.get(id);
        if (!d.complete || d.name.empty())
            continue;
        out += (d.isUnion ? "union " : "struct ") + d.name + " {\n";
        for (const ctype::Member &m : d.members)
            out += "  " + declString(m.type, m.name, tu.tags) + ";\n";
        out += "};\n";
    }

    for (const VarDecl &g : tu.globals)
        out += printVarDecl(g, tu.tags) + "\n";

    for (const FunctionDef &f : tu.functions) {
        assert(f.type && f.type->isFunction());
        std::string ps;
        const Type &ft = *f.type;
        for (size_t i = 0; i < ft.params.size(); ++i) {
            if (i)
                ps += ", ";
            std::string pname = i < f.paramNames.size()
                                    ? f.paramNames[i]
                                    : "";
            ps += declString(ft.params[i], pname, tu.tags);
        }
        if (ft.variadic)
            ps += ps.empty() ? "..." : ", ...";
        if (ps.empty())
            ps = "void";
        out += declString(ft.returnType, "", tu.tags) + " " + f.name +
            "(" + ps + ")";
        if (!f.body) {
            out += ";\n";
            continue;
        }
        out += "\n" + printStmt(*f.body, tu.tags, 0);
    }
    return out;
}

} // namespace cherisem::frontend
