/**
 * @file
 * AST -> MiniC source printer.
 *
 * Renders a (parsed, not necessarily type-checked) TranslationUnit
 * back to source text that re-parses to the same tree, which is what
 * the fuzz shrinker needs: delta-debugging removes AST statements and
 * the reduced program must still go through the ordinary frontend.
 *
 * Expressions are printed fully parenthesised, so no precedence
 * bookkeeping is needed and a print -> parse -> print round trip is a
 * fixed point.  Enumerations are the one lossy corner: enum
 * *declarations* are not kept in the AST, so enumerator constants are
 * re-emitted as #define lines (same values, but the second round trip
 * substitutes them away).
 */
#ifndef CHERISEM_FRONTEND_PRINTER_H
#define CHERISEM_FRONTEND_PRINTER_H

#include <string>

#include "frontend/ast.h"

namespace cherisem::frontend {

/** Render a full translation unit (tag definitions, globals,
 *  functions, in declaration order). */
std::string printUnit(const TranslationUnit &tu);

/** Render one statement at @p indent levels (two spaces each). */
std::string printStmt(const Stmt &s, const ctype::TagTable &tags,
                      int indent);

/** Render one expression (fully parenthesised). */
std::string printExpr(const Expr &e, const ctype::TagTable &tags);

/** C declaration spelling: type @p t declaring @p name (empty name
 *  gives an abstract declarator usable in casts / sizeof). */
std::string declString(const ctype::TypeRef &t, const std::string &name,
                       const ctype::TagTable &tags);

} // namespace cherisem::frontend

#endif // CHERISEM_FRONTEND_PRINTER_H
