// ast.h is header-only; this file anchors the translation unit so the
// build system has a .cc per module.
#include "frontend/ast.h"
