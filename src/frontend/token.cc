#include "frontend/token.h"

namespace cherisem::frontend {

const char *
tokName(Tok t)
{
    switch (t) {
      case Tok::End: return "<eof>";
      case Tok::Ident: return "identifier";
      case Tok::IntLit: return "integer literal";
      case Tok::FloatLit: return "float literal";
      case Tok::CharLit: return "character literal";
      case Tok::StringLit: return "string literal";
      case Tok::KwVoid: return "void";
      case Tok::KwChar: return "char";
      case Tok::KwShort: return "short";
      case Tok::KwInt: return "int";
      case Tok::KwLong: return "long";
      case Tok::KwSigned: return "signed";
      case Tok::KwUnsigned: return "unsigned";
      case Tok::KwFloat: return "float";
      case Tok::KwDouble: return "double";
      case Tok::KwBool: return "_Bool";
      case Tok::KwStruct: return "struct";
      case Tok::KwUnion: return "union";
      case Tok::KwEnum: return "enum";
      case Tok::KwTypedef: return "typedef";
      case Tok::KwConst: return "const";
      case Tok::KwVolatile: return "volatile";
      case Tok::KwStatic: return "static";
      case Tok::KwExtern: return "extern";
      case Tok::KwReturn: return "return";
      case Tok::KwIf: return "if";
      case Tok::KwElse: return "else";
      case Tok::KwWhile: return "while";
      case Tok::KwDo: return "do";
      case Tok::KwFor: return "for";
      case Tok::KwBreak: return "break";
      case Tok::KwContinue: return "continue";
      case Tok::KwSizeof: return "sizeof";
      case Tok::KwAlignof: return "_Alignof";
      case Tok::KwSwitch: return "switch";
      case Tok::KwCase: return "case";
      case Tok::KwDefault: return "default";
      case Tok::LParen: return "(";
      case Tok::RParen: return ")";
      case Tok::LBrace: return "{";
      case Tok::RBrace: return "}";
      case Tok::LBracket: return "[";
      case Tok::RBracket: return "]";
      case Tok::Semi: return ";";
      case Tok::Comma: return ",";
      case Tok::Dot: return ".";
      case Tok::Arrow: return "->";
      case Tok::Ellipsis: return "...";
      case Tok::Question: return "?";
      case Tok::Colon: return ":";
      case Tok::Plus: return "+";
      case Tok::Minus: return "-";
      case Tok::Star: return "*";
      case Tok::Slash: return "/";
      case Tok::Percent: return "%";
      case Tok::PlusPlus: return "++";
      case Tok::MinusMinus: return "--";
      case Tok::Amp: return "&";
      case Tok::Pipe: return "|";
      case Tok::Caret: return "^";
      case Tok::Tilde: return "~";
      case Tok::Bang: return "!";
      case Tok::AmpAmp: return "&&";
      case Tok::PipePipe: return "||";
      case Tok::Shl: return "<<";
      case Tok::Shr: return ">>";
      case Tok::Lt: return "<";
      case Tok::Gt: return ">";
      case Tok::Le: return "<=";
      case Tok::Ge: return ">=";
      case Tok::EqEq: return "==";
      case Tok::NotEq: return "!=";
      case Tok::Assign: return "=";
      case Tok::PlusAssign: return "+=";
      case Tok::MinusAssign: return "-=";
      case Tok::StarAssign: return "*=";
      case Tok::SlashAssign: return "/=";
      case Tok::PercentAssign: return "%=";
      case Tok::AmpAssign: return "&=";
      case Tok::PipeAssign: return "|=";
      case Tok::CaretAssign: return "^=";
      case Tok::ShlAssign: return "<<=";
      case Tok::ShrAssign: return ">>=";
    }
    return "<token?>";
}

} // namespace cherisem::frontend
