#include "frontend/lexer.h"

#include <cctype>
#include <set>
#include <cstdlib>
#include <unordered_map>

namespace cherisem::frontend {

namespace {

const std::unordered_map<std::string, Tok> KEYWORDS = {
    {"void", Tok::KwVoid},       {"char", Tok::KwChar},
    {"short", Tok::KwShort},     {"int", Tok::KwInt},
    {"long", Tok::KwLong},       {"signed", Tok::KwSigned},
    {"unsigned", Tok::KwUnsigned}, {"float", Tok::KwFloat},
    {"double", Tok::KwDouble},   {"_Bool", Tok::KwBool},
    {"bool", Tok::KwBool},       {"struct", Tok::KwStruct},
    {"union", Tok::KwUnion},     {"enum", Tok::KwEnum},
    {"typedef", Tok::KwTypedef}, {"const", Tok::KwConst},
    {"volatile", Tok::KwVolatile}, {"static", Tok::KwStatic},
    {"extern", Tok::KwExtern},   {"return", Tok::KwReturn},
    {"if", Tok::KwIf},           {"else", Tok::KwElse},
    {"while", Tok::KwWhile},     {"do", Tok::KwDo},
    {"for", Tok::KwFor},         {"break", Tok::KwBreak},
    {"continue", Tok::KwContinue}, {"sizeof", Tok::KwSizeof},
    {"_Alignof", Tok::KwAlignof}, {"alignof", Tok::KwAlignof},
    {"switch", Tok::KwSwitch},   {"case", Tok::KwCase},
    {"default", Tok::KwDefault},
};

/** Predefined object-like macros (the tests' limits.h / stdint.h /
 *  stddef.h subset). */
const std::unordered_map<std::string, std::string> PREDEFINED = {
    {"NULL", "((void*)0)"},
    {"true", "1"},
    {"false", "0"},
    {"CHAR_BIT", "8"},
    {"SCHAR_MAX", "127"},
    {"SCHAR_MIN", "(-128)"},
    {"UCHAR_MAX", "255"},
    {"SHRT_MAX", "32767"},
    {"SHRT_MIN", "(-32767-1)"},
    {"USHRT_MAX", "65535"},
    {"INT_MAX", "2147483647"},
    {"INT_MIN", "(-2147483647-1)"},
    {"UINT_MAX", "4294967295U"},
    {"LONG_MAX", "9223372036854775807L"},
    {"LONG_MIN", "(-9223372036854775807L-1)"},
    {"ULONG_MAX", "18446744073709551615UL"},
    {"LLONG_MAX", "9223372036854775807L"},
    {"LLONG_MIN", "(-9223372036854775807L-1)"},
    {"ULLONG_MAX", "18446744073709551615UL"},
    {"SIZE_MAX", "18446744073709551615UL"},
    {"UINTPTR_MAX", "18446744073709551615UL"},
    {"INTPTR_MAX", "9223372036854775807L"},
    {"INTPTR_MIN", "(-9223372036854775807L-1)"},
    {"PTRDIFF_MAX", "9223372036854775807L"},
    {"EXIT_SUCCESS", "0"},
    {"EXIT_FAILURE", "1"},
};

class Lexer
{
  public:
    Lexer(const std::string &src, const std::string &file)
        : src_(src), file_(file)
    {
        for (const auto &[k, v] : PREDEFINED)
            macros_[k] = v;
    }

    std::vector<Token>
    run()
    {
        std::vector<Token> out;
        for (;;) {
            Token t = next();
            if (t.kind == Tok::Ident) {
                auto it = macros_.find(t.text);
                if (it != macros_.end() &&
                    expanding_.count(t.text) == 0) {
                    // Object-like macro expansion: lex the body and
                    // splice the tokens in (no recursion guard needed
                    // beyond self-reference).
                    expanding_.insert(t.text);
                    Lexer sub(it->second, file_);
                    sub.macros_ = macros_;
                    sub.expanding_ = expanding_;
                    std::vector<Token> body = sub.run();
                    expanding_.erase(t.text);
                    for (Token &bt : body) {
                        if (bt.kind == Tok::End)
                            break;
                        bt.loc = t.loc;
                        out.push_back(std::move(bt));
                    }
                    continue;
                }
            }
            bool done = t.kind == Tok::End;
            out.push_back(std::move(t));
            if (done)
                return out;
        }
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg)
    {
        throw FrontendError{loc(), msg};
    }

    SourceLoc loc() const { return SourceLoc{file_, line_, col_}; }

    char peek(size_t off = 0) const
    {
        return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
    }

    char
    advance()
    {
        char c = src_[pos_++];
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }

    bool
    match(char c)
    {
        if (peek() == c) {
            advance();
            return true;
        }
        return false;
    }

    void
    skipWhitespaceAndComments()
    {
        for (;;) {
            char c = peek();
            if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
                advance();
            } else if (c == '/' && peek(1) == '/') {
                while (peek() && peek() != '\n')
                    advance();
            } else if (c == '/' && peek(1) == '*') {
                advance();
                advance();
                while (peek() && !(peek() == '*' && peek(1) == '/'))
                    advance();
                if (!peek())
                    fail("unterminated comment");
                advance();
                advance();
            } else if (c == '#') {
                handleDirective();
            } else {
                return;
            }
        }
    }

    void
    handleDirective()
    {
        advance(); // '#'
        std::string word;
        while (std::isalpha(static_cast<unsigned char>(peek())))
            word += advance();
        if (word == "define") {
            while (peek() == ' ' || peek() == '\t')
                advance();
            std::string name;
            while (std::isalnum(static_cast<unsigned char>(peek())) ||
                   peek() == '_') {
                name += advance();
            }
            if (peek() == '(') {
                // Function-like macros are out of scope; skip the
                // whole line (the builtins cover assert/offsetof).
                while (peek() && peek() != '\n')
                    advance();
                return;
            }
            std::string body;
            while (peek() && peek() != '\n') {
                if (peek() == '\\' && peek(1) == '\n') {
                    advance();
                    advance();
                    continue;
                }
                body += advance();
            }
            if (!name.empty())
                macros_[name] = body;
        } else {
            // #include and anything else: skip the line.
            while (peek() && peek() != '\n')
                advance();
        }
    }

    Token
    next()
    {
        skipWhitespaceAndComments();
        Token t;
        t.loc = loc();
        if (pos_ >= src_.size()) {
            t.kind = Tok::End;
            return t;
        }
        char c = peek();
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
            return ident(t);
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' &&
             std::isdigit(static_cast<unsigned char>(peek(1))))) {
            return number(t);
        }
        if (c == '"')
            return stringLit(t);
        if (c == '\'')
            return charLit(t);
        return punct(t);
    }

    Token &
    ident(Token &t)
    {
        std::string s;
        while (std::isalnum(static_cast<unsigned char>(peek())) ||
               peek() == '_') {
            s += advance();
        }
        auto it = KEYWORDS.find(s);
        if (it != KEYWORDS.end()) {
            t.kind = it->second;
        } else {
            t.kind = Tok::Ident;
            t.text = std::move(s);
        }
        return t;
    }

    Token &
    number(Token &t)
    {
        std::string s;
        bool is_float = false;
        bool is_hex = false;
        if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
            is_hex = true;
            s += advance();
            s += advance();
            while (std::isxdigit(static_cast<unsigned char>(peek())))
                s += advance();
        } else {
            while (std::isdigit(static_cast<unsigned char>(peek())))
                s += advance();
            if (peek() == '.') {
                is_float = true;
                s += advance();
                while (std::isdigit(static_cast<unsigned char>(peek())))
                    s += advance();
            }
            if (peek() == 'e' || peek() == 'E') {
                is_float = true;
                s += advance();
                if (peek() == '+' || peek() == '-')
                    s += advance();
                while (std::isdigit(static_cast<unsigned char>(peek())))
                    s += advance();
            }
        }
        if (is_float) {
            t.kind = Tok::FloatLit;
            t.floatValue = std::strtod(s.c_str(), nullptr);
            if (peek() == 'f' || peek() == 'F')
                advance();
            return t;
        }
        // Suffixes.
        for (;;) {
            char sc = peek();
            if (sc == 'u' || sc == 'U') {
                t.litUnsigned = true;
                advance();
            } else if (sc == 'l' || sc == 'L') {
                t.litLong = true;
                advance();
                if (peek() == 'l' || peek() == 'L')
                    advance();
            } else {
                break;
            }
        }
        t.kind = Tok::IntLit;
        t.intValue = std::strtoull(s.c_str(), nullptr, is_hex ? 16 : 10);
        // Octal.
        if (!is_hex && s.size() > 1 && s[0] == '0')
            t.intValue = std::strtoull(s.c_str(), nullptr, 8);
        return t;
    }

    int
    escape()
    {
        char c = advance();
        switch (c) {
          case 'n': return '\n';
          case 't': return '\t';
          case 'r': return '\r';
          case '0': return '\0';
          case '\\': return '\\';
          case '\'': return '\'';
          case '"': return '"';
          case 'a': return '\a';
          case 'b': return '\b';
          case 'f': return '\f';
          case 'v': return '\v';
          case 'x': {
            int v = 0;
            while (std::isxdigit(static_cast<unsigned char>(peek()))) {
                char h = advance();
                v = v * 16 +
                    (std::isdigit(static_cast<unsigned char>(h))
                         ? h - '0'
                         : (std::tolower(h) - 'a' + 10));
            }
            return v;
          }
          default:
            fail(std::string("unknown escape \\") + c);
        }
    }

    Token &
    stringLit(Token &t)
    {
        advance(); // '"'
        std::string s;
        while (peek() && peek() != '"') {
            char c = advance();
            if (c == '\\')
                s += static_cast<char>(escape());
            else
                s += c;
        }
        if (!match('"'))
            fail("unterminated string literal");
        t.kind = Tok::StringLit;
        t.text = std::move(s);
        return t;
    }

    Token &
    charLit(Token &t)
    {
        advance(); // '\''
        int v;
        char c = advance();
        if (c == '\\')
            v = escape();
        else
            v = static_cast<unsigned char>(c);
        if (!match('\''))
            fail("unterminated character literal");
        t.kind = Tok::CharLit;
        t.intValue = static_cast<uint64_t>(v);
        return t;
    }

    Token &
    punct(Token &t)
    {
        char c = advance();
        switch (c) {
          case '(': t.kind = Tok::LParen; return t;
          case ')': t.kind = Tok::RParen; return t;
          case '{': t.kind = Tok::LBrace; return t;
          case '}': t.kind = Tok::RBrace; return t;
          case '[': t.kind = Tok::LBracket; return t;
          case ']': t.kind = Tok::RBracket; return t;
          case ';': t.kind = Tok::Semi; return t;
          case ',': t.kind = Tok::Comma; return t;
          case '?': t.kind = Tok::Question; return t;
          case ':': t.kind = Tok::Colon; return t;
          case '~': t.kind = Tok::Tilde; return t;
          case '.':
            if (peek() == '.' && peek(1) == '.') {
                advance();
                advance();
                t.kind = Tok::Ellipsis;
            } else {
                t.kind = Tok::Dot;
            }
            return t;
          case '+':
            t.kind = match('+') ? Tok::PlusPlus
                : match('=')    ? Tok::PlusAssign
                                : Tok::Plus;
            return t;
          case '-':
            t.kind = match('-') ? Tok::MinusMinus
                : match('=')    ? Tok::MinusAssign
                : match('>')    ? Tok::Arrow
                                : Tok::Minus;
            return t;
          case '*':
            t.kind = match('=') ? Tok::StarAssign : Tok::Star;
            return t;
          case '/':
            t.kind = match('=') ? Tok::SlashAssign : Tok::Slash;
            return t;
          case '%':
            t.kind = match('=') ? Tok::PercentAssign : Tok::Percent;
            return t;
          case '&':
            t.kind = match('&') ? Tok::AmpAmp
                : match('=')    ? Tok::AmpAssign
                                : Tok::Amp;
            return t;
          case '|':
            t.kind = match('|') ? Tok::PipePipe
                : match('=')    ? Tok::PipeAssign
                                : Tok::Pipe;
            return t;
          case '^':
            t.kind = match('=') ? Tok::CaretAssign : Tok::Caret;
            return t;
          case '!':
            t.kind = match('=') ? Tok::NotEq : Tok::Bang;
            return t;
          case '<':
            if (match('<')) {
                t.kind = match('=') ? Tok::ShlAssign : Tok::Shl;
            } else {
                t.kind = match('=') ? Tok::Le : Tok::Lt;
            }
            return t;
          case '>':
            if (match('>')) {
                t.kind = match('=') ? Tok::ShrAssign : Tok::Shr;
            } else {
                t.kind = match('=') ? Tok::Ge : Tok::Gt;
            }
            return t;
          case '=':
            t.kind = match('=') ? Tok::EqEq : Tok::Assign;
            return t;
          default:
            fail(std::string("unexpected character '") + c + "'");
        }
    }

    const std::string &src_;
    std::string file_;
    size_t pos_ = 0;
    uint32_t line_ = 1;
    uint32_t col_ = 1;
    std::map<std::string, std::string> macros_;
    std::set<std::string> expanding_;
};

} // namespace

std::vector<Token>
lex(const std::string &source, const std::string &filename)
{
    Lexer lx(source, filename);
    return lx.run();
}

} // namespace cherisem::frontend
