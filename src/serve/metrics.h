/**
 * @file
 * Service-level metrics for cherisem_serve: request/verdict
 * counters, cache hit rate (mirrored from FrontCache), queue depth,
 * end-to-end latency quantiles and throughput.
 *
 * Counters are relaxed atomics (hot path: two increments per
 * request); the latency reservoir is a mutex-guarded fixed-size
 * buffer that halves deterministically when full, so p50/p95 stay
 * meaningful over arbitrarily long runs without unbounded memory.
 * snapshot() is cheap enough to serve from a worker ("stats"
 * request) and is dumped on shutdown.
 */
#ifndef CHERISEM_SERVE_METRICS_H
#define CHERISEM_SERVE_METRICS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/cache.h"

namespace cherisem::serve {

class Metrics
{
  public:
    Metrics() : start_(std::chrono::steady_clock::now()) {}

    struct Snapshot
    {
        uint64_t requests = 0;
        uint64_t completed = 0;
        uint64_t exitVerdicts = 0;
        uint64_t ubVerdicts = 0;
        uint64_t frontendErrors = 0;
        uint64_t resourceExhausted = 0;
        uint64_t badRequests = 0;
        uint64_t cacheHits = 0;
        uint64_t cacheMisses = 0;
        uint64_t cacheEvictions = 0;
        double cacheHitRate = 0;
        /** Warm serving (--warm): runs that restored a post-prelude
         *  snapshot vs runs that built one.  Distinct from front
         *  cache hits: a cache hit skips compilation, a warm hit
         *  additionally skips global init + prelude execution. */
        uint64_t warmHits = 0;
        uint64_t warmBuilds = 0;
        double warmHitRate = 0;
        size_t queueDepth = 0;
        uint64_t p50LatencyUs = 0;
        uint64_t p95LatencyUs = 0;
        double programsPerSec = 0;
        uint64_t uptimeMs = 0;

        /** One JSON object (the "stats" response payload and the
         *  shutdown dump). */
        std::string renderJson() const;
    };

    void
    onAccepted()
    {
        requests_.fetch_add(1, std::memory_order_relaxed);
    }

    void
    onBadRequest()
    {
        badRequests_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Record one finished run.  @p verdict is the protocol verdict
     *  string ("exit", "ub", ...). */
    void onCompleted(const std::string &verdict, uint64_t latencyNs);

    /** Record a warm-serving outcome for one run. */
    void
    onWarmHit()
    {
        warmHits_.fetch_add(1, std::memory_order_relaxed);
    }

    void
    onWarmBuild()
    {
        warmBuilds_.fetch_add(1, std::memory_order_relaxed);
    }

    Snapshot snapshot(const FrontCache::Stats &cache,
                      size_t queueDepth) const;

  private:
    std::atomic<uint64_t> requests_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> exits_{0};
    std::atomic<uint64_t> ubs_{0};
    std::atomic<uint64_t> frontendErrors_{0};
    std::atomic<uint64_t> exhausted_{0};
    std::atomic<uint64_t> badRequests_{0};
    std::atomic<uint64_t> warmHits_{0};
    std::atomic<uint64_t> warmBuilds_{0};

    /** Reservoir cap: big enough for stable p95 on any realistic
     *  window, small enough to scan under the lock. */
    static constexpr size_t kMaxSamples = 65536;
    mutable std::mutex sampleMu_;
    std::vector<uint64_t> latencyNs_;

    std::chrono::steady_clock::time_point start_;
};

} // namespace cherisem::serve

#endif // CHERISEM_SERVE_METRICS_H
