/**
 * @file
 * Minimal JSON for the serving layer's newline-delimited protocol.
 *
 * The repo renders JSON in several places (trace sinks, fuzz
 * reports, bench harnesses) but the serving layer is the first
 * consumer that must *parse* it.  This is a small, dependency-free
 * recursive-descent parser over a string (one protocol line at a
 * time), plus the escaping helper the renderers share.  It is not a
 * general-purpose library: numbers are doubles with an exact-uint64
 * fast path (protocol fields are ids and budgets), and input depth
 * is capped — a hostile request cannot stack-overflow a worker.
 */
#ifndef CHERISEM_SERVE_JSON_H
#define CHERISEM_SERVE_JSON_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cherisem::serve {

/** A parsed JSON value (tree of these). */
struct Json
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    /** Exact value when the literal was an unsigned integer that
     *  fits; numberIsU64 marks it.  Budgets (max_steps) survive
     *  beyond 2^53 this way. */
    uint64_t u64 = 0;
    bool numberIsU64 = false;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    bool isObject() const { return kind == Kind::Object; }
    bool isString() const { return kind == Kind::String; }

    /** Member lookup; nullptr when absent or not an object. */
    const Json *get(const std::string &key) const;

    /** Typed accessors with defaults (missing/mistyped -> fallback,
     *  callers validate presence separately where it matters). */
    std::string asString(const std::string &fallback = {}) const;
    uint64_t asU64(uint64_t fallback = 0) const;
    bool asBool(bool fallback = false) const;
};

/** Parse @p text (one complete JSON value, surrounding whitespace
 *  allowed).  Returns false and sets @p err on malformed input. */
bool parseJson(const std::string &text, Json *out, std::string *err);

/** Append @p s to @p out as a quoted JSON string (escaping control
 *  characters, quotes and backslashes). */
void appendJsonString(std::string &out, const std::string &s);

/** Render @p value back to compact JSON (object keys in map order).
 *  parseJson(renderJson(v)) reproduces v. */
std::string renderJson(const Json &value);

} // namespace cherisem::serve

#endif // CHERISEM_SERVE_JSON_H
