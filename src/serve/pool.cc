#include "serve/pool.h"

#include <algorithm>

namespace cherisem::serve {

WorkerPool::WorkerPool(unsigned threads, size_t queueCapacity)
    : capacity_(std::max<size_t>(1, queueCapacity))
{
    unsigned n = std::max(1u, threads);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    shutdown();
}

bool
WorkerPool::submit(std::function<void()> task)
{
    std::unique_lock<std::mutex> lock(mu_);
    notFull_.wait(lock, [this] {
        return stopping_ || queue_.size() < capacity_;
    });
    if (stopping_)
        return false;
    queue_.push_back(std::move(task));
    notEmpty_.notify_one();
    return true;
}

void
WorkerPool::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock,
               [this] { return queue_.empty() && running_ == 0; });
}

void
WorkerPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_)
            return;
        stopping_ = true;
        notEmpty_.notify_all();
        notFull_.notify_all();
    }
    for (std::thread &t : workers_)
        if (t.joinable())
            t.join();
}

size_t
WorkerPool::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

void
WorkerPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            notEmpty_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty()) {
                // stopping_ && empty: accepted work is done.
                return;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
            notFull_.notify_one();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --running_;
            if (queue_.empty() && running_ == 0)
                idle_.notify_all();
        }
    }
}

} // namespace cherisem::serve
