/**
 * @file
 * The cherisem_serve wire protocol: newline-delimited JSON, one
 * object per line in each direction.
 *
 * Requests:
 *
 *     {"op":"run","id":"r1","source":"int main(void){return 7;}",
 *      "profile":"cerberus","engine":"bytecode",
 *      "max_steps":1000000,"deadline_ms":2000,
 *      "trace_digest":true,"output":false}
 *     {"op":"stats","id":"s1"}
 *     {"op":"shutdown","id":"q1"}
 *
 * Only "op" and, for run, "source" are required.  "profile" defaults
 * to the reference profile; "engine" (tree|bytecode) defaults to the
 * profile's engine; zero/missing budgets inherit the server
 * defaults.
 *
 * Responses (matched to requests by "id", which is echoed verbatim):
 *
 *     {"id":"r1","verdict":"exit","exit_code":7,"cached":false,
 *      "steps":3,"loads":0,"stores":1,
 *      "phase_ns":{"parse":...,"sema":...,"optimize":...,
 *                  "compile":...,"eval":...},
 *      "trace_digest":"fnv1a:0123456789abcdef","output":""}
 *
 * verdict is one of exit | ub | assert-fail | error |
 * resource-exhausted | frontend-error | bad-request; "ub" carries
 * the stable UB name in "ub", errors carry "message".  A "stats"
 * response carries the serve::Metrics snapshot under "stats".
 */
#ifndef CHERISEM_SERVE_PROTOCOL_H
#define CHERISEM_SERVE_PROTOCOL_H

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace cherisem::serve {

struct Request
{
    enum class Op { Run, Stats, Shutdown };

    Op op = Op::Run;
    std::string id;
    std::string source;
    /** Profile name; empty = reference profile. */
    std::string profile;
    /** "tree" / "bytecode"; empty = profile default. */
    std::string engine;
    /** 0 = server default. */
    uint64_t maxSteps = 0;
    /** Wall-clock budget; 0 = server default. */
    uint64_t deadlineMs = 0;
    /** Compute and return the witness-stream digest. */
    bool traceDigest = false;
    /** Echo the program's stdout in the response (on by default;
     *  campaign clients turn it off to shrink the stream). */
    bool wantOutput = true;
};

/** Parse one request line.  Returns false and sets @p err on
 *  malformed JSON or a structurally invalid request. */
bool parseRequest(const std::string &line, Request *out,
                  std::string *err);

/** Render @p req as one protocol line (no trailing newline) —
 *  clients and tests. */
std::string renderRequest(const Request &req);

struct Response
{
    std::string id;
    /** exit | ub | assert-fail | error | resource-exhausted |
     *  frontend-error | bad-request | stats | shutdown */
    std::string verdict;
    int exitCode = 0;
    /** Stable UB name (verdict == "ub"). */
    std::string ubName;
    /** Human-readable detail for error-shaped verdicts. */
    std::string message;
    std::string output;
    bool hasOutput = false;
    bool cached = false;
    /** Served from a warm post-prelude snapshot (--warm). */
    bool warm = false;
    uint64_t steps = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    obs::PhaseTimings phases;
    /** Queue wait + total wall time inside the server. */
    uint64_t queueNs = 0;
    uint64_t totalNs = 0;
    /** "fnv1a:<16 hex digits>" when requested. */
    std::string traceDigest;
    /** Pre-rendered payload for stats responses. */
    std::string statsJson;

    /** One protocol line (no trailing newline). */
    std::string render() const;
};

/** Parse one response line (clients and tests).  Phase timings and
 *  stats payloads are parsed back into the struct. */
bool parseResponse(const std::string &line, Response *out,
                   std::string *err);

} // namespace cherisem::serve

#endif // CHERISEM_SERVE_PROTOCOL_H
