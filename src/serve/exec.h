/**
 * @file
 * One request's execution: the cache-aware replacement for
 * driver::runSource().
 *
 * The front half (parse -> sema -> optimize -> bytecode-compile) is
 * looked up in / inserted into the FrontCache; evaluation always
 * runs fresh with its own MemoryModel, optional per-request step
 * budget, wall-clock deadline and cooperative cancel flag, and an
 * optional private RingBufferSink whose event stream is folded into
 * a FNV-1a witness digest.  Identical requests therefore produce
 * byte-identical ExecResults whether they hit or miss the cache,
 * run single-threaded or on a pool — the determinism contract the
 * serve tests enforce.
 */
#ifndef CHERISEM_SERVE_EXEC_H
#define CHERISEM_SERVE_EXEC_H

#include <atomic>
#include <cstdint>
#include <string>

#include "driver/profiles.h"
#include "serve/cache.h"
#include "serve/warm.h"

namespace cherisem::serve {

/** Per-run resource limits (the server's defaults; a request may
 *  tighten but not exceed them). */
struct ExecLimits
{
    uint64_t maxSteps = 20'000'000;
    /** 0 = no wall-clock deadline. */
    uint64_t deadlineMs = 0;
    /** Server-wide cancellation (shutdown); may be null. */
    const std::atomic<bool> *cancel = nullptr;
};

struct ExecResult
{
    bool frontendError = false;
    std::string frontendMessage;
    corelang::Outcome outcome;
    obs::PhaseTimings phases;
    bool cacheHit = false;
    /** This run restored a warm post-prelude snapshot and executed
     *  only main(). */
    bool warmHit = false;
    /** This run built the warm snapshot (first request for this
     *  program on a warm server). */
    bool warmBuild = false;
    /** Witness digest over the run's trace events (valid when
     *  hasDigest). */
    uint64_t digest = 0;
    bool hasDigest = false;

    /** "exit 0" / "ub UB_..." / "frontend-error ..." — mirrors
     *  driver::RunResult::summary(). */
    std::string summary() const;
};

/** Compile @p source's front half under @p profile, through
 *  @p cache when non-null (a null cache always compiles fresh).
 *  Returns nullptr and fills @p result's frontend error fields on
 *  lex/parse/sema failure. */
CompiledPtr compileFront(const std::string &source,
                         const driver::Profile &profile,
                         FrontCache *cache, ExecResult *result,
                         const std::string &filename = "<input>");

/** Options for one evaluation of a compiled program. */
struct RunSpec
{
    /** Engine override; negative = profile default. */
    int engineOverride = -1; // corelang::Engine when >= 0
    uint64_t maxSteps = 0;   // 0 = limits.maxSteps
    uint64_t deadlineMs = 0; // 0 = limits.deadlineMs
    bool traceDigest = false;
};

/** Evaluate @p compiled under @p profile (own MemoryModel, own
 *  trace sink when digesting). */
void runCompiled(const CompiledPtr &compiled,
                 const driver::Profile &profile, const RunSpec &spec,
                 const ExecLimits &limits, ExecResult *result);

/** compileFront + runCompiled in one call. */
ExecResult runRequest(const std::string &source,
                      const driver::Profile &profile,
                      const RunSpec &spec, const ExecLimits &limits,
                      FrontCache *cache);

/** Evaluate @p compiled through @p warm (keyed by @p warmKey): the
 *  first run executes globals + __prelude() once, captures the COW
 *  snapshot and serves main() from the same machine; later runs
 *  restore the snapshot into a fresh engine and execute only
 *  main().  Falls back to runCompiled() when the snapshot cannot
 *  reproduce a cold run bit-for-bit (step budget tighter than the
 *  prelude, digest requested but the recorded stream wrapped). */
void runCompiledWarm(const CompiledPtr &compiled,
                     const driver::Profile &profile,
                     const RunSpec &spec, const ExecLimits &limits,
                     uint64_t warmKey, WarmCache *warm,
                     ExecResult *result);

/** The warm-serving request path: compile (prelude + "\n" + source)
 *  through @p cache, then runCompiledWarm.  Responses carry the same
 *  stable fields a cold run of the combined program produces. */
ExecResult runRequestWarm(const std::string &preludeSource,
                          const std::string &source,
                          const driver::Profile &profile,
                          const RunSpec &spec,
                          const ExecLimits &limits, FrontCache *cache,
                          WarmCache *warm);

} // namespace cherisem::serve

#endif // CHERISEM_SERVE_EXEC_H
