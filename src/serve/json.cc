#include "serve/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace cherisem::serve {

namespace {

/** Nesting cap: protocol objects are flat, so anything deep is
 *  hostile input, not a use case. */
constexpr int kMaxDepth = 32;

struct Parser
{
    const char *p;
    const char *end;
    std::string err;

    bool
    fail(const std::string &msg)
    {
        if (err.empty())
            err = msg;
        return false;
    }

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool
    consume(char c)
    {
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        for (const char *w = word; *w; ++w, ++p)
            if (p >= end || *p != *w)
                return fail(std::string("expected '") + word + "'");
        return true;
    }

    bool
    parseString(std::string *out)
    {
        if (!consume('"'))
            return fail("expected string");
        out->clear();
        while (p < end && *p != '"') {
            unsigned char c = static_cast<unsigned char>(*p);
            if (c == '\\') {
                if (++p >= end)
                    return fail("unterminated escape");
                switch (*p) {
                  case '"': out->push_back('"'); break;
                  case '\\': out->push_back('\\'); break;
                  case '/': out->push_back('/'); break;
                  case 'b': out->push_back('\b'); break;
                  case 'f': out->push_back('\f'); break;
                  case 'n': out->push_back('\n'); break;
                  case 'r': out->push_back('\r'); break;
                  case 't': out->push_back('\t'); break;
                  case 'u': {
                    if (end - p < 5)
                        return fail("truncated \\u escape");
                    unsigned v = 0;
                    for (int i = 1; i <= 4; ++i) {
                        char h = p[i];
                        v <<= 4;
                        if (h >= '0' && h <= '9')
                            v |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            v |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            v |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    p += 4;
                    // UTF-8 encode (surrogate pairs are passed
                    // through as two 3-byte sequences; protocol
                    // sources are ASCII in practice).
                    if (v < 0x80) {
                        out->push_back(static_cast<char>(v));
                    } else if (v < 0x800) {
                        out->push_back(
                            static_cast<char>(0xC0 | (v >> 6)));
                        out->push_back(
                            static_cast<char>(0x80 | (v & 0x3F)));
                    } else {
                        out->push_back(
                            static_cast<char>(0xE0 | (v >> 12)));
                        out->push_back(static_cast<char>(
                            0x80 | ((v >> 6) & 0x3F)));
                        out->push_back(
                            static_cast<char>(0x80 | (v & 0x3F)));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                ++p;
            } else if (c < 0x20) {
                return fail("raw control character in string");
            } else {
                out->push_back(static_cast<char>(c));
                ++p;
            }
        }
        if (!consume('"'))
            return fail("unterminated string");
        return true;
    }

    bool
    parseNumber(Json *out)
    {
        const char *start = p;
        if (p < end && *p == '-')
            ++p;
        bool digits = false;
        while (p < end && std::isdigit(static_cast<unsigned char>(*p))) {
            ++p;
            digits = true;
        }
        bool integral = true;
        if (p < end && (*p == '.' || *p == 'e' || *p == 'E')) {
            integral = false;
            while (p < end &&
                   (std::isdigit(static_cast<unsigned char>(*p)) ||
                    *p == '.' || *p == 'e' || *p == 'E' ||
                    *p == '+' || *p == '-'))
                ++p;
        }
        if (!digits)
            return fail("malformed number");
        std::string text(start, p);
        out->kind = Json::Kind::Number;
        out->number = std::strtod(text.c_str(), nullptr);
        if (integral && text[0] != '-') {
            errno = 0;
            char *tail = nullptr;
            uint64_t v = std::strtoull(text.c_str(), &tail, 10);
            if (errno == 0 && tail && *tail == '\0') {
                out->u64 = v;
                out->numberIsU64 = true;
            }
        }
        return true;
    }

    bool
    parseValue(Json *out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
          case '{': {
            ++p;
            out->kind = Json::Kind::Object;
            skipWs();
            if (consume('}'))
                return true;
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(&key))
                    return false;
                skipWs();
                if (!consume(':'))
                    return fail("expected ':'");
                Json value;
                if (!parseValue(&value, depth + 1))
                    return false;
                out->obj.emplace(std::move(key), std::move(value));
                skipWs();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
          }
          case '[': {
            ++p;
            out->kind = Json::Kind::Array;
            skipWs();
            if (consume(']'))
                return true;
            for (;;) {
                Json value;
                if (!parseValue(&value, depth + 1))
                    return false;
                out->arr.push_back(std::move(value));
                skipWs();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
          }
          case '"':
            out->kind = Json::Kind::String;
            return parseString(&out->str);
          case 't':
            out->kind = Json::Kind::Bool;
            out->boolean = true;
            return literal("true");
          case 'f':
            out->kind = Json::Kind::Bool;
            out->boolean = false;
            return literal("false");
          case 'n':
            out->kind = Json::Kind::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }
};

} // namespace

const Json *
Json::get(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
}

std::string
Json::asString(const std::string &fallback) const
{
    return kind == Kind::String ? str : fallback;
}

uint64_t
Json::asU64(uint64_t fallback) const
{
    if (kind != Kind::Number)
        return fallback;
    if (numberIsU64)
        return u64;
    return number < 0 ? fallback : static_cast<uint64_t>(number);
}

bool
Json::asBool(bool fallback) const
{
    return kind == Kind::Bool ? boolean : fallback;
}

bool
parseJson(const std::string &text, Json *out, std::string *err)
{
    Parser parser{text.data(), text.data() + text.size(), {}};
    *out = Json{};
    if (!parser.parseValue(out, 0)) {
        if (err)
            *err = parser.err;
        return false;
    }
    parser.skipWs();
    if (parser.p != parser.end) {
        if (err)
            *err = "trailing characters after value";
        return false;
    }
    return true;
}

void
appendJsonString(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out.push_back('"');
}

namespace {

void
appendValue(std::string &out, const Json &v)
{
    switch (v.kind) {
      case Json::Kind::Null:
        out += "null";
        break;
      case Json::Kind::Bool:
        out += v.boolean ? "true" : "false";
        break;
      case Json::Kind::Number: {
        char buf[40];
        if (v.numberIsU64)
            std::snprintf(buf, sizeof buf, "%llu",
                          (unsigned long long)v.u64);
        else
            std::snprintf(buf, sizeof buf, "%.17g", v.number);
        out += buf;
        break;
      }
      case Json::Kind::String:
        appendJsonString(out, v.str);
        break;
      case Json::Kind::Array: {
        out.push_back('[');
        bool first = true;
        for (const Json &e : v.arr) {
            if (!first)
                out.push_back(',');
            first = false;
            appendValue(out, e);
        }
        out.push_back(']');
        break;
      }
      case Json::Kind::Object: {
        out.push_back('{');
        bool first = true;
        for (const auto &[key, val] : v.obj) {
            if (!first)
                out.push_back(',');
            first = false;
            appendJsonString(out, key);
            out.push_back(':');
            appendValue(out, val);
        }
        out.push_back('}');
        break;
      }
    }
}

} // namespace

std::string
renderJson(const Json &value)
{
    std::string out;
    appendValue(out, value);
    return out;
}

} // namespace cherisem::serve
