#include "serve/protocol.h"

#include <cinttypes>
#include <cstdio>

#include "serve/json.h"

namespace cherisem::serve {

namespace {

void
appendKv(std::string &out, const char *key, const std::string &value,
         bool *first)
{
    if (!*first)
        out.push_back(',');
    *first = false;
    appendJsonString(out, key);
    out.push_back(':');
    appendJsonString(out, value);
}

void
appendKvU64(std::string &out, const char *key, uint64_t value,
            bool *first)
{
    if (!*first)
        out.push_back(',');
    *first = false;
    appendJsonString(out, key);
    char buf[32];
    std::snprintf(buf, sizeof buf, ":%" PRIu64, value);
    out += buf;
}

void
appendKvBool(std::string &out, const char *key, bool value,
             bool *first)
{
    if (!*first)
        out.push_back(',');
    *first = false;
    appendJsonString(out, key);
    out += value ? ":true" : ":false";
}

} // namespace

bool
parseRequest(const std::string &line, Request *out, std::string *err)
{
    Json j;
    if (!parseJson(line, &j, err))
        return false;
    if (!j.isObject()) {
        if (err)
            *err = "request is not a JSON object";
        return false;
    }
    *out = Request{};
    std::string op = "run";
    if (const Json *v = j.get("op"))
        op = v->asString("run");
    if (op == "run") {
        out->op = Request::Op::Run;
    } else if (op == "stats") {
        out->op = Request::Op::Stats;
    } else if (op == "shutdown") {
        out->op = Request::Op::Shutdown;
    } else {
        if (err)
            *err = "unknown op '" + op + "'";
        return false;
    }
    if (const Json *v = j.get("id"))
        out->id = v->asString();
    if (const Json *v = j.get("source"))
        out->source = v->asString();
    if (const Json *v = j.get("profile"))
        out->profile = v->asString();
    if (const Json *v = j.get("engine"))
        out->engine = v->asString();
    if (const Json *v = j.get("max_steps"))
        out->maxSteps = v->asU64();
    if (const Json *v = j.get("deadline_ms"))
        out->deadlineMs = v->asU64();
    if (const Json *v = j.get("trace_digest"))
        out->traceDigest = v->asBool();
    if (const Json *v = j.get("output"))
        out->wantOutput = v->asBool(true);
    if (out->op == Request::Op::Run && out->source.empty()) {
        if (err)
            *err = "run request without source";
        return false;
    }
    if (out->op == Request::Op::Run && !out->engine.empty() &&
        out->engine != "tree" && out->engine != "bytecode") {
        if (err)
            *err = "unknown engine '" + out->engine + "'";
        return false;
    }
    return true;
}

std::string
renderRequest(const Request &req)
{
    std::string out = "{";
    bool first = true;
    const char *op = req.op == Request::Op::Run ? "run"
        : req.op == Request::Op::Stats          ? "stats"
                                                : "shutdown";
    appendKv(out, "op", op, &first);
    if (!req.id.empty())
        appendKv(out, "id", req.id, &first);
    if (req.op == Request::Op::Run) {
        appendKv(out, "source", req.source, &first);
        if (!req.profile.empty())
            appendKv(out, "profile", req.profile, &first);
        if (!req.engine.empty())
            appendKv(out, "engine", req.engine, &first);
        if (req.maxSteps)
            appendKvU64(out, "max_steps", req.maxSteps, &first);
        if (req.deadlineMs)
            appendKvU64(out, "deadline_ms", req.deadlineMs, &first);
        if (req.traceDigest)
            appendKvBool(out, "trace_digest", true, &first);
        if (!req.wantOutput)
            appendKvBool(out, "output", false, &first);
    }
    out.push_back('}');
    return out;
}

std::string
Response::render() const
{
    std::string out = "{";
    bool first = true;
    appendKv(out, "id", id, &first);
    appendKv(out, "verdict", verdict, &first);
    if (verdict == "stats") {
        out += ",\"stats\":";
        out += statsJson.empty() ? "{}" : statsJson;
        out.push_back('}');
        return out;
    }
    if (verdict == "exit") {
        char buf[48];
        std::snprintf(buf, sizeof buf, ",\"exit_code\":%d", exitCode);
        out += buf;
    }
    if (!ubName.empty())
        appendKv(out, "ub", ubName, &first);
    if (!message.empty())
        appendKv(out, "message", message, &first);
    if (verdict == "exit" || verdict == "ub" ||
        verdict == "assert-fail" || verdict == "error" ||
        verdict == "resource-exhausted") {
        appendKvBool(out, "cached", cached, &first);
        if (warm)
            appendKvBool(out, "warm", true, &first);
        appendKvU64(out, "steps", steps, &first);
        appendKvU64(out, "loads", loads, &first);
        appendKvU64(out, "stores", stores, &first);
        out += ",\"phase_ns\":{";
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "\"parse\":%" PRIu64 ",\"sema\":%" PRIu64
                      ",\"optimize\":%" PRIu64 ",\"compile\":%" PRIu64
                      ",\"eval\":%" PRIu64 "}",
                      phases.parseNs, phases.semaNs,
                      phases.optimizeNs, phases.compileNs,
                      phases.evalNs);
        out += buf;
        appendKvU64(out, "queue_ns", queueNs, &first);
        appendKvU64(out, "total_ns", totalNs, &first);
        if (!traceDigest.empty())
            appendKv(out, "trace_digest", traceDigest, &first);
        if (hasOutput)
            appendKv(out, "output", output, &first);
    }
    out.push_back('}');
    return out;
}

bool
parseResponse(const std::string &line, Response *out,
              std::string *err)
{
    Json j;
    if (!parseJson(line, &j, err))
        return false;
    if (!j.isObject()) {
        if (err)
            *err = "response is not a JSON object";
        return false;
    }
    *out = Response{};
    if (const Json *v = j.get("id"))
        out->id = v->asString();
    if (const Json *v = j.get("verdict"))
        out->verdict = v->asString();
    if (out->verdict.empty()) {
        if (err)
            *err = "response without verdict";
        return false;
    }
    if (const Json *v = j.get("exit_code"))
        out->exitCode = static_cast<int>(v->number);
    if (const Json *v = j.get("ub"))
        out->ubName = v->asString();
    if (const Json *v = j.get("message"))
        out->message = v->asString();
    if (const Json *v = j.get("output")) {
        out->output = v->asString();
        out->hasOutput = true;
    }
    if (const Json *v = j.get("cached"))
        out->cached = v->asBool();
    if (const Json *v = j.get("warm"))
        out->warm = v->asBool();
    if (const Json *v = j.get("steps"))
        out->steps = v->asU64();
    if (const Json *v = j.get("loads"))
        out->loads = v->asU64();
    if (const Json *v = j.get("stores"))
        out->stores = v->asU64();
    if (const Json *v = j.get("queue_ns"))
        out->queueNs = v->asU64();
    if (const Json *v = j.get("total_ns"))
        out->totalNs = v->asU64();
    if (const Json *v = j.get("trace_digest"))
        out->traceDigest = v->asString();
    if (const Json *v = j.get("stats"))
        out->statsJson = renderJson(*v);
    if (const Json *v = j.get("phase_ns")) {
        if (const Json *f = v->get("parse"))
            out->phases.parseNs = f->asU64();
        if (const Json *f = v->get("sema"))
            out->phases.semaNs = f->asU64();
        if (const Json *f = v->get("optimize"))
            out->phases.optimizeNs = f->asU64();
        if (const Json *f = v->get("compile"))
            out->phases.compileNs = f->asU64();
        if (const Json *f = v->get("eval"))
            out->phases.evalNs = f->asU64();
    }
    return true;
}

} // namespace cherisem::serve
