#include "serve/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace cherisem::serve {

void
Metrics::onCompleted(const std::string &verdict, uint64_t latencyNs)
{
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (verdict == "exit")
        exits_.fetch_add(1, std::memory_order_relaxed);
    else if (verdict == "ub")
        ubs_.fetch_add(1, std::memory_order_relaxed);
    else if (verdict == "frontend-error")
        frontendErrors_.fetch_add(1, std::memory_order_relaxed);
    else if (verdict == "resource-exhausted")
        exhausted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(sampleMu_);
    if (latencyNs_.size() >= kMaxSamples) {
        // Deterministic decimation: keep every second sample.  The
        // distribution stays representative and memory stays flat.
        size_t w = 0;
        for (size_t r = 0; r < latencyNs_.size(); r += 2)
            latencyNs_[w++] = latencyNs_[r];
        latencyNs_.resize(w);
    }
    latencyNs_.push_back(latencyNs);
}

Metrics::Snapshot
Metrics::snapshot(const FrontCache::Stats &cache,
                  size_t queueDepth) const
{
    Snapshot s;
    s.requests = requests_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.exitVerdicts = exits_.load(std::memory_order_relaxed);
    s.ubVerdicts = ubs_.load(std::memory_order_relaxed);
    s.frontendErrors =
        frontendErrors_.load(std::memory_order_relaxed);
    s.resourceExhausted = exhausted_.load(std::memory_order_relaxed);
    s.badRequests = badRequests_.load(std::memory_order_relaxed);
    s.cacheHits = cache.hits;
    s.cacheMisses = cache.misses;
    s.cacheEvictions = cache.evictions;
    s.cacheHitRate = cache.hitRate();
    s.warmHits = warmHits_.load(std::memory_order_relaxed);
    s.warmBuilds = warmBuilds_.load(std::memory_order_relaxed);
    uint64_t warmTotal = s.warmHits + s.warmBuilds;
    s.warmHitRate = warmTotal
        ? static_cast<double>(s.warmHits) /
            static_cast<double>(warmTotal)
        : 0.0;
    s.queueDepth = queueDepth;

    {
        std::lock_guard<std::mutex> lock(sampleMu_);
        if (!latencyNs_.empty()) {
            std::vector<uint64_t> sorted = latencyNs_;
            std::sort(sorted.begin(), sorted.end());
            auto pick = [&](double q) {
                size_t i = static_cast<size_t>(
                    q * static_cast<double>(sorted.size() - 1));
                return sorted[i] / 1000;
            };
            s.p50LatencyUs = pick(0.50);
            s.p95LatencyUs = pick(0.95);
        }
    }

    auto elapsed = std::chrono::steady_clock::now() - start_;
    uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
    s.uptimeMs = ns / 1'000'000;
    if (ns > 0)
        s.programsPerSec = static_cast<double>(s.completed) * 1e9 /
            static_cast<double>(ns);
    return s;
}

std::string
Metrics::Snapshot::renderJson() const
{
    char buf[768];
    std::snprintf(
        buf, sizeof buf,
        "{\"requests\":%" PRIu64 ",\"completed\":%" PRIu64
        ",\"exit\":%" PRIu64 ",\"ub\":%" PRIu64
        ",\"frontend_errors\":%" PRIu64
        ",\"resource_exhausted\":%" PRIu64
        ",\"bad_requests\":%" PRIu64 ",\"cache_hits\":%" PRIu64
        ",\"cache_misses\":%" PRIu64 ",\"cache_evictions\":%" PRIu64
        ",\"cache_hit_rate\":%.4f,\"warm_hits\":%" PRIu64
        ",\"warm_builds\":%" PRIu64 ",\"warm_hit_rate\":%.4f"
        ",\"queue_depth\":%zu"
        ",\"p50_latency_us\":%" PRIu64 ",\"p95_latency_us\":%" PRIu64
        ",\"programs_per_sec\":%.2f,\"uptime_ms\":%" PRIu64 "}",
        requests, completed, exitVerdicts, ubVerdicts,
        frontendErrors, resourceExhausted, badRequests, cacheHits,
        cacheMisses, cacheEvictions, cacheHitRate, warmHits,
        warmBuilds, warmHitRate, queueDepth,
        p50LatencyUs, p95LatencyUs, programsPerSec, uptimeMs);
    return buf;
}

} // namespace cherisem::serve
