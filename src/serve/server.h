/**
 * @file
 * The multi-tenant batch execution service (ROADMAP item 2).
 *
 * A Server owns the three concurrency pieces — FrontCache,
 * WorkerPool, Metrics — and turns protocol Requests into Responses.
 * Every run executes on a worker with its own Machine/Vm and
 * MemoryModel over the shared immutable CompiledProgram, under the
 * server's step budget, per-request wall-clock deadline, and the
 * server-wide cancel flag; a hostile program therefore costs at
 * most one deadline of one worker's time and unwinds cleanly as a
 * "resource-exhausted" verdict.
 *
 * Two frontends share this engine: runBatch() (one-shot NDJSON
 * file/stream mode — what tests and CI drive, no networking
 * needed) and the socket listener in serve/net.h used by
 * examples/cherisem_serve.cpp.
 */
#ifndef CHERISEM_SERVE_SERVER_H
#define CHERISEM_SERVE_SERVER_H

#include <atomic>
#include <functional>
#include <iosfwd>
#include <memory>

#include "serve/exec.h"
#include "serve/metrics.h"
#include "serve/pool.h"
#include "serve/protocol.h"

namespace cherisem::serve {

struct ServerOptions
{
    /** 0 = std::thread::hardware_concurrency(). */
    unsigned threads = 0;
    size_t queueCapacity = 256;
    /** Front-cache entries; 0 disables caching. */
    size_t cacheCapacity = 512;
    /** Hard per-run ceilings (requests may tighten, not exceed). */
    uint64_t maxSteps = 20'000'000;
    /** Default per-request wall-clock budget; 0 = none. */
    uint64_t deadlineMs = 10'000;
    /** Warm serving: when non-empty, this source (typically defining
     *  `__prelude()` and the globals it populates) is prepended to
     *  every run request, and the post-prelude machine state is
     *  snapshotted per program — repeats restore the COW snapshot
     *  and execute only main(). */
    std::string warmPrelude;
    /** Warm snapshots retained (LRU); 0 disables snapshotting even
     *  with a prelude. */
    size_t warmCapacity = 64;
};

class Server
{
  public:
    explicit Server(const ServerOptions &opts);
    /** Cancels in-flight runs, drains, joins. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Execute @p req on the calling thread (the single-threaded
     *  oracle path and the building block for workers). */
    Response runNow(const Request &req);

    /** Enqueue @p req; @p done fires on a worker thread.  Blocks on
     *  a full queue (backpressure); returns false after shutdown. */
    bool submit(Request req, std::function<void(Response)> done);

    /** Wait until every accepted request has completed. */
    void drain();

    /** Read NDJSON requests from @p in, execute them on the pool,
     *  and write responses to @p out *in input order*.  Blank lines
     *  and #-comments are skipped.  Returns the number of malformed
     *  request lines (each also answered with a bad-request
     *  response). */
    int runBatch(std::istream &in, std::ostream &out);

    /** Flip the server-wide cancel flag: in-flight runs finish as
     *  resource-exhausted at their next watchdog poll. */
    void cancelAll();

    Metrics::Snapshot stats() const;
    FrontCache &cache() { return cache_; }
    WarmCache &warmCache() { return warm_; }
    bool warmEnabled() const { return !opts_.warmPrelude.empty(); }
    unsigned threads() const { return pool_.threads(); }

  private:
    Response execute(const Request &req, uint64_t queueNs);

    ServerOptions opts_;
    FrontCache cache_;
    WarmCache warm_;
    Metrics metrics_;
    std::atomic<bool> cancel_{false};
    WorkerPool pool_; ///< last member: workers die before the rest
};

} // namespace cherisem::serve

#endif // CHERISEM_SERVE_SERVER_H
