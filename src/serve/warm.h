/**
 * @file
 * Warm prelude serving: the COW-snapshot fork point behind
 * `cherisem_serve --warm FILE`.
 *
 * A warm server prepends one prelude source to every request and
 * memoises, per combined compiled program, the machine state right
 * after global initialization and `__prelude()` returned — a
 * Machine::Snapshot whose store pages are refcounted COW pages, so
 * capturing and restoring cost O(pages touched), not O(footprint).
 * The first request for a program pays the prelude once ("warm
 * build"); every repeat forks the snapshot into a fresh engine and
 * runs only main() ("warm hit").  Snapshots reference AST nodes of
 * their own program, which is why the cache is keyed by the combined
 * (prelude + source, profile) pair and never shared across programs.
 *
 * Digesting requests stay bit-identical to cold runs: the build run
 * records its witness events (global init + prelude), and a warm hit
 * replays them into the request's private ring before main()'s own
 * events arrive — per-sink sequence numbering restarts at zero, so
 * the replayed stream is byte-for-byte the cold stream's prefix.
 *
 * Eviction is LRU under one mutex, same shape and rationale as
 * FrontCache (cache.h).
 */
#ifndef CHERISEM_SERVE_WARM_H
#define CHERISEM_SERVE_WARM_H

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "corelang/machine.h"
#include "obs/trace_event.h"

namespace cherisem::serve {

/** One compiled program's post-prelude fork point. */
struct WarmEntry
{
    /** The prelude itself terminated the run (UB, exit(), assert
     *  failure): every request for this program gets that outcome
     *  without executing anything.  Wall-clock/cancel exhaustion is
     *  never cached — it is not a property of the program. */
    bool terminal = false;
    corelang::Outcome preludeOutcome;
    /** Quiescent machine state right after __prelude() returned
     *  (null when terminal). */
    corelang::Machine::SnapshotPtr snap;
    /** The build run's witness events (global init + prelude),
     *  replayed into each digesting request's ring. */
    std::vector<obs::TraceEvent> preludeEvents;
    /** Events the build ring overwrote; a non-zero value makes the
     *  recorded stream a suffix, so digesting requests fall back to
     *  a cold run. */
    uint64_t preludeDropped = 0;
};

using WarmPtr = std::shared_ptr<const WarmEntry>;

/** LRU cache of WarmEntries keyed by FrontCache::key(prelude +
 *  source, profile).  Thread-safe; first insert wins (entries for
 *  one key are identical by determinism). */
class WarmCache
{
  public:
    /** @p capacity 0 disables warm state (every lookup misses and
     *  inserts are dropped). */
    explicit WarmCache(size_t capacity) : capacity_(capacity) {}

    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
        size_t size = 0;
        size_t capacity = 0;
    };

    /** nullptr on miss; refreshes LRU position on hit. */
    WarmPtr lookup(uint64_t key);
    void insert(uint64_t key, WarmPtr entry);

    Stats stats() const;
    void clear();

  private:
    mutable std::mutex mu_;
    size_t capacity_;
    /** Most-recently-used first. */
    std::list<uint64_t> lru_;
    struct Entry
    {
        WarmPtr warm;
        std::list<uint64_t>::iterator pos;
    };
    std::unordered_map<uint64_t, Entry> map_;
    uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
};

} // namespace cherisem::serve

#endif // CHERISEM_SERVE_WARM_H
