#include "serve/net.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace cherisem::serve {

bool
ListenSpec::parse(const std::string &spec, ListenSpec *out,
                  std::string *err)
{
    if (spec.rfind("unix:", 0) == 0) {
        out->kind = Kind::Unix;
        out->path = spec.substr(5);
        if (out->path.empty() ||
            out->path.size() >= sizeof(sockaddr_un{}.sun_path)) {
            if (err)
                *err = "bad unix socket path";
            return false;
        }
        return true;
    }
    if (spec.rfind("tcp:", 0) == 0) {
        out->kind = Kind::Tcp;
        int port = std::atoi(spec.c_str() + 4);
        if (port <= 0 || port > 65535) {
            if (err)
                *err = "bad tcp port";
            return false;
        }
        out->port = static_cast<uint16_t>(port);
        return true;
    }
    if (err)
        *err = "listen spec must be unix:<path> or tcp:<port>";
    return false;
}

namespace {

/** Shared by the reader thread and every in-flight response
 *  callback; the fd closes when the last holder lets go. */
struct Connection
{
    int fd;
    std::mutex writeMu;

    explicit Connection(int fd) : fd(fd) {}
    ~Connection() { ::close(fd); }

    void
    writeLine(const std::string &line)
    {
        std::lock_guard<std::mutex> lock(writeMu);
        std::string framed = line + "\n";
        size_t off = 0;
        while (off < framed.size()) {
            ssize_t n = ::send(fd, framed.data() + off,
                               framed.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                return; // client gone; drop the rest
            off += static_cast<size_t>(n);
        }
    }
};

/** Accept-loop state shared with every reader thread. */
struct ServeState
{
    std::atomic<bool> stop{false};
    int listenFd = -1;
    std::mutex connMu;
    std::vector<std::weak_ptr<Connection>> conns;

    /** Request shutdown: unblocks accept() and every blocked
     *  reader. */
    void
    requestStop()
    {
        stop.store(true);
        ::shutdown(listenFd, SHUT_RDWR);
        std::lock_guard<std::mutex> lock(connMu);
        for (auto &w : conns)
            if (auto c = w.lock())
                ::shutdown(c->fd, SHUT_RD);
    }
};

void
connectionLoop(Server &server, std::shared_ptr<Connection> conn,
               ServeState *state)
{
    std::string buf;
    char chunk[4096];
    for (;;) {
        ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
        if (n <= 0)
            return;
        buf.append(chunk, static_cast<size_t>(n));
        size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
            std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            if (line.empty() || line[0] == '#')
                continue;
            Request req;
            std::string err;
            if (!parseRequest(line, &req, &err)) {
                Response bad;
                bad.verdict = "bad-request";
                bad.message = err;
                conn->writeLine(bad.render());
                continue;
            }
            if (req.op == Request::Op::Shutdown) {
                Response bye;
                bye.id = req.id;
                bye.verdict = "shutdown";
                conn->writeLine(bye.render());
                state->requestStop();
                return;
            }
            server.submit(std::move(req), [conn](Response resp) {
                conn->writeLine(resp.render());
            });
        }
    }
}

int
bindAndListen(const ListenSpec &spec, std::string *err)
{
    int fd = -1;
    if (spec.kind == ListenSpec::Kind::Unix) {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            if (err)
                *err = std::strerror(errno);
            return -1;
        }
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, spec.path.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(spec.path.c_str());
        if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                   sizeof addr) != 0) {
            if (err)
                *err = "bind " + spec.path + ": " +
                    std::strerror(errno);
            ::close(fd);
            return -1;
        }
    } else {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) {
            if (err)
                *err = std::strerror(errno);
            return -1;
        }
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(spec.port);
        // Loopback only: this daemon has no authentication.
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                   sizeof addr) != 0) {
            if (err)
                *err = "bind 127.0.0.1:" + std::to_string(spec.port) +
                    ": " + std::strerror(errno);
            ::close(fd);
            return -1;
        }
    }
    if (::listen(fd, 64) != 0) {
        if (err)
            *err = std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace

int
serveForever(Server &server, const ListenSpec &spec,
             std::string *err)
{
    ServeState state;
    state.listenFd = bindAndListen(spec, err);
    if (state.listenFd < 0)
        return 1;

    std::vector<std::thread> readers;
    while (!state.stop.load()) {
        int fd = ::accept(state.listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (state.stop.load())
                break;
            if (errno == EINTR)
                continue;
            break; // listener broke; shut down cleanly
        }
        if (state.stop.load()) {
            ::close(fd);
            break;
        }
        auto conn = std::make_shared<Connection>(fd);
        {
            std::lock_guard<std::mutex> lock(state.connMu);
            state.conns.push_back(conn);
        }
        readers.emplace_back([&server, conn, &state] {
            connectionLoop(server, conn, &state);
        });
    }
    ::close(state.listenFd);
    server.drain();
    for (std::thread &t : readers)
        if (t.joinable())
            t.join();
    if (spec.kind == ListenSpec::Kind::Unix)
        ::unlink(spec.path.c_str());
    return 0;
}

} // namespace cherisem::serve
