/**
 * @file
 * The content-hash front cache: parse -> sema -> optimize ->
 * bytecode-compile, keyed by (source bytes, profile name).
 *
 * A CompiledProgram is immutable after construction — sema::Program
 * is plain annotated-AST data and BytecodeModule is compile-once by
 * design — so one shared_ptr can be evaluated by any number of
 * workers concurrently; each evaluation builds its own Machine/Vm
 * and MemoryModel.  The profile name is part of the key because the
 * optimisation passes rewrite the AST per profile and the machine
 * layout (capability size) feeds sema.
 *
 * Eviction is LRU under a single mutex: the critical sections are a
 * map lookup and a list splice, orders of magnitude below one
 * evaluation, so a sharded design would be complexity without a
 * measurable win at realistic worker counts (revisit past ~64
 * workers).
 */
#ifndef CHERISEM_SERVE_CACHE_H
#define CHERISEM_SERVE_CACHE_H

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "corelang/bytecode.h"
#include "corelang/optimize.h"
#include "obs/metrics.h"
#include "sema/sema.h"

namespace cherisem::serve {

/** FNV-1a 64-bit over @p data, continuing from @p h. */
inline uint64_t
fnv1a(const void *data, size_t n, uint64_t h = 0xcbf29ce484222325ull)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

/** The immutable front half of one (source, profile) pair. */
struct CompiledProgram
{
    sema::Program prog;
    corelang::BytecodeModule module;
    corelang::OptimizeStats optStats;
    /** What the front half cost when it was compiled (evalNs 0). */
    obs::PhaseTimings frontPhases;
};

using CompiledPtr = std::shared_ptr<const CompiledProgram>;

class FrontCache
{
  public:
    /** @p capacity 0 disables caching (every lookup misses). */
    explicit FrontCache(size_t capacity) : capacity_(capacity) {}

    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
        size_t size = 0;
        size_t capacity = 0;

        double
        hitRate() const
        {
            uint64_t total = hits + misses;
            return total ? static_cast<double>(hits) / total : 0.0;
        }
    };

    /** The cache key: source content hash x profile identity. */
    static uint64_t
    key(const std::string &source, const std::string &profileName)
    {
        uint64_t h = fnv1a(source.data(), source.size());
        h = fnv1a("\0", 1, h); // unambiguous separator
        return fnv1a(profileName.data(), profileName.size(), h);
    }

    /** nullptr on miss; refreshes LRU position on hit. */
    CompiledPtr lookup(uint64_t key);

    /** Insert (no-op if the key raced in already — first wins, the
     *  values are identical by construction). */
    void insert(uint64_t key, CompiledPtr prog);

    Stats stats() const;
    void clear();

  private:
    mutable std::mutex mu_;
    size_t capacity_;
    /** Most-recently-used first. */
    std::list<uint64_t> lru_;
    struct Entry
    {
        CompiledPtr prog;
        std::list<uint64_t>::iterator pos;
    };
    std::unordered_map<uint64_t, Entry> map_;
    uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
};

} // namespace cherisem::serve

#endif // CHERISEM_SERVE_CACHE_H
