#include "serve/server.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>
#include <thread>

#include "mem/ub.h"

namespace cherisem::serve {

namespace {

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

Response
badRequest(std::string id, const std::string &why)
{
    Response r;
    r.id = std::move(id);
    r.verdict = "bad-request";
    r.message = why;
    return r;
}

} // namespace

Server::Server(const ServerOptions &opts)
    : opts_(opts), cache_(opts.cacheCapacity),
      warm_(opts.warmPrelude.empty() ? 0 : opts.warmCapacity),
      pool_(opts.threads ? opts.threads
                         : std::max(1u,
                                    std::thread::hardware_concurrency()),
            opts.queueCapacity)
{
}

Server::~Server()
{
    cancelAll();
    pool_.shutdown();
}

void
Server::cancelAll()
{
    cancel_.store(true, std::memory_order_relaxed);
}

Metrics::Snapshot
Server::stats() const
{
    return metrics_.snapshot(cache_.stats(), pool_.queueDepth());
}

Response
Server::execute(const Request &req, uint64_t queueNs)
{
    uint64_t t0 = nowNs();
    Response resp;
    resp.id = req.id;
    resp.queueNs = queueNs;

    if (req.op == Request::Op::Stats) {
        resp.verdict = "stats";
        resp.statsJson = stats().renderJson();
        return resp;
    }
    if (req.op == Request::Op::Shutdown) {
        resp.verdict = "shutdown";
        return resp;
    }

    const driver::Profile *profile = req.profile.empty()
        ? &driver::referenceProfile()
        : driver::findProfile(req.profile);
    if (!profile) {
        metrics_.onBadRequest();
        return badRequest(req.id,
                          "unknown profile '" + req.profile + "'");
    }

    RunSpec spec;
    if (req.engine == "tree")
        spec.engineOverride =
            static_cast<int>(corelang::Engine::Tree);
    else if (req.engine == "bytecode")
        spec.engineOverride =
            static_cast<int>(corelang::Engine::Bytecode);
    spec.maxSteps = req.maxSteps;
    spec.deadlineMs = req.deadlineMs;
    spec.traceDigest = req.traceDigest;

    ExecLimits limits;
    limits.maxSteps = opts_.maxSteps;
    limits.deadlineMs = opts_.deadlineMs;
    limits.cancel = &cancel_;

    ExecResult r = warmEnabled()
        ? runRequestWarm(opts_.warmPrelude, req.source, *profile,
                         spec, limits, &cache_, &warm_)
        : runRequest(req.source, *profile, spec, limits, &cache_);

    if (r.warmHit)
        metrics_.onWarmHit();
    else if (r.warmBuild)
        metrics_.onWarmBuild();
    resp.cached = r.cacheHit;
    resp.warm = r.warmHit;
    resp.phases = r.phases;
    if (r.frontendError) {
        resp.verdict = "frontend-error";
        resp.message = r.frontendMessage;
    } else {
        using Kind = corelang::Outcome::Kind;
        switch (r.outcome.kind) {
          case Kind::Exit:
            resp.verdict = "exit";
            resp.exitCode = r.outcome.exitCode;
            break;
          case Kind::Undefined:
            resp.verdict = "ub";
            resp.ubName = mem::ubName(r.outcome.failure.ub);
            break;
          case Kind::AssertFail:
            resp.verdict = "assert-fail";
            resp.message = r.outcome.message;
            break;
          case Kind::ResourceExhausted:
            resp.verdict = "resource-exhausted";
            resp.message = r.outcome.failure.message;
            break;
          case Kind::Error:
            resp.verdict = "error";
            resp.message = r.outcome.message;
            break;
        }
        resp.steps = r.outcome.steps;
        resp.loads = r.outcome.memStats.loads;
        resp.stores = r.outcome.memStats.stores;
        if (req.wantOutput) {
            resp.output = r.outcome.output;
            resp.hasOutput = true;
        }
        if (r.hasDigest) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "fnv1a:%016" PRIx64,
                          r.digest);
            resp.traceDigest = buf;
        }
    }
    resp.totalNs = queueNs + (nowNs() - t0);
    metrics_.onCompleted(resp.verdict, resp.totalNs);
    return resp;
}

Response
Server::runNow(const Request &req)
{
    metrics_.onAccepted();
    return execute(req, 0);
}

bool
Server::submit(Request req, std::function<void(Response)> done)
{
    metrics_.onAccepted();
    uint64_t enqueuedAt = nowNs();
    return pool_.submit([this, req = std::move(req),
                         done = std::move(done), enqueuedAt] {
        uint64_t queueNs = nowNs() - enqueuedAt;
        Response resp = execute(req, queueNs);
        if (done)
            done(std::move(resp));
    });
}

void
Server::drain()
{
    pool_.drain();
}

int
Server::runBatch(std::istream &in, std::ostream &out)
{
    // Responses come back out of order; the batch contract is
    // input-order output, so park them in submission slots.
    auto slots = std::make_shared<std::vector<Response>>();
    auto mu = std::make_shared<std::mutex>();
    int malformed = 0;

    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        size_t index;
        {
            std::lock_guard<std::mutex> lock(*mu);
            index = slots->size();
            slots->emplace_back();
        }
        Request req;
        std::string err;
        if (!parseRequest(line, &req, &err)) {
            ++malformed;
            metrics_.onBadRequest();
            std::lock_guard<std::mutex> lock(*mu);
            (*slots)[index] = badRequest(
                "line-" + std::to_string(index + 1), err);
            continue;
        }
        if (req.op == Request::Op::Shutdown)
            break;
        submit(std::move(req), [slots, mu, index](Response r) {
            std::lock_guard<std::mutex> lock(*mu);
            (*slots)[index] = std::move(r);
        });
    }
    drain();
    for (const Response &r : *slots)
        out << r.render() << "\n";
    return malformed;
}

} // namespace cherisem::serve
