/**
 * @file
 * POSIX socket frontend for the Server: newline-delimited JSON over
 * a unix-domain or TCP socket.
 *
 * One accept loop; one reader thread per connection.  Responses are
 * written back as they complete — possibly out of request order,
 * which the protocol allows ("id" matches them up) — under a
 * per-connection write lock, and a connection that disappears
 * mid-flight just drops its remaining responses (writes are
 * MSG_NOSIGNAL, the callbacks keep the connection state alive).
 * A "shutdown" request stops the accept loop and returns from
 * serveForever().
 *
 * This is deliberately example-grade networking (the daemon in
 * examples/cherisem_serve.cpp); the library contract — and
 * everything CI exercises — is Server::runBatch, which needs no
 * sockets at all.
 */
#ifndef CHERISEM_SERVE_NET_H
#define CHERISEM_SERVE_NET_H

#include <string>

#include "serve/server.h"

namespace cherisem::serve {

/** A parsed --listen spec: "unix:/path/sock" or "tcp:PORT"
 *  (loopback only). */
struct ListenSpec
{
    enum class Kind { Unix, Tcp } kind = Kind::Unix;
    std::string path; ///< unix socket path
    uint16_t port = 0;

    /** Parse a spec; returns false and sets @p err on bad syntax. */
    static bool parse(const std::string &spec, ListenSpec *out,
                      std::string *err);
};

/** Bind, listen and serve until a shutdown request (or a fatal
 *  socket error).  Returns 0 on clean shutdown, nonzero + @p err on
 *  setup failure. */
int serveForever(Server &server, const ListenSpec &spec,
                 std::string *err);

} // namespace cherisem::serve

#endif // CHERISEM_SERVE_NET_H
