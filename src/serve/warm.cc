#include "serve/warm.h"

namespace cherisem::serve {

WarmPtr
WarmCache::lookup(uint64_t key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    return it->second.warm;
}

void
WarmCache::insert(uint64_t key, WarmPtr entry)
{
    if (capacity_ == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    if (map_.count(key))
        return;
    while (map_.size() >= capacity_) {
        uint64_t victim = lru_.back();
        lru_.pop_back();
        map_.erase(victim);
        ++evictions_;
    }
    lru_.push_front(key);
    map_.emplace(key, Entry{std::move(entry), lru_.begin()});
}

WarmCache::Stats
WarmCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return Stats{hits_, misses_, evictions_, map_.size(), capacity_};
}

void
WarmCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
}

} // namespace cherisem::serve
