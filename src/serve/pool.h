/**
 * @file
 * A bounded work queue + worker pool, the concurrency substrate for
 * the serving layer and the parallel fuzz campaigns.
 *
 * Deliberately minimal: tasks are type-erased closures, the queue
 * has a hard capacity (submit() blocks when full — backpressure
 * instead of unbounded memory under heavy traffic), and shutdown
 * drains what was accepted.  Per-task deadlines/cancellation live
 * inside the task (EvalOptions watchdog), not in the pool: a worker
 * is never killed, it always unwinds cleanly through the
 * interpreter's exception path, so no allocation in a worker's
 * MemoryModel can leak and no partial trace escapes.
 */
#ifndef CHERISEM_SERVE_POOL_H
#define CHERISEM_SERVE_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cherisem::serve {

class WorkerPool
{
  public:
    /** Start @p threads workers.  @p queueCapacity bounds the number
     *  of queued (not yet running) tasks. */
    explicit WorkerPool(unsigned threads, size_t queueCapacity = 256);
    /** Drains accepted work, then joins. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Enqueue @p task; blocks while the queue is full.  Returns
     *  false (task dropped) after shutdown() began. */
    bool submit(std::function<void()> task);

    /** Block until every accepted task has finished. */
    void drain();

    /** Stop accepting, finish accepted tasks, join the workers.
     *  Idempotent. */
    void shutdown();

    size_t queueDepth() const;
    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop();

    mutable std::mutex mu_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    size_t capacity_;
    unsigned running_ = 0; ///< tasks currently executing
    bool stopping_ = false;
};

} // namespace cherisem::serve

#endif // CHERISEM_SERVE_POOL_H
