#include "serve/exec.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>

#include "corelang/machine.h"
#include "corelang/vm.h"
#include "frontend/parser.h"
#include "obs/sinks.h"

namespace cherisem::serve {

namespace {

/** Same capacity as the fuzz differential harness: comfortably
 *  holds every suite program's full stream. */
constexpr size_t kDigestRingCapacity = 1 << 17;

uint64_t
digestEvents(const std::vector<obs::TraceEvent> &events,
             uint64_t dropped)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (const obs::TraceEvent &e : events) {
        std::string line = obs::renderEventJson(e);
        h = fnv1a(line.data(), line.size(), h);
        h = fnv1a("\n", 1, h);
    }
    // A wrapped ring digests only the retained suffix; fold the
    // drop count so a truncated stream can never collide with a
    // complete one.
    h = fnv1a(&dropped, sizeof dropped, h);
    return h;
}

/** The per-run evaluation options: profile defaults, engine
 *  override, and request budgets clamped to the server ceilings. */
corelang::EvalOptions
resolveOpts(const driver::Profile &profile, const RunSpec &spec,
            const ExecLimits &limits)
{
    corelang::EvalOptions opts = profile.evalOptions();
    if (spec.engineOverride >= 0)
        opts.engine =
            static_cast<corelang::Engine>(spec.engineOverride);
    uint64_t maxSteps =
        spec.maxSteps ? spec.maxSteps : limits.maxSteps;
    // A request may tighten the server's budget, never exceed it.
    opts.maxSteps = std::min(maxSteps, limits.maxSteps);
    uint64_t deadlineMs =
        spec.deadlineMs ? spec.deadlineMs : limits.deadlineMs;
    if (limits.deadlineMs)
        deadlineMs = std::min(deadlineMs, limits.deadlineMs);
    if (deadlineMs)
        opts.deadline = std::chrono::steady_clock::now() +
            std::chrono::milliseconds(deadlineMs);
    opts.cancel = limits.cancel;
    return opts;
}

std::unique_ptr<corelang::Machine>
makeEngine(const CompiledPtr &compiled,
           const corelang::EvalOptions &opts)
{
    if (opts.engine == corelang::Engine::Bytecode)
        return std::make_unique<corelang::Vm>(compiled->prog, opts,
                                              &compiled->module);
    return std::make_unique<corelang::Machine>(compiled->prog, opts);
}

} // namespace

std::string
ExecResult::summary() const
{
    if (frontendError)
        return "frontend-error " + frontendMessage;
    return outcome.summary();
}

CompiledPtr
compileFront(const std::string &source,
             const driver::Profile &profile, FrontCache *cache,
             ExecResult *result, const std::string &filename)
{
    uint64_t key = FrontCache::key(source, profile.name);
    if (cache) {
        if (CompiledPtr hit = cache->lookup(key)) {
            result->cacheHit = true;
            return hit;
        }
    }
    obs::Tracer noTrace; // front-half phases are timed, not traced
    auto compiled = std::make_shared<CompiledProgram>();
    try {
        std::optional<frontend::TranslationUnit> unit;
        {
            obs::ScopedPhaseTimer t(&compiled->frontPhases.parseNs,
                                    noTrace, "parse");
            unit = frontend::parse(source, filename);
        }
        ctype::MachineLayout machine{
            profile.memConfig.arch->capSize(),
            profile.memConfig.arch->addrBits() / 8};
        {
            obs::ScopedPhaseTimer t(&compiled->frontPhases.semaNs,
                                    noTrace, "sema");
            compiled->prog =
                sema::analyze(std::move(*unit), machine);
        }
        {
            obs::ScopedPhaseTimer t(
                &compiled->frontPhases.optimizeNs, noTrace,
                "optimize");
            compiled->optStats =
                corelang::optimize(compiled->prog, profile.optims);
        }
        {
            obs::ScopedPhaseTimer t(
                &compiled->frontPhases.compileNs, noTrace,
                "compile");
            compiled->module =
                corelang::compileProgram(compiled->prog);
        }
    } catch (const frontend::FrontendError &e) {
        result->frontendError = true;
        result->frontendMessage = e.str();
        return nullptr;
    } catch (const sema::SemaError &e) {
        result->frontendError = true;
        result->frontendMessage = e.str();
        return nullptr;
    }
    result->phases.parseNs = compiled->frontPhases.parseNs;
    result->phases.semaNs = compiled->frontPhases.semaNs;
    result->phases.optimizeNs = compiled->frontPhases.optimizeNs;
    result->phases.compileNs = compiled->frontPhases.compileNs;
    CompiledPtr out = compiled;
    if (cache)
        cache->insert(key, out);
    return out;
}

void
runCompiled(const CompiledPtr &compiled,
            const driver::Profile &profile, const RunSpec &spec,
            const ExecLimits &limits, ExecResult *result)
{
    corelang::EvalOptions opts = resolveOpts(profile, spec, limits);

    obs::RingBufferSink ring(kDigestRingCapacity);
    if (spec.traceDigest)
        opts.memConfig.traceSink = &ring;

    {
        obs::Tracer noTrace;
        obs::ScopedPhaseTimer t(&result->phases.evalNs, noTrace,
                                "evaluate");
        if (opts.engine == corelang::Engine::Bytecode) {
            corelang::Vm vm(compiled->prog, opts,
                            &compiled->module);
            result->outcome = vm.run();
        } else {
            corelang::Machine machine(compiled->prog, opts);
            result->outcome = machine.run();
        }
    }
    if (spec.traceDigest) {
        result->digest = digestEvents(ring.snapshot(), ring.dropped());
        result->hasDigest = true;
    }
}

ExecResult
runRequest(const std::string &source, const driver::Profile &profile,
           const RunSpec &spec, const ExecLimits &limits,
           FrontCache *cache)
{
    ExecResult result;
    CompiledPtr compiled =
        compileFront(source, profile, cache, &result);
    if (!compiled)
        return result;
    runCompiled(compiled, profile, spec, limits, &result);
    return result;
}

void
runCompiledWarm(const CompiledPtr &compiled,
                const driver::Profile &profile, const RunSpec &spec,
                const ExecLimits &limits, uint64_t warmKey,
                WarmCache *warm, ExecResult *result)
{
    WarmPtr entry = warm ? warm->lookup(warmKey) : nullptr;

    if (entry && !entry->terminal) {
        // A snapshot only reproduces a cold run bit-for-bit when the
        // cold run would actually get through the prelude.  A step
        // budget the prelude already exceeds, or a digest over a
        // wrapped (lossy) recording, cannot be served warm.
        uint64_t maxSteps =
            spec.maxSteps ? spec.maxSteps : limits.maxSteps;
        maxSteps = std::min(maxSteps, limits.maxSteps);
        bool budgetTooTight = entry->snap->steps > maxSteps;
        bool lossyDigest =
            spec.traceDigest && entry->preludeDropped > 0;
        if (budgetTooTight || lossyDigest) {
            runCompiled(compiled, profile, spec, limits, result);
            return;
        }
    }

    corelang::EvalOptions opts = resolveOpts(profile, spec, limits);
    obs::Tracer noTrace;
    obs::ScopedPhaseTimer t(&result->phases.evalNs, noTrace,
                            "evaluate");

    if (!entry) {
        // First request for this program: pay the prelude once,
        // capture the fork point, and serve this request from the
        // machine that just ran it (exactly a cold run).
        result->warmBuild = true;
        obs::RingBufferSink ring(kDigestRingCapacity);
        corelang::EvalOptions bopts = opts;
        bopts.memConfig.traceSink = &ring;
        std::unique_ptr<corelang::Machine> m =
            makeEngine(compiled, bopts);
        std::optional<corelang::Outcome> pre = m->runPrelude();
        auto built = std::make_shared<WarmEntry>();
        built->preludeEvents = ring.snapshot();
        built->preludeDropped = ring.dropped();
        if (pre) {
            built->terminal = true;
            built->preludeOutcome = *pre;
        } else {
            built->snap = m->capture();
        }
        // Wall-clock/cancel exhaustion is not a property of the
        // program; deterministic step exhaustion would be, but the
        // distinction lives in a message string, so neither is
        // cached — a retry rebuilds deterministically.
        bool exhausted = pre &&
            pre->kind == corelang::Outcome::Kind::ResourceExhausted;
        if (!exhausted && warm)
            warm->insert(warmKey, built);
        result->outcome = pre ? *pre : m->runMain();
        if (spec.traceDigest) {
            result->digest =
                digestEvents(ring.snapshot(), ring.dropped());
            result->hasDigest = true;
        }
        return;
    }

    result->warmHit = true;
    if (entry->terminal) {
        result->outcome = entry->preludeOutcome;
        if (spec.traceDigest) {
            result->digest = digestEvents(entry->preludeEvents,
                                          entry->preludeDropped);
            result->hasDigest = true;
        }
        return;
    }

    // Fork: fresh engine, O(pages-touched) restore, replay the
    // recorded prelude stream (sequence numbers restart per sink, so
    // the replayed events are byte-identical to a cold prefix), then
    // run only main().
    obs::RingBufferSink ring(kDigestRingCapacity);
    if (spec.traceDigest)
        opts.memConfig.traceSink = &ring;
    std::unique_ptr<corelang::Machine> m = makeEngine(compiled, opts);
    m->restoreSnapshot(entry->snap);
    if (spec.traceDigest)
        for (const obs::TraceEvent &e : entry->preludeEvents)
            ring.emit(e);
    result->outcome = m->runMain();
    if (spec.traceDigest) {
        result->digest = digestEvents(ring.snapshot(), ring.dropped());
        result->hasDigest = true;
    }
}

ExecResult
runRequestWarm(const std::string &preludeSource,
               const std::string &source,
               const driver::Profile &profile, const RunSpec &spec,
               const ExecLimits &limits, FrontCache *cache,
               WarmCache *warm)
{
    ExecResult result;
    std::string combined = preludeSource;
    combined.push_back('\n');
    combined += source;
    CompiledPtr compiled =
        compileFront(combined, profile, cache, &result, "<warm>");
    if (!compiled)
        return result;
    uint64_t warmKey = FrontCache::key(combined, profile.name);
    runCompiledWarm(compiled, profile, spec, limits, warmKey, warm,
                    &result);
    return result;
}

} // namespace cherisem::serve
