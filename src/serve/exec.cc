#include "serve/exec.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "corelang/machine.h"
#include "corelang/vm.h"
#include "frontend/parser.h"
#include "obs/sinks.h"

namespace cherisem::serve {

namespace {

/** Same capacity as the fuzz differential harness: comfortably
 *  holds every suite program's full stream. */
constexpr size_t kDigestRingCapacity = 1 << 17;

uint64_t
digestEvents(const obs::RingBufferSink &ring)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (const obs::TraceEvent &e : ring.snapshot()) {
        std::string line = obs::renderEventJson(e);
        h = fnv1a(line.data(), line.size(), h);
        h = fnv1a("\n", 1, h);
    }
    // A wrapped ring digests only the retained suffix; fold the
    // drop count so a truncated stream can never collide with a
    // complete one.
    uint64_t dropped = ring.dropped();
    h = fnv1a(&dropped, sizeof dropped, h);
    return h;
}

} // namespace

std::string
ExecResult::summary() const
{
    if (frontendError)
        return "frontend-error " + frontendMessage;
    return outcome.summary();
}

CompiledPtr
compileFront(const std::string &source,
             const driver::Profile &profile, FrontCache *cache,
             ExecResult *result, const std::string &filename)
{
    uint64_t key = FrontCache::key(source, profile.name);
    if (cache) {
        if (CompiledPtr hit = cache->lookup(key)) {
            result->cacheHit = true;
            return hit;
        }
    }
    obs::Tracer noTrace; // front-half phases are timed, not traced
    auto compiled = std::make_shared<CompiledProgram>();
    try {
        std::optional<frontend::TranslationUnit> unit;
        {
            obs::ScopedPhaseTimer t(&compiled->frontPhases.parseNs,
                                    noTrace, "parse");
            unit = frontend::parse(source, filename);
        }
        ctype::MachineLayout machine{
            profile.memConfig.arch->capSize(),
            profile.memConfig.arch->addrBits() / 8};
        {
            obs::ScopedPhaseTimer t(&compiled->frontPhases.semaNs,
                                    noTrace, "sema");
            compiled->prog =
                sema::analyze(std::move(*unit), machine);
        }
        {
            obs::ScopedPhaseTimer t(
                &compiled->frontPhases.optimizeNs, noTrace,
                "optimize");
            compiled->optStats =
                corelang::optimize(compiled->prog, profile.optims);
        }
        {
            obs::ScopedPhaseTimer t(
                &compiled->frontPhases.compileNs, noTrace,
                "compile");
            compiled->module =
                corelang::compileProgram(compiled->prog);
        }
    } catch (const frontend::FrontendError &e) {
        result->frontendError = true;
        result->frontendMessage = e.str();
        return nullptr;
    } catch (const sema::SemaError &e) {
        result->frontendError = true;
        result->frontendMessage = e.str();
        return nullptr;
    }
    result->phases.parseNs = compiled->frontPhases.parseNs;
    result->phases.semaNs = compiled->frontPhases.semaNs;
    result->phases.optimizeNs = compiled->frontPhases.optimizeNs;
    result->phases.compileNs = compiled->frontPhases.compileNs;
    CompiledPtr out = compiled;
    if (cache)
        cache->insert(key, out);
    return out;
}

void
runCompiled(const CompiledPtr &compiled,
            const driver::Profile &profile, const RunSpec &spec,
            const ExecLimits &limits, ExecResult *result)
{
    corelang::EvalOptions opts = profile.evalOptions();
    if (spec.engineOverride >= 0)
        opts.engine =
            static_cast<corelang::Engine>(spec.engineOverride);
    uint64_t maxSteps =
        spec.maxSteps ? spec.maxSteps : limits.maxSteps;
    // A request may tighten the server's budget, never exceed it.
    opts.maxSteps = std::min(maxSteps, limits.maxSteps);
    uint64_t deadlineMs =
        spec.deadlineMs ? spec.deadlineMs : limits.deadlineMs;
    if (limits.deadlineMs)
        deadlineMs = std::min(deadlineMs, limits.deadlineMs);
    if (deadlineMs)
        opts.deadline = std::chrono::steady_clock::now() +
            std::chrono::milliseconds(deadlineMs);
    opts.cancel = limits.cancel;

    obs::RingBufferSink ring(kDigestRingCapacity);
    if (spec.traceDigest)
        opts.memConfig.traceSink = &ring;

    {
        obs::Tracer noTrace;
        obs::ScopedPhaseTimer t(&result->phases.evalNs, noTrace,
                                "evaluate");
        if (opts.engine == corelang::Engine::Bytecode) {
            corelang::Vm vm(compiled->prog, opts,
                            &compiled->module);
            result->outcome = vm.run();
        } else {
            corelang::Machine machine(compiled->prog, opts);
            result->outcome = machine.run();
        }
    }
    if (spec.traceDigest) {
        result->digest = digestEvents(ring);
        result->hasDigest = true;
    }
}

ExecResult
runRequest(const std::string &source, const driver::Profile &profile,
           const RunSpec &spec, const ExecLimits &limits,
           FrontCache *cache)
{
    ExecResult result;
    CompiledPtr compiled =
        compileFront(source, profile, cache, &result);
    if (!compiled)
        return result;
    runCompiled(compiled, profile, spec, limits, &result);
    return result;
}

} // namespace cherisem::serve
