/**
 * @file
 * The top-level facade: source in, Outcome out.
 *
 * This is the library's quickstart entry point — everything the
 * examples and the test/bench harnesses use:
 *
 *     auto result = driver::runSource(src, driver::referenceProfile());
 *     if (result.outcome.kind == corelang::Outcome::Kind::Undefined)
 *         ... result.outcome.failure ...
 */
#ifndef CHERISEM_DRIVER_INTERPRETER_H
#define CHERISEM_DRIVER_INTERPRETER_H

#include <string>

#include "corelang/optimize.h"
#include "driver/profiles.h"
#include "obs/metrics.h"

namespace cherisem::driver {

struct RunResult
{
    /** True when the program failed to lex/parse/typecheck. */
    bool frontendError = false;
    std::string frontendMessage;
    corelang::Outcome outcome;
    corelang::OptimizeStats optStats;
    /** Wall-clock time per pipeline phase (always collected; also
     *  emitted as Phase events when the profile has a trace sink). */
    obs::PhaseTimings phases;

    /** "exit 0" / "ub UB_CHERI_..." / "frontend-error ...". */
    std::string summary() const;
};

/** Parse, analyse, (optionally) optimise, and run @p source under
 *  @p profile. */
RunResult runSource(const std::string &source, const Profile &profile,
                    const std::string &filename = "<input>");

} // namespace cherisem::driver

#endif // CHERISEM_DRIVER_INTERPRETER_H
