#include "driver/suite.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifndef CHERISEM_SOURCE_DIR
#define CHERISEM_SOURCE_DIR "."
#endif

namespace cherisem::driver {

namespace fs = std::filesystem;

const std::string &
SuiteTest::expectationFor(const std::string &profile) const
{
    auto it = expectations.find(profile);
    if (it != expectations.end())
        return it->second;
    static const std::string empty;
    auto d = expectations.find("");
    return d != expectations.end() ? d->second : empty;
}

namespace {

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

} // namespace

SuiteTest
parseSuiteTest(const std::string &path, const std::string &source)
{
    SuiteTest t;
    t.path = path;
    t.name = fs::path(path).stem().string();
    t.source = source;

    std::istringstream in(source);
    std::string line;
    while (std::getline(in, line)) {
        size_t pos = line.find("// @");
        if (pos == std::string::npos)
            continue;
        std::string rest = line.substr(pos + 4);
        if (rest.rfind("CATEGORY:", 0) == 0) {
            t.category = trim(rest.substr(9));
        } else if (rest.rfind("EXPECT[", 0) == 0) {
            size_t close = rest.find(']');
            if (close == std::string::npos)
                continue;
            std::string profile = rest.substr(7, close - 7);
            size_t colon = rest.find(':', close);
            if (colon == std::string::npos)
                continue;
            t.expectations[profile] = trim(rest.substr(colon + 1));
        } else if (rest.rfind("EXPECT:", 0) == 0) {
            t.expectations[""] = trim(rest.substr(7));
        } else if (rest.rfind("OUTPUT:", 0) == 0) {
            std::string out = rest.substr(7);
            if (!out.empty() && out[0] == ' ')
                out.erase(0, 1);
            t.expectedOutput.push_back(out);
        }
    }
    return t;
}

std::vector<SuiteTest>
loadSuite(const std::string &dir)
{
    std::vector<SuiteTest> out;
    if (!fs::exists(dir))
        return out;
    std::vector<fs::path> files;
    for (const auto &entry : fs::recursive_directory_iterator(dir)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".c") {
            files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());
    for (const fs::path &p : files) {
        std::ifstream f(p);
        std::stringstream ss;
        ss << f.rdbuf();
        out.push_back(parseSuiteTest(p.string(), ss.str()));
    }
    return out;
}

std::string
defaultSuiteDir()
{
    return std::string(CHERISEM_SOURCE_DIR) + "/tests/suite";
}

bool
outcomeMatches(const corelang::Outcome &outcome,
               const std::string &expectation)
{
    using Kind = corelang::Outcome::Kind;
    std::istringstream in(expectation);
    std::string head;
    in >> head;
    if (head == "exit") {
        int code = 0;
        in >> code;
        return outcome.kind == Kind::Exit && outcome.exitCode == code;
    }
    if (head == "ub") {
        if (outcome.kind != Kind::Undefined)
            return false;
        std::string name;
        in >> name;
        return name.empty() || name == mem::ubName(outcome.failure.ub);
    }
    if (head == "assert-fail")
        return outcome.kind == Kind::AssertFail;
    if (head == "error")
        return outcome.kind == Kind::Error;
    if (head == "resource-exhausted")
        return outcome.kind == Kind::ResourceExhausted;
    return false;
}

std::string
checkTest(const SuiteTest &test, const Profile &profile)
{
    const std::string &expect = test.expectationFor(profile.name);
    if (expect.empty())
        return "no expectation for test " + test.name;
    RunResult r = runSource(test.source, profile, test.name + ".c");
    if (r.frontendError)
        return test.name + ": " + r.frontendMessage;
    if (!outcomeMatches(r.outcome, expect)) {
        return test.name + " [" + profile.name + "]: expected '" +
            expect + "', got '" + r.outcome.summary() + "'" +
            (r.outcome.kind == corelang::Outcome::Kind::Error
                 ? " (" + r.outcome.message + ")"
                 : "");
    }
    // Exact output matching only against the reference profile.
    if (!test.expectedOutput.empty() &&
        profile.name == referenceProfile().name) {
        std::istringstream got(r.outcome.output);
        std::string line;
        size_t i = 0;
        while (std::getline(got, line)) {
            if (i >= test.expectedOutput.size()) {
                return test.name + ": more output than expected: '" +
                    line + "'";
            }
            if (line != test.expectedOutput[i]) {
                return test.name + ": output line " +
                    std::to_string(i + 1) + " mismatch:\n  expected: " +
                    test.expectedOutput[i] + "\n  got:      " + line;
            }
            ++i;
        }
        if (i != test.expectedOutput.size())
            return test.name + ": missing output lines";
    }
    return "";
}

} // namespace cherisem::driver
