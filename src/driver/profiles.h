/**
 * @file
 * Implementation profiles: the axes on which the CHERI C
 * implementations compared in section 5 of the paper observably
 * differ, packaged as configurations of the same executable
 * semantics.
 *
 *  - "cerberus"             the abstract reference semantics (ghost
 *                           state, PNVI checks, strict ISO pointer
 *                           arithmetic, uninitialised reads flagged);
 *  - "clang-morello-O0/-O2" concrete Morello hardware semantics with
 *                           a high stack (Appendix A address range),
 *                           deterministic tag clearing, and — at O2 —
 *                           the section 3 optimisation passes;
 *  - "clang-riscv-O0/-O2"   the same on the CHERI-RISC-V address
 *                           layout;
 *  - "gcc-morello-O0/-O2"   a low-address allocator (< 2^31), which
 *                           is why the paper's Appendix A bitwise test
 *                           shows no invalidation under GCC;
 *  - "cerberus-cheriot"     the reference semantics over the 64-bit
 *                           CHERIoT-style capability format
 *                           (section 3.10 portability).
 */
#ifndef CHERISEM_DRIVER_PROFILES_H
#define CHERISEM_DRIVER_PROFILES_H

#include <string>
#include <vector>

#include "cap/cap_format.h"
#include "corelang/eval.h"
#include "corelang/optimize.h"

namespace cherisem::driver {

struct Profile
{
    std::string name;
    std::string description;
    mem::MemoryModel::Config memConfig;
    corelang::OptimizeOptions optims;
    cap::FormatStyle capFormat = cap::FormatStyle::Abstract;
    bool printProvenance = true;
    /** Execution engine (observationally identical either way). */
    corelang::Engine engine = corelang::Engine::Tree;

    corelang::EvalOptions
    evalOptions() const
    {
        corelang::EvalOptions o;
        o.memConfig = memConfig;
        o.capFormat = capFormat;
        o.printProvenance = printProvenance;
        o.engine = engine;
        return o;
    }
};

/** All built-in profiles, reference first. */
const std::vector<Profile> &allProfiles();

/** Find by name; nullptr when unknown. */
const Profile *findProfile(const std::string &name);

/** The reference (Cerberus-style) profile. */
const Profile &referenceProfile();

} // namespace cherisem::driver

#endif // CHERISEM_DRIVER_PROFILES_H
