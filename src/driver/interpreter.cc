#include "driver/interpreter.h"

#include <optional>

#include "frontend/parser.h"
#include "sema/sema.h"

namespace cherisem::driver {

std::string
RunResult::summary() const
{
    if (frontendError)
        return "frontend-error " + frontendMessage;
    return outcome.summary();
}

RunResult
runSource(const std::string &source, const Profile &profile,
          const std::string &filename)
{
    RunResult result;
    obs::Tracer tracer(profile.memConfig.traceSink);
    try {
        std::optional<frontend::TranslationUnit> unit;
        {
            obs::ScopedPhaseTimer t(&result.phases.parseNs, tracer,
                                    "parse");
            unit = frontend::parse(source, filename);
        }
        ctype::MachineLayout machine{
            profile.memConfig.arch->capSize(),
            profile.memConfig.arch->addrBits() / 8};
        std::optional<sema::Program> prog;
        {
            obs::ScopedPhaseTimer t(&result.phases.semaNs, tracer,
                                    "sema");
            prog = sema::analyze(std::move(*unit), machine);
        }
        {
            obs::ScopedPhaseTimer t(&result.phases.optimizeNs, tracer,
                                    "optimize");
            result.optStats =
                corelang::optimize(*prog, profile.optims);
        }
        {
            obs::ScopedPhaseTimer t(&result.phases.evalNs, tracer,
                                    "evaluate");
            result.outcome =
                corelang::evaluate(*prog, profile.evalOptions());
        }
    } catch (const frontend::FrontendError &e) {
        result.frontendError = true;
        result.frontendMessage = e.str();
    } catch (const sema::SemaError &e) {
        result.frontendError = true;
        result.frontendMessage = e.str();
    }
    return result;
}

} // namespace cherisem::driver
