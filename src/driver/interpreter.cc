#include "driver/interpreter.h"

#include "frontend/parser.h"
#include "sema/sema.h"

namespace cherisem::driver {

std::string
RunResult::summary() const
{
    if (frontendError)
        return "frontend-error " + frontendMessage;
    return outcome.summary();
}

RunResult
runSource(const std::string &source, const Profile &profile,
          const std::string &filename)
{
    RunResult result;
    try {
        frontend::TranslationUnit unit =
            frontend::parse(source, filename);
        ctype::MachineLayout machine{
            profile.memConfig.arch->capSize(),
            profile.memConfig.arch->addrBits() / 8};
        sema::Program prog =
            sema::analyze(std::move(unit), machine);
        result.optStats = corelang::optimize(prog, profile.optims);
        result.outcome =
            corelang::evaluate(prog, profile.evalOptions());
    } catch (const frontend::FrontendError &e) {
        result.frontendError = true;
        result.frontendMessage = e.str();
    } catch (const sema::SemaError &e) {
        result.frontendError = true;
        result.frontendMessage = e.str();
    }
    return result;
}

} // namespace cherisem::driver
