#include "driver/profiles.h"

#include "cap/cc64.h"
#include "cap/cc128.h"

namespace cherisem::driver {

namespace {

Profile
makeCerberus()
{
    Profile p;
    p.name = "cerberus";
    p.description =
        "reference executable semantics (ghost state, PNVI-ae-udi)";
    p.memConfig.arch = &cap::morello();
    p.memConfig.ghostState = true;
    p.memConfig.checkProvenance = true;
    p.memConfig.readUninitIsUb = true;
    p.memConfig.strictPtrArith = true;
    // Even the reference semantics runs on the paged store; the map
    // store is only the equivalence-test oracle.
    p.memConfig.storeBackend = mem::StoreBackend::Paged;
    // Appendix A shows Cerberus stack addresses around 0xffffe6dc.
    p.memConfig.globalBase = 0x00010000;
    p.memConfig.heapBase = 0x01000000;
    p.memConfig.stackBase = 0xffffe700;
    p.memConfig.codeBase = 0x00001000;
    p.capFormat = cap::FormatStyle::Abstract;
    p.printProvenance = true;
    return p;
}

Profile
makeHardware(const std::string &name, const std::string &desc,
             uint64_t stack, uint64_t heap, uint64_t globals,
             bool optimized)
{
    Profile p;
    p.name = name;
    p.description = desc;
    p.memConfig.arch = &cap::morello();
    p.memConfig.ghostState = false;
    p.memConfig.checkProvenance = false;
    p.memConfig.readUninitIsUb = false;
    // Hardware checks happen at access time; out-of-bounds pointer
    // *construction* only clears tags via representability.
    p.memConfig.strictPtrArith = false;
    p.memConfig.storeBackend = mem::StoreBackend::Paged;
    p.memConfig.stackBase = stack;
    p.memConfig.heapBase = heap;
    p.memConfig.globalBase = globals;
    p.memConfig.codeBase = 0x0000000000100000ull;
    p.capFormat = cap::FormatStyle::Concrete;
    p.printProvenance = false;
    if (optimized) {
        p.optims.foldTransientArith = true;
        p.optims.elideIdentityWrites = true;
        p.optims.loopsToMemcpy = true;
    }
    return p;
}

Profile
makeCheriot()
{
    Profile p = makeCerberus();
    p.name = "cerberus-cheriot";
    p.description =
        "reference semantics over the CHERIoT-style 64-bit "
        "capability format";
    p.memConfig.arch = &cap::cheriot();
    p.memConfig.globalBase = 0x00010000;
    p.memConfig.heapBase = 0x00100000;
    p.memConfig.stackBase = 0x7ffff000;
    p.memConfig.codeBase = 0x00001000;
    return p;
}

std::vector<Profile>
makeAll()
{
    std::vector<Profile> out;
    out.push_back(makeCerberus());
    // Address ranges echo the Appendix A output: Morello stacks near
    // 0xfffffff7ffxx, CHERI-RISC-V near 0x3fffdfffxx, GCC below 2^31.
    out.push_back(makeHardware(
        "clang-morello-O0", "concrete Morello semantics, unoptimised",
        0xfffffff7ff70ull, 0x0000004000000000ull,
        0x0000000000200000ull, false));
    out.push_back(makeHardware(
        "clang-morello-O2",
        "concrete Morello semantics with optimisation passes",
        0xfffffff7ff30ull, 0x0000004000000000ull,
        0x0000000000200000ull, true));
    out.push_back(makeHardware(
        "clang-riscv-O0",
        "concrete CHERI-RISC-V semantics, unoptimised",
        0x0000003fffdfff80ull, 0x0000002000000000ull,
        0x0000000000200000ull, false));
    out.push_back(makeHardware(
        "clang-riscv-O2",
        "concrete CHERI-RISC-V semantics with optimisation passes",
        0x0000003fffdfff00ull, 0x0000002000000000ull,
        0x0000000000200000ull, true));
    out.push_back(makeHardware(
        "gcc-morello-O0",
        "concrete semantics with GCC's low-address allocator",
        0x000000007fffffd0ull, 0x0000000001000000ull,
        0x0000000000200000ull, false));
    out.push_back(makeHardware(
        "gcc-morello-O2",
        "GCC low-address allocator with optimisation passes",
        0x000000007fffff90ull, 0x0000000001000000ull,
        0x0000000000200000ull, true));
    out.push_back(makeCheriot());
    // Extension profiles (sections 3.8, 5.4, 7).
    Profile sub = makeHardware(
        "clang-morello-subobject-safe",
        "Morello with opt-in sub-object bounds narrowing",
        0xfffffff7ffb0ull, 0x0000004000000000ull,
        0x0000000000200000ull, false);
    sub.memConfig.subobjectBounds = true;
    out.push_back(sub);
    Profile tmp = makeHardware(
        "cheriot-temporal",
        "CHERIoT-style core with eager revocation on free (temporal "
        "safety)",
        0x7ffff000ull, 0x00100000ull, 0x00010000ull, false);
    tmp.memConfig.arch = &cap::cheriot();
    tmp.memConfig.codeBase = 0x1000;
    tmp.memConfig.revoke.policy = revoke::RevokePolicy::Eager;
    out.push_back(tmp);
    // Same temporal-safety semantics, but frees are quarantined and
    // swept in batched epochs (src/revoke/).  Differs from
    // cheriot-temporal only in *when* stale tags die — the fuzzer's
    // documented eager-vs-quarantine divergence axis.
    Profile quar = tmp;
    quar.name = "cheriot-temporal-quarantine";
    quar.description =
        "CHERIoT-style core with quarantine + batched epoch "
        "revocation sweeps";
    quar.memConfig.revoke.policy = revoke::RevokePolicy::Quarantine;
    quar.memConfig.revoke.quarantineMaxBytes = 4096;
    quar.memConfig.revoke.quarantineMaxRegions = 8;
    out.push_back(quar);
    return out;
}

} // namespace

const std::vector<Profile> &
allProfiles()
{
    // const + magic-static init: immutable and data-race-free under
    // concurrent first use (the serving layer's workers all call
    // findProfile()).
    static const std::vector<Profile> profiles = makeAll();
    return profiles;
}

const Profile *
findProfile(const std::string &name)
{
    for (const Profile &p : allProfiles()) {
        if (p.name == name)
            return &p;
    }
    return nullptr;
}

const Profile &
referenceProfile()
{
    return allProfiles().front();
}

} // namespace cherisem::driver
