/**
 * @file
 * The annotated test corpus - the paper Table 1 suite.
 *
 * Each file in tests/suite carries structured comments:
 *
 *     // @CATEGORY: Arithmetic operations on (u)intptr_t values
 *     // @EXPECT: ub UB_CHERI_BoundsViolation
 *     // @EXPECT[clang-morello-O0]: exit 0
 *     // @OUTPUT: cap (@2, 0xffffe6dc [rwRW...])
 *
 * @EXPECT without a profile tag is the reference (cerberus)
 * expectation and the default for every other profile unless
 * overridden.  @OUTPUT lines, when present, must match the reference
 * run's output exactly, line by line.
 */
#ifndef CHERISEM_DRIVER_SUITE_H
#define CHERISEM_DRIVER_SUITE_H

#include <map>
#include <string>
#include <vector>

#include "driver/interpreter.h"

namespace cherisem::driver {

struct SuiteTest
{
    std::string name;     ///< file stem
    std::string path;
    std::string category; ///< Table 1 category
    std::string source;
    /** profile name ("" = default/reference) -> expectation. */
    std::map<std::string, std::string> expectations;
    std::vector<std::string> expectedOutput;

    /** Expectation applying to @p profile. */
    const std::string &expectationFor(const std::string &profile) const;
};

/** Parse one test file's annotations. */
SuiteTest parseSuiteTest(const std::string &path,
                         const std::string &source);

/** Load every .c file under @p dir (sorted by name). */
std::vector<SuiteTest> loadSuite(const std::string &dir);

/** The source-tree suite directory baked in at configure time. */
std::string defaultSuiteDir();

/** Does @p outcome satisfy @p expectation?
 *  Grammar: "exit N" | "ub [NAME]" | "assert-fail" | "error". */
bool outcomeMatches(const corelang::Outcome &outcome,
                    const std::string &expectation);

/** Run @p test under @p profile and check expectation (+ output for
 *  the reference profile).  Returns an empty string on success or a
 *  human-readable mismatch description. */
std::string checkTest(const SuiteTest &test, const Profile &profile);

} // namespace cherisem::driver

#endif // CHERISEM_DRIVER_SUITE_H
