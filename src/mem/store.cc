/**
 * @file
 * The two AbstractStore backends: the reference MapStore (the paper's
 * literal B and C maps) and the PagedStore the profiles run on.
 */
#include "mem/store.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

namespace cherisem::mem {

namespace {

/** The section 3.5 transition on one recorded slot; true when the
 *  slot actually changed (for the invalidation counters). */
bool
applyInvalidation(CapMeta &m, bool ghost)
{
    if (!m.tag && !m.ghost.tagUnspec)
        return false;
    if (ghost) {
        // Abstract semantics: a representation write over a set tag
        // makes the tag *unspecified*, so optimisations that elide
        // the write stay sound.
        m.ghost.tagUnspec = true;
    } else {
        // Hardware view: the tag is deterministically cleared.
        m.tag = false;
        m.ghost = cap::GhostState{};
    }
    return true;
}

/** Bits [lo, hi) of one 64-bit word, 0 <= lo < hi <= 64. */
uint64_t
wordMask(unsigned lo, unsigned hi)
{
    uint64_t m = ~uint64_t(0) << lo;
    if (hi < 64)
        m &= (uint64_t(1) << hi) - 1;
    return m;
}

bool
bitTest(const uint64_t *ws, unsigned i)
{
    return (ws[i / 64] >> (i % 64)) & 1;
}

void
bitSet(uint64_t *ws, unsigned i)
{
    ws[i / 64] |= uint64_t(1) << (i % 64);
}

void
bitClear(uint64_t *ws, unsigned i)
{
    ws[i / 64] &= ~(uint64_t(1) << (i % 64));
}

void
maskSet(uint64_t *ws, unsigned lo, unsigned hi)
{
    while (lo < hi) {
        unsigned b = lo % 64;
        unsigned take = std::min(hi - lo, 64 - b);
        ws[lo / 64] |= wordMask(b, b + take);
        lo += take;
    }
}

void
maskClear(uint64_t *ws, unsigned lo, unsigned hi)
{
    while (lo < hi) {
        unsigned b = lo % 64;
        unsigned take = std::min(hi - lo, 64 - b);
        ws[lo / 64] &= ~wordMask(b, b + take);
        lo += take;
    }
}

/** All bits of [lo, hi) set? */
bool
maskAll(const uint64_t *ws, unsigned lo, unsigned hi)
{
    while (lo < hi) {
        unsigned b = lo % 64;
        unsigned take = std::min(hi - lo, 64 - b);
        uint64_t m = wordMask(b, b + take);
        if ((ws[lo / 64] & m) != m)
            return false;
        lo += take;
    }
    return true;
}

/** No bit of [lo, hi) set? */
bool
maskNone(const uint64_t *ws, unsigned lo, unsigned hi)
{
    while (lo < hi) {
        unsigned b = lo % 64;
        unsigned take = std::min(hi - lo, 64 - b);
        if (ws[lo / 64] & wordMask(b, b + take))
            return false;
        lo += take;
    }
    return true;
}

/** Drop every heavy byte of page offsets [lo, hi).  Template so the
 *  private Page type stays private (deduced, never named). */
template <typename PageT>
void
clearHeavy(PageT &p, unsigned lo, unsigned hi)
{
    if (maskNone(p.heavy, lo, hi))
        return;
    auto it = p.heavyBytes.lower_bound(static_cast<uint16_t>(lo));
    while (it != p.heavyBytes.end() && it->first < hi)
        it = p.heavyBytes.erase(it);
    maskClear(p.heavy, lo, hi);
}

} // namespace

// ---------------------------------------------------------------------
// MapStore.
// ---------------------------------------------------------------------

bool
MapStore::readScalarClean(uint64_t addr, unsigned n, uint8_t *out) const
{
    auto it = bytes_.lower_bound(addr);
    for (unsigned i = 0; i < n; ++i, ++it) {
        if (it == bytes_.end() || it->first != addr + i)
            return false;
        const AbsByte &b = it->second;
        if (!b.value || !b.prov.isEmpty() || b.index)
            return false;
        out[i] = *b.value;
    }
    ++stats_.rangeReads;
    stats_.bytesRead += n;
    return true;
}

void
MapStore::readBytes(uint64_t addr, uint64_t n, AbsByte *out) const
{
    ++stats_.rangeReads;
    stats_.bytesRead += n;
    uint64_t end = rangeEnd(addr, n);
    for (uint64_t i = 0; i < n; ++i)
        out[i] = AbsByte{};
    for (auto it = bytes_.lower_bound(addr);
         it != bytes_.end() && it->first < end; ++it) {
        out[it->first - addr] = it->second;
    }
}

void
MapStore::writeBytes(uint64_t addr, const AbsByte *src, uint64_t n)
{
    ++stats_.rangeWrites;
    stats_.bytesWritten += n;
    for (uint64_t i = 0; i < n; ++i)
        bytes_[addr + i] = src[i];
}

void
MapStore::fillRange(uint64_t addr, uint64_t n, const AbsByte &b)
{
    ++stats_.rangeFills;
    stats_.bytesWritten += n;
    for (uint64_t i = 0; i < n; ++i)
        bytes_[addr + i] = b;
}

void
MapStore::clearRange(uint64_t addr, uint64_t n)
{
    uint64_t end = rangeEnd(addr, n);
    bytes_.erase(bytes_.lower_bound(addr), bytes_.lower_bound(end));
}

void
MapStore::copyRange(uint64_t dst, uint64_t src, uint64_t n)
{
    ++stats_.rangeCopies;
    stats_.bytesCopied += n;
    // Stage through a temporary: overlap-safe in either direction.
    std::vector<AbsByte> tmp(n);
    uint64_t end = rangeEnd(src, n);
    for (auto it = bytes_.lower_bound(src);
         it != bytes_.end() && it->first < end; ++it) {
        tmp[it->first - src] = it->second;
    }
    for (uint64_t i = 0; i < n; ++i)
        bytes_[dst + i] = tmp[i];
}

std::optional<CapMeta>
MapStore::capMetaAt(uint64_t slot) const
{
    assert(slot % capSize_ == 0);
    ++stats_.capMetaReads;
    auto it = capMeta_.find(slot);
    if (it == capMeta_.end())
        return std::nullopt;
    return it->second;
}

void
MapStore::setCapMeta(uint64_t slot, const CapMeta &m)
{
    assert(slot % capSize_ == 0);
    ++stats_.capMetaWrites;
    capMeta_[slot] = m;
}

void
MapStore::eraseCapMeta(uint64_t slot)
{
    assert(slot % capSize_ == 0);
    ++stats_.capMetaWrites;
    capMeta_.erase(slot);
}

uint64_t
MapStore::invalidateCapRange(uint64_t addr, uint64_t n, bool ghost)
{
    uint64_t first = addr / capSize_ * capSize_;
    uint64_t end = rangeEnd(addr, n);
    uint64_t count = 0;
    for (auto it = capMeta_.lower_bound(first);
         it != capMeta_.end() && it->first < end; ++it) {
        if (applyInvalidation(it->second, ghost))
            ++count;
    }
    return count;
}

void
MapStore::forEachCapInRange(
    uint64_t addr, uint64_t n,
    const std::function<void(uint64_t, CapMeta &)> &visit)
{
    uint64_t first = addr / capSize_ * capSize_;
    uint64_t end = rangeEnd(addr, n);
    for (auto it = capMeta_.lower_bound(first);
         it != capMeta_.end() && it->first < end; ++it) {
        visit(it->first, it->second);
    }
}

/** Deep copies of the literal B and C maps: the O(n) oracle the
 *  equivalence soak diffs the COW backend against. */
struct MapStore::Snapshot final : StoreSnapshot
{
    std::map<uint64_t, AbsByte> bytes;
    std::map<uint64_t, CapMeta> capMeta;
};

StoreSnapshotPtr
MapStore::snapshot() const
{
    auto snap = std::make_shared<Snapshot>();
    snap->bytes = bytes_;
    snap->capMeta = capMeta_;
    snap->stats = stats_;
    return snap;
}

void
MapStore::restore(const StoreSnapshotPtr &snap)
{
    auto *s = dynamic_cast<const Snapshot *>(snap.get());
    assert(s && "MapStore snapshot restored into a MapStore");
    bytes_ = s->bytes;
    capMeta_ = s->capMeta;
    stats_ = s->stats;
}

// ---------------------------------------------------------------------
// PagedStore.
// ---------------------------------------------------------------------

PagedStore::PagedStore(unsigned cap_size)
    : AbstractStore(cap_size),
      slotsPerPage_(static_cast<unsigned>(kPageBytes) / cap_size),
      capShift_(static_cast<unsigned>(std::countr_zero(cap_size)))
{
    // The tag granule must be a power of two tiling a page exactly so
    // a slot never straddles two pages (and slot arithmetic can be
    // mask-and-shift, not division).
    assert(std::has_single_bit(cap_size));
    assert(kPageBytes % cap_size == 0);
}

void
PagedStore::clearHeavySpan(Page &p, unsigned lo, unsigned hi)
{
    clearHeavy(p, lo, hi);
}

bool
PagedStore::invalidateSlotMeta(CapMeta &m, bool ghost)
{
    return applyInvalidation(m, ghost);
}

PagedStore::Page *
PagedStore::findPage(uint64_t index) const
{
    if (index == cachedIndex_)
        return cachedPage_;
    auto it = pages_.find(index);
    if (it == pages_.end())
        return nullptr;
    cachedIndex_ = index;
    cachedPage_ = it->second.get();
    cachedWritable_ = !maybeShared_ || it->second.use_count() == 1;
    return cachedPage_;
}

PagedStore::Page &
PagedStore::ensureUnique(uint64_t index, std::shared_ptr<Page> &entry)
{
    if (maybeShared_ && entry.use_count() > 1) {
        // Copy-before-write: the page is aliased by at least one
        // snapshot.  The old page stays alive (and immutable) behind
        // the snapshot's reference.
        entry = std::make_shared<Page>(*entry);
        ++cowClones_;
    }
    cachedIndex_ = index;
    cachedPage_ = entry.get();
    cachedWritable_ = true;
    return *entry;
}

PagedStore::Page &
PagedStore::touchPage(uint64_t index)
{
    if (index == cachedIndex_ && cachedWritable_)
        return *cachedPage_;
    auto it = pages_.find(index);
    if (it == pages_.end()) {
        it = pages_.emplace(index,
                            std::make_shared<Page>(slotsPerPage_))
                 .first;
        ++stats_.pagesAllocated;
    }
    return ensureUnique(index, it->second);
}

void
PagedStore::assembleBytes(const Page *p, unsigned off, unsigned n,
                          AbsByte *out)
{
    for (unsigned j = 0; j < n; ++j) {
        unsigned o = off + j;
        AbsByte b;
        if (bitTest(p->present, o))
            b.value = p->value[o];
        if (bitTest(p->heavy, o)) {
            auto it = p->heavyBytes.find(static_cast<uint16_t>(o));
            assert(it != p->heavyBytes.end());
            b.prov = it->second.prov;
            b.index = it->second.index;
        }
        out[j] = b;
    }
}

void
PagedStore::depositBytes(Page &p, unsigned off, unsigned n,
                         const AbsByte *src)
{
    for (unsigned j = 0; j < n; ++j) {
        unsigned o = off + j;
        const AbsByte &b = src[j];
        if (b.value) {
            bitSet(p.present, o);
            p.value[o] = *b.value;
        } else {
            bitClear(p.present, o);
        }
        if (!b.prov.isEmpty() || b.index) {
            bitSet(p.heavy, o);
            p.heavyBytes[static_cast<uint16_t>(o)] =
                HeavyInfo{b.prov, b.index};
        } else if (bitTest(p.heavy, o)) {
            bitClear(p.heavy, o);
            p.heavyBytes.erase(static_cast<uint16_t>(o));
        }
    }
}

void
PagedStore::readBytes(uint64_t addr, uint64_t n, AbsByte *out) const
{
    ++stats_.rangeReads;
    stats_.bytesRead += n;
    uint64_t i = 0;
    while (i < n) {
        uint64_t a = addr + i;
        uint64_t off = a % kPageBytes;
        uint64_t chunk = std::min(n - i, kPageBytes - off);
        if (const Page *p = findPage(a / kPageBytes)) {
            assembleBytes(p, static_cast<unsigned>(off),
                          static_cast<unsigned>(chunk), out + i);
        } else {
            std::fill_n(out + i, chunk, AbsByte{});
        }
        i += chunk;
    }
}

void
PagedStore::writeBytes(uint64_t addr, const AbsByte *src, uint64_t n)
{
    ++stats_.rangeWrites;
    stats_.bytesWritten += n;
    uint64_t i = 0;
    while (i < n) {
        uint64_t a = addr + i;
        uint64_t off = a % kPageBytes;
        uint64_t chunk = std::min(n - i, kPageBytes - off);
        Page &p = touchPage(a / kPageBytes);
        depositBytes(p, static_cast<unsigned>(off),
                     static_cast<unsigned>(chunk), src + i);
        i += chunk;
    }
}

void
PagedStore::fillRange(uint64_t addr, uint64_t n, const AbsByte &b)
{
    ++stats_.rangeFills;
    stats_.bytesWritten += n;
    bool heavy = !b.prov.isEmpty() || b.index.has_value();
    uint64_t i = 0;
    while (i < n) {
        uint64_t a = addr + i;
        uint64_t off = a % kPageBytes;
        uint64_t chunk = std::min(n - i, kPageBytes - off);
        unsigned lo = static_cast<unsigned>(off);
        unsigned hi = static_cast<unsigned>(off + chunk);
        Page &p = touchPage(a / kPageBytes);
        if (b.value) {
            maskSet(p.present, lo, hi);
            std::memset(p.value + lo, *b.value, chunk);
        } else {
            maskClear(p.present, lo, hi);
        }
        if (heavy) {
            maskSet(p.heavy, lo, hi);
            for (unsigned o = lo; o < hi; ++o)
                p.heavyBytes[static_cast<uint16_t>(o)] =
                    HeavyInfo{b.prov, b.index};
        } else {
            clearHeavy(p, lo, hi);
        }
        i += chunk;
    }
}

void
PagedStore::clearRange(uint64_t addr, uint64_t n)
{
    uint64_t i = 0;
    while (i < n) {
        uint64_t a = addr + i;
        uint64_t off = a % kPageBytes;
        uint64_t chunk = std::min(n - i, kPageBytes - off);
        // Absent pages are already uninitialised: skip without
        // materialising them.  Likewise skip (and leave shared) a
        // page whose range is already clear.
        auto it = pages_.find(a / kPageBytes);
        if (it != pages_.end()) {
            unsigned lo = static_cast<unsigned>(off);
            unsigned hi = static_cast<unsigned>(off + chunk);
            if (!maybeShared_ || it->second.use_count() == 1) {
                Page &p = ensureUnique(it->first, it->second);
                maskClear(p.present, lo, hi);
                clearHeavy(p, lo, hi);
            } else {
                // Shared page: only clone if the range is not
                // already clear (leave an untouched page shared).
                const Page *ro = it->second.get();
                if (!maskNone(ro->present, lo, hi) ||
                    !maskNone(ro->heavy, lo, hi)) {
                    Page &p = ensureUnique(it->first, it->second);
                    maskClear(p.present, lo, hi);
                    clearHeavy(p, lo, hi);
                }
            }
        }
        i += chunk;
    }
}

void
PagedStore::copyRange(uint64_t dst, uint64_t src, uint64_t n)
{
    ++stats_.rangeCopies;
    stats_.bytesCopied += n;
    bool overlap = src < dst ? dst - src < n : src - dst < n;
    if (overlap && dst != src) {
        // Stage through a temporary, as the reference backend does.
        std::vector<AbsByte> tmp(n);
        // Not via readBytes/writeBytes: keep the range-op counters
        // identical across backends for the equivalence test.
        uint64_t i = 0;
        while (i < n) {
            uint64_t a = src + i;
            uint64_t off = a % kPageBytes;
            uint64_t chunk = std::min(n - i, kPageBytes - off);
            if (const Page *p = findPage(a / kPageBytes))
                assembleBytes(p, static_cast<unsigned>(off),
                              static_cast<unsigned>(chunk),
                              tmp.data() + i);
            i += chunk;
        }
        i = 0;
        while (i < n) {
            uint64_t a = dst + i;
            uint64_t off = a % kPageBytes;
            uint64_t chunk = std::min(n - i, kPageBytes - off);
            Page &p = touchPage(a / kPageBytes);
            depositBytes(p, static_cast<unsigned>(off),
                         static_cast<unsigned>(chunk), tmp.data() + i);
            i += chunk;
        }
        return;
    }
    if (dst == src)
        return;
    // Disjoint ranges: page-chunked direct copy, no staging.
    uint64_t i = 0;
    while (i < n) {
        uint64_t sa = src + i;
        uint64_t da = dst + i;
        uint64_t soff = sa % kPageBytes;
        uint64_t doff = da % kPageBytes;
        uint64_t chunk = std::min({n - i, kPageBytes - soff,
                                   kPageBytes - doff});
        unsigned slo = static_cast<unsigned>(soff);
        unsigned shi = static_cast<unsigned>(soff + chunk);
        unsigned dlo = static_cast<unsigned>(doff);
        unsigned dhi = static_cast<unsigned>(doff + chunk);
        const Page *sp = findPage(sa / kPageBytes);
        Page &dp = touchPage(da / kPageBytes);
        if (!sp) {
            // Source page absent: every byte reads as AbsByte{}.
            maskClear(dp.present, dlo, dhi);
            clearHeavy(dp, dlo, dhi);
        } else if (maskNone(sp->heavy, slo, shi)) {
            // No heavy bytes in the source chunk: bulk-copy the
            // value plane and mirror the presence bits.
            std::memcpy(dp.value + dlo, sp->value + slo, chunk);
            if (maskAll(sp->present, slo, shi)) {
                maskSet(dp.present, dlo, dhi);
            } else if (maskNone(sp->present, slo, shi)) {
                maskClear(dp.present, dlo, dhi);
            } else {
                for (unsigned j = 0; j < chunk; ++j) {
                    if (bitTest(sp->present, slo + j))
                        bitSet(dp.present, dlo + j);
                    else
                        bitClear(dp.present, dlo + j);
                }
            }
            clearHeavy(dp, dlo, dhi);
        } else {
            // Heavy bytes present: assemble/deposit byte by byte.
            for (unsigned j = 0; j < chunk; ++j) {
                AbsByte b;
                assembleBytes(sp, slo + j, 1, &b);
                depositBytes(dp, dlo + j, 1, &b);
            }
        }
        i += chunk;
    }
}

std::optional<CapMeta>
PagedStore::capMetaAt(uint64_t slot) const
{
    assert(slot % capSize_ == 0);
    ++stats_.capMetaReads;
    const Page *p = findPage(slot / kPageBytes);
    if (!p)
        return std::nullopt;
    unsigned s = static_cast<unsigned>((slot % kPageBytes) / capSize_);
    if (!p->metaPresent[s])
        return std::nullopt;
    return p->meta[s];
}

void
PagedStore::setCapMeta(uint64_t slot, const CapMeta &m)
{
    assert(slot % capSize_ == 0);
    ++stats_.capMetaWrites;
    Page &p = touchPage(slot / kPageBytes);
    unsigned s = static_cast<unsigned>((slot % kPageBytes) / capSize_);
    p.meta[s] = m;
    p.metaPresent[s] = 1;
}

void
PagedStore::eraseCapMeta(uint64_t slot)
{
    assert(slot % capSize_ == 0);
    ++stats_.capMetaWrites;
    // Read through the page cache first: the hot caller
    // (copyBytesAndMeta) sweeps every slot of a range, and the common
    // slot has no metadata — that case must stay a cached read, not a
    // hash lookup.  Only clone a shared page when there is metadata
    // to erase.
    if (const Page *p = findPage(slot / kPageBytes)) {
        unsigned s =
            static_cast<unsigned>((slot % kPageBytes) / capSize_);
        if (p->metaPresent[s]) {
            Page &wp = touchPage(slot / kPageBytes);
            wp.metaPresent[s] = 0;
            wp.meta[s] = CapMeta{};
        }
    }
}

uint64_t
PagedStore::invalidateCapRange(uint64_t addr, uint64_t n, bool ghost)
{
    uint64_t first = addr / capSize_ * capSize_;
    uint64_t end = rangeEnd(addr, n);
    uint64_t count = 0;
    for (uint64_t slot = first; slot < end;) {
        auto it = pages_.find(slot / kPageBytes);
        if (it == pages_.end()) {
            // Skip to the next page boundary.
            uint64_t next = (slot / kPageBytes + 1) * kPageBytes;
            slot = next > slot ? next : end;
            continue;
        }
        Page *p = it->second.get();
        bool unique = !maybeShared_ || it->second.use_count() == 1;
        uint64_t page_end =
            std::min(end, (slot / kPageBytes + 1) * kPageBytes);
        for (; slot < page_end; slot += capSize_) {
            unsigned s = static_cast<unsigned>((slot % kPageBytes) /
                                               capSize_);
            if (!p->metaPresent[s])
                continue;
            // Clone lazily: only once a slot would actually change
            // (the common page has no live tags to transition).
            if (!p->meta[s].tag && !p->meta[s].ghost.tagUnspec)
                continue;
            if (!unique) {
                p = &ensureUnique(it->first, it->second);
                unique = true;
            }
            applyInvalidation(p->meta[s], ghost);
            ++count;
        }
    }
    return count;
}

void
PagedStore::forEachCapInRange(
    uint64_t addr, uint64_t n,
    const std::function<void(uint64_t, CapMeta &)> &visit)
{
    uint64_t end = rangeEnd(addr, n);
    for (auto &[index, entry] : pages_) {
        uint64_t page_base = index * kPageBytes;
        if (page_base >= end || page_base + kPageBytes <= addr)
            continue;
        // The visitor gets a mutable CapMeta& (the revocation sweep
        // clears tags through it), so a shared page must be cloned
        // before the first slot it visits.  Replacing the mapped
        // shared_ptr does not invalidate the map iteration.
        Page *page = entry.get();
        bool unique = !maybeShared_ || entry.use_count() == 1;
        for (unsigned s = 0; s < slotsPerPage_; ++s) {
            if (!page->metaPresent[s])
                continue;
            uint64_t slot = page_base + uint64_t(s) * capSize_;
            if (slot + capSize_ <= addr || slot >= end)
                continue;
            if (!unique) {
                page = &ensureUnique(index, entry);
                unique = true;
            }
            visit(slot, page->meta[s]);
        }
    }
}

/** A copy of the page *table*: every page's refcount goes up by one,
 *  no page contents are copied.  Pages reachable from a snapshot are
 *  immutable — every mutating primitive clones first. */
struct PagedStore::Snapshot final : StoreSnapshot
{
    std::unordered_map<uint64_t, std::shared_ptr<Page>> pages;
};

StoreSnapshotPtr
PagedStore::snapshot() const
{
    auto snap = std::make_shared<Snapshot>();
    snap->pages = pages_;
    snap->stats = stats_;
    // Every live page is now shared with the snapshot; the next write
    // through the cache must go via touchPage() and clone.
    cachedWritable_ = false;
    maybeShared_ = true;
    return snap;
}

void
PagedStore::restore(const StoreSnapshotPtr &snap)
{
    auto *s = dynamic_cast<const Snapshot *>(snap.get());
    assert(s && "PagedStore snapshot restored into a PagedStore");
    pages_ = s->pages;
    stats_ = s->stats;
    // Pages the diverged run cloned are dropped here; pages it never
    // touched come back shared (refcount >= 2: us + the snapshot).
    cachedIndex_ = ~uint64_t(0);
    cachedPage_ = nullptr;
    cachedWritable_ = false;
    maybeShared_ = true;
}

uint64_t
PagedStore::sharedPages() const
{
    uint64_t n = 0;
    for (const auto &[index, entry] : pages_) {
        (void)index;
        if (entry.use_count() > 1)
            ++n;
    }
    return n;
}

// ---------------------------------------------------------------------
// Factory.
// ---------------------------------------------------------------------

std::unique_ptr<AbstractStore>
makeStore(StoreBackend backend, unsigned cap_size)
{
    switch (backend) {
      case StoreBackend::Map:
        return std::make_unique<MapStore>(cap_size);
      case StoreBackend::Paged:
        return std::make_unique<PagedStore>(cap_size);
    }
    return std::make_unique<PagedStore>(cap_size);
}

const char *
storeBackendName(StoreBackend backend)
{
    return backend == StoreBackend::Map ? "map" : "paged";
}

} // namespace cherisem::mem
