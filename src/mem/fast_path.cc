/**
 * @file
 * The fast-path scalar pipeline: MemoryModel::load()/store() live
 * here as thin dispatchers that run fastGuard() and, for clean scalar
 * accesses, serve the access inline against the AbstractStore
 * readScalarClean/writeScalarClean range primitives.  Anything the
 * guard cannot prove falls back to slowLoad()/slowStore() — the full
 * UB/provenance rules in load_store.cc.
 *
 * fastGuard() checks exactly the conjunction of accessCheck()'s
 * success conditions — every individual check is the same predicate
 * accessCheck() tests, so a passing guard proves the slow path could
 * not have failed, and the shortcut can only skip work, never change
 * an outcome:
 *
 *  - tracing off        => no Load/Store/Expose/GhostMark events are
 *                          owed, so eliding their emission points is
 *                          unobservable;
 *  - clean bytes        => the PNVI expose step (load rule 2f) is a
 *                          no-op, and abst() reconstructs the value
 *                          from the raw bytes alone;
 *  - allocation prov    => resolveForAccess() cannot create or
 *                          resolve an iota, so skipping it leaves the
 *                          iota table untouched.
 *
 * In hardware mode (checkProvenance off) resolveForAccess() scans for
 * *some* live allocation containing the footprint; live allocations
 * never overlap, so when the pointer's own allocation is live and
 * contains the footprint it is the unique allocation that scan would
 * find — the guard's readOnly decision matches the slow path's.
 *
 * Counter discipline: the fast path bumps exactly the counters the
 * slow path would (loads/stores, one range read or write of n bytes,
 * the tag-invalidation tallies), so MemStats are bit-identical
 * whichever path served an access — the differential and soak suites
 * rely on this.
 */
#include <cstring>
#include <utility>

#include "mem/memory_model.h"
#include "support/format.h"

namespace cherisem::mem {

using ctype::IntKind;
using ctype::Type;
using ctype::TypeRef;

const Allocation *
MemoryModel::cachedAlloc(AllocId id) const
{
    if (id == fastAllocId_ && fastAlloc_)
        return fastAlloc_;
    auto it = allocations_.find(id);
    if (it == allocations_.end())
        return nullptr;
    // Node pointers into allocations_ are stable: entries are only
    // ever inserted (kill() flips `alive` in place).
    fastAllocId_ = id;
    fastAlloc_ = &it->second;
    return fastAlloc_;
}

const Allocation *
MemoryModel::fastGuard(const PointerValue &p, uint64_t n, unsigned align,
                       bool want_store)
{
    // Trace identity: any enabled tracer owes events the fast path
    // does not emit, so traced runs always take the slow path.
    if (tracer_.enabled())
        return nullptr;
    if (!p.isObject() || !p.cap)
        return nullptr;
    const cap::Capability &c = *p.cap;
    if (c.ghost().tagUnspec || c.ghost().boundsUnspec)
        return nullptr;
    if (!c.tag() || c.isSealed())
        return nullptr;
    if (want_store ? !c.canStore() : !c.canLoad())
        return nullptr;
    uint64_t addr = c.address();
    if (!c.inBounds(addr, n))
        return nullptr;
    if (config_.checkAlignment && align > 1 && (addr % align) != 0)
        return nullptr;
    // Concrete allocation provenance only: empty provenance is UB and
    // iotas need the full disambiguation machinery.
    if (!p.prov.isAlloc())
        return nullptr;
    const Allocation *a = cachedAlloc(p.prov.id);
    if (!a || !a->alive || !a->containsFootprint(addr, n))
        return nullptr;
    // Fast stores are never initializing stores, so read-only objects
    // always go slow (where `initializing` may permit the write).
    if (want_store && a->readOnly)
        return nullptr;
    return a;
}

MemResult<MemValue>
MemoryModel::load(const SourceLoc &loc, const TypeRef &ty, const PointerValue &p)
{
    uint64_t n = layout_.sizeOf(ty);
    if (!ty->isScalar())
        return slowLoad(loc, ty, p, n, 1);
    unsigned align = layout_.alignOf(ty);
    if (!fastGuard(p, n, align, /*want_store=*/false))
        return slowLoad(loc, ty, p, n, align);
    uint64_t addr = p.cap->address();
    ++stats_.loads;

    switch (ty->kind) {
      case Type::Kind::Integer: {
        if (ty->isCapInteger()) {
            // Capability-typed integer: the guard replaced
            // accessCheck; abst() does the slot reconstruction.
            return abstValue(loc, addr, ty);
        }
        uint8_t buf[16];
        if (n > sizeof(buf) ||
            !(pagedStore_
                  ? pagedStore_->readScalarClean(
                        addr, static_cast<unsigned>(n), buf)
                  : store_->readScalarClean(
                        addr, static_cast<unsigned>(n), buf))) {
            // Uninitialised or heavy bytes: full abst() (which also
            // performs the expose step those bytes require).
            return abstValue(loc, addr, ty);
        }
        __int128 num;
        if (n <= 8) {
            // 64-bit assembly and sign-extension; widening to 128 bits
            // afterwards is a single sign extension.
            uint64_t raw64 = 0;
            for (uint64_t i = 0; i < n; ++i)
                raw64 |= uint64_t(buf[i]) << (8 * i);
            unsigned shift = 64 - static_cast<unsigned>(n) * 8;
            if (ctype::isSignedIntKind(ty->intKind)) {
                num = static_cast<int64_t>(raw64 << shift) >>
                    shift;
            } else {
                num = raw64;
            }
            if (ty->intKind == IntKind::Bool && raw64 > 1) {
                return Failure::undefined(
                    Ub::LvalueReadTrapRepresentation, loc);
            }
        } else {
            uint128 raw = 0;
            for (uint64_t i = 0; i < n; ++i)
                raw |= uint128(buf[i]) << (8 * i);
            num = static_cast<__int128>(raw);
            unsigned bits = static_cast<unsigned>(n) * 8;
            if (ctype::isSignedIntKind(ty->intKind) && bits < 128 &&
                ((raw >> (bits - 1)) & 1)) {
                num -= static_cast<__int128>(uint128(1) << bits);
            }
        }
        IntegerValue out = IntegerValue::ofNum(ty->intKind, num);
        if (n == 1) {
            // Clean byte: what abst() would have recorded.
            out.byteCopy =
                AbsByte{Provenance::empty(), buf[0], std::nullopt};
        }
        return MemResult<MemValue>(
            std::in_place, std::in_place_type<IntegerValue>,
            std::move(out));
      }

      case Type::Kind::Floating: {
        uint8_t buf[8];
        if (n > sizeof(buf) ||
            !(pagedStore_
                  ? pagedStore_->readScalarClean(
                        addr, static_cast<unsigned>(n), buf)
                  : store_->readScalarClean(
                        addr, static_cast<unsigned>(n), buf))) {
            return abstValue(loc, addr, ty);
        }
        FloatingValue fv;
        fv.kind = ty->floatKind;
        if (ty->floatKind == ctype::FloatKind::Float) {
            float f;
            std::memcpy(&f, buf, 4);
            fv.value = f;
        } else {
            std::memcpy(&fv.value, buf, 8);
        }
        return MemResult<MemValue>(
            std::in_place, std::in_place_type<FloatingValue>, fv);
      }

      default:
        // Pointer loads always need the slot-metadata + provenance
        // reconstruction; the guard still spares accessCheck.
        return abstValue(loc, addr, ty);
    }
}

MemResult<Unit>
MemoryModel::store(const SourceLoc &loc, const TypeRef &ty,
                   const PointerValue &p, const MemValue &v,
                   bool initializing)
{
    uint64_t n = layout_.sizeOf(ty);
    if (!ty->isScalar())
        return slowStore(loc, ty, p, v, initializing, n, 1);
    unsigned align = layout_.alignOf(ty);

    // Serialise the value into clean bytes first; anything that repr()
    // would not store as plain clean bytes falls back.
    uint8_t buf[16];
    switch (ty->kind) {
      case Type::Kind::Integer: {
        if (ty->isCapInteger() || !v.isInteger() || n > sizeof(buf))
            return slowStore(loc, ty, p, v, initializing, n, align);
        const IntegerValue &iv = v.asInteger();
        uint128 raw = static_cast<uint128>(iv.value());
        if (n == 1 && iv.byteCopy && iv.byteCopy->value &&
            *iv.byteCopy->value == static_cast<uint8_t>(raw) &&
            (!iv.byteCopy->prov.isEmpty() || iv.byteCopy->index)) {
            // repr() writes the original heavy byte back verbatim
            // (capability-representation copy); must go slow.
            return slowStore(loc, ty, p, v, initializing, n, align);
        }
        if (n <= 8) {
            uint64_t raw64 = static_cast<uint64_t>(raw);
            for (uint64_t i = 0; i < n; ++i)
                buf[i] = static_cast<uint8_t>(raw64 >> (8 * i));
        } else {
            for (uint64_t i = 0; i < n; ++i)
                buf[i] = static_cast<uint8_t>(raw >> (8 * i));
        }
        break;
      }
      case Type::Kind::Floating: {
        if (!v.isFloating() || n > 8)
            return slowStore(loc, ty, p, v, initializing, n, align);
        double d = v.asFloating().value;
        if (ty->floatKind == ctype::FloatKind::Float) {
            float f = static_cast<float>(d);
            std::memcpy(buf, &f, 4);
        } else {
            std::memcpy(buf, &d, 8);
        }
        break;
      }
      default:
        // Pointer stores deposit capability metadata: slow path.
        return slowStore(loc, ty, p, v, initializing, n, align);
    }

    if (!fastGuard(p, n, align, /*want_store=*/true))
        return slowStore(loc, ty, p, v, initializing, n, align);

    ++stats_.stores;
    uint64_t touched =
        pagedStore_ ? pagedStore_->writeScalarClean(
                          p.cap->address(), buf,
                          static_cast<unsigned>(n), config_.ghostState)
                    : store_->writeScalarClean(
                          p.cap->address(), buf,
                          static_cast<unsigned>(n), config_.ghostState);
    if (config_.ghostState)
        stats_.ghostTagInvalidations += touched;
    else
        stats_.hardTagInvalidations += touched;
    return Unit{};
}

} // namespace cherisem::mem
