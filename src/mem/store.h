/**
 * @file
 * The abstract store layer under the memory object model.
 *
 * The paper keeps the memory component of the state as two maps
 * (section 4.3):
 *
 *     M = B x C        B : Addr -> AbsByte
 *                      C : Addr -> bool x ghost_state
 *
 * AbstractStore is exactly that object, exposed as a narrow,
 * range-based interface so the rest of the semantics never touches a
 * concrete container.  Two backends implement it:
 *
 *  - MapStore: the literal `std::map` transcription of B and C.  Kept
 *    as the reference backend / differential oracle: slow (one
 *    red-black-tree lookup per byte) but obviously faithful.
 *  - PagedStore: sparse 4 KiB pages of flat AbsByte / CapMeta arrays
 *    keyed by page index, with a one-entry last-page cache.  This is
 *    what every implementation profile runs by default.
 *
 * Invariants every backend must uphold (and the store-equivalence
 * test checks):
 *
 *  - A byte never written reads back as the uninitialised AbsByte{}
 *    (empty provenance, no value, no pointer index).
 *  - Capability metadata lives only at capSize()-aligned slots, and
 *    "no metadata recorded" is observably distinct from "metadata
 *    recorded with a clear tag": the ghost-state rule of section 3.5
 *    (a byte-wise capability copy has an *unspecified* tag) keys off
 *    that distinction.
 *  - invalidateCapRange applies the section 3.5 transition to every
 *    slot overlapping the range: ghost mode marks set tags
 *    unspecified; hardware mode clears them deterministically.
 *  - copyRange is overlap-safe in both directions (memmove
 *    semantics) for the abstract bytes.
 */
#ifndef CHERISEM_MEM_STORE_H
#define CHERISEM_MEM_STORE_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mem/mem_value.h"

namespace cherisem::mem {

/** Which concrete backend a MemoryModel runs on. */
enum class StoreBackend { Map, Paged };

/** Store-level counters (nested into MemStats). */
struct StoreStats
{
    /** PagedStore 4 KiB pages materialised (0 for MapStore). */
    uint64_t pagesAllocated = 0;
    /** Range-primitive invocations. */
    uint64_t rangeReads = 0;
    uint64_t rangeWrites = 0;
    uint64_t rangeCopies = 0;
    uint64_t rangeFills = 0;
    /** Per-op byte totals for the range primitives above. */
    uint64_t bytesRead = 0;
    uint64_t bytesWritten = 0;
    uint64_t bytesCopied = 0;
    /** Capability-metadata primitive invocations. */
    uint64_t capMetaReads = 0;
    uint64_t capMetaWrites = 0;
};

/**
 * The store interface: the `M = B x C` component of the memory state
 * behind range-based primitives.
 *
 * Addresses are plain 64-bit; @p slot arguments must be
 * capSize()-aligned (callers round, backends assert).
 */
class AbstractStore
{
  public:
    explicit AbstractStore(unsigned cap_size) : capSize_(cap_size) {}
    virtual ~AbstractStore() = default;

    virtual const char *name() const = 0;

    /// @name Byte-map (B) primitives.
    /// @{
    /** Read @p n abstract bytes into @p out; never-written addresses
     *  produce the uninitialised AbsByte{}. */
    virtual void readBytes(uint64_t addr, uint64_t n,
                           AbsByte *out) const = 0;
    /** Write @p n abstract bytes from @p src. */
    virtual void writeBytes(uint64_t addr, const AbsByte *src,
                            uint64_t n) = 0;
    /** Write the same abstract byte over [addr, addr+n) (memset). */
    virtual void fillRange(uint64_t addr, uint64_t n,
                           const AbsByte &b) = 0;
    /** Return [addr, addr+n) to the uninitialised state. */
    virtual void clearRange(uint64_t addr, uint64_t n) = 0;
    /** Copy @p n abstract bytes src -> dst; overlap-safe (memmove
     *  semantics).  Bytes only — capability metadata policy stays
     *  with the memory model. */
    virtual void copyRange(uint64_t dst, uint64_t src, uint64_t n) = 0;
    /// @}

    /// @name Capability-metadata (C) primitives.
    /// @{
    /** Metadata at the aligned @p slot; nullopt when none was ever
     *  recorded (distinct from a recorded clear tag, section 3.5). */
    virtual std::optional<CapMeta> capMetaAt(uint64_t slot) const = 0;
    virtual void setCapMeta(uint64_t slot, const CapMeta &m) = 0;
    virtual void eraseCapMeta(uint64_t slot) = 0;
    /**
     * Apply the representation-write transition (section 3.5) to
     * every recorded slot overlapping [addr, addr+n): with @p ghost
     * set, previously set tags become *unspecified* in ghost state;
     * otherwise tags are deterministically cleared (hardware view).
     * Returns the number of slots actually transitioned.
     */
    virtual uint64_t invalidateCapRange(uint64_t addr, uint64_t n,
                                        bool ghost) = 0;
    /**
     * Visit every recorded capability-metadata slot intersecting
     * [addr, addr+n) as (slot, meta&); the visitor may mutate the
     * metadata in place (the CHERIoT revocation sweep clears tags
     * this way).  Pass addr=0, n=~0 to sweep the whole store.
     * Visit order is unspecified.
     */
    virtual void
    forEachCapInRange(uint64_t addr, uint64_t n,
                      const std::function<void(uint64_t, CapMeta &)>
                          &visit) = 0;
    /// @}

    /** Convenience: single-byte write. */
    void writeByte(uint64_t addr, const AbsByte &b)
    {
        writeBytes(addr, &b, 1);
    }
    /** Convenience: allocate-and-return range read. */
    std::vector<AbsByte>
    readBytes(uint64_t addr, uint64_t n) const
    {
        std::vector<AbsByte> out(n);
        readBytes(addr, n, out.data());
        return out;
    }

    unsigned capSize() const { return capSize_; }
    const StoreStats &stats() const { return stats_; }

  protected:
    /** Exclusive end of [addr, addr+n), saturating at 2^64-1. */
    static uint64_t
    rangeEnd(uint64_t addr, uint64_t n)
    {
        return n > ~uint64_t(0) - addr ? ~uint64_t(0) : addr + n;
    }

    unsigned capSize_;
    mutable StoreStats stats_;
};

/**
 * Reference backend: the literal B and C maps of the paper.
 */
class MapStore final : public AbstractStore
{
  public:
    using AbstractStore::AbstractStore;
    using AbstractStore::readBytes;

    const char *name() const override { return "map"; }

    void readBytes(uint64_t addr, uint64_t n,
                   AbsByte *out) const override;
    void writeBytes(uint64_t addr, const AbsByte *src,
                    uint64_t n) override;
    void fillRange(uint64_t addr, uint64_t n, const AbsByte &b) override;
    void clearRange(uint64_t addr, uint64_t n) override;
    void copyRange(uint64_t dst, uint64_t src, uint64_t n) override;

    std::optional<CapMeta> capMetaAt(uint64_t slot) const override;
    void setCapMeta(uint64_t slot, const CapMeta &m) override;
    void eraseCapMeta(uint64_t slot) override;
    uint64_t invalidateCapRange(uint64_t addr, uint64_t n,
                                bool ghost) override;
    void forEachCapInRange(
        uint64_t addr, uint64_t n,
        const std::function<void(uint64_t, CapMeta &)> &visit) override;

  private:
    std::map<uint64_t, AbsByte> bytes_;   // B
    std::map<uint64_t, CapMeta> capMeta_; // C
};

/**
 * Paged backend: sparse 4 KiB pages of flat AbsByte arrays plus
 * per-page CapMeta slot arrays with presence bits, keyed by page
 * index, fronted by a one-entry last-page cache.
 */
class PagedStore final : public AbstractStore
{
  public:
    static constexpr uint64_t kPageBytes = 4096;

    explicit PagedStore(unsigned cap_size);
    using AbstractStore::readBytes;

    const char *name() const override { return "paged"; }

    void readBytes(uint64_t addr, uint64_t n,
                   AbsByte *out) const override;
    void writeBytes(uint64_t addr, const AbsByte *src,
                    uint64_t n) override;
    void fillRange(uint64_t addr, uint64_t n, const AbsByte &b) override;
    void clearRange(uint64_t addr, uint64_t n) override;
    void copyRange(uint64_t dst, uint64_t src, uint64_t n) override;

    std::optional<CapMeta> capMetaAt(uint64_t slot) const override;
    void setCapMeta(uint64_t slot, const CapMeta &m) override;
    void eraseCapMeta(uint64_t slot) override;
    uint64_t invalidateCapRange(uint64_t addr, uint64_t n,
                                bool ghost) override;
    void forEachCapInRange(
        uint64_t addr, uint64_t n,
        const std::function<void(uint64_t, CapMeta &)> &visit) override;

  private:
    struct Page
    {
        explicit Page(unsigned slots)
            : bytes(kPageBytes), meta(slots), metaPresent(slots, 0)
        {
        }
        std::vector<AbsByte> bytes;      // kPageBytes entries
        std::vector<CapMeta> meta;       // one per cap slot
        std::vector<uint8_t> metaPresent;
    };

    /** Existing page or nullptr; never allocates. */
    Page *findPage(uint64_t index) const;
    /** Existing page, materialising (and counting) a fresh one. */
    Page &touchPage(uint64_t index);

    unsigned slotsPerPage_;
    std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
    // One-entry last-page cache.  Page storage is behind unique_ptr
    // and pages are never erased, so the cached pointer stays valid
    // across rehashes.
    mutable uint64_t cachedIndex_ = ~uint64_t(0);
    mutable Page *cachedPage_ = nullptr;
};

/** Factory used by MemoryModel::Config. */
std::unique_ptr<AbstractStore> makeStore(StoreBackend backend,
                                         unsigned cap_size);

/** Backend name for diagnostics / benchmark labels. */
const char *storeBackendName(StoreBackend backend);

} // namespace cherisem::mem

#endif // CHERISEM_MEM_STORE_H
