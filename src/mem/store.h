/**
 * @file
 * The abstract store layer under the memory object model.
 *
 * The paper keeps the memory component of the state as two maps
 * (section 4.3):
 *
 *     M = B x C        B : Addr -> AbsByte
 *                      C : Addr -> bool x ghost_state
 *
 * AbstractStore is exactly that object, exposed as a narrow,
 * range-based interface so the rest of the semantics never touches a
 * concrete container.  Two backends implement it:
 *
 *  - MapStore: the literal `std::map` transcription of B and C.  Kept
 *    as the reference backend / differential oracle: slow (one
 *    red-black-tree lookup per byte) but obviously faithful.
 *  - PagedStore: sparse 4 KiB pages of flat AbsByte / CapMeta arrays
 *    keyed by page index, with a one-entry last-page cache.  This is
 *    what every implementation profile runs by default.
 *
 * Invariants every backend must uphold (and the store-equivalence
 * test checks):
 *
 *  - A byte never written reads back as the uninitialised AbsByte{}
 *    (empty provenance, no value, no pointer index).
 *  - Capability metadata lives only at capSize()-aligned slots, and
 *    "no metadata recorded" is observably distinct from "metadata
 *    recorded with a clear tag": the ghost-state rule of section 3.5
 *    (a byte-wise capability copy has an *unspecified* tag) keys off
 *    that distinction.
 *  - invalidateCapRange applies the section 3.5 transition to every
 *    slot overlapping the range: ghost mode marks set tags
 *    unspecified; hardware mode clears them deterministically.
 *  - copyRange is overlap-safe in both directions (memmove
 *    semantics) for the abstract bytes.
 */
#ifndef CHERISEM_MEM_STORE_H
#define CHERISEM_MEM_STORE_H

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mem/mem_value.h"

namespace cherisem::mem {

/** Which concrete backend a MemoryModel runs on. */
enum class StoreBackend { Map, Paged };

/** Store-level counters (nested into MemStats). */
struct StoreStats
{
    /** PagedStore 4 KiB pages materialised (0 for MapStore). */
    uint64_t pagesAllocated = 0;
    /** Range-primitive invocations. */
    uint64_t rangeReads = 0;
    uint64_t rangeWrites = 0;
    uint64_t rangeCopies = 0;
    uint64_t rangeFills = 0;
    /** Per-op byte totals for the range primitives above. */
    uint64_t bytesRead = 0;
    uint64_t bytesWritten = 0;
    uint64_t bytesCopied = 0;
    /** Capability-metadata primitive invocations. */
    uint64_t capMetaReads = 0;
    uint64_t capMetaWrites = 0;
};

/**
 * Opaque snapshot of one store's full (B, C) contents.
 *
 * Backends subclass this with their own representation (MapStore
 * copies the maps outright — the O(n) oracle; PagedStore copies the
 * page *table*, sharing the refcounted pages themselves — O(pages)).
 * A snapshot is immutable once taken and can be restored any number
 * of times, into the store that took it or into another store of the
 * same backend and capSize().
 */
struct StoreSnapshot
{
    virtual ~StoreSnapshot() = default;
    /** Counter state at snapshot time; restore() rewinds stats too so
     *  a restored run is bit-identical to never having diverged. */
    StoreStats stats;
};

using StoreSnapshotPtr = std::shared_ptr<const StoreSnapshot>;

/**
 * The store interface: the `M = B x C` component of the memory state
 * behind range-based primitives.
 *
 * Addresses are plain 64-bit; @p slot arguments must be
 * capSize()-aligned (callers round, backends assert).
 */
class AbstractStore
{
  public:
    explicit AbstractStore(unsigned cap_size) : capSize_(cap_size) {}
    virtual ~AbstractStore() = default;

    virtual const char *name() const = 0;

    /// @name Byte-map (B) primitives.
    /// @{
    /** Read @p n abstract bytes into @p out; never-written addresses
     *  produce the uninitialised AbsByte{}. */
    virtual void readBytes(uint64_t addr, uint64_t n,
                           AbsByte *out) const = 0;
    /** Write @p n abstract bytes from @p src. */
    virtual void writeBytes(uint64_t addr, const AbsByte *src,
                            uint64_t n) = 0;
    /** Write the same abstract byte over [addr, addr+n) (memset). */
    virtual void fillRange(uint64_t addr, uint64_t n,
                           const AbsByte &b) = 0;
    /** Return [addr, addr+n) to the uninitialised state. */
    virtual void clearRange(uint64_t addr, uint64_t n) = 0;
    /** Copy @p n abstract bytes src -> dst; overlap-safe (memmove
     *  semantics).  Bytes only — capability metadata policy stays
     *  with the memory model. */
    virtual void copyRange(uint64_t dst, uint64_t src, uint64_t n) = 0;
    /// @}

    /// @name Capability-metadata (C) primitives.
    /// @{
    /** Metadata at the aligned @p slot; nullopt when none was ever
     *  recorded (distinct from a recorded clear tag, section 3.5). */
    virtual std::optional<CapMeta> capMetaAt(uint64_t slot) const = 0;
    virtual void setCapMeta(uint64_t slot, const CapMeta &m) = 0;
    virtual void eraseCapMeta(uint64_t slot) = 0;
    /**
     * Apply the representation-write transition (section 3.5) to
     * every recorded slot overlapping [addr, addr+n): with @p ghost
     * set, previously set tags become *unspecified* in ghost state;
     * otherwise tags are deterministically cleared (hardware view).
     * Returns the number of slots actually transitioned.
     */
    virtual uint64_t invalidateCapRange(uint64_t addr, uint64_t n,
                                        bool ghost) = 0;
    /**
     * Visit every recorded capability-metadata slot intersecting
     * [addr, addr+n) as (slot, meta&); the visitor may mutate the
     * metadata in place (the CHERIoT revocation sweep clears tags
     * this way).  Pass addr=0, n=~0 to sweep the whole store.
     * Visit order is unspecified.
     */
    virtual void
    forEachCapInRange(uint64_t addr, uint64_t n,
                      const std::function<void(uint64_t, CapMeta &)>
                          &visit) = 0;
    /// @}

    /// @name Scalar fast-path primitives.
    /// The one-virtual-call-per-access interface the memory model's
    /// fast path uses (mem/fast_path.cc).  A byte is *clean* when its
    /// value is present, its provenance is empty, and it carries no
    /// pointer index — i.e. it is exactly AbsByte{empty, v, nullopt},
    /// the representation every plain integer/float store produces.
    /// @{
    /**
     * If every byte of [addr, addr+n) is clean, copy the raw values
     * into @p out and return true; otherwise return false having
     * read nothing.  @p n is at most 16 (one scalar).  Counters are
     * bumped only on success (a false return is always followed by a
     * slow-path read that does its own counting).
     */
    virtual bool readScalarClean(uint64_t addr, unsigned n,
                                 uint8_t *out) const
    {
        (void)addr;
        (void)n;
        (void)out;
        return false;
    }
    /**
     * Write @p n clean bytes from @p src (equivalent to writeBytes of
     * AbsByte{empty, src[i], nullopt}) and apply the representation-
     * write transition to every recorded capability slot overlapping
     * the range (as invalidateCapRange would).  Returns the number of
     * slots transitioned.  Always succeeds.
     */
    virtual uint64_t writeScalarClean(uint64_t addr, const uint8_t *src,
                                      unsigned n, bool ghost)
    {
        AbsByte bs[16];
        for (unsigned i = 0; i < n; ++i)
            bs[i] = AbsByte{Provenance::empty(), src[i], std::nullopt};
        writeBytes(addr, bs, n);
        return invalidateCapRange(addr, n, ghost);
    }
    /// @}

    /// @name Snapshot / restore.
    /// @{
    /** Capture the full (B, C) contents plus counters.  PagedStore is
     *  O(pages) refcount bumps; MapStore is an O(n) deep copy. */
    virtual StoreSnapshotPtr snapshot() const = 0;
    /** Rewind to @p snap: contents and counters become bit-identical
     *  to the snapshot point.  The snapshot must come from the same
     *  backend with the same capSize(). */
    virtual void restore(const StoreSnapshotPtr &snap) = 0;
    /// @}

    /** Convenience: single-byte write. */
    void writeByte(uint64_t addr, const AbsByte &b)
    {
        writeBytes(addr, &b, 1);
    }
    /** Convenience: allocate-and-return range read. */
    std::vector<AbsByte>
    readBytes(uint64_t addr, uint64_t n) const
    {
        std::vector<AbsByte> out(n);
        readBytes(addr, n, out.data());
        return out;
    }

    unsigned capSize() const { return capSize_; }
    const StoreStats &stats() const { return stats_; }

  protected:
    /** Exclusive end of [addr, addr+n), saturating at 2^64-1. */
    static uint64_t
    rangeEnd(uint64_t addr, uint64_t n)
    {
        return n > ~uint64_t(0) - addr ? ~uint64_t(0) : addr + n;
    }

    unsigned capSize_;
    mutable StoreStats stats_;
};

/**
 * Reference backend: the literal B and C maps of the paper.
 */
class MapStore final : public AbstractStore
{
  public:
    using AbstractStore::AbstractStore;
    using AbstractStore::readBytes;

    const char *name() const override { return "map"; }

    bool readScalarClean(uint64_t addr, unsigned n,
                         uint8_t *out) const override;

    void readBytes(uint64_t addr, uint64_t n,
                   AbsByte *out) const override;
    void writeBytes(uint64_t addr, const AbsByte *src,
                    uint64_t n) override;
    void fillRange(uint64_t addr, uint64_t n, const AbsByte &b) override;
    void clearRange(uint64_t addr, uint64_t n) override;
    void copyRange(uint64_t dst, uint64_t src, uint64_t n) override;

    std::optional<CapMeta> capMetaAt(uint64_t slot) const override;
    void setCapMeta(uint64_t slot, const CapMeta &m) override;
    void eraseCapMeta(uint64_t slot) override;
    uint64_t invalidateCapRange(uint64_t addr, uint64_t n,
                                bool ghost) override;
    void forEachCapInRange(
        uint64_t addr, uint64_t n,
        const std::function<void(uint64_t, CapMeta &)> &visit) override;

    StoreSnapshotPtr snapshot() const override;
    void restore(const StoreSnapshotPtr &snap) override;

  private:
    struct Snapshot; // deep map copies; defined in store.cc

    std::map<uint64_t, AbsByte> bytes_;   // B
    std::map<uint64_t, CapMeta> capMeta_; // C
};

/**
 * Paged backend: sparse 4 KiB pages keyed by page index, fronted by a
 * one-entry last-page cache.
 *
 * Pages store the abstract bytes struct-of-arrays: a raw value plane,
 * a presence bitmask (value recorded), and a *heavy* bitmask marking
 * the rare bytes that carry provenance or a pointer index, whose
 * out-of-band parts live in a sparse per-page map.  A clean byte
 * (present and not heavy) is exactly the AbsByte{empty, v, nullopt}
 * every plain integer/float store produces, so the scalar fast path
 * is a word-mask test plus a memcpy against the value plane, and bulk
 * fill/copy of plain data moves raw bytes, not 32-byte structs.
 *
 * Pages are refcounted and immutable-when-shared: snapshot() copies
 * the page table (refcount bumps only), and every mutating primitive
 * copies a page before writing iff its refcount is > 1, so forking
 * and restoring whole states costs O(pages touched since the
 * snapshot), never O(footprint).  The discipline is concentrated in
 * touchPage()/ensureUnique(): a `Page &` handed out by either is
 * uniquely owned and safe to mutate; read paths may alias shared
 * pages freely.
 */
class PagedStore final : public AbstractStore
{
  public:
    static constexpr uint64_t kPageBytes = 4096;
    static constexpr unsigned kMaskWords =
        static_cast<unsigned>(kPageBytes / 64);

    explicit PagedStore(unsigned cap_size);
    using AbstractStore::readBytes;

    const char *name() const override { return "paged"; }

    // The scalar fast-path primitives are defined inline: the memory
    // model calls them through a concrete PagedStore* (the class is
    // final, so the calls devirtualise) and per-access call overhead
    // is exactly what they exist to eliminate.  n <= 16 by contract,
    // so a span covers at most two mask words.
    bool
    readScalarClean(uint64_t addr, unsigned n,
                    uint8_t *out) const override
    {
        unsigned off = static_cast<unsigned>(addr % kPageBytes);
        if (off + n > kPageBytes)
            return false; // Page straddle: take the general path.
        uint64_t index = addr / kPageBytes;
        const Page *p =
            index == cachedIndex_ ? cachedPage_ : findPage(index);
        if (!p)
            return false;
        unsigned w = off / 64, b = off % 64;
        if (b + n <= 64) {
            uint64_t m = spanMask(b, n);
            if ((p->present[w] & m) != m || (p->heavy[w] & m))
                return false;
        } else {
            uint64_t m0 = ~uint64_t(0) << b;
            uint64_t m1 = spanMask(0, b + n - 64);
            if ((p->present[w] & m0) != m0 || (p->heavy[w] & m0) ||
                (p->present[w + 1] & m1) != m1 ||
                (p->heavy[w + 1] & m1)) {
                return false;
            }
        }
        std::memcpy(out, p->value + off, n);
        ++stats_.rangeReads;
        stats_.bytesRead += n;
        return true;
    }

    uint64_t
    writeScalarClean(uint64_t addr, const uint8_t *src, unsigned n,
                     bool ghost) override
    {
        unsigned off = static_cast<unsigned>(addr % kPageBytes);
        if (off + n > kPageBytes) {
            // Page straddle: the generic deposit handles chunking and
            // produces the same counters (one range write + one
            // cap-range invalidation).
            return AbstractStore::writeScalarClean(addr, src, n, ghost);
        }
        uint64_t index = addr / kPageBytes;
        // The cache may alias a *shared* page after a snapshot();
        // only write through it when it is known uniquely owned.
        Page &p = index == cachedIndex_ && cachedWritable_
            ? *cachedPage_
            : touchPage(index);
        unsigned w = off / 64, b = off % 64;
        if (b + n <= 64) {
            uint64_t m = spanMask(b, n);
            p.present[w] |= m;
            if (p.heavy[w] & m)
                clearHeavySpan(p, off, off + n);
        } else {
            uint64_t m0 = ~uint64_t(0) << b;
            uint64_t m1 = spanMask(0, b + n - 64);
            p.present[w] |= m0;
            p.present[w + 1] |= m1;
            if ((p.heavy[w] & m0) || (p.heavy[w + 1] & m1))
                clearHeavySpan(p, off, off + n);
        }
        std::memcpy(p.value + off, src, n);
        ++stats_.rangeWrites;
        stats_.bytesWritten += n;
        // Inline the cap-slot invalidation: every granule overlapping
        // the footprint lives on this page (pages are granule-aligned)
        // and almost never carries recorded metadata.
        uint64_t first = addr & ~uint64_t(capSize_ - 1);
        uint64_t end = addr + n;
        uint64_t count = 0;
        for (uint64_t slot = first; slot < end; slot += capSize_) {
            unsigned s = static_cast<unsigned>(
                (slot % kPageBytes) >> capShift_);
            if (p.metaPresent[s] &&
                invalidateSlotMeta(p.meta[s], ghost)) {
                ++count;
            }
        }
        return count;
    }

    void readBytes(uint64_t addr, uint64_t n,
                   AbsByte *out) const override;
    void writeBytes(uint64_t addr, const AbsByte *src,
                    uint64_t n) override;
    void fillRange(uint64_t addr, uint64_t n, const AbsByte &b) override;
    void clearRange(uint64_t addr, uint64_t n) override;
    void copyRange(uint64_t dst, uint64_t src, uint64_t n) override;

    std::optional<CapMeta> capMetaAt(uint64_t slot) const override;
    void setCapMeta(uint64_t slot, const CapMeta &m) override;
    void eraseCapMeta(uint64_t slot) override;
    uint64_t invalidateCapRange(uint64_t addr, uint64_t n,
                                bool ghost) override;
    void forEachCapInRange(
        uint64_t addr, uint64_t n,
        const std::function<void(uint64_t, CapMeta &)> &visit) override;

    StoreSnapshotPtr snapshot() const override;
    void restore(const StoreSnapshotPtr &snap) override;

    /** Pages copied because they were shared at write time (COW
     *  clones).  Deliberately *not* part of StoreStats: a restored
     *  run must be counter-identical to one that never diverged, and
     *  clones happen only on the diverged side. */
    uint64_t cowClones() const { return cowClones_; }
    /** Live pages currently shared with at least one snapshot. */
    uint64_t sharedPages() const;

  private:
    /** Out-of-band part of a heavy byte (provenance / pointer index). */
    struct HeavyInfo
    {
        Provenance prov;
        std::optional<uint32_t> index;
    };

    struct Page
    {
        explicit Page(unsigned slots)
            : meta(slots), metaPresent(slots, 0)
        {
        }
        uint8_t value[kPageBytes];        // raw byte plane (masked)
        uint64_t present[kMaskWords] = {}; // bit per byte: value recorded
        uint64_t heavy[kMaskWords] = {};   // bit per byte: prov or index
        std::map<uint16_t, HeavyInfo> heavyBytes; // keyed by page offset
        std::vector<CapMeta> meta;        // one per cap slot
        std::vector<uint8_t> metaPresent;
    };

    /** Mask of @p n bits starting at bit @p b (b + n <= 64, n >= 1). */
    static uint64_t
    spanMask(unsigned b, unsigned n)
    {
        return (~uint64_t(0) >> (64 - n)) << b;
    }

    struct Snapshot; // shared page table copy; defined in store.cc

    /** Existing page or nullptr; never allocates or clones.  The
     *  returned page may be shared — mutate only through touchPage()
     *  or ensureUnique(). */
    Page *findPage(uint64_t index) const;
    /** Uniquely-owned page at @p index: materialises (and counts) a
     *  fresh page, or COW-clones a shared one. */
    Page &touchPage(uint64_t index);
    /** COW-clone @p entry if shared; refreshes the cache.  The
     *  returned reference is uniquely owned. */
    Page &ensureUnique(uint64_t index, std::shared_ptr<Page> &entry);
    /** Drop the heavy out-of-band entries of [lo, hi) (rare). */
    void clearHeavySpan(Page &p, unsigned lo, unsigned hi);
    /** The section 3.5 representation-write transition on one
     *  recorded slot; true when the slot actually changed. */
    static bool invalidateSlotMeta(CapMeta &m, bool ghost);

    /** Assemble / decompose one in-page range (no counters). */
    static void assembleBytes(const Page *p, unsigned off, unsigned n,
                              AbsByte *out);
    static void depositBytes(Page &p, unsigned off, unsigned n,
                             const AbsByte *src);

    unsigned slotsPerPage_;
    unsigned capShift_; // log2(capSize_); granule sizes are powers of 2
    std::unordered_map<uint64_t, std::shared_ptr<Page>> pages_;
    // One-entry last-page cache.  Page storage is behind shared_ptr
    // and a map entry is only replaced by a COW clone or restore(),
    // both of which refresh the cache, so the cached pointer stays
    // valid across rehashes.  cachedWritable_ records that the cached
    // page was uniquely owned when cached; snapshot() clears it (every
    // page becomes shared), so a stale `true` is impossible.
    mutable uint64_t cachedIndex_ = ~uint64_t(0);
    mutable Page *cachedPage_ = nullptr;
    mutable bool cachedWritable_ = false;
    // Sticky-true once snapshot() has ever run.  While false, no page
    // can be aliased, so every COW check (a use_count() load that
    // touches the shared_ptr control block) short-circuits and the
    // write path is identical to the pre-COW store.  It never returns
    // to false: we don't track snapshot lifetimes, and the cost once
    // snapshots exist is the COW price by design.
    mutable bool maybeShared_ = false;
    uint64_t cowClones_ = 0;
};

/** Factory used by MemoryModel::Config. */
std::unique_ptr<AbstractStore> makeStore(StoreBackend backend,
                                         unsigned cap_size);

/** Backend name for diagnostics / benchmark labels. */
const char *storeBackendName(StoreBackend backend);

} // namespace cherisem::mem

#endif // CHERISEM_MEM_STORE_H
