#include "mem/mem_value.h"

#include "cap/cap_format.h"
#include "support/format.h"

namespace cherisem::mem {

std::string
memValueStr(const MemValue &v)
{
    struct Visitor
    {
        std::string operator()(const UnspecValue &) const
        {
            return "<unspecified>";
        }
        std::string operator()(const IntegerValue &iv) const
        {
            if (iv.isCap()) {
                return "(" + iv.prov.str() + ", " +
                    cap::formatCap(*iv.cap,
                                   cap::FormatStyle::Abstract) + ")";
            }
            return decStr(iv.num);
        }
        std::string operator()(const FloatingValue &fv) const
        {
            return std::to_string(fv.value);
        }
        std::string operator()(const PointerValue &pv) const
        {
            if (pv.isNull())
                return "NULL";
            std::string body =
                cap::formatCap(*pv.cap, cap::FormatStyle::Abstract);
            if (pv.isFunc())
                return "(funptr, " + body + ")";
            return "(" + pv.prov.str() + ", " + body + ")";
        }
        std::string operator()(const ArrayValue &av) const
        {
            std::string out = "[";
            for (size_t i = 0; i < av.elems.size(); ++i) {
                if (i)
                    out += ", ";
                out += memValueStr(av.elems[i]);
            }
            return out + "]";
        }
        std::string operator()(const StructValue &sv) const
        {
            std::string out = "{";
            for (size_t i = 0; i < sv.members.size(); ++i) {
                if (i)
                    out += ", ";
                out += "." + sv.members[i].first + "=" +
                    memValueStr(sv.members[i].second);
            }
            return out + "}";
        }
        std::string operator()(const UnionValue &uv) const
        {
            return "<union:" + std::to_string(uv.bytes.size()) +
                " bytes>";
        }
    };
    return std::visit(Visitor{}, v.v);
}

} // namespace cherisem::mem
