#include "mem/memory_model.h"

#include <algorithm>
#include <cassert>

#include "support/format.h"

namespace cherisem::mem {

using cap::Capability;
using cap::Perm;
using cap::PermSet;
using ctype::TypeRef;

MemoryModel::MemoryModel(Config config)
    : config_(std::move(config)),
      tracer_(config_.traceSink),
      layout_(ctype::MachineLayout{config_.arch->capSize(),
                                   config_.arch->addrBits() / 8},
              &emptyTags_),
      store_(makeStore(config_.storeBackend, config_.arch->capSize())),
      globalPtr_(config_.globalBase),
      heapPtr_(config_.heapBase),
      stackPtr_(config_.stackBase),
      codePtr_(config_.codeBase)
{
    if (config_.storeBackend == StoreBackend::Paged)
        pagedStore_ = static_cast<PagedStore *>(store_.get());
    if (config_.revoke.enabled()) {
        // Swept footprints come back through the release callback so
        // the quarantine, not kill(), decides when an address range
        // becomes reusable.
        revoker_ = std::make_unique<revoke::RevocationEngine>(
            config_.revoke, *store_, arch(), tracer_,
            &stats_.hardTagInvalidations,
            [this](uint64_t base, uint64_t size) {
                heapFree_.emplace_back(base, size);
            });
    }
}

void
MemoryModel::setTagTable(const ctype::TagTable *tags)
{
    layout_ = ctype::LayoutEngine(layout_.machine(),
                                  tags ? tags : &emptyTags_);
}

// ---------------------------------------------------------------------
// Snapshot / restore.
// ---------------------------------------------------------------------

MemorySnapshotPtr
MemoryModel::snapshot() const
{
    auto snap = std::make_shared<MemorySnapshot>();
    snap->store = store_->snapshot();
    snap->allocations = allocations_;
    snap->iotas = iotas_;
    if (revoker_)
        snap->revoke = revoker_->capture();
    snap->nextAlloc = nextAlloc_;
    snap->globalPtr = globalPtr_;
    snap->heapPtr = heapPtr_;
    snap->stackPtr = stackPtr_;
    snap->codePtr = codePtr_;
    snap->heapFree = heapFree_;
    snap->functionsByAddr = functionsByAddr_;
    snap->stats = stats_;
    return snap;
}

void
MemoryModel::restore(const MemorySnapshotPtr &snap)
{
    assert(snap);
    store_->restore(snap->store);
    allocations_ = snap->allocations;
    iotas_ = snap->iotas;
    if (revoker_ && snap->revoke)
        revoker_->restoreFrom(*snap->revoke);
    nextAlloc_ = snap->nextAlloc;
    globalPtr_ = snap->globalPtr;
    heapPtr_ = snap->heapPtr;
    stackPtr_ = snap->stackPtr;
    codePtr_ = snap->codePtr;
    heapFree_ = snap->heapFree;
    functionsByAddr_ = snap->functionsByAddr;
    stats_ = snap->stats;
    // The one-entry allocation cache holds a node pointer into the
    // *previous* allocations_ map; map assignment invalidated it.
    fastAllocId_ = 0;
    fastAlloc_ = nullptr;
}

uint64_t
MemoryModel::alignUp(uint64_t v, uint64_t a) const
{
    return (v + a - 1) / a * a;
}

// ---------------------------------------------------------------------
// Allocation.
// ---------------------------------------------------------------------

MemResult<PointerValue>
MemoryModel::allocate(const std::string &prefix, uint64_t size,
                      unsigned align, AllocKind kind, bool read_only,
                      bool is_static, const TypeRef &ty)
{
    (void)ty;
    const cap::CapArch &a = arch();
    // Representability padding (section 3.2, last paragraph): the
    // allocator aligns and pads so the allocation's capability has
    // exact, non-overlapping bounds.
    uint64_t cap_len = std::max<uint64_t>(size, 1);
    uint64_t repr_len = a.representableLength(cap_len);
    uint64_t repr_mask = a.representableAlignmentMask(cap_len);
    // CRRL saturates (or truncates to 0) when no single region can
    // hold the request; without this check the allocator would carve
    // overlapping footprints out of the address space.
    if (repr_len < cap_len) {
        return Failure::constraint(
            "allocation of " + std::to_string(size) +
            " bytes exceeds the representable address space");
    }
    uint64_t eff_align = std::max<uint64_t>(align, 1);
    if (repr_mask != ~uint64_t(0))
        eff_align = std::max<uint64_t>(eff_align, ~repr_mask + 1);

    uint64_t base = 0;
    switch (kind) {
      case AllocKind::Object:
        if (is_static) {
            base = alignUp(globalPtr_, eff_align);
            globalPtr_ = base + repr_len;
        } else {
            // Stack grows down.
            uint64_t next = stackPtr_ - repr_len;
            next &= ~(eff_align - 1);
            stackPtr_ = next;
            base = next;
        }
        break;
      case AllocKind::Region: {
        // First-fit reuse from the free list, so that freed-and-
        // reallocated heap addresses can coincide (section 3.11).
        for (auto it = heapFree_.begin(); it != heapFree_.end(); ++it) {
            uint64_t fbase = alignUp(it->first, eff_align);
            if (fbase + repr_len <= it->first + it->second) {
                base = fbase;
                // Keep any tail for later reuse; drop the head slack.
                uint64_t tail_base = base + repr_len;
                uint64_t tail_size =
                    it->first + it->second - tail_base;
                heapFree_.erase(it);
                if (tail_size >= 16)
                    heapFree_.emplace_back(tail_base, tail_size);
                break;
            }
        }
        if (base == 0) {
            base = alignUp(heapPtr_, eff_align);
            heapPtr_ = base + repr_len;
        }
        break;
      }
      case AllocKind::Code:
        base = alignUp(codePtr_, std::max<uint64_t>(eff_align, 16));
        codePtr_ = base + std::max<uint64_t>(repr_len, 16);
        break;
    }

    AllocId id = nextAlloc_++;
    Allocation alloc;
    alloc.base = base;
    alloc.size = size;
    alloc.align = static_cast<unsigned>(eff_align);
    alloc.kind = kind;
    alloc.prefix = prefix;
    alloc.readOnly = read_only;
    allocations_[id] = alloc;
    ++stats_.allocations;
    if (tracer_.enabled()) {
        tracer_.emit({.kind = obs::EventKind::Alloc,
                      .addr = base,
                      .size = size,
                      .a = id,
                      .b = static_cast<uint64_t>(kind),
                      .label = prefix});
    }

    PermSet perms =
        read_only ? PermSet::readOnlyData() : PermSet::data();
    if (kind == AllocKind::Code)
        perms = PermSet::code();
    Capability c = Capability::make(a, base, uint128(base) + size,
                                    perms);
    return PointerValue::object(Provenance::alloc(id), c);
}

MemResult<PointerValue>
MemoryModel::allocateObject(const std::string &prefix, const TypeRef &ty,
                            bool read_only, bool is_static)
{
    uint64_t size = layout_.sizeOf(ty);
    unsigned align = layout_.alignOf(ty);
    return allocate(prefix, size, align, AllocKind::Object, read_only,
                    is_static, ty);
}

MemResult<PointerValue>
MemoryModel::allocateRegion(const std::string &prefix, uint64_t size,
                            unsigned align)
{
    return allocate(prefix, size,
                    std::max(align, arch().capSize()),
                    AllocKind::Region, false, false, nullptr);
}

MemResult<Unit>
MemoryModel::kill(const SourceLoc &loc, bool dyn, const PointerValue &p)
{
    if (p.isNull()) {
        if (dyn)
            return Unit{}; // free(NULL) is a no-op.
        return Failure::internal("kill of null pointer", loc);
    }
    if (!p.isObject())
        return Failure::undefined(Ub::FreeInvalidPointer, loc,
                                  "not an object pointer");

    std::optional<AllocId> id = peekProvenance(p.prov);
    if (!id) {
        // No provenance: with PNVI checks this free is UB; hardware
        // allocators would typically abort too.
        return Failure::undefined(Ub::FreeInvalidPointer, loc,
                                  "pointer has no provenance");
    }
    auto it = allocations_.find(*id);
    if (it == allocations_.end()) {
        // restore() rewinds the allocation table; a handle minted
        // after the snapshot then names no node at all.  Observably
        // that allocation no longer exists, so report the same
        // verdict the dead-allocation branch below would.
        return Failure::undefined(dyn ? Ub::DoubleFree
                                      : Ub::AccessDeadAllocation,
                                  loc, "allocation no longer exists");
    }
    Allocation &alloc = it->second;
    if (!alloc.alive) {
        return Failure::undefined(dyn ? Ub::DoubleFree
                                      : Ub::AccessDeadAllocation,
                                  loc, alloc.prefix);
    }
    if (dyn) {
        if (alloc.kind != AllocKind::Region)
            return Failure::undefined(Ub::FreeInvalidPointer, loc,
                                      "not a heap allocation");
        if (p.address() != alloc.base)
            return Failure::undefined(Ub::FreeInvalidPointer, loc,
                                      "not the start of the "
                                      "allocation");
        if (p.cap && !p.cap->tag())
            return Failure::undefined(Ub::CheriInvalidCap, loc,
                                      "free via untagged capability");
        if (revoker_) {
            // The engine quarantines the footprint (Eager flushes it
            // straight away) and releases it to heapFree_ once
            // swept; a quarantined footprint is never handed out by
            // allocate() because it is not on the free list.
            revoker_->onFree(alloc.base, alloc.size, *id);
        } else {
            heapFree_.emplace_back(alloc.base,
                                   std::max<uint64_t>(alloc.size, 1));
        }
    }
    alloc.alive = false;
    ++stats_.kills;
    if (tracer_.enabled()) {
        tracer_.emit({.kind = obs::EventKind::Free,
                      .addr = alloc.base,
                      .size = alloc.size,
                      .a = *id,
                      .b = dyn ? 1u : 0u,
                      .label = alloc.prefix});
    }
    return Unit{};
}

MemResult<PointerValue>
MemoryModel::reallocRegion(const SourceLoc &loc, const PointerValue &p,
                           uint64_t new_size)
{
    // realloc(NULL, n) is malloc(n); witness it as a Realloc (old
    // base/size 0) so every successful realloc path emits the same
    // event sequence ending in Realloc.
    if (p.isNull()) {
        CHERISEM_TRY(np, allocateRegion("realloc", new_size,
                                        arch().capSize()));
        if (tracer_.enabled()) {
            tracer_.emit({.kind = obs::EventKind::Realloc,
                          .addr = 0,
                          .size = new_size,
                          .a = 0,
                          .b = np.address()});
        }
        return np;
    }

    std::optional<AllocId> id = peekProvenance(p.prov);
    if (!id)
        return Failure::undefined(Ub::FreeInvalidPointer, loc,
                                  "realloc of unprovenanced pointer");
    auto it = allocations_.find(*id);
    if (it == allocations_.end()) {
        // See kill(): restore() can erase nodes for post-snapshot
        // allocations, and a stale handle behaves like a dead one.
        return Failure::undefined(Ub::DoubleFree, loc, "realloc");
    }
    // Validate the old pointer fully *before* allocating the new
    // region: kill() would re-check all of this, but only after the
    // new allocation and the copy had already happened — leaking the
    // new region (and its Alloc/Load/Store trace events) on every UB
    // path.
    if (!it->second.alive)
        return Failure::undefined(Ub::DoubleFree, loc, "realloc");
    if (it->second.kind != AllocKind::Region)
        return Failure::undefined(Ub::FreeInvalidPointer, loc,
                                  "not a heap allocation");
    if (p.address() != it->second.base)
        return Failure::undefined(Ub::FreeInvalidPointer, loc,
                                  "not the start of the allocation");
    if (p.cap && !p.cap->tag())
        return Failure::undefined(Ub::CheriInvalidCap, loc,
                                  "realloc via untagged capability");
    uint64_t old_size = it->second.size;
    uint64_t old_base = it->second.base;

    CHERISEM_TRY(np, allocateRegion("realloc", new_size,
                                    arch().capSize()));
    uint64_t n = std::min(old_size, new_size);
    if (n > 0) {
        MemResult<Unit> copied = memcpyOp(loc, np, p, n);
        if (!copied.ok()) {
            // The old capability can still fail the copy (e.g. its
            // Load permission was dropped).  Release the new region
            // so the failed realloc does not leak a live allocation
            // with an unmatched Alloc event, then report the copy's
            // failure.
            MemResult<Unit> freed = kill(loc, true, np);
            assert(freed.ok());
            (void)freed;
            return std::move(copied).error();
        }
    }
    CHERISEM_TRYV(kill(loc, true, p));
    if (tracer_.enabled()) {
        tracer_.emit({.kind = obs::EventKind::Realloc,
                      .addr = old_base,
                      .size = new_size,
                      .a = old_size,
                      .b = np.address()});
    }
    return np;
}

// ---------------------------------------------------------------------
// Provenance machinery (PNVI-ae-udi).
// ---------------------------------------------------------------------

void
MemoryModel::exposeAllocation(AllocId id)
{
    auto it = allocations_.find(id);
    if (it == allocations_.end())
        return;
    // Witness only the false->true transition so the event stream
    // stays independent of how often an already-exposed allocation is
    // re-exposed.
    if (!it->second.exposed && tracer_.enabled()) {
        tracer_.emit({.kind = obs::EventKind::Expose,
                      .addr = it->second.base,
                      .size = it->second.size,
                      .a = id,
                      .label = it->second.prefix});
    }
    it->second.exposed = true;
}

void
MemoryModel::exposeByteProvenance(const AbsByte &b)
{
    if (b.prov.isAlloc()) {
        exposeAllocation(b.prov.id);
    } else if (b.prov.isIota()) {
        auto [first, second] = iotas_.candidates(b.prov.id);
        exposeAllocation(first);
        if (second)
            exposeAllocation(*second);
    }
}

Provenance
MemoryModel::attachProvenance(uint64_t a)
{
    // PNVI-ae-udi: an int-to-pointer cast picks up the provenance of
    // an *exposed*, live allocation whose footprint (including
    // one-past) contains the address.  Two matches (the one-past /
    // first-byte boundary) produce a symbolic iota.
    AllocId found[2];
    int nfound = 0;
    for (const auto &[id, alloc] : allocations_) {
        if (!alloc.alive || !alloc.exposed)
            continue;
        if (alloc.containsForArith(a)) {
            if (nfound < 2)
                found[nfound] = id;
            ++nfound;
        }
    }
    Provenance prov = Provenance::empty();
    if (nfound == 1) {
        prov = Provenance::alloc(found[0]);
    } else if (nfound == 2) {
        ++stats_.iotasCreated;
        prov = Provenance::iota(iotas_.create(found[0], found[1]));
    }
    if (tracer_.enabled()) {
        tracer_.emit({.kind = obs::EventKind::Attach,
                      .addr = a,
                      .a = static_cast<uint64_t>(prov.kind),
                      .b = prov.isEmpty() ? 0 : prov.id});
    }
    return prov;
}

std::optional<AllocId>
MemoryModel::peekProvenance(const Provenance &p) const
{
    if (p.isAlloc())
        return p.id;
    if (p.isIota() && iotas_.isResolved(p.id))
        return iotas_.candidates(p.id).first;
    return std::nullopt;
}

MemResult<MemoryModel::AccessInfo>
MemoryModel::resolveForAccess(const SourceLoc &loc, const Provenance &prov,
                              uint64_t addr, uint64_t n)
{
    AccessInfo info;
    if (!config_.checkProvenance) {
        // Hardware view: no abstract provenance; capability checks
        // were already done.  Still try to find the allocation for
        // diagnostics without failing.
        for (const auto &[id, alloc] : allocations_) {
            if (alloc.alive && alloc.containsFootprint(addr, n)) {
                info.alloc = id;
                info.haveAlloc = true;
                break;
            }
        }
        return info;
    }

    AllocId id;
    if (prov.isEmpty()) {
        return Failure::undefined(Ub::AccessEmptyProvenance, loc,
                                  "address " + hexStr(addr));
    } else if (prov.isAlloc()) {
        id = prov.id;
    } else {
        // Iota: the access disambiguates (udi).
        auto [first, second] = iotas_.candidates(prov.id);
        if (!second) {
            id = first;
        } else {
            // Disambiguate by footprint containment alone.  Liveness
            // must NOT enter the choice: a dead candidate that
            // contains the footprint is the object this access is
            // *to* (the section 3.11 boundary-cast cases), and the
            // shared liveness check below then raises the precise
            // AccessDeadAllocation — not a silent resolution to the
            // surviving neighbour, nor a generic bounds failure.
            const Allocation &a1 = allocations_.at(first);
            const Allocation &a2 = allocations_.at(*second);
            bool in1 = a1.containsFootprint(addr, n);
            bool in2 = a2.containsFootprint(addr, n);
            if (in1 && in2) {
                return Failure::undefined(
                    Ub::AccessOutOfBounds, loc,
                    "ambiguous iota resolution");
            }
            if (!in1 && !in2) {
                return Failure::undefined(
                    Ub::AccessOutOfBounds, loc,
                    "address " + hexStr(addr) +
                        " in neither iota candidate");
            }
            id = in1 ? first : *second;
            iotas_.resolve(prov.id, id);
        }
    }

    auto it = allocations_.find(id);
    if (it == allocations_.end())
        return Failure::internal("unknown allocation", loc);
    const Allocation &alloc = it->second;
    if (!alloc.alive) {
        return Failure::undefined(Ub::AccessDeadAllocation, loc,
                                  alloc.prefix);
    }
    if (!alloc.containsFootprint(addr, n)) {
        return Failure::undefined(
            Ub::AccessOutOfBounds, loc,
            alloc.prefix + ": " + hexStr(addr) + "+" +
                std::to_string(n) + " outside [" + hexStr(alloc.base) +
                "," + hexStr(alloc.base + alloc.size) + ")");
    }
    info.alloc = id;
    info.haveAlloc = true;
    return info;
}

MemResult<MemoryModel::AccessInfo>
MemoryModel::accessCheck(const SourceLoc &loc, const PointerValue &p,
                         uint64_t n, unsigned align_req, bool want_store,
                         bool initializing)
{
    // Order follows the paper's load rule (section 4.3): null check,
    // then the capability bounds_check (ghost tag known, tag set,
    // permission, bounds), then the PNVI allocation checks.
    if (p.isNull())
        return Failure::undefined(Ub::NullPointerDeref, loc);
    if (p.isFunc())
        return Failure::undefined(Ub::AccessOutOfBounds, loc,
                                  "data access via function pointer");
    assert(p.cap.has_value());
    const Capability &c = *p.cap;

    if (c.ghost().tagUnspec || c.ghost().boundsUnspec) {
        return Failure::undefined(Ub::CheriUndefinedTag, loc,
                                  "capability ghost state is "
                                  "unspecified");
    }
    if (!c.tag())
        return Failure::undefined(Ub::CheriInvalidCap, loc);
    if (c.isSealed())
        return Failure::undefined(Ub::CheriSealViolation, loc);
    if (want_store ? !c.canStore() : !c.canLoad()) {
        return Failure::undefined(Ub::CheriInsufficientPermissions, loc,
                                  want_store ? "missing Store"
                                             : "missing Load");
    }
    if (!c.inBounds(c.address(), n)) {
        return Failure::undefined(
            Ub::CheriBoundsViolation, loc,
            hexStr(c.address()) + "+" + std::to_string(n) +
                " outside [" + hexStr(c.base()) + "," +
                hexStr(c.top()) + ")");
    }
    if (config_.checkAlignment && align_req > 1 &&
        (c.address() % align_req) != 0) {
        return Failure::undefined(Ub::MisalignedAccess, loc,
                                  hexStr(c.address()) + " % " +
                                      std::to_string(align_req));
    }

    CHERISEM_TRY(info,
                 resolveForAccess(loc, p.prov, c.address(), n));
    if (want_store && !initializing && info.haveAlloc &&
        allocations_.at(info.alloc).readOnly) {
        return Failure::undefined(Ub::ModifyingConstObject, loc,
                                  allocations_.at(info.alloc).prefix);
    }
    return info;
}

// ---------------------------------------------------------------------
// Pointer operations.
// ---------------------------------------------------------------------

MemResult<PointerValue>
MemoryModel::arrayShift(const SourceLoc &loc, const PointerValue &p,
                        const TypeRef &elem, __int128 idx)
{
    if (p.isFunc())
        return Failure::undefined(Ub::OutOfBoundsPtrArith, loc,
                                  "arithmetic on function pointer");
    uint64_t esize = layout_.sizeOf(elem);
    __int128 delta = idx * static_cast<__int128>(esize);

    if (p.isNull()) {
        if (delta == 0)
            return p;
        return Failure::undefined(Ub::OutOfBoundsPtrArith, loc,
                                  "arithmetic on null pointer");
    }

    const Capability &c = *p.cap;
    uint64_t new_addr =
        static_cast<uint64_t>(static_cast<__int128>(c.address()) +
                              delta);

    // The strict ISO rule (section 3.2, option (a)): the result must
    // stay within [base, one-past] of the provenance allocation.
    if (config_.strictPtrArith && config_.checkProvenance) {
        std::optional<AllocId> id = peekProvenance(p.prov);
        if (id) {
            const Allocation &alloc = allocations_.at(*id);
            if (!alloc.containsForArith(new_addr)) {
                return Failure::undefined(
                    Ub::OutOfBoundsPtrArith, loc,
                    alloc.prefix + ": " + hexStr(new_addr) +
                        " outside [" + hexStr(alloc.base) + "," +
                        hexStr(alloc.base + alloc.size) + "]");
            }
        }
    }

    // Hardware address update (may clear the tag on
    // non-representability).
    Capability nc = c.withAddress(new_addr);
    PointerValue out = p;
    out.cap = nc;
    return out;
}

MemResult<PointerValue>
MemoryModel::memberShift(const SourceLoc &loc, const PointerValue &p,
                         ctype::TagId tag, const std::string &member)
{
    ctype::FieldLoc fl = layout_.fieldOf(tag, member);
    if (!fl.found)
        return Failure::internal("no such member: " + member, loc);
    if (p.isNull()) {
        // offsetof-style computation on null: produce a null-derived
        // pointer at the offset (used by the offsetof builtin).
        PointerValue out = p;
        out.kind = PointerValue::Kind::Object;
        out.cap = p.cap->withAddress(fl.offset);
        return out;
    }
    PointerValue out = p;
    uint64_t member_addr = p.cap->address() + fl.offset;
    if (config_.subobjectBounds && p.cap->tag() &&
        !p.cap->isSealed()) {
        // Opt-in stricter mode (section 3.8): narrow the capability
        // to exactly the member's footprint.
        uint64_t msize = layout_.sizeOf(fl.type);
        out.cap = p.cap->withAddress(member_addr)
                      .withBounds(member_addr,
                                  uint128(member_addr) + msize);
        return out;
    }
    out.cap = p.cap->withAddress(member_addr);
    return out;
}

MemResult<bool>
MemoryModel::ptrEq(const PointerValue &a, const PointerValue &b)
{
    // Section 3.6, option (3): equality of address fields only.
    return a.address() == b.address();
}

MemResult<bool>
MemoryModel::ptrRelational(const SourceLoc &loc, RelOp op,
                           const PointerValue &a, const PointerValue &b)
{
    if (config_.checkProvenance) {
        std::optional<AllocId> ia = peekProvenance(a.prov);
        std::optional<AllocId> ib = peekProvenance(b.prov);
        if (!a.isNull() && !b.isNull() && (!ia || !ib || *ia != *ib)) {
            return Failure::undefined(Ub::RelationalDifferentObjects,
                                      loc);
        }
    }
    uint64_t x = a.address();
    uint64_t y = b.address();
    switch (op) {
      case RelOp::Lt: return x < y;
      case RelOp::Gt: return x > y;
      case RelOp::Le: return x <= y;
      case RelOp::Ge: return x >= y;
    }
    return false;
}

MemResult<IntegerValue>
MemoryModel::ptrDiff(const SourceLoc &loc, const TypeRef &elem,
                     const PointerValue &a, const PointerValue &b)
{
    if (config_.checkProvenance) {
        std::optional<AllocId> ia = peekProvenance(a.prov);
        std::optional<AllocId> ib = peekProvenance(b.prov);
        if (!ia || !ib || *ia != *ib)
            return Failure::undefined(Ub::PtrDiffDifferentObjects, loc);
    }
    __int128 diff = static_cast<__int128>(a.address()) -
        static_cast<__int128>(b.address());
    uint64_t esize = layout_.sizeOf(elem);
    return IntegerValue::ofNum(ctype::IntKind::Long,
                               diff / static_cast<__int128>(esize));
}

bool
MemoryModel::validForDeref(const PointerValue &p, uint64_t size) const
{
    if (!p.isObject() || !p.cap)
        return false;
    const Capability &c = *p.cap;
    return c.tag() && !c.ghost().any() && !c.isSealed() &&
        c.inBounds(c.address(), size);
}

// ---------------------------------------------------------------------
// Pointer/integer conversions.
// ---------------------------------------------------------------------

MemResult<IntegerValue>
MemoryModel::intFromPtr(const SourceLoc &loc, ctype::IntKind dst,
                        const PointerValue &p)
{
    (void)loc;
    // PNVI-ae: the cast exposes the allocation's address.
    if (config_.checkProvenance) {
        if (p.prov.isAlloc()) {
            exposeAllocation(p.prov.id);
        } else if (p.prov.isIota()) {
            auto [first, second] = iotas_.candidates(p.prov.id);
            exposeAllocation(first);
            if (second)
                exposeAllocation(*second);
        }
    }

    if (dst == ctype::IntKind::Intptr || dst == ctype::IntKind::Uintptr) {
        // The whole capability is the integer value (section 3.3).
        return IntegerValue::ofCap(dst, *p.cap, p.prov);
    }

    // Narrowing to a plain integer: the address value, truncated to
    // the destination's width (implementation-defined, not UB).
    uint64_t a = p.address();
    unsigned bits = layout_.intValueBytes(dst) * 8;
    __int128 v = a;
    if (bits < 128) {
        uint128 mask = (uint128(1) << bits) - 1;
        v = static_cast<__int128>(uint128(a) & mask);
        if (ctype::isSignedIntKind(dst) &&
            (uint128(v) >> (bits - 1)) != 0) {
            v -= static_cast<__int128>(uint128(1) << bits);
        }
    }
    return IntegerValue::ofNum(dst, v);
}

MemResult<PointerValue>
MemoryModel::ptrFromInt(const SourceLoc &loc, const IntegerValue &iv)
{
    (void)loc;
    const cap::CapArch &a = arch();
    if (iv.isCap()) {
        // (u)intptr_t -> pointer: a capability no-op (sections 3.3,
        // 3.4); ghost state travels with the value.
        const Capability &c = *iv.cap;
        if (!c.tag() && !c.ghost().any() && c.address() == 0 &&
            iv.prov.isEmpty()) {
            return PointerValue::null(a);
        }
        if (auto func = functionAt(c.address());
            func && c.isSentry()) {
            return PointerValue::function(*func, c);
        }
        return PointerValue::object(iv.prov, c);
    }

    uint64_t addr = static_cast<uint64_t>(iv.num) & a.addrMask();
    if (addr == 0)
        return PointerValue::null(a);
    // A pure integer can never materialise a valid capability: the
    // result is a null-derived, untagged capability.  PNVI-ae-udi
    // still attaches abstract provenance from exposed allocations.
    Capability c = Capability::null(a).withAddress(addr);
    Provenance prov = config_.checkProvenance ? attachProvenance(addr)
                                              : Provenance::empty();
    return PointerValue::object(prov, c);
}

// ---------------------------------------------------------------------
// Function pointers.
// ---------------------------------------------------------------------

PointerValue
MemoryModel::makeFunctionPointer(uint32_t func_id,
                                 const std::string &name)
{
    for (const auto &[addr, id] : functionsByAddr_) {
        if (id == func_id) {
            auto it = std::find_if(
                allocations_.begin(), allocations_.end(),
                [&](const auto &kv) {
                    return kv.second.kind == AllocKind::Code &&
                        kv.second.base == addr;
                });
            assert(it != allocations_.end());
            Capability c = Capability::make(
                arch(), addr, uint128(addr) + it->second.size,
                PermSet::code());
            return PointerValue::function(
                func_id, c.sealed(cap::OTYPE_SENTRY));
        }
    }
    MemResult<PointerValue> p =
        allocate(name, 16, 16, AllocKind::Code, true, true, nullptr);
    assert(p.ok());
    uint64_t addr = p.value().address();
    functionsByAddr_[addr] = func_id;
    Capability c = p.value().cap->sealed(cap::OTYPE_SENTRY);
    return PointerValue::function(func_id, c);
}

std::optional<uint32_t>
MemoryModel::functionAt(uint64_t addr) const
{
    auto it = functionsByAddr_.find(addr);
    if (it == functionsByAddr_.end())
        return std::nullopt;
    return it->second;
}

// ---------------------------------------------------------------------
// Introspection.
// ---------------------------------------------------------------------

const Allocation *
MemoryModel::findAllocation(AllocId id) const
{
    auto it = allocations_.find(id);
    return it == allocations_.end() ? nullptr : &it->second;
}

std::optional<uint8_t>
MemoryModel::peekByte(uint64_t addr) const
{
    AbsByte b;
    store_->readBytes(addr, 1, &b);
    return b.value;
}

CapMeta
MemoryModel::peekCapMeta(uint64_t addr) const
{
    uint64_t slot = addr / arch().capSize() * arch().capSize();
    return store_->capMetaAt(slot).value_or(CapMeta{});
}

size_t
MemoryModel::liveAllocationCount() const
{
    size_t n = 0;
    for (const auto &[id, alloc] : allocations_) {
        if (alloc.alive)
            ++n;
    }
    return n;
}

} // namespace cherisem::mem
