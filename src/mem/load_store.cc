/**
 * @file
 * Typed load/store (the paper's load rule, section 4.3), the
 * abst()/repr() value<->representation functions, and the
 * capability-preserving bulk operations (section 3.5).
 *
 * All byte and capability-metadata access goes through the
 * AbstractStore range primitives (mem/store.h); this file owns the
 * *policy* (ghost-state transitions, slot carry rules) and the store
 * owns the mechanics.
 */
#include <algorithm>
#include <cassert>
#include <cstring>
#include <vector>

#include "mem/memory_model.h"
#include "support/format.h"

namespace cherisem::mem {

using cap::Capability;
using ctype::IntKind;
using ctype::Type;
using ctype::TypeRef;

/** Upper bound on a scalar representation: the widest integer
 *  (uintcap) and the pointer representation are both one capability,
 *  at most 16 bytes on any supported format.  Scalar abst()/repr()
 *  paths stage bytes in stack buffers of this size instead of
 *  heap-allocating a std::vector per access. */
constexpr unsigned kMaxScalarBytes = 16;

// ---------------------------------------------------------------------
// Capability metadata helpers.
// ---------------------------------------------------------------------

void
MemoryModel::writeCapability(uint64_t addr, const Capability &c,
                             const Provenance &prov)
{
    unsigned n = arch().capSize();
    assert(n <= kMaxScalarBytes);
    uint8_t repr[kMaxScalarBytes];
    arch().toBytes(c, repr);
    AbsByte bs[kMaxScalarBytes];
    for (unsigned i = 0; i < n; ++i)
        bs[i] = AbsByte{prov, repr[i], i};
    store_->writeBytes(addr, bs, n);
    assert(addr % n == 0);
    store_->setCapMeta(addr, CapMeta{c.tag(), c.ghost()});
}

void
MemoryModel::invalidateCapMeta(uint64_t addr, uint64_t n)
{
    // Section 3.5: a non-capability write marks previously set tags
    // *unspecified* in ghost state (so optimisations that remove the
    // write stay sound); the hardware view deterministically clears.
    uint64_t touched =
        store_->invalidateCapRange(addr, n, config_.ghostState);
    if (config_.ghostState)
        stats_.ghostTagInvalidations += touched;
    else
        stats_.hardTagInvalidations += touched;
    // Witness the transition only when some stored capability was
    // actually affected — a representation write over plain data is
    // not an observable capability effect.
    if (touched > 0 && tracer_.enabled()) {
        tracer_.emit({.kind = config_.ghostState
                          ? obs::EventKind::GhostMark
                          : obs::EventKind::TagClear,
                      .addr = addr,
                      .size = n,
                      .a = touched,
                      .label = "repr-write"});
    }
}

void
MemoryModel::copyBytesAndMeta(uint64_t d, uint64_t s, uint64_t n)
{
    // Capability metadata: a destination slot receives the source
    // slot's tag/ghost only if it is fully covered by the copy and
    // the copy is capability-aligned; any partially covered slot is
    // invalidated like a representation write (section 3.5).
    //
    // Every source-slot read is staged *before* any write so the
    // routine is correct for overlapping ranges (memmove) — the same
    // discipline copyRange applies to the abstract bytes.
    unsigned cs = arch().capSize();
    struct SlotPlan
    {
        uint64_t slot;
        bool carry;
        std::optional<CapMeta> meta; // staged source meta when carried
        uint64_t lo, hi;             // partial coverage to invalidate
    };
    std::vector<SlotPlan> plan;
    uint64_t first = d / cs * cs;
    for (uint64_t slot = first; slot < d + n; slot += cs) {
        bool fully = slot >= d && slot + cs <= d + n;
        bool aligned_pair = ((slot - d + s) % cs) == 0;
        if (fully && aligned_pair) {
            plan.push_back({slot, true,
                            store_->capMetaAt(slot - d + s), 0, 0});
        } else {
            uint64_t lo = std::max(slot, d);
            uint64_t hi = std::min(slot + cs, d + n);
            plan.push_back({slot, false, std::nullopt, lo, hi});
        }
    }

    // Copy the abstract bytes verbatim (provenance and pointer
    // indices travel with them); copyRange is overlap-safe.
    store_->copyRange(d, s, n);

    for (const SlotPlan &sp : plan) {
        if (sp.carry) {
            if (sp.meta)
                store_->setCapMeta(sp.slot, *sp.meta);
            else
                store_->eraseCapMeta(sp.slot);
        } else if (sp.lo < sp.hi) {
            invalidateCapMeta(sp.lo, sp.hi - sp.lo);
        }
    }
}

// ---------------------------------------------------------------------
// repr(): value -> representation.
// ---------------------------------------------------------------------

MemResult<Unit>
MemoryModel::reprValue(const SourceLoc &loc, uint64_t addr, const TypeRef &ty,
                       const MemValue &v)
{
    uint64_t n = layout_.sizeOf(ty);

    if (v.isUnspec()) {
        store_->clearRange(addr, n);
        invalidateCapMeta(addr, n);
        return Unit{};
    }

    switch (ty->kind) {
      case Type::Kind::Integer: {
        if (!v.isInteger())
            return Failure::internal("repr: integer expected", loc);
        const IntegerValue &iv = v.asInteger();
        if (ty->isCapInteger()) {
            if (!iv.isCap())
                return Failure::internal("repr: capability integer "
                                         "without capability", loc);
            if (addr % arch().capSize() != 0) {
                // Can only happen with alignment checks off: the
                // representation is stored, the tag cannot be.
                uint8_t repr[kMaxScalarBytes];
                arch().toBytes(*iv.cap, repr);
                AbsByte bs[kMaxScalarBytes];
                for (uint64_t i = 0; i < n; ++i) {
                    bs[i] = AbsByte{iv.prov, repr[i],
                                    static_cast<uint32_t>(i)};
                }
                store_->writeBytes(addr, bs, n);
                invalidateCapMeta(addr, n);
                return Unit{};
            }
            writeCapability(addr, *iv.cap, iv.prov);
            return Unit{};
        }
        uint128 raw = static_cast<uint128>(iv.value());
        if (n == 1 && iv.byteCopy && iv.byteCopy->value &&
            *iv.byteCopy->value == static_cast<uint8_t>(raw)) {
            // Byte-wise copy of (possibly) capability representation
            // bytes: write the original abstract byte back verbatim,
            // preserving provenance and pointer index so a later
            // pointer-typed load can recognise the copy (PNVI /
            // section 3.5).
            store_->writeByte(addr, *iv.byteCopy);
            invalidateCapMeta(addr, 1);
            return Unit{};
        }
        assert(n <= kMaxScalarBytes);
        AbsByte bs[kMaxScalarBytes];
        for (uint64_t i = 0; i < n; ++i) {
            bs[i] = AbsByte{Provenance::empty(),
                            static_cast<uint8_t>(raw >> (8 * i)),
                            std::nullopt};
        }
        store_->writeBytes(addr, bs, n);
        invalidateCapMeta(addr, n);
        return Unit{};
      }

      case Type::Kind::Floating: {
        if (!v.isFloating())
            return Failure::internal("repr: float expected", loc);
        double d = v.asFloating().value;
        uint8_t buf[8];
        uint64_t m = n;
        if (ty->floatKind == ctype::FloatKind::Float) {
            float f = static_cast<float>(d);
            std::memcpy(buf, &f, 4);
        } else {
            std::memcpy(buf, &d, 8);
        }
        AbsByte bs[8];
        for (uint64_t i = 0; i < m; ++i)
            bs[i] = AbsByte{Provenance::empty(), buf[i], std::nullopt};
        store_->writeBytes(addr, bs, m);
        invalidateCapMeta(addr, n);
        return Unit{};
      }

      case Type::Kind::Pointer: {
        if (!v.isPointer())
            return Failure::internal("repr: pointer expected", loc);
        const PointerValue &pv = v.asPointer();
        assert(pv.cap.has_value());
        if (addr % arch().capSize() != 0) {
            uint8_t repr[kMaxScalarBytes];
            arch().toBytes(*pv.cap, repr);
            AbsByte bs[kMaxScalarBytes];
            for (uint64_t i = 0; i < n; ++i) {
                bs[i] = AbsByte{pv.prov, repr[i],
                                static_cast<uint32_t>(i)};
            }
            store_->writeBytes(addr, bs, n);
            invalidateCapMeta(addr, n);
            return Unit{};
        }
        writeCapability(addr, *pv.cap, pv.prov);
        return Unit{};
      }

      case Type::Kind::Array: {
        const auto *av = std::get_if<ArrayValue>(&v.v);
        if (!av)
            return Failure::internal("repr: array expected", loc);
        uint64_t esize = layout_.sizeOf(ty->element);
        for (uint64_t i = 0; i < ty->arraySize; ++i) {
            if (i < av->elems.size()) {
                CHERISEM_TRYV(reprValue(loc, addr + i * esize,
                                        ty->element, av->elems[i]));
            } else {
                CHERISEM_TRYV(reprValue(loc, addr + i * esize,
                                        ty->element, MemValue()));
            }
        }
        return Unit{};
      }

      case Type::Kind::StructOrUnion: {
        const ctype::TagDef &def = layout_.tags()->get(ty->tag);
        if (def.isUnion) {
            const auto *uv = std::get_if<UnionValue>(&v.v);
            if (!uv)
                return Failure::internal("repr: union expected", loc);
            uint64_t m = std::min<uint64_t>(n, uv->bytes.size());
            if (m > 0)
                store_->writeBytes(addr, uv->bytes.data(), m);
            invalidateCapMeta(addr, n);
            // Re-deposit capability metadata for aligned slots.
            for (const auto &[off, meta] : uv->metas) {
                if ((addr + off) % arch().capSize() == 0)
                    store_->setCapMeta(addr + off, meta);
            }
            return Unit{};
        }
        const auto *sv = std::get_if<StructValue>(&v.v);
        if (!sv)
            return Failure::internal("repr: struct expected", loc);
        for (const auto &[name, mv] : sv->members) {
            ctype::FieldLoc fl = layout_.fieldOf(ty->tag, name);
            if (!fl.found)
                return Failure::internal("repr: no member " + name,
                                         loc);
            CHERISEM_TRYV(reprValue(loc, addr + fl.offset, fl.type,
                                    mv));
        }
        return Unit{};
      }

      default:
        return Failure::internal("repr: cannot represent type", loc);
    }
}

// ---------------------------------------------------------------------
// abst(): representation -> value.
// ---------------------------------------------------------------------

MemResult<MemValue>
MemoryModel::abstValue(const SourceLoc &loc, uint64_t addr, const TypeRef &ty)
{
    uint64_t n = layout_.sizeOf(ty);

    // Scalar cases stage into caller-provided stack buffers (their
    // footprint is <= kMaxScalarBytes); only the union case below
    // reads into a vector, its footprint being unbounded.
    auto read_into = [&](uint64_t a, uint64_t count,
                         AbsByte *out) -> bool {
        store_->readBytes(a, count, out);
        bool all_present = true;
        for (uint64_t i = 0; i < count; ++i) {
            if (!out[i].value)
                all_present = false;
        }
        if (!all_present && !config_.readUninitIsUb) {
            // Hardware view: memory always holds *some* byte; model
            // it as zero so concrete profiles read deterministically.
            for (uint64_t i = 0; i < count; ++i) {
                if (!out[i].value)
                    out[i].value = 0;
            }
            return true;
        }
        return all_present;
    };

    switch (ty->kind) {
      case Type::Kind::Integer: {
        assert(n <= kMaxScalarBytes);
        AbsByte bs[kMaxScalarBytes];
        bool present = read_into(addr, n, bs);
        if (!present) {
            if (config_.readUninitIsUb) {
                return Failure::undefined(Ub::ReadUninitialized, loc,
                                          "at " + hexStr(addr));
            }
            return MemValue(UnspecValue{ty});
        }

        if (ty->isCapInteger()) {
            uint8_t raw[kMaxScalarBytes];
            Provenance prov = bs[0].prov;
            bool prov_ok = true;
            for (uint64_t i = 0; i < n; ++i) {
                raw[i] = *bs[i].value;
                if (!(bs[i].prov == prov) || !bs[i].index ||
                    *bs[i].index != i) {
                    prov_ok = false;
                }
            }
            bool aligned = addr % arch().capSize() == 0;
            std::optional<CapMeta> meta_opt =
                aligned ? store_->capMetaAt(addr) : std::nullopt;
            CapMeta meta = meta_opt.value_or(CapMeta{});
            cap::GhostState ghost =
                aligned ? meta.ghost : cap::GhostState{};
            if (config_.ghostState && prov_ok && !prov.isEmpty() &&
                aligned && !meta_opt) {
                // The bytes are a verbatim copy of some capability's
                // representation made with non-capability stores: an
                // optimiser may turn that copy into a tag-preserving
                // one (section 3.5), so the tag is unspecified.
                ghost.tagUnspec = true;
            }
            Capability c =
                arch().fromBytes(raw, aligned && meta.tag);
            c = c.withGhost(ghost);
            return MemValue(IntegerValue::ofCap(
                ty->intKind, c,
                prov_ok ? prov : Provenance::empty()));
        }

        // The load rule's expose step (2f): reading pointer bytes at
        // a non-pointer integer type taints/exposes their
        // allocations.
        if (config_.checkProvenance) {
            for (uint64_t i = 0; i < n; ++i)
                exposeByteProvenance(bs[i]);
        }

        uint128 raw = 0;
        for (uint64_t i = 0; i < n; ++i)
            raw |= uint128(*bs[i].value) << (8 * i);
        __int128 num = static_cast<__int128>(raw);
        unsigned bits = static_cast<unsigned>(n) * 8;
        if (ctype::isSignedIntKind(ty->intKind) && bits < 128 &&
            ((raw >> (bits - 1)) & 1)) {
            num -= static_cast<__int128>(uint128(1) << bits);
        }
        if (ty->intKind == IntKind::Bool && raw > 1) {
            // The ISO trap-representation UB the paper lists
            // (UB012): _Bool has trap representations.
            return Failure::undefined(
                Ub::LvalueReadTrapRepresentation, loc);
        }
        IntegerValue out = IntegerValue::ofNum(ty->intKind, num);
        if (n == 1)
            out.byteCopy = bs[0];
        return MemValue(out);
      }

      case Type::Kind::Floating: {
        assert(n <= 8);
        AbsByte bs[8];
        if (!read_into(addr, n, bs)) {
            if (config_.readUninitIsUb) {
                return Failure::undefined(Ub::ReadUninitialized, loc,
                                          "at " + hexStr(addr));
            }
            return MemValue(UnspecValue{ty});
        }
        uint8_t buf[8] = {};
        for (uint64_t i = 0; i < n && i < 8; ++i)
            buf[i] = *bs[i].value;
        FloatingValue fv;
        fv.kind = ty->floatKind;
        if (ty->floatKind == ctype::FloatKind::Float) {
            float f;
            std::memcpy(&f, buf, 4);
            fv.value = f;
        } else {
            std::memcpy(&fv.value, buf, 8);
        }
        return MemValue(fv);
      }

      case Type::Kind::Pointer: {
        assert(n <= kMaxScalarBytes);
        AbsByte bs[kMaxScalarBytes];
        if (!read_into(addr, n, bs)) {
            if (config_.readUninitIsUb) {
                return Failure::undefined(Ub::ReadUninitialized, loc,
                                          "at " + hexStr(addr));
            }
            return MemValue(UnspecValue{ty});
        }
        uint8_t raw[kMaxScalarBytes];
        Provenance prov = bs[0].prov;
        bool prov_ok = true;
        for (uint64_t i = 0; i < n; ++i) {
            raw[i] = *bs[i].value;
            if (!(bs[i].prov == prov) || !bs[i].index ||
                *bs[i].index != i) {
                prov_ok = false;
            }
        }
        bool aligned = addr % arch().capSize() == 0;
        std::optional<CapMeta> meta_opt =
            aligned ? store_->capMetaAt(addr) : std::nullopt;
        CapMeta meta = meta_opt.value_or(CapMeta{});
        cap::GhostState ghost =
            aligned ? meta.ghost : cap::GhostState{};
        if (config_.ghostState && prov_ok && !prov.isEmpty() &&
            aligned && !meta_opt) {
            // See the capability-integer case above (section 3.5).
            ghost.tagUnspec = true;
        }
        if (!prov_ok)
            prov = Provenance::empty();
        Capability c = arch().fromBytes(raw, aligned && meta.tag);
        c = c.withGhost(ghost);

        if (!c.tag() && !c.ghost().any() && c.address() == 0 &&
            prov.isEmpty()) {
            return MemValue(PointerValue::null(arch()));
        }
        if (auto func = functionAt(c.address());
            func && c.isSentry()) {
            return MemValue(PointerValue::function(*func, c));
        }
        return MemValue(PointerValue::object(prov, c));
      }

      case Type::Kind::Array: {
        ArrayValue av;
        av.element = ty->element;
        uint64_t esize = layout_.sizeOf(ty->element);
        av.elems.reserve(ty->arraySize);
        for (uint64_t i = 0; i < ty->arraySize; ++i) {
            CHERISEM_TRY(ev,
                         abstValue(loc, addr + i * esize, ty->element));
            av.elems.push_back(std::move(ev));
        }
        return MemValue(std::move(av));
      }

      case Type::Kind::StructOrUnion: {
        const ctype::TagDef &def = layout_.tags()->get(ty->tag);
        if (def.isUnion) {
            UnionValue uv;
            uv.tag = ty->tag;
            std::vector<AbsByte> bs(n);
            read_into(addr, n, bs.data());
            uv.bytes = std::move(bs);
            unsigned cs = arch().capSize();
            for (uint64_t off = 0; off + cs <= n; off += cs) {
                if ((addr + off) % cs == 0) {
                    if (std::optional<CapMeta> m =
                            store_->capMetaAt(addr + off)) {
                        uv.metas.emplace_back(off, *m);
                    }
                }
            }
            return MemValue(std::move(uv));
        }
        StructValue sv;
        sv.tag = ty->tag;
        for (const ctype::Member &m : def.members) {
            ctype::FieldLoc fl = layout_.fieldOf(ty->tag, m.name);
            CHERISEM_TRY(mv, abstValue(loc, addr + fl.offset, fl.type));
            sv.members.emplace_back(m.name, std::move(mv));
        }
        return MemValue(std::move(sv));
      }

      default:
        return Failure::internal("abst: cannot load type", loc);
    }
}

// ---------------------------------------------------------------------
// Typed load/store.
// ---------------------------------------------------------------------

/** Pack the capability metadata at @p addr (if the footprint holds a
 *  whole, aligned slot) for the Load/Store event payload:
 *  bit0 = slot metadata present, bit1 = tag, bits 2-3 = ghost. */
uint64_t
MemoryModel::packedCapMeta(uint64_t addr, uint64_t n) const
{
    unsigned cs = arch().capSize();
    if (addr % cs != 0 || n < cs)
        return 0;
    std::optional<CapMeta> meta = store_->capMetaAt(addr);
    if (!meta)
        return 0;
    return 1u | (meta->tag ? 2u : 0u) |
        (meta->ghost.tagUnspec ? 4u : 0u) |
        (meta->ghost.boundsUnspec ? 8u : 0u);
}

MemResult<MemValue>
MemoryModel::slowLoad(const SourceLoc &loc, const TypeRef &ty,
                      const PointerValue &p, uint64_t n, unsigned align)
{
    CHERISEM_TRY(info,
                 accessCheck(loc, p, n, align, /*want_store=*/false));
    ++stats_.loads;
    if (tracer_.enabled()) {
        tracer_.emit({.kind = obs::EventKind::Load,
                      .addr = p.address(),
                      .size = n,
                      .a = info.haveAlloc ? info.alloc : 0,
                      .b = packedCapMeta(p.address(), n)});
    }
    return abstValue(loc, p.address(), ty);
}

MemResult<Unit>
MemoryModel::slowStore(const SourceLoc &loc, const TypeRef &ty,
                       const PointerValue &p, const MemValue &v,
                       bool initializing, uint64_t n, unsigned align)
{
    CHERISEM_TRY(info,
                 accessCheck(loc, p, n, align, /*want_store=*/true,
                             initializing));
    ++stats_.stores;
    CHERISEM_TRYV(reprValue(loc, p.address(), ty, v));
    // Witness after the write so the packed metadata reflects the
    // stored value (tag deposited or invalidated per section 3.5).
    if (tracer_.enabled()) {
        tracer_.emit({.kind = obs::EventKind::Store,
                      .addr = p.address(),
                      .size = n,
                      .a = info.haveAlloc ? info.alloc : 0,
                      .b = packedCapMeta(p.address(), n)});
    }
    return Unit{};
}

// ---------------------------------------------------------------------
// Bulk operations.
// ---------------------------------------------------------------------

MemResult<Unit>
MemoryModel::memcpyOp(const SourceLoc &loc, const PointerValue &dst,
                      const PointerValue &src, uint64_t n)
{
    if (n == 0)
        return Unit{};
    CHERISEM_TRYV(accessCheck(loc, src, n, 1, false));
    CHERISEM_TRYV(accessCheck(loc, dst, n, 1, true));
    uint64_t s = src.address();
    uint64_t d = dst.address();
    if ((s < d && s + n > d) || (d < s && d + n > s) || s == d) {
        if (s == d)
            return Unit{}; // Degenerate self-copy: nothing to do.
        return Failure::undefined(Ub::MemcpyOverlap, loc);
    }
    copyBytesAndMeta(d, s, n);
    return Unit{};
}

MemResult<Unit>
MemoryModel::memmoveOp(const SourceLoc &loc, const PointerValue &dst,
                       const PointerValue &src, uint64_t n)
{
    if (n == 0)
        return Unit{};
    CHERISEM_TRYV(accessCheck(loc, src, n, 1, false));
    CHERISEM_TRYV(accessCheck(loc, dst, n, 1, true));
    uint64_t s = src.address();
    uint64_t d = dst.address();
    if (s == d)
        return Unit{};
    // Overlap is fine: copyBytesAndMeta stages all source state
    // (bytes and capability metadata) before writing.
    copyBytesAndMeta(d, s, n);
    return Unit{};
}

MemResult<IntegerValue>
MemoryModel::memcmpOp(const SourceLoc &loc, const PointerValue &a,
                      const PointerValue &b, uint64_t n)
{
    CHERISEM_TRYV(accessCheck(loc, a, n, 1, false));
    CHERISEM_TRYV(accessCheck(loc, b, n, 1, false));
    std::vector<AbsByte> ba(n), bb(n);
    store_->readBytes(a.address(), n, ba.data());
    store_->readBytes(b.address(), n, bb.data());
    for (uint64_t i = 0; i < n; ++i) {
        bool ua = !ba[i].value;
        bool ub_ = !bb[i].value;
        if (ua || ub_) {
            if (config_.readUninitIsUb) {
                return Failure::undefined(Ub::ReadUninitialized, loc,
                                          "memcmp of uninitialized "
                                          "bytes");
            }
            continue; // Hardware view: garbage compares as equal-ish.
        }
        uint8_t x = *ba[i].value;
        uint8_t y = *bb[i].value;
        if (x != y) {
            return IntegerValue::ofNum(IntKind::Int,
                                       x < y ? -1 : 1);
        }
    }
    return IntegerValue::ofNum(IntKind::Int, 0);
}

MemResult<Unit>
MemoryModel::memsetOp(const SourceLoc &loc, const PointerValue &dst,
                      uint8_t byte, uint64_t n, bool initializing)
{
    if (n == 0)
        return Unit{};
    CHERISEM_TRYV(accessCheck(loc, dst, n, 1, true, initializing));
    uint64_t d = dst.address();
    store_->fillRange(d, n,
                      AbsByte{Provenance::empty(), byte, std::nullopt});
    invalidateCapMeta(d, n);
    return Unit{};
}

} // namespace cherisem::mem
