#include "mem/provenance.h"

#include <cassert>

namespace cherisem::mem {

std::string
Provenance::str() const
{
    switch (kind) {
      case Kind::Empty:
        return "@empty";
      case Kind::Alloc:
        return "@" + std::to_string(id);
      case Kind::Iota:
        return "@iota" + std::to_string(id);
    }
    return "@?";
}

IotaId
IotaTable::create(AllocId a, AllocId b)
{
    IotaId id = next_++;
    entries_[id] = Entry{a, b};
    return id;
}

std::pair<AllocId, std::optional<AllocId>>
IotaTable::candidates(IotaId i) const
{
    auto it = entries_.find(i);
    assert(it != entries_.end() && "unknown iota");
    return {it->second.first, it->second.second};
}

void
IotaTable::resolve(IotaId i, AllocId winner)
{
    auto it = entries_.find(i);
    assert(it != entries_.end() && "unknown iota");
    assert((it->second.first == winner ||
            (it->second.second && *it->second.second == winner)) &&
           "resolving iota to a non-candidate");
    it->second.first = winner;
    it->second.second.reset();
}

bool
IotaTable::isResolved(IotaId i) const
{
    auto it = entries_.find(i);
    assert(it != entries_.end() && "unknown iota");
    return !it->second.second.has_value();
}

} // namespace cherisem::mem
