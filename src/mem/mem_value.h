/**
 * @file
 * Abstract memory values (the Cerberus "mem_value" universe).
 *
 * The key CHERI C twist (section 4.3):
 *
 *     integer_value  =  Z  (+)  (signedness x Capability)
 *
 * i.e. values of (u)intptr_t are full capabilities (with a PNVI
 * provenance alongside), so pointer -> (u)intptr_t -> pointer round
 * trips preserve every capability field (sections 3.3, 3.4).
 */
#ifndef CHERISEM_MEM_MEM_VALUE_H
#define CHERISEM_MEM_MEM_VALUE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "cap/capability.h"
#include "ctype/ctype.h"
#include "mem/provenance.h"

namespace cherisem::mem {

using cap::Capability;

/** One byte of abstract memory (the paper's AbsByte): provenance, an
 *  optional byte value (absent = uninitialised), and an optional index
 *  within a stored capability representation (for pointer-copy
 *  detection, PNVI). */
struct AbsByte
{
    Provenance prov;
    std::optional<uint8_t> value;
    std::optional<uint32_t> index;
};

/** Per-capability-slot out-of-band metadata (the C dictionary of the
 *  memory state): the tag plus the two-bit ghost state. */
struct CapMeta
{
    bool tag = false;
    cap::GhostState ghost;
};

/**
 * An integer value: either a pure mathematical integer, or — for the
 * capability-carrying (u)intptr_t types — a capability plus
 * provenance.
 */
struct IntegerValue
{
    ctype::IntKind kind = ctype::IntKind::Int;
    /** Numeric value when this is a pure integer. */
    __int128 num = 0;
    /** Engaged exactly when kind is Intptr/Uintptr. */
    std::optional<Capability> cap;
    /** PNVI provenance (meaningful for capability values). */
    Provenance prov;
    /**
     * When a character-typed load produced this value, the original
     * abstract byte (provenance + pointer index).  A store of the
     * unmodified value writes it back verbatim, which is what lets
     * user-written byte-copy loops move capability representations
     * (and lets the ghost-state rule of section 3.5 recognise the
     * copy).  Any arithmetic drops it.
     */
    std::optional<AbsByte> byteCopy;

    bool isCap() const { return cap.has_value(); }

    /** The arithmetic value: the capability's address, or num. */
    __int128
    value() const
    {
        if (!cap)
            return num;
        __int128 a = static_cast<__int128>(cap->address());
        if (kind == ctype::IntKind::Intptr) {
            // intptr_t: interpret the address as signed.
            unsigned bits = cap->arch().addrBits();
            __int128 sign = __int128(1) << (bits - 1);
            if (a & sign)
                a -= (__int128(1) << bits);
        }
        return a;
    }

    static IntegerValue
    ofNum(ctype::IntKind k, __int128 v)
    {
        IntegerValue iv;
        iv.kind = k;
        iv.num = v;
        return iv;
    }
    static IntegerValue
    ofCap(ctype::IntKind k, Capability c, Provenance p)
    {
        IntegerValue iv;
        iv.kind = k;
        iv.cap = std::move(c);
        iv.prov = p;
        return iv;
    }
};

/** A pointer value: provenance plus a capability (or null / function
 *  designator, both of which still carry a capability view). */
struct PointerValue
{
    enum class Kind { Null, Func, Object };

    Kind kind = Kind::Null;
    Provenance prov;
    std::optional<Capability> cap;
    /** Function index for Kind::Func. */
    uint32_t funcId = 0;

    bool isNull() const { return kind == Kind::Null; }
    bool isFunc() const { return kind == Kind::Func; }
    bool isObject() const { return kind == Kind::Object; }

    uint64_t address() const { return cap ? cap->address() : 0; }

    static PointerValue
    null(const cap::CapArch &arch)
    {
        PointerValue p;
        p.kind = Kind::Null;
        p.cap = Capability::null(arch);
        return p;
    }
    static PointerValue
    object(Provenance prov, Capability c)
    {
        PointerValue p;
        p.kind = Kind::Object;
        p.prov = prov;
        p.cap = std::move(c);
        return p;
    }
    static PointerValue
    function(uint32_t id, Capability c)
    {
        PointerValue p;
        p.kind = Kind::Func;
        p.funcId = id;
        p.cap = std::move(c);
        return p;
    }
};

struct MemValue;

/** Unspecified value of a given type (uninitialised reads etc.). */
struct UnspecValue
{
    ctype::TypeRef type;
};

struct FloatingValue
{
    ctype::FloatKind kind = ctype::FloatKind::Double;
    double value = 0;
};

struct ArrayValue
{
    ctype::TypeRef element;
    std::vector<MemValue> elems;
};

struct StructValue
{
    ctype::TagId tag = 0;
    std::vector<std::pair<std::string, MemValue>> members;
};

/**
 * Whole-union values are kept as their raw representation — abstract
 * bytes plus capability-slot metadata — so that copying a union
 * preserves any capability stored through a member (the type-punning
 * guarantee of section 3.4).  Loads/stores through members use the
 * member type directly and never build a UnionValue.
 */
struct UnionValue
{
    ctype::TagId tag = 0;
    /** Raw bytes, indexed from the union's start. */
    std::vector<AbsByte> bytes;
    /** Capability metadata for each capSize-aligned slot fully inside
     *  the union, keyed by byte offset. */
    std::vector<std::pair<uint64_t, CapMeta>> metas;
};

/** The Cerberus-style abstract memory value. */
struct MemValue
{
    std::variant<UnspecValue, IntegerValue, FloatingValue, PointerValue,
                 ArrayValue, StructValue, UnionValue>
        v;

    MemValue() : v(UnspecValue{}) {}
    /** In-place alternative construction (hot paths: skips the
     *  intermediate alternative object and its variant move). */
    template <typename T, typename... Args>
    explicit MemValue(std::in_place_type_t<T> t, Args &&...args)
        : v(t, std::forward<Args>(args)...)
    {}
    MemValue(IntegerValue iv) : v(std::move(iv)) {}
    MemValue(FloatingValue fv) : v(std::move(fv)) {}
    MemValue(PointerValue pv) : v(std::move(pv)) {}
    MemValue(ArrayValue av) : v(std::move(av)) {}
    MemValue(StructValue sv) : v(std::move(sv)) {}
    MemValue(UnionValue uv) : v(std::move(uv)) {}
    MemValue(UnspecValue uv) : v(std::move(uv)) {}

    bool isUnspec() const { return std::holds_alternative<UnspecValue>(v); }
    bool isInteger() const
    {
        return std::holds_alternative<IntegerValue>(v);
    }
    bool isPointer() const
    {
        return std::holds_alternative<PointerValue>(v);
    }
    bool isFloating() const
    {
        return std::holds_alternative<FloatingValue>(v);
    }

    const IntegerValue &asInteger() const
    {
        return std::get<IntegerValue>(v);
    }
    IntegerValue &asInteger() { return std::get<IntegerValue>(v); }
    const PointerValue &asPointer() const
    {
        return std::get<PointerValue>(v);
    }
    PointerValue &asPointer() { return std::get<PointerValue>(v); }
    const FloatingValue &asFloating() const
    {
        return std::get<FloatingValue>(v);
    }
};

/** Debug/diagnostic rendering of a value. */
std::string memValueStr(const MemValue &v);

} // namespace cherisem::mem

#endif // CHERISEM_MEM_MEM_VALUE_H
