#include "mem/ub.h"

namespace cherisem::mem {

const char *
ubName(Ub ub)
{
    switch (ub) {
      case Ub::CheriInvalidCap: return "UB_CHERI_InvalidCap";
      case Ub::CheriUndefinedTag: return "UB_CHERI_UndefinedTag";
      case Ub::CheriInsufficientPermissions:
        return "UB_CHERI_InsufficientPermissions";
      case Ub::CheriBoundsViolation: return "UB_CHERI_BoundsViolation";
      case Ub::CheriSealViolation: return "UB_CHERI_SealViolation";
      case Ub::LvalueReadTrapRepresentation:
        return "UB012_lvalue_read_trap_representation";
      case Ub::NullPointerDeref: return "UB_null_pointer_dereference";
      case Ub::AccessEmptyProvenance:
        return "UB_access_empty_provenance";
      case Ub::AccessOutOfBounds: return "UB_access_out_of_bounds";
      case Ub::AccessDeadAllocation: return "UB_access_dead_allocation";
      case Ub::MisalignedAccess: return "UB_misaligned_access";
      case Ub::ReadUninitialized: return "UB_read_uninitialized";
      case Ub::ModifyingConstObject: return "UB_modifying_const_object";
      case Ub::OutOfBoundsPtrArith:
        return "UB_out_of_bounds_pointer_arithmetic";
      case Ub::PtrDiffDifferentObjects:
        return "UB_ptrdiff_different_objects";
      case Ub::RelationalDifferentObjects:
        return "UB_relational_different_objects";
      case Ub::FreeInvalidPointer: return "UB_free_invalid_pointer";
      case Ub::DoubleFree: return "UB_double_free";
      case Ub::SignedOverflow: return "UB_signed_integer_overflow";
      case Ub::DivisionByZero: return "UB_division_by_zero";
      case Ub::ShiftOutOfRange: return "UB_shift_out_of_range";
      case Ub::UseOfIndeterminateValue:
        return "UB_use_of_indeterminate_value";
      case Ub::CallTypeMismatch: return "UB_call_type_mismatch";
      case Ub::MemcpyOverlap: return "UB_memcpy_overlap";
    }
    return "UB_unknown";
}

const char *
ubDescription(Ub ub)
{
    switch (ub) {
      case Ub::CheriInvalidCap:
        return "dereferencing a pointer with the capability tag "
               "cleared";
      case Ub::CheriUndefinedTag:
        return "dereferencing a pointer whose capability tag is "
               "unspecified in ghost state";
      case Ub::CheriInsufficientPermissions:
        return "memory access via a capability lacking the required "
               "permission";
      case Ub::CheriBoundsViolation:
        return "dereferencing an out-of-bounds pointer";
      case Ub::CheriSealViolation:
        return "memory access via a sealed capability";
      case Ub::LvalueReadTrapRepresentation:
        return "lvalue read of a trap representation";
      case Ub::NullPointerDeref:
        return "dereferencing the null pointer";
      case Ub::AccessEmptyProvenance:
        return "access via a pointer with empty provenance";
      case Ub::AccessOutOfBounds:
        return "access outside the allocation footprint";
      case Ub::AccessDeadAllocation:
        return "access to an allocation after its lifetime ended";
      case Ub::MisalignedAccess:
        return "misaligned memory access";
      case Ub::ReadUninitialized:
        return "reading uninitialized memory";
      case Ub::ModifyingConstObject:
        return "modifying an object defined with a const-qualified "
               "type";
      case Ub::OutOfBoundsPtrArith:
        return "pointer arithmetic beyond one past the end of the "
               "object";
      case Ub::PtrDiffDifferentObjects:
        return "subtracting pointers to different objects";
      case Ub::RelationalDifferentObjects:
        return "relational comparison of pointers to different "
               "objects";
      case Ub::FreeInvalidPointer:
        return "free() of a pointer not returned by an allocation "
               "function";
      case Ub::DoubleFree:
        return "free() of an already-freed pointer";
      case Ub::SignedOverflow:
        return "signed integer overflow";
      case Ub::DivisionByZero:
        return "division by zero";
      case Ub::ShiftOutOfRange:
        return "shift amount negative or >= width";
      case Ub::UseOfIndeterminateValue:
        return "use of an indeterminate value";
      case Ub::CallTypeMismatch:
        return "function called through incompatible type";
      case Ub::MemcpyOverlap:
        return "memcpy between overlapping regions";
    }
    return "unknown undefined behaviour";
}

std::string
Failure::str() const
{
    std::string out;
    switch (kind) {
      case Kind::Undefined:
        out = std::string("undefined behaviour: ") + ubName(ub) +
            " (" + ubDescription(ub) + ")";
        break;
      case Kind::Constraint:
        out = "constraint violation";
        break;
      case Kind::Internal:
        out = "internal error";
        break;
      case Kind::ResourceExhausted:
        out = "resource exhausted";
        break;
    }
    if (!message.empty())
        out += ": " + message;
    if (loc.isKnown())
        out += " at " + loc.str();
    return out;
}

} // namespace cherisem::mem
