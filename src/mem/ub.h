/**
 * @file
 * The undefined-behaviour taxonomy of the CHERI C semantics.
 *
 * Section 4.2 of the paper adds four CHERI-specific undefined
 * behaviours to the Cerberus/ISO set, plus the ISO trap-representation
 * UB; the rest are the ISO/PNVI-ae-udi undefined behaviours the
 * executable semantics detects.
 */
#ifndef CHERISEM_MEM_UB_H
#define CHERISEM_MEM_UB_H

#include <string>

#include "support/result.h"
#include "support/source_loc.h"

namespace cherisem::mem {

/** Every undefined behaviour the semantics can flag. */
enum class Ub
{
    // --- CHERI-specific (section 4.2) ---
    /** Dereference via a capability whose tag is cleared. */
    CheriInvalidCap,
    /** Dereference via a capability whose tag is *unspecified* in
     *  ghost state (its representation was modified, section 3.5, or
     *  it went non-representable, section 3.3). */
    CheriUndefinedTag,
    /** Access without the required permission bit. */
    CheriInsufficientPermissions,
    /** Access outside the capability's bounds. */
    CheriBoundsViolation,
    /** Dereference via a sealed capability. */
    CheriSealViolation,
    /** UB012: decoding a stored trap representation. */
    LvalueReadTrapRepresentation,

    // --- ISO C / PNVI-ae-udi memory UBs ---
    NullPointerDeref,
    /** Access via a pointer with empty provenance. */
    AccessEmptyProvenance,
    /** Access outside the footprint of the provenance allocation. */
    AccessOutOfBounds,
    /** Access to an allocation whose lifetime has ended. */
    AccessDeadAllocation,
    MisalignedAccess,
    ReadUninitialized,
    ModifyingConstObject,
    /** Pointer arithmetic leaving [base, one-past] (section 3.2,
     *  option (a): the strict ISO rule is kept for CHERI C). */
    OutOfBoundsPtrArith,
    /** Subtraction of pointers into different allocations. */
    PtrDiffDifferentObjects,
    /** Relational comparison of pointers into different allocations. */
    RelationalDifferentObjects,
    FreeInvalidPointer,
    DoubleFree,
    SignedOverflow,
    DivisionByZero,
    ShiftOutOfRange,
    /** Indeterminate (uninitialised/unspecified) value used where a
     *  specified value is required. */
    UseOfIndeterminateValue,
    /** Called function's type does not match the call expression. */
    CallTypeMismatch,
    /** memcpy between overlapping regions. */
    MemcpyOverlap,
};

/** Stable identifier, e.g. "UB_CHERI_InvalidCap". */
const char *ubName(Ub ub);
/** One-line human description. */
const char *ubDescription(Ub ub);

/**
 * The error component of the memory monad: an undefined behaviour, a
 * constraint violation (non-UB semantic error, e.g. unsupported
 * construct), or an internal error.
 */
struct Failure
{
    enum class Kind { Undefined, Constraint, Internal, ResourceExhausted };

    Kind kind = Kind::Undefined;
    Ub ub = Ub::CheriInvalidCap;
    std::string message;
    SourceLoc loc;

    static Failure
    undefined(Ub ub, SourceLoc loc, std::string msg = "")
    {
        return Failure{Kind::Undefined, ub, std::move(msg),
                       std::move(loc)};
    }
    static Failure
    constraint(std::string msg, SourceLoc loc = {})
    {
        return Failure{Kind::Constraint, Ub::CheriInvalidCap,
                       std::move(msg), std::move(loc)};
    }
    static Failure
    internal(std::string msg, SourceLoc loc = {})
    {
        return Failure{Kind::Internal, Ub::CheriInvalidCap,
                       std::move(msg), std::move(loc)};
    }
    /** A resource budget ran out (step limit, wall-clock deadline,
     *  cooperative cancellation).  Not UB and not a semantic error:
     *  the run was cut short, so the verdict says nothing about the
     *  program beyond "it was still going". */
    static Failure
    resourceExhausted(std::string msg, SourceLoc loc = {})
    {
        return Failure{Kind::ResourceExhausted, Ub::CheriInvalidCap,
                       std::move(msg), std::move(loc)};
    }

    bool isUb() const { return kind == Kind::Undefined; }
    std::string str() const;
};

template <typename T>
using MemResult = Result<T, Failure>;

} // namespace cherisem::mem

#endif // CHERISEM_MEM_UB_H
