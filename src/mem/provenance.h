/**
 * @file
 * PNVI-ae-udi pointer provenance (sections 2.3, 3.11).
 *
 * A provenance is empty, a concrete allocation ID, or a symbolic
 * "iota" — the user-disambiguation case of PNVI-ae-udi, created when
 * an integer-to-pointer cast lands on the boundary between two exposed
 * allocations and is resolved by the first use that disambiguates.
 */
#ifndef CHERISEM_MEM_PROVENANCE_H
#define CHERISEM_MEM_PROVENANCE_H

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace cherisem::mem {

using AllocId = uint64_t;
using IotaId = uint64_t;

/** The provenance component of pointer (and (u)intptr_t) values. */
struct Provenance
{
    enum class Kind { Empty, Alloc, Iota };

    Kind kind = Kind::Empty;
    uint64_t id = 0;

    static Provenance empty() { return Provenance{}; }
    static Provenance
    alloc(AllocId a)
    {
        return Provenance{Kind::Alloc, a};
    }
    static Provenance
    iota(IotaId i)
    {
        return Provenance{Kind::Iota, i};
    }

    bool isEmpty() const { return kind == Kind::Empty; }
    bool isAlloc() const { return kind == Kind::Alloc; }
    bool isIota() const { return kind == Kind::Iota; }

    bool operator==(const Provenance &) const = default;

    /** "@empty", "@42", or "@iota7" (paper Appendix A style). */
    std::string str() const;
};

/**
 * The symbolic-provenance table (the "S" component of the memory
 * state together with exposure flags, section 4.3).
 *
 * Each iota is either unresolved with two candidate allocations, or
 * collapsed to a single allocation by a disambiguating use.
 */
class IotaTable
{
  public:
    /** Create an unresolved iota ranging over two allocations. */
    IotaId create(AllocId a, AllocId b);

    /** Candidates: one entry when resolved, two otherwise. */
    std::pair<AllocId, std::optional<AllocId>> candidates(IotaId i) const;

    /** Collapse @p i to @p winner (idempotent). */
    void resolve(IotaId i, AllocId winner);

    bool isResolved(IotaId i) const;

    size_t size() const { return entries_.size(); }

  private:
    struct Entry
    {
        AllocId first;
        std::optional<AllocId> second; // nullopt once resolved
    };
    std::unordered_map<IotaId, Entry> entries_;
    IotaId next_ = 0;
};

} // namespace cherisem::mem

#endif // CHERISEM_MEM_PROVENANCE_H
