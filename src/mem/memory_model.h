/**
 * @file
 * The CHERI C memory object model (section 4.3 of the paper).
 *
 * State, mirroring the Coq development:
 *
 *     mem_state  =  A x S x M          M = B x C
 *     A : AllocId -> Allocation        (footprints, liveness, exposure)
 *     S : iota table                   (PNVI-ae-udi symbolic provenance)
 *     B : Addr -> AbsByte              (provenance, byte, pointer index)
 *     C : Addr -> bool x ghost_state   (per-capability-slot tag + 2-bit
 *                                       ghost state)
 *
 * The M component lives behind the AbstractStore interface
 * (mem/store.h): all byte and capability-metadata access in the model
 * goes through its range-based primitives, with the concrete backend
 * (reference MapStore vs the default PagedStore) selected by
 * Config::storeBackend.
 *
 * All operations run in the Result-based error monad; undefined
 * behaviour is reported as a Failure rather than executed.
 *
 * The Config block captures the axes on which the concrete CHERI C
 * implementations compared in section 5 differ from the abstract
 * reference semantics: whether ghost state exists (vs deterministic
 * hardware tag clearing), whether PNVI provenance/liveness is checked
 * (hardware without revocation does not trap temporal violations), and
 * the allocator's address layout (which determines the Appendix A
 * non-representability behaviour).
 */
#ifndef CHERISEM_MEM_MEMORY_MODEL_H
#define CHERISEM_MEM_MEMORY_MODEL_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cap/capability.h"
#include "ctype/layout.h"
#include "mem/mem_value.h"
#include "mem/provenance.h"
#include "mem/store.h"
#include "mem/ub.h"
#include "obs/tracer.h"
#include "revoke/revocation.h"

namespace cherisem::mem {

/** Kinds of allocation, for diagnostics and free() checking. */
enum class AllocKind { Object, Region, Code };

/** One entry of the A map. */
struct Allocation
{
    uint64_t base = 0;
    uint64_t size = 0;
    unsigned align = 1;
    AllocKind kind = AllocKind::Object;
    /** Variable name / "malloc" — diagnostic prefix. */
    std::string prefix;
    bool alive = true;
    /** PNVI-ae: address has been exposed by a pointer-to-int cast. */
    bool exposed = false;
    /** Object created at a const-qualified type (section 3.9). */
    bool readOnly = false;

    bool
    containsFootprint(uint64_t a, uint64_t n) const
    {
        return base <= a && a + n <= base + size;
    }
    /** Within [base, base+size] including the one-past address. */
    bool
    containsForArith(uint64_t a) const
    {
        return base <= a && a <= base + size;
    }
};

/** Relational operators on pointers. */
enum class RelOp { Lt, Gt, Le, Ge };

/** Counters the micro-benchmarks report. */
struct MemStats
{
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t allocations = 0;
    uint64_t kills = 0;
    uint64_t ghostTagInvalidations = 0;
    uint64_t hardTagInvalidations = 0;
    uint64_t iotasCreated = 0;
    /** Store-layer counters (page allocations, range ops, byte
     *  totals), mirrored from the active AbstractStore backend. */
    StoreStats store;
    /** Revocation-engine counters (sweeps, slots visited, tags
     *  revoked, quarantine occupancy), mirrored from the engine. */
    revoke::RevokeStats revoke;
};

/**
 * A fork of the whole (A, S, (B, C)) machine state at one instant:
 * the allocations map, iota table, store contents (COW page table for
 * PagedStore), revocation-engine state (quarantine queue + shadow
 * bitmap), allocator cursors and free list, the function-address map,
 * and every deterministic counter.  Immutable once taken; restorable
 * any number of times, into the model that took it or into another
 * model with the same Config (modulo traceSink).  Cost: O(pages
 * touched since the snapshot) on the Paged backend.
 */
struct MemorySnapshot
{
    StoreSnapshotPtr store;
    std::map<AllocId, Allocation> allocations;
    IotaTable iotas;
    /** Engaged iff the source model had a revocation engine. */
    std::optional<revoke::RevocationEngine::Snapshot> revoke;
    AllocId nextAlloc = 1;
    uint64_t globalPtr = 0;
    uint64_t heapPtr = 0;
    uint64_t stackPtr = 0;
    uint64_t codePtr = 0;
    std::vector<std::pair<uint64_t, uint64_t>> heapFree;
    std::map<uint64_t, uint32_t> functionsByAddr;
    MemStats stats;
};

using MemorySnapshotPtr = std::shared_ptr<const MemorySnapshot>;

/**
 * The memory object model.  One instance per abstract-machine run.
 */
class MemoryModel
{
  public:
    struct Config
    {
        const cap::CapArch *arch = &cap::morello();
        /** Abstract ghost state (reference semantics) vs deterministic
         *  hardware tag clearing. */
        bool ghostState = true;
        /** PNVI provenance + liveness checks (the reference abstract
         *  machine); hardware profiles run with this off and rely on
         *  capability checks only (section 3.11). */
        bool checkProvenance = true;
        /** Flag reads of uninitialized memory (paper load rule 2g). */
        bool readUninitIsUb = true;
        /** Enforce the strict ISO one-past rule for pointer
         *  arithmetic (section 3.2 option (a)). */
        bool strictPtrArith = true;
        /** Check natural alignment on scalar access. */
        bool checkAlignment = true;
        /** Narrow capabilities to sub-object bounds on member access
         *  (the stricter opt-in mode of section 3.8; off by default,
         *  matching CHERI C). */
        bool subobjectBounds = false;
        /** CHERIoT-style temporal safety (sections 3.10, 5.4, 7):
         *  stored capabilities pointing into freed regions have
         *  their tags cleared by the revocation engine.  The policy
         *  picks *when*: Eager sweeps on every free; Quarantine
         *  batches frees (reuse of the footprint forbidden until
         *  swept) and sweeps when the quarantine fills; Manual
         *  sweeps only on flushQuarantine().  Off (the default)
         *  disables the engine. */
        revoke::RevokeConfig revoke;
        /** Concrete backend for the M = B x C store.  Paged is the
         *  default everywhere; Map is the reference oracle used by
         *  the store-equivalence and differential tests. */
        StoreBackend storeBackend = StoreBackend::Paged;
        /** Execution-witness sink (src/obs/).  Null (the default)
         *  disables tracing; the model, the evaluator, and the
         *  driver all emit their semantic events here. */
        obs::TraceSink *traceSink = nullptr;

        // Address-space layout (drives the Appendix A differences).
        uint64_t globalBase = 0x0000000000010000ull;
        uint64_t heapBase = 0x0000000001000000ull;
        uint64_t stackBase = 0x00000000ffffe700ull; // grows down
        uint64_t codeBase = 0x0000000000001000ull;
    };

    explicit MemoryModel(Config config);

    const Config &config() const { return config_; }
    const cap::CapArch &arch() const { return *config_.arch; }
    const ctype::LayoutEngine &layout() const { return layout_; }
    void setTagTable(const ctype::TagTable *tags);
    const MemStats &stats() const
    {
        stats_.store = store_->stats();
        stats_.revoke =
            revoker_ ? revoker_->stats() : revoke::RevokeStats{};
        return stats_;
    }
    /** The active store backend (introspection / benchmarks). */
    const AbstractStore &store() const { return *store_; }
    /** The execution-witness handle (disabled when Config::traceSink
     *  is null); the evaluator shares it for its own events. */
    const obs::Tracer &tracer() const { return tracer_; }
    /** The temporal-safety engine; null when Config::revoke is Off. */
    const revoke::RevocationEngine *revoker() const
    {
        return revoker_.get();
    }
    /** Force an epoch sweep of the quarantine (the Manual policy's
     *  trigger; also usable under Quarantine).  Returns the number of
     *  tags cleared; no-op (0) when revocation is off or the
     *  quarantine is empty. */
    uint64_t flushQuarantine()
    {
        return revoker_ ? revoker_->flush() : 0;
    }

    /// @name Snapshot / restore (state forking).
    /// @{
    /** Fork the whole (A, S, (B, C)) state, including revocation
     *  state and counters.  O(pages) refcount bumps on the Paged
     *  backend. */
    MemorySnapshotPtr snapshot() const;
    /** Rewind to @p snap.  Afterwards the model is bit-identical —
     *  contents, capability metadata, quarantine, and every
     *  deterministic counter — to the moment the snapshot was taken,
     *  as if the run in between never happened. */
    void restore(const MemorySnapshotPtr &snap);
    /// @}

    /// @name Allocation (create/kill), Cerberus interface.
    /// @{
    /** Create an object allocation (variable); returns a pointer with
     *  fresh provenance and a capability spanning exactly (or, for
     *  large objects, the representable rounding of) its footprint. */
    MemResult<PointerValue> allocateObject(const std::string &prefix,
                                           const ctype::TypeRef &ty,
                                           bool read_only,
                                           bool is_static);
    /** Create a region allocation (malloc). */
    MemResult<PointerValue> allocateRegion(const std::string &prefix,
                                           uint64_t size,
                                           unsigned align);
    /** End an allocation's lifetime. @p dyn distinguishes free() from
     *  scope exit, with the corresponding extra checks. */
    MemResult<Unit> kill(const SourceLoc &loc, bool dyn,
                         const PointerValue &p);
    MemResult<PointerValue> reallocRegion(const SourceLoc &loc,
                                          const PointerValue &p,
                                          uint64_t new_size);
    /// @}

    /// @name Typed access.
    /// @{
    MemResult<MemValue> load(const SourceLoc &loc, const ctype::TypeRef &ty,
                             const PointerValue &p);
    /** @p initializing bypasses the read-only-object check (the
     *  defining store of a const object / string literal). */
    MemResult<Unit> store(const SourceLoc &loc, const ctype::TypeRef &ty,
                          const PointerValue &p, const MemValue &v,
                          bool initializing = false);
    /// @}

    /// @name Pointer operations.
    /// @{
    /** p + idx*sizeof(elem), with the strict ISO footprint check
     *  (section 3.2) and hardware representability behaviour. */
    MemResult<PointerValue> arrayShift(const SourceLoc &loc,
                                       const PointerValue &p,
                                       const ctype::TypeRef &elem,
                                       __int128 idx);
    /** &(p->member): offset within a struct/union. */
    MemResult<PointerValue> memberShift(const SourceLoc &loc,
                                        const PointerValue &p,
                                        ctype::TagId tag,
                                        const std::string &member);
    /** Pointer equality: addresses only (section 3.6). */
    MemResult<bool> ptrEq(const PointerValue &a, const PointerValue &b);
    /** Relational comparison; requires same provenance. */
    MemResult<bool> ptrRelational(const SourceLoc &loc, RelOp op,
                                  const PointerValue &a,
                                  const PointerValue &b);
    /** Pointer subtraction; requires same provenance. */
    MemResult<IntegerValue> ptrDiff(const SourceLoc &loc,
                                    const ctype::TypeRef &elem,
                                    const PointerValue &a,
                                    const PointerValue &b);
    /** Can @p p be dereferenced (for the tests' probe helper)? */
    bool validForDeref(const PointerValue &p, uint64_t size) const;
    /// @}

    /// @name Pointer/integer conversions (sections 2.3, 3.3).
    /// @{
    /** Cast pointer to integer: exposes the allocation (PNVI-ae); to
     *  (u)intptr_t the whole capability is preserved. */
    MemResult<IntegerValue> intFromPtr(const SourceLoc &loc,
                                       ctype::IntKind dst,
                                       const PointerValue &p);
    /** Cast integer to pointer: (u)intptr_t is a capability no-op;
     *  pure integers attach provenance per PNVI-ae-udi and produce an
     *  untagged (null-derived) capability. */
    MemResult<PointerValue> ptrFromInt(const SourceLoc &loc,
                                       const IntegerValue &iv);
    /// @}

    /// @name Bulk operations (capability-preserving, section 3.5).
    /// @{
    MemResult<Unit> memcpyOp(const SourceLoc &loc, const PointerValue &dst,
                             const PointerValue &src, uint64_t n);
    /** memmove: like memcpyOp but overlap is permitted (both the
     *  abstract bytes and the capability metadata are staged through
     *  temporaries). */
    MemResult<Unit> memmoveOp(const SourceLoc &loc, const PointerValue &dst,
                              const PointerValue &src, uint64_t n);
    MemResult<IntegerValue> memcmpOp(const SourceLoc &loc,
                                     const PointerValue &a,
                                     const PointerValue &b, uint64_t n);
    MemResult<Unit> memsetOp(const SourceLoc &loc, const PointerValue &dst,
                             uint8_t byte, uint64_t n,
                             bool initializing = false);
    /// @}

    /// @name Function pointers.
    /// @{
    /** Register function @p id; returns its sentry capability
     *  pointer. */
    PointerValue makeFunctionPointer(uint32_t func_id,
                                     const std::string &name);
    /** Which function lives at @p addr (for indirect calls)? */
    std::optional<uint32_t> functionAt(uint64_t addr) const;
    /// @}

    /// @name Stack discipline (used by the evaluator's frames).
    /// @{
    uint64_t stackSave() const { return stackPtr_; }
    void stackRestore(uint64_t sp) { stackPtr_ = sp; }
    /// @}

    /// @name Introspection (tests, intrinsics, formatting).
    /// @{
    const Allocation *findAllocation(AllocId id) const;
    /** Resolve a (possibly iota) provenance to a concrete allocation
     *  without collapsing it; empty optional when unresolvable. */
    std::optional<AllocId> peekProvenance(const Provenance &p) const;
    /** Raw byte read (no checks) — used by tests and formatting. */
    std::optional<uint8_t> peekByte(uint64_t addr) const;
    /** Raw capability-slot metadata (no checks). */
    CapMeta peekCapMeta(uint64_t addr) const;
    size_t liveAllocationCount() const;
    /// @}

  private:
    /** Result of the access-path checks: the resolved allocation. */
    struct AccessInfo
    {
        AllocId alloc = 0;
        bool haveAlloc = false;
    };

    /** @name Fast-path scalar pipeline (src/mem/fast_path.cc)
     *  load()/store() live in fast_path.cc: they run fastGuard() and,
     *  for clean scalar accesses, serve the access inline against the
     *  store's readScalarClean/writeScalarClean range primitives;
     *  anything else falls back to slowLoad()/slowStore() — the full
     *  UB/provenance rules in load_store.cc.  The guard is strictly
     *  stronger than accessCheck(), so taking the shortcut can never
     *  change an outcome — it only skips re-deriving what the guard
     *  already proved.
     *  @{ */
    /** The full load rule (load_store.cc); @p n / @p align are the
     *  footprint the dispatcher already computed. */
    MemResult<MemValue> slowLoad(const SourceLoc &loc, const ctype::TypeRef &ty,
                                 const PointerValue &p, uint64_t n,
                                 unsigned align);
    /** The full store rule (load_store.cc). */
    MemResult<Unit> slowStore(const SourceLoc &loc, const ctype::TypeRef &ty,
                              const PointerValue &p, const MemValue &v,
                              bool initializing, uint64_t n,
                              unsigned align);
    /** Run the fast-path guard for an @p n byte access at @p p;
     *  returns the resolved live allocation, or null (take the slow
     *  path). */
    const Allocation *fastGuard(const PointerValue &p, uint64_t n,
                                unsigned align, bool want_store);

    /** One-entry allocation cache.  Safe because allocations_ entries
     *  are never erased (kill() only flips `alive`), so node pointers
     *  are stable for the lifetime of the model. */
    const Allocation *cachedAlloc(AllocId id) const;
    /// @}

    /** The paper's bounds_check + PNVI checks for an @p n byte access
     *  at @p p; @p want_store selects the permission/readonly checks;
     *  @p initializing skips the read-only-object check. */
    MemResult<AccessInfo> accessCheck(const SourceLoc &loc,
                                      const PointerValue &p, uint64_t n,
                                      unsigned align_req,
                                      bool want_store,
                                      bool initializing = false);

    /** Collapse/resolve provenance for an access footprint. */
    MemResult<AccessInfo> resolveForAccess(const SourceLoc &loc,
                                           const Provenance &prov,
                                           uint64_t addr, uint64_t n);

    /** PNVI-ae-udi attach: provenance for address @p a from exposed
     *  live allocations (possibly an iota). */
    Provenance attachProvenance(uint64_t a);

    void exposeAllocation(AllocId id);
    void exposeByteProvenance(const AbsByte &b);

    /** Capability metadata at @p addr packed for a Load/Store trace
     *  event (0 when the footprint is not one whole aligned slot). */
    uint64_t packedCapMeta(uint64_t addr, uint64_t n) const;

    /** Write a capability's bytes+metadata at (aligned) @p addr. */
    void writeCapability(uint64_t addr, const Capability &c,
                         const Provenance &prov);
    /** Invalidate capability metadata overlapping [addr, addr+n):
     *  ghost "tag unspecified" in the abstract semantics,
     *  deterministic tag clear in hardware mode (section 3.5). */
    void invalidateCapMeta(uint64_t addr, uint64_t n);
    /** Shared memcpy/memmove body: copy abstract bytes and carry or
     *  invalidate capability metadata per the section 3.5 rules.
     *  Overlap-safe (all source state is staged before any write). */
    void copyBytesAndMeta(uint64_t dst, uint64_t src, uint64_t n);

    /** repr(): serialize @p v (of type @p ty) into bytes/metadata at
     *  @p addr. */
    MemResult<Unit> reprValue(const SourceLoc &loc, uint64_t addr,
                              const ctype::TypeRef &ty,
                              const MemValue &v);
    /** abst(): reconstruct a value of @p ty from bytes at @p addr. */
    MemResult<MemValue> abstValue(const SourceLoc &loc, uint64_t addr,
                                  const ctype::TypeRef &ty);

    MemResult<PointerValue> allocate(const std::string &prefix,
                                     uint64_t size, unsigned align,
                                     AllocKind kind, bool read_only,
                                     bool is_static,
                                     const ctype::TypeRef &ty);

    uint64_t alignUp(uint64_t v, uint64_t a) const;

    Config config_;
    obs::Tracer tracer_;
    ctype::TagTable emptyTags_;
    ctype::LayoutEngine layout_;

    std::unique_ptr<AbstractStore> store_;       // M = B x C
    std::map<AllocId, Allocation> allocations_;  // A
    IotaTable iotas_;                            // S
    /** Temporal-safety engine (src/revoke/); null when off.
     *  Declared after store_ — it holds a reference into it. */
    std::unique_ptr<revoke::RevocationEngine> revoker_;

    AllocId nextAlloc_ = 1;
    uint64_t globalPtr_;
    uint64_t heapPtr_;
    uint64_t stackPtr_;
    uint64_t codePtr_;
    /** Free list for heap reuse (enables use-after-free scenarios,
     *  section 3.11). */
    std::vector<std::pair<uint64_t, uint64_t>> heapFree_;

    std::map<uint64_t, uint32_t> functionsByAddr_;

    /** Mutable so stats() can mirror the store counters on read. */
    mutable MemStats stats_;

    /** One-entry cache for cachedAlloc(). */
    mutable AllocId fastAllocId_ = 0;
    mutable const Allocation *fastAlloc_ = nullptr;
    /** store_ downcast when it is the (final) PagedStore, else null:
     *  lets the fast path call the inline scalar primitives directly
     *  instead of through the vtable. */
    PagedStore *pagedStore_ = nullptr;
};

} // namespace cherisem::mem

#endif // CHERISEM_MEM_MEMORY_MODEL_H
