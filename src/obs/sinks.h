/**
 * @file
 * The pluggable trace sinks:
 *
 *  - RingBufferSink   fixed-capacity in-process buffer; the default
 *                     for tests and the trace-differential checker
 *                     (snapshots of two runs are diffed exactly);
 *  - JsonlFileSink    one JSON object per line, for offline analysis;
 *  - ChromeTraceSink  the Chrome trace_event JSON format, viewable in
 *                     chrome://tracing / Perfetto: function frames and
 *                     pipeline phases become duration slices, memory
 *                     events become instants with argument payloads.
 *
 * makeSink() parses the driver's --trace=<sink>[:<arg>] spec.
 */
#ifndef CHERISEM_OBS_SINKS_H
#define CHERISEM_OBS_SINKS_H

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/tracer.h"

namespace cherisem::obs {

/**
 * Fixed-capacity ring buffer.  When full, the oldest event is
 * overwritten and dropped() grows — snapshot consumers check it to
 * know whether the stream is complete.
 */
class RingBufferSink : public TraceSink
{
  public:
    explicit RingBufferSink(size_t capacity = kDefaultCapacity);

    static constexpr size_t kDefaultCapacity = 65536;

    size_t capacity() const { return capacity_; }
    /** Events currently held (<= capacity). */
    size_t size() const;
    /** Events overwritten because the buffer was full. */
    uint64_t dropped() const { return dropped_; }

    /** The retained events, oldest first. */
    std::vector<TraceEvent> snapshot() const;
    void clear();

  protected:
    void write(const TraceEvent &e) override;

  private:
    size_t capacity_;
    std::vector<TraceEvent> buf_;
    size_t head_ = 0; ///< next write position once the buffer wrapped
    bool wrapped_ = false;
    uint64_t dropped_ = 0;
};

/** One renderEventJson() line per event. */
class JsonlFileSink : public TraceSink
{
  public:
    /** Open @p path for writing; ok() reports success. */
    explicit JsonlFileSink(const std::string &path);
    /** Write to a caller-owned stream (tests). */
    explicit JsonlFileSink(std::ostream &os);
    ~JsonlFileSink() override;

    bool ok() const;
    void flush() override;

  protected:
    void write(const TraceEvent &e) override;

  private:
    std::ofstream file_;
    std::ostream *os_;
};

/**
 * Chrome trace_event exporter.  Buffers events and writes the
 * {"traceEvents": [...]} JSON object on flush (and destruction).
 * FuncEnter/FuncExit map to 'B'/'E' duration slices, Phase to 'X'
 * complete events, everything else to 'i' instants; timestamps are
 * stamped at ingest from a steady clock (the TraceEvent itself stays
 * timestamp-free so differential runs compare deterministically).
 */
class ChromeTraceSink : public TraceSink
{
  public:
    explicit ChromeTraceSink(const std::string &path);
    explicit ChromeTraceSink(std::ostream &os);
    ~ChromeTraceSink() override;

    bool ok() const;
    void flush() override;

  protected:
    void write(const TraceEvent &e) override;

  private:
    struct Stamped
    {
        TraceEvent event;
        uint64_t microsSinceStart;
    };

    std::string renderChrome(const Stamped &s) const;

    std::ofstream file_;
    std::ostream *os_;
    std::vector<Stamped> events_;
    uint64_t startNs_ = 0;
    bool flushed_ = false;
};

/**
 * Parse a --trace sink spec:
 *
 *     ring            in-process ring buffer (default capacity)
 *     ring:<N>        ring buffer with capacity N
 *     jsonl:<path>    JSONL file
 *     chrome:<path>   Chrome trace_event JSON file
 *
 * Returns nullptr and sets @p err on malformed specs or unopenable
 * files.
 */
std::unique_ptr<TraceSink> makeSink(const std::string &spec,
                                    std::string *err);

} // namespace cherisem::obs

#endif // CHERISEM_OBS_SINKS_H
