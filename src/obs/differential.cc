#include "obs/differential.h"

#include "obs/sinks.h"

namespace cherisem::obs {

namespace {

/** One traced run: attach a fresh ring, run, snapshot. */
std::vector<TraceEvent>
tracedRun(const std::string &source, driver::Profile profile,
          RingBufferSink &ring, driver::RunResult *out)
{
    profile.memConfig.traceSink = &ring;
    *out = driver::runSource(source, profile);
    return ring.snapshot();
}

} // namespace

DifferentialResult
diffStoreBackends(const std::string &source,
                  const driver::Profile &profile, size_t ringCapacity)
{
    DifferentialResult res;

    driver::Profile map = profile;
    map.memConfig.storeBackend = mem::StoreBackend::Map;
    driver::Profile paged = profile;
    paged.memConfig.storeBackend = mem::StoreBackend::Paged;

    RingBufferSink lring(ringCapacity), rring(ringCapacity);
    std::vector<TraceEvent> l =
        tracedRun(source, map, lring, &res.left);
    std::vector<TraceEvent> r =
        tracedRun(source, paged, rring, &res.right);

    res.leftEvents = lring.emitted();
    res.rightEvents = rring.emitted();
    res.truncated = lring.dropped() > 0 || rring.dropped() > 0;

    // The store backend lives *below* the semantics: every witness,
    // including concrete addresses, must match exactly.
    DiffOptions opts;
    res.diff = diffEventStreams(l, r, opts);
    return res;
}

DifferentialResult
diffEngines(const std::string &source,
            const driver::Profile &profile, size_t ringCapacity)
{
    DifferentialResult res;

    driver::Profile tree = profile;
    tree.engine = corelang::Engine::Tree;
    driver::Profile bytecode = profile;
    bytecode.engine = corelang::Engine::Bytecode;

    RingBufferSink lring(ringCapacity), rring(ringCapacity);
    std::vector<TraceEvent> l =
        tracedRun(source, tree, lring, &res.left);
    std::vector<TraceEvent> r =
        tracedRun(source, bytecode, rring, &res.right);

    res.leftEvents = lring.emitted();
    res.rightEvents = rring.emitted();
    res.truncated = lring.dropped() > 0 || rring.dropped() > 0;

    // The engine lives *below* the semantics: every witness,
    // including concrete addresses, must match exactly.
    DiffOptions opts;
    res.diff = diffEventStreams(l, r, opts);
    return res;
}

DifferentialResult
diffProfiles(const std::string &source, const driver::Profile &a,
             const driver::Profile &b, const DiffOptions &opts,
             size_t ringCapacity)
{
    DifferentialResult res;

    RingBufferSink lring(ringCapacity), rring(ringCapacity);
    std::vector<TraceEvent> l = tracedRun(source, a, lring, &res.left);
    std::vector<TraceEvent> r = tracedRun(source, b, rring, &res.right);

    res.leftEvents = lring.emitted();
    res.rightEvents = rring.emitted();
    res.truncated = lring.dropped() > 0 || rring.dropped() > 0;
    res.diff = diffEventStreams(l, r, opts);
    return res;
}

std::string
DifferentialResult::summary() const
{
    if (truncated)
        return "truncated (ring buffer overflow; raise the capacity)";
    std::string s = diff.summary();
    s += " [" + left.summary() + " | " + right.summary() + "]";
    return s;
}

} // namespace cherisem::obs
