#include "obs/trace_diff.h"

#include <algorithm>

#include "support/format.h"

namespace cherisem::obs {

namespace {

bool
isControlFlow(EventKind k)
{
    return k == EventKind::FuncEnter || k == EventKind::FuncExit ||
        k == EventKind::Intrinsic;
}

bool
sameUnderOptions(const TraceEvent &x, const TraceEvent &y,
                 const DiffOptions &opts)
{
    if (x.kind != y.kind || x.size != y.size || x.a != y.a ||
        x.b != y.b) {
        return false;
    }
    if (opts.compareAddresses && x.addr != y.addr)
        return false;
    if (opts.compareLabels && x.label != y.label)
        return false;
    if (opts.compareLines && x.line != y.line)
        return false;
    return true;
}

} // namespace

std::vector<TraceEvent>
normalizeStream(const std::vector<TraceEvent> &events,
                const DiffOptions &opts)
{
    std::vector<TraceEvent> out;
    out.reserve(events.size());
    for (const TraceEvent &e : events) {
        if (opts.ignorePhases && e.kind == EventKind::Phase)
            continue;
        if (opts.ignoreControlFlow && isControlFlow(e.kind))
            continue;
        out.push_back(e);
    }
    return out;
}

DiffResult
diffEventStreams(const std::vector<TraceEvent> &left,
                 const std::vector<TraceEvent> &right,
                 const DiffOptions &opts)
{
    std::vector<TraceEvent> l = normalizeStream(left, opts);
    std::vector<TraceEvent> r = normalizeStream(right, opts);

    DiffResult res;
    res.leftCount = l.size();
    res.rightCount = r.size();

    size_t n = std::min(l.size(), r.size());
    for (size_t i = 0; i < n; ++i) {
        if (!sameUnderOptions(l[i], r[i], opts)) {
            res.equivalent = false;
            res.index = i;
            res.left = l[i];
            res.right = r[i];
            return res;
        }
    }
    if (l.size() != r.size()) {
        res.equivalent = false;
        res.index = n;
        if (n < l.size())
            res.left = l[n];
        if (n < r.size())
            res.right = r[n];
    }
    return res;
}

std::string
DiffResult::summary() const
{
    if (equivalent) {
        return "equivalent (" + decStr(uint128(leftCount)) +
            " events)";
    }
    std::string s =
        "diverged at event " + decStr(uint128(index)) + ": ";
    s += left ? renderEvent(*left) : "<stream ended>";
    s += "  vs  ";
    s += right ? renderEvent(*right) : "<stream ended>";
    return s;
}

} // namespace cherisem::obs
