#include "obs/trace_event.h"

#include "support/format.h"

namespace cherisem::obs {

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::Alloc:       return "alloc";
      case EventKind::Free:        return "free";
      case EventKind::Realloc:     return "realloc";
      case EventKind::Load:        return "load";
      case EventKind::Store:       return "store";
      case EventKind::TagClear:    return "tag-clear";
      case EventKind::GhostMark:   return "ghost-mark";
      case EventKind::Expose:      return "expose";
      case EventKind::Attach:      return "attach";
      case EventKind::Quarantine:  return "quarantine";
      case EventKind::RevokeSweep: return "revoke-sweep";
      case EventKind::FuncEnter:   return "func-enter";
      case EventKind::FuncExit:    return "func-exit";
      case EventKind::Intrinsic:   return "intrinsic";
      case EventKind::UbRaise:     return "ub-raise";
      case EventKind::Phase:       return "phase";
    }
    return "?";
}

std::string
renderEvent(const TraceEvent &e)
{
    std::string s = "#" + decStr(uint128(e.seq)) + " " +
        eventKindName(e.kind);
    if (!e.label.empty())
        s += " '" + e.label + "'";
    if (e.addr != 0)
        s += " addr=" + hexStr(e.addr);
    if (e.size != 0)
        s += " size=" + decStr(uint128(e.size));
    if (e.a != 0)
        s += " a=" + decStr(uint128(e.a));
    if (e.b != 0)
        s += " b=" + decStr(uint128(e.b));
    if (e.line != 0)
        s += " line=" + decStr(uint128(e.line));
    return s;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out += strPrintf("\\u%04x", c);
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
renderEventJson(const TraceEvent &e)
{
    std::string s = "{\"seq\":" + decStr(uint128(e.seq)) +
        ",\"kind\":\"" + eventKindName(e.kind) + "\"";
    if (e.addr != 0)
        s += ",\"addr\":\"" + hexStr(e.addr) + "\"";
    if (e.size != 0)
        s += ",\"size\":" + decStr(uint128(e.size));
    if (e.a != 0)
        s += ",\"a\":" + decStr(uint128(e.a));
    if (e.b != 0)
        s += ",\"b\":" + decStr(uint128(e.b));
    if (e.line != 0)
        s += ",\"line\":" + decStr(uint128(e.line));
    if (!e.label.empty())
        s += ",\"label\":\"" + jsonEscape(e.label) + "\"";
    s += "}";
    return s;
}

} // namespace cherisem::obs
