#include "obs/sinks.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "support/format.h"

namespace cherisem::obs {

namespace {

uint64_t
steadyNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

// ---------------------------------------------------------------------
// RingBufferSink.
// ---------------------------------------------------------------------

RingBufferSink::RingBufferSink(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
    buf_.reserve(std::min<size_t>(capacity_, 4096));
}

size_t
RingBufferSink::size() const
{
    return wrapped_ ? capacity_ : buf_.size();
}

void
RingBufferSink::write(const TraceEvent &e)
{
    if (!wrapped_ && buf_.size() < capacity_) {
        buf_.push_back(e);
        if (buf_.size() == capacity_)
            wrapped_ = true; // next write overwrites head_ = 0
        return;
    }
    buf_[head_] = e;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
}

std::vector<TraceEvent>
RingBufferSink::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(size());
    if (!wrapped_ || dropped_ == 0) {
        out.assign(buf_.begin(), buf_.end());
        return out;
    }
    // Oldest-first: head_ points at the oldest retained event.
    for (size_t i = 0; i < capacity_; ++i)
        out.push_back(buf_[(head_ + i) % capacity_]);
    return out;
}

void
RingBufferSink::clear()
{
    buf_.clear();
    head_ = 0;
    wrapped_ = false;
    dropped_ = 0;
}

// ---------------------------------------------------------------------
// JsonlFileSink.
// ---------------------------------------------------------------------

JsonlFileSink::JsonlFileSink(const std::string &path)
    : file_(path), os_(&file_)
{
}

JsonlFileSink::JsonlFileSink(std::ostream &os) : os_(&os) {}

JsonlFileSink::~JsonlFileSink()
{
    flush();
}

bool
JsonlFileSink::ok() const
{
    return os_ != &file_ || file_.is_open();
}

void
JsonlFileSink::flush()
{
    os_->flush();
}

void
JsonlFileSink::write(const TraceEvent &e)
{
    *os_ << renderEventJson(e) << '\n';
}

// ---------------------------------------------------------------------
// ChromeTraceSink.
// ---------------------------------------------------------------------

ChromeTraceSink::ChromeTraceSink(const std::string &path)
    : file_(path), os_(&file_), startNs_(steadyNowNs())
{
}

ChromeTraceSink::ChromeTraceSink(std::ostream &os)
    : os_(&os), startNs_(steadyNowNs())
{
}

ChromeTraceSink::~ChromeTraceSink()
{
    flush();
}

bool
ChromeTraceSink::ok() const
{
    return os_ != &file_ || file_.is_open();
}

void
ChromeTraceSink::write(const TraceEvent &e)
{
    events_.push_back(Stamped{e, (steadyNowNs() - startNs_) / 1000});
}

std::string
ChromeTraceSink::renderChrome(const Stamped &s) const
{
    const TraceEvent &e = s.event;
    char ph = 'i';
    uint64_t ts = s.microsSinceStart;
    uint64_t dur = 0;
    switch (e.kind) {
      case EventKind::FuncEnter: ph = 'B'; break;
      case EventKind::FuncExit:  ph = 'E'; break;
      case EventKind::Phase:
        // Phases are emitted at phase *end* carrying their duration;
        // back-date the slice so it spans the right interval.
        ph = 'X';
        dur = e.a / 1000;
        ts = ts > dur ? ts - dur : 0;
        break;
      default: break;
    }

    std::string name = e.label.empty() ? eventKindName(e.kind)
                                       : jsonEscape(e.label);
    std::string out = "{\"name\":\"" + name + "\",\"cat\":\"" +
        eventKindName(e.kind) + "\",\"ph\":\"" + ph +
        "\",\"ts\":" + decStr(uint128(ts)) +
        ",\"pid\":1,\"tid\":1";
    if (ph == 'X')
        out += ",\"dur\":" + decStr(uint128(dur));
    if (ph == 'i')
        out += ",\"s\":\"t\"";
    if (ph != 'E') {
        out += ",\"args\":{\"seq\":" + decStr(uint128(e.seq));
        if (e.addr != 0)
            out += ",\"addr\":\"" + hexStr(e.addr) + "\"";
        if (e.size != 0)
            out += ",\"size\":" + decStr(uint128(e.size));
        if (e.a != 0)
            out += ",\"a\":" + decStr(uint128(e.a));
        if (e.b != 0)
            out += ",\"b\":" + decStr(uint128(e.b));
        out += "}";
    }
    out += "}";
    return out;
}

void
ChromeTraceSink::flush()
{
    if (flushed_)
        return;
    flushed_ = true;
    *os_ << "{\"traceEvents\":[";
    for (size_t i = 0; i < events_.size(); ++i) {
        if (i > 0)
            *os_ << ",";
        *os_ << "\n" << renderChrome(events_[i]);
    }
    *os_ << "\n]}\n";
    os_->flush();
}

// ---------------------------------------------------------------------
// Sink spec parsing.
// ---------------------------------------------------------------------

std::unique_ptr<TraceSink>
makeSink(const std::string &spec, std::string *err)
{
    std::string kind = spec;
    std::string arg;
    if (size_t colon = spec.find(':'); colon != std::string::npos) {
        kind = spec.substr(0, colon);
        arg = spec.substr(colon + 1);
    }

    if (kind == "ring") {
        size_t capacity = RingBufferSink::kDefaultCapacity;
        if (!arg.empty()) {
            char *end = nullptr;
            unsigned long long v = std::strtoull(arg.c_str(), &end, 10);
            if (end == nullptr || *end != '\0' || v == 0) {
                if (err)
                    *err = "bad ring capacity: " + arg;
                return nullptr;
            }
            capacity = static_cast<size_t>(v);
        }
        return std::make_unique<RingBufferSink>(capacity);
    }
    if (kind == "jsonl") {
        if (arg.empty()) {
            if (err)
                *err = "jsonl sink needs a path: jsonl:<path>";
            return nullptr;
        }
        auto sink = std::make_unique<JsonlFileSink>(arg);
        if (!sink->ok()) {
            if (err)
                *err = "cannot open " + arg;
            return nullptr;
        }
        return sink;
    }
    if (kind == "chrome") {
        if (arg.empty()) {
            if (err)
                *err = "chrome sink needs a path: chrome:<path>";
            return nullptr;
        }
        auto sink = std::make_unique<ChromeTraceSink>(arg);
        if (!sink->ok()) {
            if (err)
                *err = "cannot open " + arg;
            return nullptr;
        }
        return sink;
    }

    if (err)
        *err = "unknown trace sink '" + kind +
            "' (expected ring[:N], jsonl:<path>, chrome:<path>)";
    return nullptr;
}

} // namespace cherisem::obs
