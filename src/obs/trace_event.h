/**
 * @file
 * The semantic event model of the execution-witness tracing subsystem.
 *
 * The paper validates the CHERI C semantics observationally: section 6
 * compares UB verdicts, tag-clearing behaviour, and provenance effects
 * across Cerberus, Clang/Morello, and GCC.  A TraceEvent is one such
 * observable — a typed record of a semantic step (allocation lifetime,
 * typed access, section 3.5 representation-write invalidation, PNVI
 * expose/attach, revocation, UB) — so whole executions can be
 * compared event-by-event instead of verdict-by-verdict.
 *
 * Events carry only scalar payloads (addresses, ids, packed metadata)
 * plus a short label; they deliberately do not reference the memory
 * model's types, keeping obs/ a leaf module that mem/, corelang/, and
 * driver/ can all include.
 *
 * Events are deterministic: no timestamps live here.  Sinks that want
 * wall-clock time (the Chrome exporter) stamp events at ingest, so
 * ring-buffer snapshots of two runs can be diffed exactly.
 */
#ifndef CHERISEM_OBS_TRACE_EVENT_H
#define CHERISEM_OBS_TRACE_EVENT_H

#include <cstdint>
#include <string>

namespace cherisem::obs {

/** Every kind of semantic event the interpreter can witness. */
enum class EventKind : uint8_t
{
    // Allocation lifetime (the A map of the memory state).
    Alloc,       ///< new allocation; addr/size footprint, a = id
    Free,        ///< lifetime end; a = id, b = 1 for free(), 0 scope
    Realloc,     ///< region resize; addr = old base, b = new base

    // Typed access (the paper's load/store rules, section 4.3).
    Load,        ///< a = resolved allocation id (0 none), b = cap-meta
    Store,       ///< a = resolved allocation id (0 none), b = cap-meta

    // Capability-metadata effects (section 3.5).
    TagClear,    ///< deterministic hardware clear; a = slots touched
    GhostMark,   ///< ghost "tag unspecified" marking; a = slots touched

    // PNVI-ae-udi provenance transitions (sections 2.3, 3.3).
    Expose,      ///< allocation exposed by int cast; a = id
    Attach,      ///< int-to-pointer attach; a = prov kind, b = id

    // Temporal safety (sections 3.10, 5.4, 7).
    Quarantine,  ///< free deferred to quarantine; a = alloc id,
                 ///< b = quarantine occupancy (regions) after enqueue
    RevokeSweep, ///< epoch sweep summary; a = capabilities revoked,
                 ///< b = regions flushed

    // Abstract-machine control flow.
    FuncEnter,   ///< a = function index, label = name
    FuncExit,    ///< a = function index, label = name
    Intrinsic,   ///< builtin call; a = Builtin id, label = name
    UbRaise,     ///< a = Ub id, label = UB name, line = source line

    // Pipeline phases (driver); a = duration in nanoseconds.
    Phase,
};

/** Stable identifier for an event kind, e.g. "tag-clear". */
const char *eventKindName(EventKind k);

/**
 * One witnessed semantic event.  Fields are kind-specific (see the
 * EventKind comments); unused fields stay zero so streams compare
 * field-wise.
 */
struct TraceEvent
{
    EventKind kind = EventKind::Alloc;
    /** Monotonic sequence number, assigned by the sink on emit. */
    uint64_t seq = 0;
    /** Subject address (allocation base, access address, slot...). */
    uint64_t addr = 0;
    /** Subject size in bytes (footprint, access width...). */
    uint64_t size = 0;
    /** First kind-specific payload (see EventKind). */
    uint64_t a = 0;
    /** Second kind-specific payload (see EventKind). */
    uint64_t b = 0;
    /** Source line for UbRaise (0 = unknown). */
    uint32_t line = 0;
    /** Short text payload: allocation prefix, function name, UB
     *  name, tag-clear reason, phase name. */
    std::string label;

    /** Payload equality — everything except the seq number. */
    bool samePayload(const TraceEvent &o) const
    {
        return kind == o.kind && addr == o.addr && size == o.size &&
            a == o.a && b == o.b && line == o.line && label == o.label;
    }
};

/** Render one event as a compact single line (for logs and diffs). */
std::string renderEvent(const TraceEvent &e);

/** Render one event as a single-line JSON object (JSONL sinks). */
std::string renderEventJson(const TraceEvent &e);

/** JSON-escape a string (quotes not included). */
std::string jsonEscape(const std::string &s);

} // namespace cherisem::obs

#endif // CHERISEM_OBS_TRACE_EVENT_H
