/**
 * @file
 * Per-phase counters and scoped timers.
 *
 * PhaseTimings is the driver-pipeline complement to mem::MemStats: how
 * long each stage of a run (parse / sema / optimize / evaluate) took.
 * ScopedPhaseTimer accumulates into a slot on scope exit and, when a
 * tracer is attached, emits a Phase event carrying the duration so the
 * Chrome exporter can draw the pipeline as timeline slices.
 */
#ifndef CHERISEM_OBS_METRICS_H
#define CHERISEM_OBS_METRICS_H

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/tracer.h"

namespace cherisem::obs {

/** Wall-clock nanoseconds per driver-pipeline phase. */
struct PhaseTimings
{
    uint64_t parseNs = 0;
    uint64_t semaNs = 0;
    uint64_t optimizeNs = 0;
    /** Bytecode compilation (serving-layer front half; zero for
     *  tree-engine runs that never compile). */
    uint64_t compileNs = 0;
    uint64_t evalNs = 0;

    uint64_t
    totalNs() const
    {
        return parseNs + semaNs + optimizeNs + compileNs + evalNs;
    }
};

/**
 * Accumulate elapsed steady-clock time into @p slot on destruction;
 * when @p tracer is enabled, also emit a Phase event named @p name
 * with the duration in the `a` payload.
 */
class ScopedPhaseTimer
{
  public:
    ScopedPhaseTimer(uint64_t *slot, const Tracer &tracer,
                     const char *name)
        : slot_(slot), tracer_(tracer), name_(name),
          start_(std::chrono::steady_clock::now())
    {
    }

    ScopedPhaseTimer(const ScopedPhaseTimer &) = delete;
    ScopedPhaseTimer &operator=(const ScopedPhaseTimer &) = delete;

    ~ScopedPhaseTimer()
    {
        auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
        *slot_ += static_cast<uint64_t>(ns);
        if (tracer_.enabled()) {
            TraceEvent e;
            e.kind = EventKind::Phase;
            e.a = static_cast<uint64_t>(ns);
            e.label = name_;
            tracer_.emit(std::move(e));
        }
    }

  private:
    uint64_t *slot_;
    Tracer tracer_;
    const char *name_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace cherisem::obs

#endif // CHERISEM_OBS_METRICS_H
