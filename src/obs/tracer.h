/**
 * @file
 * The Tracer handle and the TraceSink interface.
 *
 * A Tracer is a nullable view of a sink: the memory model, the
 * evaluator, and the driver each hold one, all pointing at the same
 * sink when tracing is on, and at nothing (the default) when it is
 * off.  The disabled path is a single pointer null-check — callers
 * guard event *construction* behind enabled() so a disabled run never
 * builds a label string:
 *
 *     if (tracer_.enabled())
 *         tracer_.emit({EventKind::Alloc, 0, base, size, id});
 *
 * Sequence numbers are assigned by the sink (not the tracer) so that
 * the several Tracer handles sharing one sink produce one globally
 * ordered stream.
 */
#ifndef CHERISEM_OBS_TRACER_H
#define CHERISEM_OBS_TRACER_H

#include <atomic>
#include <cstdint>
#include <utility>

#include "obs/trace_event.h"

namespace cherisem::obs {

/**
 * Where events go.  Subclasses implement write(); the base class owns
 * sequence numbering so every event entering the sink — from any
 * Tracer handle — gets the next global number.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Stamp @p e with the next sequence number and record it. */
    void
    emit(TraceEvent e)
    {
        e.seq = nextSeq_.fetch_add(1, std::memory_order_relaxed);
        write(e);
    }

    /** Total events emitted into this sink. */
    uint64_t
    emitted() const
    {
        return nextSeq_.load(std::memory_order_relaxed);
    }

    /** Finish any buffered output (file footers etc.). */
    virtual void flush() {}

  protected:
    virtual void write(const TraceEvent &e) = 0;

  private:
    /** Atomic so concurrent runs that (incorrectly but harmlessly)
     *  share a sink never race on the numbering itself; write()
     *  synchronisation remains the subclass's contract.  The serving
     *  layer gives every request its own sink — see
     *  DESIGN.md "Serving layer". */
    std::atomic<uint64_t> nextSeq_{0};
};

/**
 * The zero-cost-when-disabled handle through which the semantics
 * emits events.  Copyable; does not own the sink.
 */
class Tracer
{
  public:
    Tracer() = default;
    explicit Tracer(TraceSink *sink) : sink_(sink) {}

    bool enabled() const { return sink_ != nullptr; }

    void
    emit(TraceEvent e) const
    {
        if (sink_)
            sink_->emit(std::move(e));
    }

    TraceSink *sink() const { return sink_; }

  private:
    TraceSink *sink_ = nullptr;
};

} // namespace cherisem::obs

#endif // CHERISEM_OBS_TRACER_H
