/**
 * @file
 * Trace-level differential checking: normalise two event streams and
 * report the first divergent event.
 *
 * This is strictly stronger than comparing final verdicts (the
 * section 6 methodology): two runs can reach the same exit code while
 * disagreeing on an intermediate tag clear or provenance attach, and
 * the first divergent *event* pinpoints where the semantics split.
 *
 * Normalisation drops event kinds that are legitimately
 * non-deterministic or irrelevant to the comparison (Phase timings
 * always; addresses/labels optionally, for cross-profile runs whose
 * allocators use different address layouts).
 */
#ifndef CHERISEM_OBS_TRACE_DIFF_H
#define CHERISEM_OBS_TRACE_DIFF_H

#include <optional>
#include <string>
#include <vector>

#include "obs/trace_event.h"

namespace cherisem::obs {

/** What counts as a divergence. */
struct DiffOptions
{
    /** Compare addr fields.  Off for cross-profile diffs: different
     *  address-space layouts (Appendix A) make addresses diverge
     *  without semantic significance. */
    bool compareAddresses = true;
    /** Compare label fields (allocation prefixes, UB names...). */
    bool compareLabels = true;
    /** Compare source-line fields. */
    bool compareLines = true;
    /** Drop Phase events (timing-dependent) before comparing.  On by
     *  default; there is no sound way to compare durations. */
    bool ignorePhases = true;
    /** Drop FuncEnter/FuncExit/Intrinsic control-flow events,
     *  comparing memory-state witnesses only. */
    bool ignoreControlFlow = false;
};

/** Outcome of a stream diff. */
struct DiffResult
{
    bool equivalent = true;
    /** Index of the first divergence in the *normalised* streams. */
    size_t index = 0;
    /** The divergent events; nullopt when that stream ended early. */
    std::optional<TraceEvent> left;
    std::optional<TraceEvent> right;
    /** Normalised stream lengths (diagnostics). */
    size_t leftCount = 0;
    size_t rightCount = 0;

    /** One-line report: "equivalent (N events)" or "diverged at
     *  event I: <left> vs <right>". */
    std::string summary() const;
};

/** Keep only the events @p opts compares. */
std::vector<TraceEvent> normalizeStream(
    const std::vector<TraceEvent> &events, const DiffOptions &opts);

/** Diff two raw streams under @p opts. */
DiffResult diffEventStreams(const std::vector<TraceEvent> &left,
                            const std::vector<TraceEvent> &right,
                            const DiffOptions &opts = {});

} // namespace cherisem::obs

#endif // CHERISEM_OBS_TRACE_DIFF_H
