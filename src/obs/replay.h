/**
 * @file
 * Time-travel replay over the witness stream.
 *
 * Replay rests on two facts the rest of the system already
 * guarantees: (1) a run under a fixed profile is deterministic, so
 * re-executing from any captured state re-derives the identical
 * event suffix; and (2) sinks stamp their own sequence numbers
 * (tracer.h), so replaying a recorded prefix into a fresh sink
 * reproduces the original numbering exactly.
 *
 * The pieces:
 *
 *  - SnapshotIndex<SnapPtr>  an append-only map from the sink
 *    sequence number at capture time to a state snapshot; lookup
 *    returns the nearest snapshot at-or-before a target seq.  The
 *    payload type is a template parameter because snapshots live
 *    above this layer (corelang::Machine::SnapshotPtr) and obs must
 *    not depend upward.  Engines can only capture at quiescent
 *    points (machine.h), so a driver registers one entry per
 *    quiescent point it passes — for cherisem_run that is the
 *    post-prelude boundary; the cold start (seq 0, no snapshot) is
 *    implicit.
 *
 *  - StopAtSeqSink  a recording sink that throws ReplayStop from
 *    write() immediately after the event with seq == stopAfter is
 *    recorded.  The exception unwinds out of the engine through
 *    runMain() — the engines' typed catch sites (EvalFailure /
 *    ExitException / AssertFailure) do not intercept it, and their
 *    catch(...) frame-cleanup handlers rethrow.  Events emitted
 *    while that unwind is in flight (the FuncExit balancing events)
 *    are swallowed, so events() ends exactly at stopAfter.
 *
 * `cherisem_run --replay-to SEQ` drives both: record a traced run
 * once, then restore the nearest snapshot and re-execute only the
 * tail, checking the re-derived prefix against the recording
 * bit-for-bit.
 */
#ifndef CHERISEM_OBS_REPLAY_H
#define CHERISEM_OBS_REPLAY_H

#include <cstdint>
#include <vector>

#include "obs/tracer.h"

namespace cherisem::obs {

/** Thrown by StopAtSeqSink when the target event has been recorded.
 *  A plain carrier struct, mirroring the engines' own non-local
 *  control flow types (corelang/machine.h). */
struct ReplayStop
{
    /** Sequence number of the last event recorded (== stopAfter). */
    uint64_t seq;
};

/**
 * Records events until the one with seq == stopAfter has been
 * written, then throws ReplayStop.  Later writes (the unwind path's
 * scope-balancing events) are dropped silently: throwing again from
 * inside a frame-cleanup handler would replace the in-flight
 * exception and re-trigger on every frame.
 */
class StopAtSeqSink : public TraceSink
{
  public:
    /** @p inner, when non-null, receives every *retained* event via
     *  its own emit() (re-stamped, but ordering preserves numbers) —
     *  lets --replay-to compose with a jsonl/chrome sink. */
    explicit StopAtSeqSink(uint64_t stopAfter,
                           TraceSink *inner = nullptr)
        : stopAfter_(stopAfter), inner_(inner)
    {
    }

    /** Has ReplayStop fired? */
    bool stopped() const { return stopped_; }

    /** The retained events, oldest first, ending at stopAfter when
     *  stopped() — the replayed stream. */
    const std::vector<TraceEvent> &events() const { return events_; }

  protected:
    void write(const TraceEvent &e) override;

  private:
    uint64_t stopAfter_;
    TraceSink *inner_;
    bool stopped_ = false;
    std::vector<TraceEvent> events_;
};

/**
 * Append-only seq -> snapshot index.  Entries are added in capture
 * order (monotonically increasing seq); nearest() returns the entry
 * with the largest seq <= target, or nullptr when the target
 * precedes every snapshot (cold re-execution is then the only way
 * back).
 */
template <typename SnapPtr>
class SnapshotIndex
{
  public:
    struct Entry
    {
        uint64_t seq;
        SnapPtr snap;
    };

    void
    add(uint64_t seq, SnapPtr snap)
    {
        entries_.push_back(Entry{seq, std::move(snap)});
    }

    const Entry *
    nearest(uint64_t target) const
    {
        const Entry *best = nullptr;
        for (const Entry &e : entries_) {
            if (e.seq <= target && (!best || e.seq > best->seq))
                best = &e;
        }
        return best;
    }

    size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    const std::vector<Entry> &entries() const { return entries_; }

  private:
    std::vector<Entry> entries_;
};

} // namespace cherisem::obs

#endif // CHERISEM_OBS_REPLAY_H
