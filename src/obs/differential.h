/**
 * @file
 * The trace-differential checker: run one program under two
 * configurations, witness both executions into ring buffers, and diff
 * the normalised event streams.
 *
 * Two comparisons mirror the two validation axes of the repo:
 *
 *  - diffStoreBackends: same profile, MapStore oracle vs PagedStore —
 *    the streams must be *identical* (the store is an implementation
 *    detail below the semantics), so any divergence is a bug;
 *  - diffEngines: same profile, tree-walking oracle vs bytecode VM —
 *    the engine is likewise below the semantics, so outcomes and
 *    streams must be bit-identical; any divergence is a compiler or
 *    VM bug;
 *  - diffProfiles: two implementation profiles (section 6 style) —
 *    divergences are findings, and the first divergent event names
 *    the semantic axis on which the implementations differ.
 *
 * This layer sits above driver/ (it re-runs whole programs); nothing
 * in driver/ depends back on it.
 */
#ifndef CHERISEM_OBS_DIFFERENTIAL_H
#define CHERISEM_OBS_DIFFERENTIAL_H

#include <string>

#include "driver/interpreter.h"
#include "obs/trace_diff.h"

namespace cherisem::obs {

/** A two-run comparison: both outcomes plus the stream diff. */
struct DifferentialResult
{
    driver::RunResult left;
    driver::RunResult right;
    DiffResult diff;
    /** Raw (pre-normalisation) event counts per side. */
    uint64_t leftEvents = 0;
    uint64_t rightEvents = 0;
    /** Ring-buffer overflow on either side invalidates the diff. */
    bool truncated = false;

    bool
    equivalent() const
    {
        return !truncated && diff.equivalent;
    }

    /** One-line report for harness output. */
    std::string summary() const;
};

/**
 * Run @p source under @p profile twice — once per store backend —
 * and diff the full event streams (addresses compared: the backends
 * must agree bit-for-bit).
 */
DifferentialResult diffStoreBackends(const std::string &source,
                                     const driver::Profile &profile,
                                     size_t ringCapacity = 1 << 17);

/**
 * Run @p source under @p profile twice — once per execution engine
 * (tree-walking oracle, then bytecode VM) — and diff the full event
 * streams (addresses compared: the engines must agree
 * bit-for-bit).
 */
DifferentialResult diffEngines(const std::string &source,
                               const driver::Profile &profile,
                               size_t ringCapacity = 1 << 17);

/**
 * Run @p source under two implementation profiles and diff the
 * normalised streams under @p opts (callers usually disable address
 * comparison: the profiles' allocators differ by design).
 */
DifferentialResult diffProfiles(const std::string &source,
                                const driver::Profile &a,
                                const driver::Profile &b,
                                const DiffOptions &opts,
                                size_t ringCapacity = 1 << 17);

} // namespace cherisem::obs

#endif // CHERISEM_OBS_DIFFERENTIAL_H
