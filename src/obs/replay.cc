/**
 * @file
 * StopAtSeqSink (see replay.h for the replay architecture).
 */
#include "obs/replay.h"

namespace cherisem::obs {

void
StopAtSeqSink::write(const TraceEvent &e)
{
    if (stopped_)
        return; // unwind-path events after the stop fired
    events_.push_back(e);
    if (inner_)
        inner_->emit(e);
    if (e.seq >= stopAfter_) {
        stopped_ = true;
        throw ReplayStop{e.seq};
    }
}

} // namespace cherisem::obs
