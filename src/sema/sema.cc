#include "sema/sema.h"

#include <cassert>
#include <vector>

#include "intrinsics/intrinsics.h"

namespace cherisem::sema {

using frontend::BinOp;
using frontend::DerivSource;
using frontend::Expr;
using frontend::ExprPtr;
using frontend::Stmt;
using frontend::UnOp;
using ctype::IntKind;
using ctype::intType;
using ctype::pointerTo;
using ctype::Type;
using ctype::TypeRef;

namespace {

class Analyzer
{
  public:
    Analyzer(Program &prog)
        : prog_(prog),
          layout_(prog.machine, &prog.unit.tags)
    {}

    void
    run()
    {
        // Index functions (last definition wins over prototypes).
        for (uint32_t i = 0; i < prog_.unit.functions.size(); ++i) {
            const auto &fn = prog_.unit.functions[i];
            auto it = prog_.functionIndex.find(fn.name);
            if (it == prog_.functionIndex.end() || fn.body)
                prog_.functionIndex[fn.name] = i;
        }
        // Globals form the outermost scope.
        pushScope();
        for (frontend::VarDecl &g : prog_.unit.globals) {
            declare(g.name, g.type, g.loc);
            if (g.hasInit)
                checkInitializer(g.init, g.type);
        }
        for (frontend::FunctionDef &fn : prog_.unit.functions) {
            if (!fn.body)
                continue;
            currentReturn_ = fn.type->returnType;
            pushScope();
            for (size_t i = 0; i < fn.type->params.size(); ++i) {
                std::string name = i < fn.paramNames.size()
                                       ? fn.paramNames[i]
                                       : "";
                if (!name.empty())
                    declare(name, fn.type->params[i], fn.loc);
            }
            checkStmt(*fn.body);
            popScope();
        }
        popScope();
    }

  private:
    [[noreturn]] void
    fail(const SourceLoc &loc, const std::string &msg) const
    {
        throw SemaError{loc, msg};
    }

    // ---- scopes ----

    void pushScope() { scopes_.emplace_back(); }
    void popScope() { scopes_.pop_back(); }

    void
    declare(const std::string &name, TypeRef ty, const SourceLoc &loc)
    {
        if (name.empty())
            fail(loc, "missing declarator name");
        scopes_.back()[name] = std::move(ty);
    }

    const TypeRef *
    lookupVar(const std::string &name) const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto f = it->find(name);
            if (f != it->end())
                return &f->second;
        }
        return nullptr;
    }

    // ---- conversions ----

    /** Wrap @p e in an implicit cast to @p to (no-op if same type). */
    ExprPtr
    convert(ExprPtr e, TypeRef to)
    {
        if (ctype::sameType(e->type, to))
            return e;
        ExprPtr c = Expr::make(Expr::Kind::Cast, e->loc);
        c->typeOperand = to;
        c->type = to;
        c->implicitCast = true;
        c->lhs = std::move(e);
        return c;
    }

    /** Array-to-pointer and function-to-pointer decay. */
    ExprPtr
    decay(ExprPtr e)
    {
        if (e->type->isArray()) {
            TypeRef to = pointerTo(e->type->element);
            ExprPtr c = Expr::make(Expr::Kind::Cast, e->loc);
            c->typeOperand = to;
            c->type = to;
            c->implicitCast = true;
            c->lhs = std::move(e);
            return c;
        }
        if (e->type->isFunction()) {
            TypeRef to = pointerTo(e->type);
            ExprPtr c = Expr::make(Expr::Kind::Cast, e->loc);
            c->typeOperand = to;
            c->type = to;
            c->implicitCast = true;
            c->lhs = std::move(e);
            return c;
        }
        return e;
    }

    /** Integer promotions: types of rank < int promote to int. */
    TypeRef
    promoted(const TypeRef &t) const
    {
        if (!t->isInteger())
            return t;
        if (ctype::intRank(t->intKind) <
            ctype::intRank(IntKind::Int)) {
            return intType(IntKind::Int);
        }
        return ctype::withConst(t, false);
    }

    /**
     * The usual arithmetic conversions with the CHERI C rank rule
     * (section 3.7): (u)intptr_t outranks every standard integer, so
     * mixed arithmetic converts the other operand *to* the
     * capability-carrying type and never loses the capability.
     */
    TypeRef
    usualArithmetic(const TypeRef &a, const TypeRef &b) const
    {
        if (a->isFloating() || b->isFloating()) {
            if ((a->isFloating() &&
                 a->floatKind == ctype::FloatKind::Double) ||
                (b->isFloating() &&
                 b->floatKind == ctype::FloatKind::Double)) {
                return ctype::floatType(ctype::FloatKind::Double);
            }
            return ctype::floatType(ctype::FloatKind::Float);
        }
        TypeRef pa = promoted(a);
        TypeRef pb = promoted(b);
        IntKind ka = pa->intKind;
        IntKind kb = pb->intKind;
        if (ka == kb)
            return pa;
        int ra = ctype::intRank(ka);
        int rb = ctype::intRank(kb);
        bool sa = ctype::isSignedIntKind(ka);
        bool sb = ctype::isSignedIntKind(kb);
        if (sa == sb)
            return ra >= rb ? pa : pb;
        // Unsigned operand with rank >= signed operand's: unsigned
        // wins; otherwise the signed type (same width here) wins via
        // its unsigned counterpart per 6.3.1.8.
        const TypeRef &u = sa ? pb : pa;
        const TypeRef &s = sa ? pa : pb;
        int ru = ctype::intRank(u->intKind);
        int rs = ctype::intRank(s->intKind);
        if (ru >= rs)
            return u;
        if (layout_.intValueBytes(s->intKind) >
            layout_.intValueBytes(u->intKind)) {
            return s;
        }
        return intType(ctype::toUnsigned(s->intKind));
    }

    /** Is @p e a conversion from a non-capability-carrying type
     *  (section 3.7's derivation criterion)? */
    static bool
    convertedFromNonCap(const ExprPtr &e)
    {
        return e->kind == Expr::Kind::Cast && e->type->isCapCarrying() &&
            e->lhs->type && !e->lhs->type->isCapCarrying();
    }

    /** Can @p from be implicitly assigned to @p to? */
    bool
    assignable(const TypeRef &to, const TypeRef &from) const
    {
        if (ctype::sameType(to, from))
            return true;
        if (to->isArithmetic() && from->isArithmetic())
            return true;
        if (to->isPointer() && from->isPointer()) {
            // void* converts freely; const mismatches are tolerated
            // (CHERI C makes const casts capability no-ops, 3.9).
            return true;
        }
        if (to->isPointer() && from->isInteger())
            return true; // constant 0 etc.; warned in real compilers.
        if (to->isInteger() && from->isPointer())
            return false;
        if (to->isStructOrUnion() && from->isStructOrUnion())
            return to->tag == from->tag;
        return false;
    }

    // ---- expression checking ----

    /** Check as rvalue: full check + decay. */
    ExprPtr
    checkRValue(ExprPtr e)
    {
        checkExpr(e);
        return decay(std::move(e));
    }

    void
    checkExpr(ExprPtr &e)
    {
        switch (e->kind) {
          case Expr::Kind::IntLit: {
            uint64_t v = e->intValue;
            IntKind k;
            if (e->litUnsigned) {
                k = (v <= 0xffffffffull && !e->litLong)
                        ? IntKind::UInt
                        : IntKind::ULong;
            } else if (e->litLong) {
                k = v <= 0x7fffffffffffffffull ? IntKind::Long
                                               : IntKind::ULong;
            } else if (v <= 0x7fffffffull) {
                k = IntKind::Int;
            } else if (v <= 0x7fffffffffffffffull) {
                k = IntKind::Long;
            } else {
                k = IntKind::ULong;
            }
            e->type = intType(k);
            return;
          }
          case Expr::Kind::FloatLit:
            e->type = ctype::floatType(ctype::FloatKind::Double);
            return;
          case Expr::Kind::StringLit:
            e->type = ctype::arrayOf(
                ctype::withConst(intType(IntKind::Char), true),
                e->text.size() + 1);
            e->isLValue = true;
            return;
          case Expr::Kind::Ident: {
            if (const TypeRef *t = lookupVar(e->text)) {
                e->type = *t;
                e->isLValue = true;
                return;
            }
            auto fi = prog_.functionIndex.find(e->text);
            if (fi != prog_.functionIndex.end()) {
                e->type = prog_.unit.functions[fi->second].type;
                return;
            }
            auto ei = prog_.unit.enumConstants.find(e->text);
            if (ei != prog_.unit.enumConstants.end()) {
                e->isEnumConst = true;
                e->enumValue = ei->second;
                e->type = intType(IntKind::Int);
                return;
            }
            if (intrinsics::lookupBuiltin(e->text)) {
                // Builtin used as a call target; typed at the Call.
                e->type = ctype::voidType();
                return;
            }
            fail(e->loc, "use of undeclared identifier '" + e->text +
                             "'");
          }
          case Expr::Kind::Unary:
            checkUnary(e);
            return;
          case Expr::Kind::Binary:
            checkBinary(e);
            return;
          case Expr::Kind::Assign:
            checkAssign(e);
            return;
          case Expr::Kind::Cond: {
            e->cond = checkRValue(std::move(e->cond));
            e->lhs = checkRValue(std::move(e->lhs));
            e->rhs = checkRValue(std::move(e->rhs));
            if (e->lhs->type->isArithmetic() &&
                e->rhs->type->isArithmetic()) {
                TypeRef common =
                    usualArithmetic(e->lhs->type, e->rhs->type);
                e->lhs = convert(std::move(e->lhs), common);
                e->rhs = convert(std::move(e->rhs), common);
                e->type = common;
            } else if (e->lhs->type->isPointer()) {
                e->rhs = convert(std::move(e->rhs), e->lhs->type);
                e->type = e->lhs->type;
            } else {
                e->type = e->lhs->type;
            }
            return;
          }
          case Expr::Kind::Cast: {
            e->lhs = checkRValue(std::move(e->lhs));
            TypeRef to = e->typeOperand;
            TypeRef from = e->lhs->type;
            if (!to->isVoid() && !to->isScalar())
                fail(e->loc, "cast to non-scalar type");
            if (!from->isScalar() && !to->isVoid())
                fail(e->loc, "cast of non-scalar value");
            e->type = to;
            return;
          }
          case Expr::Kind::Call:
            checkCall(e);
            return;
          case Expr::Kind::Index: {
            e->lhs = checkRValue(std::move(e->lhs));
            e->rhs = checkRValue(std::move(e->rhs));
            ExprPtr *ptr = &e->lhs;
            ExprPtr *idx = &e->rhs;
            if (!(*ptr)->type->isPointer() &&
                (*idx)->type->isPointer()) {
                std::swap(ptr, idx);
            }
            if (!(*ptr)->type->isPointer())
                fail(e->loc, "subscripted value is not a pointer");
            if (!(*idx)->type->isInteger())
                fail(e->loc, "array subscript is not an integer");
            e->type = (*ptr)->type->pointee;
            e->isLValue = true;
            return;
          }
          case Expr::Kind::Member: {
            if (e->isArrow) {
                e->lhs = checkRValue(std::move(e->lhs));
                if (!e->lhs->type->isPointer() ||
                    !e->lhs->type->pointee->isStructOrUnion()) {
                    fail(e->loc, "-> on non-struct-pointer");
                }
            } else {
                checkExpr(e->lhs);
                if (!e->lhs->type->isStructOrUnion())
                    fail(e->loc, ". on non-struct value");
            }
            ctype::TagId tag = e->isArrow ? e->lhs->type->pointee->tag
                                          : e->lhs->type->tag;
            ctype::FieldLoc fl = layout_.fieldOf(tag, e->text);
            if (!fl.found)
                fail(e->loc, "no member named '" + e->text + "'");
            e->type = fl.type;
            e->isLValue = true;
            return;
          }
          case Expr::Kind::SizeofExpr:
            checkExpr(e->lhs);
            e->type = intType(IntKind::ULong);
            return;
          case Expr::Kind::SizeofType:
          case Expr::Kind::AlignofType:
            e->type = intType(IntKind::ULong);
            return;
          case Expr::Kind::OffsetOf: {
            if (!e->typeOperand->isStructOrUnion())
                fail(e->loc, "offsetof requires a struct/union type");
            ctype::FieldLoc fl =
                layout_.fieldOf(e->typeOperand->tag, e->text);
            if (!fl.found)
                fail(e->loc, "offsetof: no member '" + e->text + "'");
            e->type = intType(IntKind::ULong);
            return;
          }
        }
        fail(e->loc, "unhandled expression kind");
    }

    void
    checkUnary(ExprPtr &e)
    {
        switch (e->unop) {
          case UnOp::Deref: {
            e->lhs = checkRValue(std::move(e->lhs));
            if (!e->lhs->type->isPointer())
                fail(e->loc, "dereference of non-pointer");
            e->type = e->lhs->type->pointee;
            e->isLValue = !e->type->isFunction();
            return;
          }
          case UnOp::AddrOf: {
            checkExpr(e->lhs);
            if (e->lhs->type->isFunction()) {
                e->type = pointerTo(e->lhs->type);
                return;
            }
            if (!e->lhs->isLValue)
                fail(e->loc, "address of non-lvalue");
            e->type = pointerTo(e->lhs->type);
            return;
          }
          case UnOp::Plus:
          case UnOp::Minus:
          case UnOp::BitNot: {
            e->lhs = checkRValue(std::move(e->lhs));
            if (!e->lhs->type->isArithmetic())
                fail(e->loc, "unary arithmetic on non-arithmetic");
            TypeRef p = promoted(e->lhs->type);
            e->lhs = convert(std::move(e->lhs), p);
            e->type = p;
            return;
          }
          case UnOp::LogNot:
            e->lhs = checkRValue(std::move(e->lhs));
            if (!e->lhs->type->isScalar())
                fail(e->loc, "! on non-scalar");
            e->type = intType(IntKind::Int);
            return;
          case UnOp::PreInc:
          case UnOp::PreDec:
          case UnOp::PostInc:
          case UnOp::PostDec: {
            checkExpr(e->lhs);
            if (!e->lhs->isLValue || !e->lhs->type->isScalar())
                fail(e->loc, "++/-- requires a scalar lvalue");
            if (e->lhs->type->isConst)
                fail(e->loc, "++/-- on const lvalue");
            e->type = ctype::withConst(e->lhs->type, false);
            return;
          }
        }
    }

    void
    checkBinary(ExprPtr &e)
    {
        if (e->binop == BinOp::Comma) {
            e->lhs = checkRValue(std::move(e->lhs));
            e->rhs = checkRValue(std::move(e->rhs));
            e->type = e->rhs->type;
            return;
        }
        if (e->binop == BinOp::LogAnd || e->binop == BinOp::LogOr) {
            e->lhs = checkRValue(std::move(e->lhs));
            e->rhs = checkRValue(std::move(e->rhs));
            if (!e->lhs->type->isScalar() || !e->rhs->type->isScalar())
                fail(e->loc, "logical op on non-scalar");
            e->type = intType(IntKind::Int);
            return;
        }

        e->lhs = checkRValue(std::move(e->lhs));
        e->rhs = checkRValue(std::move(e->rhs));
        TypeRef lt = e->lhs->type;
        TypeRef rt = e->rhs->type;

        // Pointer arithmetic and comparisons.
        if (lt->isPointer() || rt->isPointer()) {
            switch (e->binop) {
              case BinOp::Add:
                if (lt->isPointer() && rt->isInteger()) {
                    e->type = lt;
                } else if (lt->isInteger() && rt->isPointer()) {
                    e->type = rt;
                } else {
                    fail(e->loc, "invalid pointer addition");
                }
                return;
              case BinOp::Sub:
                if (lt->isPointer() && rt->isInteger()) {
                    e->type = lt;
                } else if (lt->isPointer() && rt->isPointer()) {
                    e->type = intType(IntKind::Long); // ptrdiff_t
                } else {
                    fail(e->loc, "invalid pointer subtraction");
                }
                return;
              case BinOp::Eq:
              case BinOp::Ne:
              case BinOp::Lt:
              case BinOp::Gt:
              case BinOp::Le:
              case BinOp::Ge: {
                // Allow ptr-vs-ptr and ptr-vs-null/integer-0.
                if (lt->isInteger())
                    e->lhs = convert(std::move(e->lhs), rt);
                else if (rt->isInteger())
                    e->rhs = convert(std::move(e->rhs), lt);
                e->type = intType(IntKind::Int);
                return;
              }
              default:
                fail(e->loc, "invalid operands to binary operator");
            }
        }

        if (!lt->isArithmetic() || !rt->isArithmetic())
            fail(e->loc, "binary operator on non-arithmetic operands");

        switch (e->binop) {
          case BinOp::Shl:
          case BinOp::Shr: {
            // Shifts promote each operand separately.
            TypeRef pl = promoted(lt);
            e->lhs = convert(std::move(e->lhs), pl);
            e->rhs = convert(std::move(e->rhs), promoted(rt));
            e->type = pl;
            if (pl->isCapInteger())
                e->deriv = DerivSource::Left;
            return;
          }
          default:
            break;
        }

        TypeRef common = usualArithmetic(lt, rt);
        e->lhs = convert(std::move(e->lhs), common);
        e->rhs = convert(std::move(e->rhs), common);
        switch (e->binop) {
          case BinOp::Lt: case BinOp::Gt: case BinOp::Le:
          case BinOp::Ge: case BinOp::Eq: case BinOp::Ne:
            e->type = intType(IntKind::Int);
            return;
          default:
            e->type = common;
            break;
        }

        // Capability derivation (sections 3.7, 4.4): pick the operand
        // that was not converted from a non-capability type; ties go
        // to the left.
        if (common->isCapInteger()) {
            bool lconv = convertedFromNonCap(e->lhs);
            bool rconv = convertedFromNonCap(e->rhs);
            if (!lconv)
                e->deriv = DerivSource::Left;
            else if (!rconv)
                e->deriv = DerivSource::Right;
            else
                e->deriv = DerivSource::Left;
        }
    }

    void
    checkAssign(ExprPtr &e)
    {
        checkExpr(e->lhs);
        if (!e->lhs->isLValue)
            fail(e->loc, "assignment to non-lvalue");
        if (e->lhs->type->isConst)
            fail(e->loc, "assignment to const-qualified lvalue");
        e->rhs = checkRValue(std::move(e->rhs));
        TypeRef lt = ctype::withConst(e->lhs->type, false);
        if (e->binop == BinOp::Comma) {
            // Plain '='.
            if (!assignable(lt, e->rhs->type)) {
                fail(e->loc,
                     "incompatible types in assignment: " +
                         ctype::typeStr(lt) + " = " +
                         ctype::typeStr(e->rhs->type));
            }
            if (lt->isScalar())
                e->rhs = convert(std::move(e->rhs), lt);
        } else {
            // Compound assignment: the evaluator performs
            // load-op-store; here we only sanity check and type the
            // rhs.
            if (lt->isPointer()) {
                if (e->binop != BinOp::Add && e->binop != BinOp::Sub)
                    fail(e->loc, "invalid compound op on pointer");
                if (!e->rhs->type->isInteger())
                    fail(e->loc, "pointer += requires integer");
            } else if (!lt->isArithmetic() ||
                       !e->rhs->type->isArithmetic()) {
                fail(e->loc, "compound assignment on non-arithmetic");
            }
        }
        e->type = lt;
        return;
    }

    void
    checkCall(ExprPtr &e)
    {
        // Builtin / intrinsic calls: resolve via the DSL.
        if (e->lhs->kind == Expr::Kind::Ident &&
            !lookupVar(e->lhs->text) &&
            prog_.functionIndex.find(e->lhs->text) ==
                prog_.functionIndex.end()) {
            auto sig = intrinsics::lookupBuiltin(e->lhs->text);
            if (!sig)
                fail(e->loc, "call to undeclared function '" +
                                 e->lhs->text + "'");
            std::vector<TypeRef> arg_types;
            for (ExprPtr &a : e->args) {
                a = checkRValue(std::move(a));
                arg_types.push_back(a->type);
            }
            auto resolved = intrinsics::resolveBuiltin(
                *sig, arg_types, prog_.machine);
            if (!resolved) {
                fail(e->loc, e->lhs->text + ": " + resolved.error());
            }
            const auto &rs = resolved.value();
            for (size_t i = 0; i < rs.params.size(); ++i) {
                if (rs.params[i]->isScalar() &&
                    e->args[i]->type->isScalar()) {
                    e->args[i] =
                        convert(std::move(e->args[i]), rs.params[i]);
                }
            }
            e->builtinId = static_cast<int>(sig->id);
            e->lhs->type = ctype::voidType();
            e->type = rs.ret;
            return;
        }

        // Ordinary call: function designator or function pointer.
        checkExpr(e->lhs);
        TypeRef fty = e->lhs->type;
        if (fty->isPointer())
            fty = fty->pointee;
        if (!fty->isFunction())
            fail(e->loc, "called object is not a function");
        if (e->args.size() < fty->params.size() ||
            (!fty->variadic && e->args.size() > fty->params.size())) {
            fail(e->loc, "wrong number of arguments");
        }
        for (size_t i = 0; i < e->args.size(); ++i) {
            e->args[i] = checkRValue(std::move(e->args[i]));
            if (i < fty->params.size()) {
                TypeRef pt = ctype::withConst(fty->params[i], false);
                if (!assignable(pt, e->args[i]->type)) {
                    fail(e->args[i]->loc,
                         "incompatible argument type: " +
                             ctype::typeStr(e->args[i]->type) +
                             " -> " + ctype::typeStr(pt));
                }
                if (pt->isScalar())
                    e->args[i] = convert(std::move(e->args[i]), pt);
            } else {
                // Default argument promotions for variadic extras.
                TypeRef at = e->args[i]->type;
                if (at->isInteger())
                    e->args[i] =
                        convert(std::move(e->args[i]), promoted(at));
                else if (at->isFloating())
                    e->args[i] = convert(
                        std::move(e->args[i]),
                        ctype::floatType(ctype::FloatKind::Double));
            }
        }
        e->type = fty->returnType;
    }

    // ---- initializers & statements ----

    void
    checkInitializer(frontend::Initializer &init, const TypeRef &ty)
    {
        if (!init.isList) {
            init.expr = checkRValue(std::move(init.expr));
            if (ty->isScalar()) {
                if (!assignable(ctype::withConst(ty, false),
                                init.expr->type)) {
                    fail(init.loc, "incompatible initializer for " +
                                       ctype::typeStr(ty));
                }
                init.expr = convert(std::move(init.expr),
                                    ctype::withConst(ty, false));
            } else if (ty->isArray() && ty->element->isInteger() &&
                       init.expr->kind == Expr::Kind::Cast &&
                       init.expr->lhs->kind ==
                           Expr::Kind::StringLit) {
                // char a[] = "..." — keep the decayed literal; the
                // evaluator copies the bytes.
            }
            return;
        }
        if (ty->isArray()) {
            if (init.list.size() > ty->arraySize && ty->arraySize != 0)
                fail(init.loc, "too many array initializers");
            for (auto &sub : init.list)
                checkInitializer(sub, ty->element);
            return;
        }
        if (ty->isStructOrUnion()) {
            const ctype::TagDef &def =
                prog_.unit.tags.get(ty->tag);
            size_t limit = def.isUnion ? 1 : def.members.size();
            if (init.list.size() > limit)
                fail(init.loc, "too many struct initializers");
            for (size_t i = 0; i < init.list.size(); ++i)
                checkInitializer(init.list[i], def.members[i].type);
            return;
        }
        // Scalar with braces: {x}.
        if (init.list.size() != 1)
            fail(init.loc, "invalid scalar initializer list");
        checkInitializer(init.list[0], ty);
    }

    void
    checkStmt(Stmt &s)
    {
        for (auto &label : s.caseExprs)
            label = checkRValue(std::move(label));
        switch (s.kind) {
          case Stmt::Kind::Expr:
            s.expr = checkRValue(std::move(s.expr));
            return;
          case Stmt::Kind::Decl:
            for (frontend::VarDecl &d : s.decls) {
                // Unsized arrays take their size from the
                // initializer.
                if (d.type->isArray() && d.type->arraySize == 0 &&
                    d.hasInit) {
                    if (d.init.isList) {
                        d.type = ctype::arrayOf(d.type->element,
                                                d.init.list.size());
                    } else if (d.init.expr &&
                               d.init.expr->kind ==
                                   Expr::Kind::StringLit) {
                        d.type = ctype::arrayOf(
                            d.type->element,
                            d.init.expr->text.size() + 1);
                    }
                }
                declare(d.name, d.type, d.loc);
                if (d.hasInit)
                    checkInitializer(d.init, d.type);
            }
            return;
          case Stmt::Kind::Block:
            pushScope();
            for (auto &sub : s.body)
                checkStmt(*sub);
            popScope();
            return;
          case Stmt::Kind::If:
            s.expr = checkRValue(std::move(s.expr));
            checkStmt(*s.thenStmt);
            if (s.elseStmt)
                checkStmt(*s.elseStmt);
            return;
          case Stmt::Kind::While:
          case Stmt::Kind::DoWhile:
            s.expr = checkRValue(std::move(s.expr));
            checkStmt(*s.thenStmt);
            return;
          case Stmt::Kind::Switch:
            s.expr = checkRValue(std::move(s.expr));
            if (!s.expr->type->isInteger())
                fail(s.loc, "switch requires an integer expression");
            checkStmt(*s.thenStmt);
            return;
          case Stmt::Kind::For:
            pushScope();
            if (s.forInit)
                checkStmt(*s.forInit);
            if (s.forCond)
                s.forCond = checkRValue(std::move(s.forCond));
            if (s.forStep)
                s.forStep = checkRValue(std::move(s.forStep));
            checkStmt(*s.thenStmt);
            popScope();
            return;
          case Stmt::Kind::Return:
            if (s.expr) {
                s.expr = checkRValue(std::move(s.expr));
                if (currentReturn_ && currentReturn_->isScalar())
                    s.expr = convert(std::move(s.expr),
                                     ctype::withConst(currentReturn_,
                                                      false));
            }
            return;
          case Stmt::Kind::Break:
          case Stmt::Kind::Continue:
          case Stmt::Kind::Empty:
            return;
        }
    }

    Program &prog_;
    ctype::LayoutEngine layout_;
    std::vector<std::map<std::string, TypeRef>> scopes_;
    TypeRef currentReturn_;
};

} // namespace

Program
analyze(frontend::TranslationUnit unit,
        const ctype::MachineLayout &machine)
{
    Program prog;
    prog.unit = std::move(unit);
    prog.machine = machine;
    Analyzer a(prog);
    a.run();
    return prog;
}

} // namespace cherisem::sema
