/**
 * @file
 * Type checker / elaborator for MiniC.
 *
 * Annotates the AST in place: every expression gets a type and lvalue
 * flag; implicit conversions become explicit Cast nodes (the
 * elaboration that lets the evaluator stay typing-free); binary
 * operations on capability-carrying types get their *derivation
 * source* (section 3.7 / 4.4: derive from the operand that was not
 * converted from a non-capability type, ties to the left); calls to
 * builtins/intrinsics are resolved through the type-derivation DSL
 * (section 4.5).
 */
#ifndef CHERISEM_SEMA_SEMA_H
#define CHERISEM_SEMA_SEMA_H

#include <map>
#include <string>

#include "ctype/layout.h"
#include "frontend/ast.h"

namespace cherisem::sema {

struct SemaError
{
    SourceLoc loc;
    std::string message;

    std::string str() const { return loc.str() + ": " + message; }
};

/** The fully analysed program handed to the evaluator. */
struct Program
{
    frontend::TranslationUnit unit;
    /** name -> index into unit.functions (bodies only). */
    std::map<std::string, uint32_t> functionIndex;
    ctype::MachineLayout machine;
};

/**
 * Run semantic analysis.  Throws SemaError on ill-typed programs.
 */
Program analyze(frontend::TranslationUnit unit,
                const ctype::MachineLayout &machine);

} // namespace cherisem::sema

#endif // CHERISEM_SEMA_SEMA_H
