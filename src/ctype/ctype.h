/**
 * @file
 * Representation of MiniC (CHERI C subset) types.
 *
 * CHERI C specifics encoded here (paper sections 3.3, 3.7, 3.10):
 *  - (u)intptr_t are distinct, capability-carrying integer kinds;
 *  - no standard integer type has a higher conversion rank than
 *    (u)intptr_t;
 *  - ptraddr_t is an ordinary (non-capability) integer of address width
 *    (we model it as a distinct kind so intrinsics can name it).
 *
 * Struct/union member lists live in a TagTable rather than inline, so
 * recursive types need no mutation of shared Type nodes.
 */
#ifndef CHERISEM_CTYPE_CTYPE_H
#define CHERISEM_CTYPE_CTYPE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cherisem::ctype {

/** Integer kinds. size_t/ptrdiff_t are parsed as aliases of
 *  ULong/Long; ptraddr_t is its own kind (address width, unsigned). */
enum class IntKind
{
    Bool,
    Char,
    SChar,
    UChar,
    Short,
    UShort,
    Int,
    UInt,
    Long,
    ULong,
    LongLong,
    ULongLong,
    Ptraddr,
    Intptr,
    Uintptr,
};

enum class FloatKind { Float, Double };

struct Type;
using TypeRef = std::shared_ptr<const Type>;

/** Identifier of a struct/union definition inside a TagTable. */
using TagId = uint32_t;

/** A struct or union member. */
struct Member
{
    std::string name;
    TypeRef type;
};

/** A completed (or pending) struct/union definition. */
struct TagDef
{
    std::string name;
    bool isUnion = false;
    bool complete = false;
    std::vector<Member> members;
};

/**
 * Program-wide table of struct/union definitions.
 *
 * Mirrors the Cerberus "tag definitions" environment: layout queries
 * take the table so Type nodes stay immutable.
 */
class TagTable
{
  public:
    TagId declare(const std::string &name, bool is_union);
    void complete(TagId id, std::vector<Member> members);
    const TagDef &get(TagId id) const { return defs_.at(id); }
    size_t size() const { return defs_.size(); }

  private:
    std::vector<TagDef> defs_;
};

/** An immutable MiniC type node. */
struct Type
{
    enum class Kind
    {
        Void,
        Integer,
        Floating,
        Pointer,
        Array,
        Function,
        StructOrUnion,
    };

    Kind kind = Kind::Void;
    /** Top-level const qualification (section 3.9). */
    bool isConst = false;

    IntKind intKind = IntKind::Int;      // Kind::Integer
    FloatKind floatKind = FloatKind::Double; // Kind::Floating
    TypeRef pointee;                     // Kind::Pointer
    TypeRef element;                     // Kind::Array
    uint64_t arraySize = 0;              // Kind::Array
    TypeRef returnType;                  // Kind::Function
    std::vector<TypeRef> params;         // Kind::Function
    bool variadic = false;               // Kind::Function
    TagId tag = 0;                       // Kind::StructOrUnion

    bool isVoid() const { return kind == Kind::Void; }
    bool isInteger() const { return kind == Kind::Integer; }
    bool isFloating() const { return kind == Kind::Floating; }
    bool isArithmetic() const { return isInteger() || isFloating(); }
    bool isPointer() const { return kind == Kind::Pointer; }
    bool isArray() const { return kind == Kind::Array; }
    bool isFunction() const { return kind == Kind::Function; }
    bool isStructOrUnion() const { return kind == Kind::StructOrUnion; }
    bool isScalar() const { return isArithmetic() || isPointer(); }
    /** Does this integer type carry a capability at runtime? */
    bool isCapInteger() const
    {
        return isInteger() &&
            (intKind == IntKind::Intptr || intKind == IntKind::Uintptr);
    }
    /** Pointer or (u)intptr_t: represented by a capability. */
    bool isCapCarrying() const { return isPointer() || isCapInteger(); }
};

/// @name Type factories (uniqued for the common scalar types).
/// @{
TypeRef voidType();
TypeRef intType(IntKind k);
TypeRef floatType(FloatKind k);
TypeRef pointerTo(TypeRef pointee);
TypeRef arrayOf(TypeRef element, uint64_t n);
TypeRef functionType(TypeRef ret, std::vector<TypeRef> params,
                     bool variadic);
TypeRef structOrUnionType(TagId tag);
/** Copy of @p t with isConst set to @p is_const. */
TypeRef withConst(TypeRef t, bool is_const);
/// @}

/** True for the signed integer kinds. Plain char is signed here. */
bool isSignedIntKind(IntKind k);

/**
 * Integer conversion rank (section 3.7): strictly increasing order;
 * (u)intptr_t rank exceeds every standard integer type.
 */
int intRank(IntKind k);

/** The unsigned counterpart of @p k (identity for unsigned kinds). */
IntKind toUnsigned(IntKind k);

/** Structural equality modulo top-level const. */
bool sameType(const TypeRef &a, const TypeRef &b);

/** Human-readable type spelling for diagnostics. */
std::string typeStr(const TypeRef &t, const TagTable *tags = nullptr);

} // namespace cherisem::ctype

#endif // CHERISEM_CTYPE_CTYPE_H
