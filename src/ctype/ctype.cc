#include "ctype/ctype.h"

#include <cassert>

namespace cherisem::ctype {

TagId
TagTable::declare(const std::string &name, bool is_union)
{
    for (TagId i = 0; i < defs_.size(); ++i) {
        if (!name.empty() && defs_[i].name == name &&
            defs_[i].isUnion == is_union) {
            return i;
        }
    }
    TagDef def;
    def.name = name;
    def.isUnion = is_union;
    defs_.push_back(std::move(def));
    return static_cast<TagId>(defs_.size() - 1);
}

void
TagTable::complete(TagId id, std::vector<Member> members)
{
    TagDef &def = defs_.at(id);
    def.members = std::move(members);
    def.complete = true;
}

namespace {

TypeRef
makeType(Type t)
{
    return std::make_shared<const Type>(std::move(t));
}

} // namespace

TypeRef
voidType()
{
    static TypeRef t = makeType(Type{});
    return t;
}

TypeRef
intType(IntKind k)
{
    static TypeRef cache[16];
    auto idx = static_cast<size_t>(k);
    assert(idx < 16);
    if (!cache[idx]) {
        Type t;
        t.kind = Type::Kind::Integer;
        t.intKind = k;
        cache[idx] = makeType(std::move(t));
    }
    return cache[idx];
}

TypeRef
floatType(FloatKind k)
{
    Type t;
    t.kind = Type::Kind::Floating;
    t.floatKind = k;
    return makeType(std::move(t));
}

TypeRef
pointerTo(TypeRef pointee)
{
    Type t;
    t.kind = Type::Kind::Pointer;
    t.pointee = std::move(pointee);
    return makeType(std::move(t));
}

TypeRef
arrayOf(TypeRef element, uint64_t n)
{
    Type t;
    t.kind = Type::Kind::Array;
    t.element = std::move(element);
    t.arraySize = n;
    return makeType(std::move(t));
}

TypeRef
functionType(TypeRef ret, std::vector<TypeRef> params, bool variadic)
{
    Type t;
    t.kind = Type::Kind::Function;
    t.returnType = std::move(ret);
    t.params = std::move(params);
    t.variadic = variadic;
    return makeType(std::move(t));
}

TypeRef
structOrUnionType(TagId tag)
{
    Type t;
    t.kind = Type::Kind::StructOrUnion;
    t.tag = tag;
    return makeType(std::move(t));
}

TypeRef
withConst(TypeRef t, bool is_const)
{
    if (t->isConst == is_const)
        return t;
    Type copy = *t;
    copy.isConst = is_const;
    return makeType(std::move(copy));
}

bool
isSignedIntKind(IntKind k)
{
    switch (k) {
      case IntKind::Char:
      case IntKind::SChar:
      case IntKind::Short:
      case IntKind::Int:
      case IntKind::Long:
      case IntKind::LongLong:
      case IntKind::Intptr:
        return true;
      default:
        return false;
    }
}

int
intRank(IntKind k)
{
    switch (k) {
      case IntKind::Bool:
        return 1;
      case IntKind::Char:
      case IntKind::SChar:
      case IntKind::UChar:
        return 2;
      case IntKind::Short:
      case IntKind::UShort:
        return 3;
      case IntKind::Int:
      case IntKind::UInt:
        return 4;
      case IntKind::Long:
      case IntKind::ULong:
      case IntKind::Ptraddr:
        return 5;
      case IntKind::LongLong:
      case IntKind::ULongLong:
        return 6;
      // Section 3.7: "no other standard integer type shall have a
      // higher integer conversion rank than intptr_t and uintptr_t".
      case IntKind::Intptr:
      case IntKind::Uintptr:
        return 7;
    }
    return 0;
}

IntKind
toUnsigned(IntKind k)
{
    switch (k) {
      case IntKind::Char:
      case IntKind::SChar:
        return IntKind::UChar;
      case IntKind::Short:
        return IntKind::UShort;
      case IntKind::Int:
        return IntKind::UInt;
      case IntKind::Long:
        return IntKind::ULong;
      case IntKind::LongLong:
        return IntKind::ULongLong;
      case IntKind::Intptr:
        return IntKind::Uintptr;
      default:
        return k;
    }
}

bool
sameType(const TypeRef &a, const TypeRef &b)
{
    if (a.get() == b.get())
        return true;
    if (!a || !b || a->kind != b->kind)
        return false;
    switch (a->kind) {
      case Type::Kind::Void:
        return true;
      case Type::Kind::Integer:
        return a->intKind == b->intKind;
      case Type::Kind::Floating:
        return a->floatKind == b->floatKind;
      case Type::Kind::Pointer:
        return sameType(a->pointee, b->pointee);
      case Type::Kind::Array:
        return a->arraySize == b->arraySize &&
            sameType(a->element, b->element);
      case Type::Kind::Function: {
        if (!sameType(a->returnType, b->returnType) ||
            a->variadic != b->variadic ||
            a->params.size() != b->params.size()) {
            return false;
        }
        for (size_t i = 0; i < a->params.size(); ++i) {
            if (!sameType(a->params[i], b->params[i]))
                return false;
        }
        return true;
      }
      case Type::Kind::StructOrUnion:
        return a->tag == b->tag;
    }
    return false;
}

std::string
typeStr(const TypeRef &t, const TagTable *tags)
{
    if (!t)
        return "<null-type>";
    std::string c = t->isConst ? "const " : "";
    switch (t->kind) {
      case Type::Kind::Void:
        return c + "void";
      case Type::Kind::Integer:
        switch (t->intKind) {
          case IntKind::Bool: return c + "_Bool";
          case IntKind::Char: return c + "char";
          case IntKind::SChar: return c + "signed char";
          case IntKind::UChar: return c + "unsigned char";
          case IntKind::Short: return c + "short";
          case IntKind::UShort: return c + "unsigned short";
          case IntKind::Int: return c + "int";
          case IntKind::UInt: return c + "unsigned int";
          case IntKind::Long: return c + "long";
          case IntKind::ULong: return c + "unsigned long";
          case IntKind::LongLong: return c + "long long";
          case IntKind::ULongLong: return c + "unsigned long long";
          case IntKind::Ptraddr: return c + "ptraddr_t";
          case IntKind::Intptr: return c + "intptr_t";
          case IntKind::Uintptr: return c + "uintptr_t";
        }
        return c + "<int?>";
      case Type::Kind::Floating:
        return c + (t->floatKind == FloatKind::Float ? "float" : "double");
      case Type::Kind::Pointer:
        return typeStr(t->pointee, tags) + "*" + (t->isConst ? " const" : "");
      case Type::Kind::Array:
        return typeStr(t->element, tags) + "[" +
            std::to_string(t->arraySize) + "]";
      case Type::Kind::Function: {
        std::string s = typeStr(t->returnType, tags) + "(";
        for (size_t i = 0; i < t->params.size(); ++i) {
            if (i)
                s += ", ";
            s += typeStr(t->params[i], tags);
        }
        if (t->variadic)
            s += t->params.empty() ? "..." : ", ...";
        return s + ")";
      }
      case Type::Kind::StructOrUnion: {
        std::string name = tags ? tags->get(t->tag).name : "";
        bool is_union = tags && tags->get(t->tag).isUnion;
        return c + (is_union ? "union " : "struct ") +
            (name.empty() ? ("#" + std::to_string(t->tag)) : name);
      }
    }
    return "<type?>";
}

} // namespace cherisem::ctype
