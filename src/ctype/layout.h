/**
 * @file
 * Architecture-dependent type layout (sizes, alignment, offsets).
 *
 * Pointer representation size equals the architecture's capability
 * size (16 bytes on Morello, 8 on CHERIoT-style 32-bit cores), while
 * the *value range* of (u)intptr_t is the address width — the split
 * the paper's integer_value = Z (+) (B x Cap) representation relies on.
 */
#ifndef CHERISEM_CTYPE_LAYOUT_H
#define CHERISEM_CTYPE_LAYOUT_H

#include <cstdint>

#include "ctype/ctype.h"

namespace cherisem::ctype {

/** The layout-relevant parameters of a target architecture. */
struct MachineLayout
{
    /** Size of one capability in bytes (16 Morello, 8 CHERIoT). */
    unsigned capSize = 16;
    /** Address width in bytes (8 / 4). */
    unsigned addrBytes = 8;

    unsigned addrBits() const { return addrBytes * 8; }
};

/** Offset+type of a member inside a struct/union. */
struct FieldLoc
{
    uint64_t offset = 0;
    TypeRef type;
    bool found = false;
};

/**
 * Computes sizeof/alignof/offsetof for MiniC types on a given machine.
 *
 * Standard C struct layout: members at aligned offsets, struct aligned
 * to max member alignment, unions sized to max member (padded).
 */
class LayoutEngine
{
  public:
    LayoutEngine(MachineLayout machine, const TagTable *tags)
        : machine_(machine), tags_(tags)
    {}

    uint64_t sizeOf(const TypeRef &t) const;
    unsigned alignOf(const TypeRef &t) const;
    /** Byte width of an integer kind's value representation. Note that
     *  for (u)intptr_t this is the capability size, not addrBytes. */
    unsigned intByteWidth(IntKind k) const;
    /** Width in bytes of the numeric range of an integer kind (for
     *  (u)intptr_t: the address width). */
    unsigned intValueBytes(IntKind k) const;
    /** Minimum / maximum representable value of an integer kind. */
    __int128 intMin(IntKind k) const;
    __int128 intMax(IntKind k) const;
    /** Locate @p member in struct/union @p tag (search is flat). */
    FieldLoc fieldOf(TagId tag, const std::string &member) const;

    const MachineLayout &machine() const { return machine_; }
    const TagTable *tags() const { return tags_; }

  private:
    MachineLayout machine_;
    const TagTable *tags_;
};

} // namespace cherisem::ctype

#endif // CHERISEM_CTYPE_LAYOUT_H
