#include "ctype/layout.h"

#include <algorithm>
#include <cassert>

namespace cherisem::ctype {

namespace {

uint64_t
alignUp(uint64_t v, uint64_t a)
{
    return (v + a - 1) / a * a;
}

} // namespace

unsigned
LayoutEngine::intByteWidth(IntKind k) const
{
    switch (k) {
      case IntKind::Bool:
      case IntKind::Char:
      case IntKind::SChar:
      case IntKind::UChar:
        return 1;
      case IntKind::Short:
      case IntKind::UShort:
        return 2;
      case IntKind::Int:
      case IntKind::UInt:
        return 4;
      case IntKind::Long:
      case IntKind::ULong:
      case IntKind::LongLong:
      case IntKind::ULongLong:
        return 8;
      case IntKind::Ptraddr:
        return machine_.addrBytes;
      case IntKind::Intptr:
      case IntKind::Uintptr:
        // Capability representation (section 3.3): the full cap.
        return machine_.capSize;
    }
    return 4;
}

unsigned
LayoutEngine::intValueBytes(IntKind k) const
{
    if (k == IntKind::Intptr || k == IntKind::Uintptr)
        return machine_.addrBytes;
    return intByteWidth(k);
}

__int128
LayoutEngine::intMin(IntKind k) const
{
    if (!isSignedIntKind(k))
        return 0;
    unsigned bits = intValueBytes(k) * 8;
    return -(static_cast<__int128>(1) << (bits - 1));
}

__int128
LayoutEngine::intMax(IntKind k) const
{
    unsigned bits = intValueBytes(k) * 8;
    if (isSignedIntKind(k))
        return (static_cast<__int128>(1) << (bits - 1)) - 1;
    if (k == IntKind::Bool)
        return 1;
    return (static_cast<__int128>(1) << bits) - 1;
}

uint64_t
LayoutEngine::sizeOf(const TypeRef &t) const
{
    assert(t);
    switch (t->kind) {
      case Type::Kind::Void:
        return 1; // GNU-style: sizeof(void) == 1 for pointer arith.
      case Type::Kind::Integer:
        return intByteWidth(t->intKind);
      case Type::Kind::Floating:
        return t->floatKind == FloatKind::Float ? 4 : 8;
      case Type::Kind::Pointer:
        return machine_.capSize;
      case Type::Kind::Array:
        return sizeOf(t->element) * t->arraySize;
      case Type::Kind::Function:
        return 1;
      case Type::Kind::StructOrUnion: {
        const TagDef &def = tags_->get(t->tag);
        assert(def.complete && "sizeof incomplete struct/union");
        uint64_t size = 0;
        unsigned align = 1;
        for (const Member &m : def.members) {
            uint64_t msize = sizeOf(m.type);
            unsigned malign = alignOf(m.type);
            align = std::max(align, malign);
            if (def.isUnion) {
                size = std::max(size, msize);
            } else {
                size = alignUp(size, malign) + msize;
            }
        }
        if (size == 0)
            size = 1;
        return alignUp(size, align);
      }
    }
    return 1;
}

unsigned
LayoutEngine::alignOf(const TypeRef &t) const
{
    assert(t);
    switch (t->kind) {
      case Type::Kind::Void:
        return 1;
      case Type::Kind::Integer:
        return intByteWidth(t->intKind);
      case Type::Kind::Floating:
        return t->floatKind == FloatKind::Float ? 4 : 8;
      case Type::Kind::Pointer:
        return machine_.capSize;
      case Type::Kind::Array:
        return alignOf(t->element);
      case Type::Kind::Function:
        return 1;
      case Type::Kind::StructOrUnion: {
        const TagDef &def = tags_->get(t->tag);
        unsigned align = 1;
        for (const Member &m : def.members)
            align = std::max(align, alignOf(m.type));
        return align;
      }
    }
    return 1;
}

FieldLoc
LayoutEngine::fieldOf(TagId tag, const std::string &member) const
{
    const TagDef &def = tags_->get(tag);
    uint64_t offset = 0;
    for (const Member &m : def.members) {
        if (!def.isUnion)
            offset = alignUp(offset, alignOf(m.type));
        if (m.name == member)
            return FieldLoc{def.isUnion ? 0 : offset, m.type, true};
        if (!def.isUnion)
            offset += sizeOf(m.type);
    }
    return FieldLoc{};
}

} // namespace cherisem::ctype
