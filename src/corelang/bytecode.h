/**
 * @file
 * The Core IR bytecode: a compact register/stack instruction set
 * compiled once per function from the type-annotated AST, executed by
 * the VM in vm.{h,cc}.
 *
 * Design constraints (DESIGN.md "Bytecode engine"):
 *
 *  - *Observational equivalence is compiled in, not checked in.*  The
 *    instruction stream mirrors the tree walker's evaluation order
 *    exactly — including the per-node step() accounting, the
 *    scope-push/pop (object kill) order, the Intrinsic-event-before-
 *    argument-evaluation contract, and the short-circuit shapes — so
 *    both engines produce bit-identical outcomes and witness streams.
 *    Each instruction carries `n`, the number of semantic steps the
 *    tree walker would have charged on reaching the same point.
 *  - *Semantic rules are never duplicated.*  Instructions call the
 *    Machine's own post-operand helpers (binaryOp, castValueOp,
 *    incDecNext, compoundNext, builtinCall) on operands popped from
 *    the VM stack; cold constructs (switch dispatch, braced
 *    initializers) fall back to the tree walker per-statement, and
 *    any function called from tree-walked fragments re-enters the VM
 *    through the virtual callFunction seam.
 *  - *Arena layout.*  A chunk is four flat arrays (POD instructions
 *    plus index-addressed side tables for types, call signatures and
 *    flow routes); compiling allocates once per array, and executing
 *    allocates nothing.  Compile once, run many: a BytecodeModule is
 *    immutable and shareable across Vm instances (it holds no
 *    run-scoped state).
 *
 * Instruction layout: 24 bytes.  `op` selects the handler, `n` is the
 * step charge, `a`/`b` are small/large immediate operands (frame slot,
 * argument count, jump target, side-table index), `p` points at the
 * originating AST node (Expr/Stmt/VarDecl — the handler knows which),
 * and `loc` is the source location charged on a step-limit raise.
 */
#ifndef CHERISEM_CORELANG_BYTECODE_H
#define CHERISEM_CORELANG_BYTECODE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sema/sema.h"

namespace cherisem::corelang {

enum class Op : uint8_t
{
    // ---- values ----
    PushInt,     ///< push makeInt(e.loc, e.type->intKind, e.intValue)
    PushFloat,   ///< push the float literal
    PushEnum,    ///< push makeInt(e.loc, Int, e.enumValue)
    PushIntK,    ///< push makeInt(e.loc, Int, a) — short-circuit tails
    PushMeta,    ///< sizeof/alignof/offsetof constant
    PushFunc,    ///< push functionPointer(b)
    LoadSlot,    ///< push load via frame slot a
    LoadNamed,   ///< dynamic lookup() rvalue (globals/functions)
    LoadAt,      ///< pop place, push load(e.loc, e.type, place)
    LoadDeref,   ///< pop value, pointerOf, load (rvalue *p)
    PlaceSlot,   ///< push frame slot a's place
    PlaceNamed,  ///< dynamic lookup() lvalue
    PlaceString, ///< push stringLiteralPlace(e)
    PointerOf,   ///< pop value, push pointerOf(e.loc, v) (lvalue *p)
    Decay,       ///< pop place, kind := Object (array decay)
    IndexShift,  ///< pop index, pop pointer, push arrayShift
    MemberDot,   ///< pop place, push memberShift (a.m)
    MemberArrow, ///< pop value, pointerOf, push memberShift (a->m)

    // ---- operators ----
    UnaryOp,     ///< pop v, push unaryValueOp(e, v)
    IncDec,      ///< pop place; load/incDecNext/store; a=pre, b=type
    BinaryOp,    ///< pop rv, lv; push binaryOp(e, lv, rv)
    StorePlain,  ///< pop v, place; store; push v; b=type
    CompLoad,    ///< peek place, push load (compound-assign old)
    CompStore,   ///< pop rv, old, place; compoundNext; store; push
    CastOp,      ///< pop v, push castValueOp(e, v)
    Truthy01,    ///< pop v, push makeInt(e.loc, Int, truthy ? 1 : 0)
    Pop,         ///< drop the top of the value stack

    // ---- control flow ----
    Jmp,         ///< pc := b
    BrFalse,     ///< pop v; if !truthy(*loc, v) pc := b
    BrTrue,      ///< pop v; if truthy(*loc, v) pc := b
    Step,        ///< charge n steps only (loop-iteration accounting)
    Halt,        ///< return from the chunk

    // ---- calls ----
    CallPrep,    ///< resolve a named callee (tree-exact shadow rules)
    CallResolve, ///< pop callee value; resolveIndirectCallee
    CallIndirect,///< pop a args + pending callee; push callFunction
    BuiltinPre,  ///< builtinPrologue (Intrinsic event BEFORE args)
    BuiltinCall, ///< pop a args; push builtinCall

    // ---- statements ----
    PushScope,   ///< open a block scope
    PopScope,    ///< close it (kills objects; loc from *p)
    Alloc,       ///< allocate a local; bind name + slot a
    AllocStatic, ///< static local: allocate/init once, rebind
    InitTree,    ///< storeInitializer via the tree walker (lists)
    StoreInit,   ///< pop v; initializing store into slot a's object
    StoreRet,    ///< pop v into the frame's return value
    TreeStmt,    ///< execStmt fallback; b routes the resulting Flow
    TreeExpr,    ///< push evalExpr(e) (safety net)
    TreeLValue,  ///< push evalLValue(e) (safety net)

    // ---- globals ----
    LoadGlobal,  ///< rvalue of an unshadowable global; b = global index
    PlaceGlobal, ///< lvalue of an unshadowable global; b = global index
};

/** Number of distinct opcodes (dispatch-table size). */
constexpr size_t kNumOps = static_cast<size_t>(Op::PlaceGlobal) + 1;

/** Jump/route target sentinel: "no target" (an internal error if
 *  ever taken — e.g. a Flow::Break escaping with no enclosing loop,
 *  which the tree walker cannot produce either). */
constexpr uint32_t kNoTarget = 0xffffffffu;

struct Instr
{
    Op op = Op::Halt;
    /** Steps the tree walker charges on reaching this instruction. */
    uint8_t n = 0;
    uint16_t a = 0;
    uint32_t b = 0;
    /** Originating AST node (Expr / Stmt / frontend::VarDecl). */
    const void *p = nullptr;
    /** Handler-specific location (truthy() site for BrFalse/BrTrue). */
    const SourceLoc *loc = nullptr;
};

/** Per-call-site argument type list (built once at compile time; the
 *  tree walker rebuilds it per call). */
struct CallInfo
{
    std::vector<ctype::TypeRef> argTypes;
};

/** Where a tree-walked statement's non-Normal Flow resumes: compiled
 *  pop-scope stubs ending at the enclosing loop (brk/cont) or the
 *  function's return path (ret). */
struct FlowRoute
{
    uint32_t brk = kNoTarget;
    uint32_t cont = kNoTarget;
    uint32_t ret = kNoTarget;
};

/** One compiled function body. */
struct Chunk
{
    std::vector<Instr> code;
    /** Side table: store/inc-dec target types (withConst stripped). */
    std::vector<ctype::TypeRef> types;
    /** Side table: call-site signatures. */
    std::vector<CallInfo> calls;
    /** Side table: TreeStmt flow routes. */
    std::vector<FlowRoute> routes;
    /** Cold side table, keyed by pc: the source location of each of
     *  the instruction's `n` step charges, in tree-walk order.  Only
     *  consulted when the step limit crosses inside a batch, so the
     *  raise carries the exact location the tree walker would charge
     *  (the location is part of the compared outcome). */
    std::map<uint32_t, std::vector<const SourceLoc *>> stepLocs;
    /** Frame slots (params first, then every local declarator). */
    uint16_t numSlots = 0;

    bool empty() const { return code.empty(); }
};

/** The compiled program: one chunk per function index (empty for
 *  bodyless declarations).  Immutable after compileProgram. */
struct BytecodeModule
{
    std::vector<Chunk> chunks;
    /** Global slot table: file-scope objects whose names are never
     *  declared by any parameter or local anywhere in the program,
     *  so the runtime scope walk can never shadow them and
     *  lookup(name) always resolves to the same globals_ entry.
     *  LoadGlobal/PlaceGlobal carry an index into this table; the VM
     *  memoizes the map node per index (stable across inserts) and
     *  falls back to the dynamic path while the binding does not
     *  exist yet (global-initializer evaluation order). */
    std::vector<std::string> globalNames;
};

/** Compile every function body of @p prog.  Pure: depends only on
 *  the (sema-annotated, optimizer-rewritten) AST, so one module can
 *  serve any number of runs and engines. */
BytecodeModule compileProgram(const sema::Program &prog);

/** Human-readable listing of every chunk (cherisem_run
 *  --dump-bytecode).  Deterministic: no addresses, only pc-relative
 *  structure plus source line/column anchors. */
std::string disassemble(const BytecodeModule &m,
                        const sema::Program &prog);

} // namespace cherisem::corelang

#endif // CHERISEM_CORELANG_BYTECODE_H
