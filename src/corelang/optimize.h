/**
 * @file
 * Profile-gated "compiler optimisation" passes.
 *
 * The paper's central tension (sections 3.1, 3.2, 3.5) is that real
 * CHERI C compilers transform programs in ways the abstract machine
 * must license: collapsing transiently out-of-bounds arithmetic,
 * removing identity representation writes, and rewriting byte-copy
 * loops into (tag-preserving) memcpy.  These passes reproduce those
 * transformations on the typed AST so the -O2-style profiles observe
 * the same divergences the paper reports.
 */
#ifndef CHERISEM_CORELANG_OPTIMIZE_H
#define CHERISEM_CORELANG_OPTIMIZE_H

#include "sema/sema.h"

namespace cherisem::corelang {

struct OptimizeOptions
{
    /** Collapse (p + c1) - c2 on capability-carrying values into
     *  p + (c1-c2), eliminating a transient non-representability
     *  excursion (section 3.2). */
    bool foldTransientArith = false;
    /** Remove p[i] = p[i] style identity stores (dead-store
     *  elimination over representation bytes, section 3.5). */
    bool elideIdentityWrites = false;
    /** Rewrite byte-copy loops into a single memcpy call (GCC's
     *  tree-loop-distribute-patterns, section 3.5) — which at the
     *  hardware level *preserves* capability tags. */
    bool loopsToMemcpy = false;
};

/** Statistics about what the passes did (for the ablation bench). */
struct OptimizeStats
{
    unsigned foldedArith = 0;
    unsigned elidedWrites = 0;
    unsigned loopsRewritten = 0;
};

/** Run the enabled passes over @p prog in place. */
OptimizeStats optimize(sema::Program &prog,
                       const OptimizeOptions &opts);

} // namespace cherisem::corelang

#endif // CHERISEM_CORELANG_OPTIMIZE_H
