/**
 * @file
 * Public evaluation entry point.  The semantics proper lives in
 * machine.{h,cc} (the shared tree-walking core) and vm.{h,cc} (the
 * bytecode engine); this file only selects an engine and runs it.
 */
#include "corelang/eval.h"

#include "corelang/machine.h"
#include "corelang/vm.h"

namespace cherisem::corelang {

bool
parseEngine(const std::string &name, Engine *out)
{
    if (name == "tree") {
        *out = Engine::Tree;
        return true;
    }
    if (name == "bytecode") {
        *out = Engine::Bytecode;
        return true;
    }
    return false;
}

const char *
engineName(Engine e)
{
    return e == Engine::Tree ? "tree" : "bytecode";
}

std::string
Outcome::summary() const
{
    switch (kind) {
      case Kind::Exit:
        return "exit " + std::to_string(exitCode);
      case Kind::Undefined:
        return std::string("ub ") + mem::ubName(failure.ub);
      case Kind::AssertFail:
        return "assert-fail " + message;
      case Kind::Error:
        return "error " + message;
      case Kind::ResourceExhausted:
        return "resource-exhausted " + failure.message;
    }
    return "?";
}

Outcome
evaluate(const sema::Program &prog, const EvalOptions &opts)
{
    if (opts.engine == Engine::Bytecode) {
        Vm vm(prog, opts);
        return vm.run();
    }
    Machine machine(prog, opts);
    return machine.run();
}

} // namespace cherisem::corelang
