/**
 * @file
 * The evaluator: executes a type-annotated MiniC program against the
 * CHERI C memory object model.
 *
 * This is the dynamic half of the executable semantics (section 4 of
 * the paper): expression evaluation, the statement machine, frames
 * with object lifetimes, the builtin/intrinsic implementations, and
 * undefined-behaviour propagation.  Everything memory-shaped is
 * delegated to mem::MemoryModel.
 */
#ifndef CHERISEM_CORELANG_EVAL_H
#define CHERISEM_CORELANG_EVAL_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "cap/cap_format.h"
#include "mem/memory_model.h"
#include "sema/sema.h"

namespace cherisem::corelang {

/** Which execution engine runs the program.  Both produce
 *  bit-identical outcomes and witness streams (the bytecode VM
 *  shares every semantic rule with the tree walker — see
 *  machine.h); Tree is the reference oracle, Bytecode the fast
 *  path. */
enum class Engine
{
    Tree,     ///< reference tree-walking interpreter
    Bytecode, ///< compile-once bytecode VM
};

/** Parse an engine name ("tree" / "bytecode"); returns false on an
 *  unknown name. */
bool parseEngine(const std::string &name, Engine *out);
/** The engine's canonical name. */
const char *engineName(Engine e);

/** Options controlling a single abstract-machine run. */
struct EvalOptions
{
    mem::MemoryModel::Config memConfig;
    /** Capability printing style for %p / print_cap. */
    cap::FormatStyle capFormat = cap::FormatStyle::Abstract;
    /** Prefix printed capabilities with their PNVI provenance (the
     *  Cerberus output style of Appendix A). */
    bool printProvenance = true;
    /** Abort runaway programs after this many evaluation steps. */
    uint64_t maxSteps = 20'000'000;
    /** Execution engine (identical observable semantics). */
    Engine engine = Engine::Tree;
    /** Cooperative cancellation: when non-null, polled every few
     *  thousand steps; a true load ends the run cleanly with
     *  Outcome::Kind::ResourceExhausted (the serving layer's
     *  shutdown/client-gone path).  The pointee must outlive the
     *  run. */
    const std::atomic<bool> *cancel = nullptr;
    /** Wall-clock deadline (steady clock), polled with @c cancel; the
     *  default-constructed time_point means "no deadline".  Crossing
     *  it ends the run with Outcome::Kind::ResourceExhausted. */
    std::chrono::steady_clock::time_point deadline{};

    bool
    hasWatchdog() const
    {
        return cancel != nullptr ||
            deadline.time_since_epoch().count() != 0;
    }
};

/** The observable result of a run. */
struct Outcome
{
    enum class Kind
    {
        Exit,        ///< main returned / exit() called
        Undefined,   ///< undefined behaviour detected
        AssertFail,  ///< assert() fired (or abort())
        Error,       ///< semantic/internal error (not UB)
        /** A budget ran out (step limit, deadline, cancellation).
         *  The machine unwound cleanly — stats and output up to the
         *  cut are valid — but the verdict is "still running", not a
         *  property of the program. */
        ResourceExhausted,
    };

    Kind kind = Kind::Exit;
    int exitCode = 0;
    mem::Failure failure;     ///< for Undefined / Error
    std::string message;      ///< for AssertFail / Error
    std::string output;       ///< everything printf/print_cap wrote
    mem::MemStats memStats;
    uint64_t steps = 0;
    /** Calls per builtin/intrinsic (name -> count); the per-intrinsic
     *  counters of the obs subsystem, surfaced beside MemStats. */
    std::map<std::string, uint64_t> intrinsicCalls;
    /** Cumulative nanoseconds per builtin/intrinsic.  Only collected
     *  when a trace sink is attached (the scoped timers cost two
     *  clock reads per call); empty otherwise. */
    std::map<std::string, uint64_t> intrinsicNanos;

    bool isUb(mem::Ub ub) const
    {
        return kind == Kind::Undefined && failure.ub == ub;
    }
    /** One-line summary for harness output. */
    std::string summary() const;
};

/** Execute @p prog from main(). */
Outcome evaluate(const sema::Program &prog, const EvalOptions &opts);

} // namespace cherisem::corelang

#endif // CHERISEM_CORELANG_EVAL_H
