/**
 * @file
 * The bytecode dispatch loop.
 *
 * Every handler body is the corresponding fragment of the tree
 * walker with operand fetches replaced by stack pops: the semantic
 * work is done by the inherited Machine helpers (makeInt, binaryOp,
 * castValueOp, storeInitializer, builtinCall, ...), so the two
 * engines cannot drift.  Step accounting happens once per dispatch
 * (`steps_ += in->n`); the rare limit crossing recovers the exact
 * per-charge source location from the chunk's cold side table.
 *
 * Dispatch is computed-goto on GCC/Clang (labels-as-values), a plain
 * switch elsewhere; the handler bodies are shared between the two
 * via the VM_OP/VM_NEXT/VM_JUMP macros.
 */
#include "corelang/vm.h"

#include <algorithm>
#include <cassert>

namespace cherisem::corelang {

using frontend::Expr;
using frontend::Stmt;
using ctype::IntKind;
using ctype::TypeRef;
using mem::Failure;
using mem::MemValue;
using mem::PointerValue;

Vm::Vm(const sema::Program &prog, const EvalOptions &opts)
    : Machine(prog, opts), owned_(compileProgram(prog)),
      module_(&owned_)
{
    stack_.reserve(256);
    slots_.reserve(256);
    callees_.reserve(16);
    globalCache_.assign(module_->globalNames.size(), nullptr);
}

Vm::Vm(const sema::Program &prog, const EvalOptions &opts,
       const BytecodeModule *module)
    : Machine(prog, opts), module_(module)
{
    stack_.reserve(256);
    slots_.reserve(256);
    callees_.reserve(16);
    globalCache_.assign(module_->globalNames.size(), nullptr);
}

void
Vm::restoreSnapshot(const SnapshotPtr &snap)
{
    Machine::restoreSnapshot(snap);
    // All four are empty at any quiescent point by stack discipline;
    // clear them anyway so a restore after a terminal unwind (UB in
    // the middle of a call tree) starts from a clean frame state.
    slots_.clear();
    stack_.clear();
    callees_.clear();
    timers_.clear();
    // The restore replaced globals_ wholesale; every memoized map
    // node is dangling.
    std::fill(globalCache_.begin(), globalCache_.end(), nullptr);
}

void
Vm::stepLimit(const Chunk &ch, uint32_t pc, uint8_t n)
{
    // The previous dispatch left steps_ <= maxSteps, so the crossing
    // charge is within this instruction's batch; its recorded
    // location is what the tree walker's step() would raise with.
    uint64_t before = steps_ - n;
    const auto &locs = ch.stepLocs.at(pc);
    const SourceLoc *loc =
        locs.at(static_cast<size_t>(opts_.maxSteps - before));
    steps_ = opts_.maxSteps + 1;
    raise(Failure::resourceExhausted("step limit exceeded "
                                     "(non-terminating program?)",
                                     *loc));
}

void
Vm::chargeSlow(const Chunk &ch, uint32_t pc, uint8_t n)
{
    if (steps_ > opts_.maxSteps)
        stepLimit(ch, pc, n);
    // Only a watchdog poll boundary was crossed; the raise location
    // (if the poll fires) is the last step charged by this
    // instruction.
    pollWatchdog(*ch.stepLocs.at(pc).back());
    checkAt_ = nextCheckAt();
}

MemValue
Vm::loadIdent(const Expr &e)
{
    if (const Binding *b = lookup(e.text))
        return unwrap(mm_.load(e.loc, b->type, b->place));
    auto fi = prog_.functionIndex.find(e.text);
    if (fi != prog_.functionIndex.end())
        return MemValue(functionPointer(fi->second));
    raise(Failure::internal("unbound identifier " + e.text, e.loc));
}

PointerValue
Vm::placeIdent(const Expr &e)
{
    if (const Binding *b = lookup(e.text))
        return b->place;
    raise(Failure::internal("unbound identifier " + e.text, e.loc));
}

const Machine::Binding *
Vm::globalBinding(uint32_t i)
{
    if (const Binding *b = globalCache_[i])
        return b;
    auto g = globals_.find(module_->globalNames[i]);
    if (g == globals_.end())
        return nullptr; // don't memoize misses: initGlobals inserts
    return globalCache_[i] = &g->second;
}

MemValue
Vm::callFunction(uint32_t idx, std::vector<MemValue> args,
                 const std::vector<TypeRef> &arg_types)
{
    const frontend::FunctionDef &fn = prog_.unit.functions[idx];
    const Chunk &ch = module_->chunks[idx];
    assert(!ch.empty() && "callable function has a chunk");
    if (++callDepth_ > 1000) {
        --callDepth_;
        raise(Failure::constraint("call depth limit (stack "
                                  "overflow)",
                                  fn.loc));
    }
    if (mm_.tracer().enabled()) {
        mm_.tracer().emit({.kind = obs::EventKind::FuncEnter,
                           .a = idx,
                           .b = static_cast<uint64_t>(callDepth_),
                           .label = fn.name});
    }
    uint64_t sp = mm_.stackSave();
    size_t stack_base = stack_.size();
    size_t callees_base = callees_.size();
    size_t timers_base = timers_.size();
    size_t slot_base = slots_.size();
    slots_.resize(slot_base + ch.numSlots);
    pushScope();
    for (size_t i = 0; i < fn.type->params.size() &&
         i < args.size();
         ++i) {
        std::string name = i < fn.paramNames.size()
                               ? fn.paramNames[i]
                               : "";
        TypeRef pty = fn.type->params[i];
        PointerValue place = unwrap(mm_.allocateObject(
            name.empty() ? "param" : name, pty, false, false));
        unwrap(mm_.store(fn.loc, pty, writablePlace(place),
                         args[i], /*initializing=*/true));
        if (!name.empty())
            scopes_.back().vars[name] = Binding{place, pty};
        scopes_.back().toKill.push_back(place);
        // The compiler assigned parameter i frame slot i.
        slots_[slot_base + i] = Binding{place, pty};
    }
    (void)arg_types;

    MemValue result = MemValue(mem::UnspecValue{
        fn.type->returnType});
    auto trace_exit = [&] {
        if (mm_.tracer().enabled()) {
            mm_.tracer().emit(
                {.kind = obs::EventKind::FuncExit,
                 .a = idx,
                 .b = static_cast<uint64_t>(callDepth_),
                 .label = fn.name});
        }
    };
    try {
        execChunk(ch, slot_base, result);
    } catch (...) {
        // Mirror the tree walker's RAII intrinsic timers: pending
        // timed regions accumulate even on a raising path.
        while (timers_.size() > timers_base) {
            auto &[bi, t0] = timers_.back();
            intrinsicNs_[bi] += static_cast<uint64_t>(
                std::chrono::duration_cast<
                    std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
            timers_.pop_back();
        }
        stack_.resize(stack_base);
        callees_.resize(callees_base);
        slots_.resize(slot_base);
        popScope(fn.loc);
        mm_.stackRestore(sp);
        trace_exit();
        --callDepth_;
        throw;
    }
    assert(stack_.size() == stack_base && "unbalanced chunk");
    slots_.resize(slot_base);
    popScope(fn.loc);
    mm_.stackRestore(sp);
    trace_exit();
    --callDepth_;
    if (fn.name == "main" && result.isUnspec())
        return MemValue(makeInt(fn.loc, IntKind::Int, 0));
    return result;
}

// ---------------------------------------------------------------------
// The dispatch loop.
// ---------------------------------------------------------------------

#if defined(__GNUC__) || defined(__clang__)
#define CHERISEM_VM_COMPUTED_GOTO 1
#else
#define CHERISEM_VM_COMPUTED_GOTO 0
#endif

#define VM_CHARGE()                                                   \
    do {                                                              \
        if (in->n) {                                                  \
            steps_ += in->n;                                          \
            if (steps_ >= checkAt_)                                   \
                chargeSlow(ch,                                        \
                           static_cast<uint32_t>(in - code),          \
                           in->n);                                    \
        }                                                             \
    } while (0)

#if CHERISEM_VM_COMPUTED_GOTO
#define VM_OP(name) L_##name:
#define VM_DISPATCH()                                                 \
    do {                                                              \
        VM_CHARGE();                                                  \
        goto *kL[static_cast<size_t>(in->op)];                        \
    } while (0)
#else
#define VM_OP(name) case Op::name:
#define VM_DISPATCH() goto dispatch
#endif

#define VM_NEXT()                                                     \
    do {                                                              \
        ++in;                                                         \
        VM_DISPATCH();                                                \
    } while (0)
#define VM_JUMP(target)                                               \
    do {                                                              \
        in = code + (target);                                         \
        VM_DISPATCH();                                                \
    } while (0)

void
Vm::execChunk(const Chunk &ch, size_t slot_base, MemValue &ret)
{
    const Instr *code = ch.code.data();
    const Instr *in = code;

    auto push = [this](MemValue v) {
        stack_.push_back(std::move(v));
    };
    auto pop = [this]() -> MemValue {
        MemValue v = std::move(stack_.back());
        stack_.pop_back();
        return v;
    };
    auto popPlace = [this]() -> PointerValue {
        PointerValue p = std::move(stack_.back().asPointer());
        stack_.pop_back();
        return p;
    };
    auto ex = [&in]() -> const Expr & {
        return *static_cast<const Expr *>(in->p);
    };
    auto st = [&in]() -> const Stmt & {
        return *static_cast<const Stmt *>(in->p);
    };
    auto dc = [&in]() -> const frontend::VarDecl & {
        return *static_cast<const frontend::VarDecl *>(in->p);
    };
    auto slotAt = [this, slot_base](uint16_t i) -> Binding & {
        return slots_[slot_base + i];
    };

#if CHERISEM_VM_COMPUTED_GOTO
    // Must match the Op enumerator order exactly.
    static const void *kL[kNumOps] = {
        &&L_PushInt,     &&L_PushFloat,  &&L_PushEnum,
        &&L_PushIntK,    &&L_PushMeta,   &&L_PushFunc,
        &&L_LoadSlot,    &&L_LoadNamed,  &&L_LoadAt,
        &&L_LoadDeref,   &&L_PlaceSlot,  &&L_PlaceNamed,
        &&L_PlaceString, &&L_PointerOf,  &&L_Decay,
        &&L_IndexShift,  &&L_MemberDot,  &&L_MemberArrow,
        &&L_UnaryOp,     &&L_IncDec,     &&L_BinaryOp,
        &&L_StorePlain,  &&L_CompLoad,   &&L_CompStore,
        &&L_CastOp,      &&L_Truthy01,   &&L_Pop,
        &&L_Jmp,         &&L_BrFalse,    &&L_BrTrue,
        &&L_Step,        &&L_Halt,       &&L_CallPrep,
        &&L_CallResolve, &&L_CallIndirect, &&L_BuiltinPre,
        &&L_BuiltinCall, &&L_PushScope,  &&L_PopScope,
        &&L_Alloc,       &&L_AllocStatic, &&L_InitTree,
        &&L_StoreInit,   &&L_StoreRet,   &&L_TreeStmt,
        &&L_TreeExpr,    &&L_TreeLValue, &&L_LoadGlobal,
        &&L_PlaceGlobal,
    };
    VM_DISPATCH();
#else
dispatch:
    VM_CHARGE();
    switch (in->op) {
#endif

    VM_OP(PushInt)
    {
        const Expr &e = ex();
        push(MemValue(makeInt(e.loc, e.type->intKind,
                              static_cast<__int128>(e.intValue))));
        VM_NEXT();
    }
    VM_OP(PushFloat)
    {
        const Expr &e = ex();
        mem::FloatingValue fv;
        fv.kind = e.type->floatKind;
        fv.value = e.floatValue;
        push(MemValue(fv));
        VM_NEXT();
    }
    VM_OP(PushEnum)
    {
        const Expr &e = ex();
        push(MemValue(makeInt(e.loc, IntKind::Int, e.enumValue)));
        VM_NEXT();
    }
    VM_OP(PushIntK)
    {
        const Expr &e = ex();
        push(MemValue(makeInt(e.loc, IntKind::Int, in->a)));
        VM_NEXT();
    }
    VM_OP(PushMeta)
    {
        const Expr &e = ex();
        __int128 v = 0;
        switch (e.kind) {
          case Expr::Kind::SizeofExpr:
            v = static_cast<__int128>(
                mm_.layout().sizeOf(e.lhs->type));
            break;
          case Expr::Kind::SizeofType:
            v = static_cast<__int128>(
                mm_.layout().sizeOf(e.typeOperand));
            break;
          case Expr::Kind::AlignofType:
            v = static_cast<__int128>(
                mm_.layout().alignOf(e.typeOperand));
            break;
          default: { // OffsetOf
            ctype::FieldLoc fl =
                mm_.layout().fieldOf(e.typeOperand->tag, e.text);
            v = static_cast<__int128>(fl.offset);
            break;
          }
        }
        push(MemValue(makeInt(e.loc, IntKind::ULong, v)));
        VM_NEXT();
    }
    VM_OP(PushFunc)
    {
        push(MemValue(functionPointer(in->b)));
        VM_NEXT();
    }
    VM_OP(LoadSlot)
    {
        const Expr &e = ex();
        const Binding &b = slotAt(in->a);
        if (b.type)
            push(unwrap(mm_.load(e.loc, b.type, b.place)));
        else
            push(loadIdent(e)); // declaration never executed
        VM_NEXT();
    }
    VM_OP(LoadNamed)
    {
        push(loadIdent(ex()));
        VM_NEXT();
    }
    VM_OP(LoadGlobal)
    {
        const Expr &e = ex();
        if (const Binding *b = globalBinding(in->b))
            push(unwrap(mm_.load(e.loc, b->type, b->place)));
        else
            push(loadIdent(e)); // pre-init (initializer order)
        VM_NEXT();
    }
    VM_OP(LoadAt)
    {
        const Expr &e = ex();
        PointerValue place = popPlace();
        push(unwrap(mm_.load(e.loc, e.type, place)));
        VM_NEXT();
    }
    VM_OP(LoadDeref)
    {
        const Expr &e = ex();
        MemValue p = pop();
        push(unwrap(
            mm_.load(e.loc, e.type, pointerOf(e.loc, p))));
        VM_NEXT();
    }
    VM_OP(PlaceSlot)
    {
        const Binding &b = slotAt(in->a);
        if (b.type)
            push(MemValue(b.place));
        else
            push(MemValue(placeIdent(ex())));
        VM_NEXT();
    }
    VM_OP(PlaceNamed)
    {
        push(MemValue(placeIdent(ex())));
        VM_NEXT();
    }
    VM_OP(PlaceGlobal)
    {
        if (const Binding *b = globalBinding(in->b))
            push(MemValue(b->place));
        else
            push(MemValue(placeIdent(ex())));
        VM_NEXT();
    }
    VM_OP(PlaceString)
    {
        push(MemValue(stringLiteralPlace(ex())));
        VM_NEXT();
    }
    VM_OP(PointerOf)
    {
        const Expr &e = ex();
        MemValue p = pop();
        push(MemValue(pointerOf(e.loc, p)));
        VM_NEXT();
    }
    VM_OP(Decay)
    {
        PointerValue p = popPlace();
        p.kind = PointerValue::Kind::Object;
        push(MemValue(p));
        VM_NEXT();
    }
    VM_OP(IndexShift)
    {
        const Expr &e = ex();
        MemValue iv = pop();
        MemValue pv = pop();
        PointerValue p = pointerOf(e.loc, pv);
        __int128 idx = iv.asInteger().value();
        push(MemValue(
            unwrap(mm_.arrayShift(e.loc, p, e.type, idx))));
        VM_NEXT();
    }
    VM_OP(MemberDot)
    {
        const Expr &e = ex();
        PointerValue base = popPlace();
        push(MemValue(unwrap(mm_.memberShift(
            e.loc, base, e.lhs->type->tag, e.text))));
        VM_NEXT();
    }
    VM_OP(MemberArrow)
    {
        const Expr &e = ex();
        MemValue pv = pop();
        PointerValue base = pointerOf(e.loc, pv);
        push(MemValue(unwrap(mm_.memberShift(
            e.loc, base, e.lhs->type->pointee->tag, e.text))));
        VM_NEXT();
    }
    VM_OP(UnaryOp)
    {
        const Expr &e = ex();
        MemValue v = pop();
        push(unaryValueOp(e, v));
        VM_NEXT();
    }
    VM_OP(IncDec)
    {
        const Expr &e = ex();
        PointerValue place = popPlace();
        const TypeRef &ty = ch.types[in->b];
        MemValue old = unwrap(mm_.load(e.loc, ty, place));
        MemValue next = incDecNext(e, ty, old);
        unwrap(mm_.store(e.loc, ty, place, next));
        push(in->a ? std::move(next) : std::move(old));
        VM_NEXT();
    }
    VM_OP(BinaryOp)
    {
        // In place: read both operands off the stack, overwrite the
        // lhs slot with the result, drop the rhs slot — one MemValue
        // move saved per arithmetic node.
        const Expr &e = ex();
        size_t n = stack_.size();
        MemValue v = binaryOp(e, stack_[n - 2], stack_[n - 1]);
        stack_[n - 2] = std::move(v);
        stack_.pop_back();
        VM_NEXT();
    }
    VM_OP(StorePlain)
    {
        const Expr &e = ex();
        MemValue v = pop();
        PointerValue place = popPlace();
        unwrap(mm_.store(e.loc, ch.types[in->b], place, v));
        push(std::move(v));
        VM_NEXT();
    }
    VM_OP(CompLoad)
    {
        const Expr &e = ex();
        MemValue old = unwrap(mm_.load(
            e.loc, ch.types[in->b], stack_.back().asPointer()));
        push(std::move(old));
        VM_NEXT();
    }
    VM_OP(CompStore)
    {
        const Expr &e = ex();
        const TypeRef &ty = ch.types[in->b];
        MemValue rv = pop();
        MemValue old = pop();
        PointerValue place = popPlace();
        MemValue next = compoundNext(e, ty, old, rv);
        unwrap(mm_.store(e.loc, ty, place, next));
        push(std::move(next));
        VM_NEXT();
    }
    VM_OP(CastOp)
    {
        const Expr &e = ex();
        MemValue v = pop();
        push(castValueOp(e, std::move(v)));
        VM_NEXT();
    }
    VM_OP(Truthy01)
    {
        const Expr &e = ex();
        MemValue v = pop();
        push(MemValue(makeInt(e.loc, IntKind::Int,
                              truthy(e.loc, v) ? 1 : 0)));
        VM_NEXT();
    }
    VM_OP(Pop)
    {
        stack_.pop_back();
        VM_NEXT();
    }
    VM_OP(Jmp)
    {
        VM_JUMP(in->b);
    }
    VM_OP(BrFalse)
    {
        MemValue v = pop();
        if (!truthy(*in->loc, v))
            VM_JUMP(in->b);
        VM_NEXT();
    }
    VM_OP(BrTrue)
    {
        MemValue v = pop();
        if (truthy(*in->loc, v))
            VM_JUMP(in->b);
        VM_NEXT();
    }
    VM_OP(Step)
    {
        VM_NEXT(); // the dispatch prologue already charged
    }
    VM_OP(Halt)
    {
        return;
    }
    VM_OP(CallPrep)
    {
        const Expr &e = ex();
        uint32_t idx;
        if (!lookup(e.lhs->text)) {
            idx = prog_.functionIndex.at(e.lhs->text);
        } else {
            // A local shadows the function name: the tree walker's
            // indirect path, including its evalExpr step charge.
            MemValue fv = evalExpr(*e.lhs);
            idx = resolveIndirectCallee(e, fv);
        }
        checkCallable(idx, e.loc);
        callees_.push_back(idx);
        VM_NEXT();
    }
    VM_OP(CallResolve)
    {
        const Expr &e = ex();
        MemValue fv = pop();
        uint32_t idx = resolveIndirectCallee(e, fv);
        checkCallable(idx, e.loc);
        callees_.push_back(idx);
        VM_NEXT();
    }
    VM_OP(CallIndirect)
    {
        const CallInfo &ci = ch.calls[in->b];
        size_t argc = in->a;
        std::vector<MemValue> args;
        args.reserve(argc);
        for (size_t i = stack_.size() - argc; i < stack_.size();
             ++i)
            args.push_back(std::move(stack_[i]));
        stack_.resize(stack_.size() - argc);
        uint32_t idx = callees_.back();
        callees_.pop_back();
        push(callFunction(idx, std::move(args), ci.argTypes));
        VM_NEXT();
    }
    VM_OP(BuiltinPre)
    {
        const Expr &e = ex();
        builtinPrologue(e);
        if (mm_.tracer().enabled()) {
            timers_.push_back(
                {static_cast<size_t>(e.builtinId),
                 std::chrono::steady_clock::now()});
        }
        VM_NEXT();
    }
    VM_OP(BuiltinCall)
    {
        const Expr &e = ex();
        size_t argc = in->a;
        std::vector<MemValue> args;
        args.reserve(argc);
        for (size_t i = stack_.size() - argc; i < stack_.size();
             ++i)
            args.push_back(std::move(stack_[i]));
        stack_.resize(stack_.size() - argc);
        if (!mm_.tracer().enabled()) {
            push(builtinCall(e, args));
        } else {
            // Timed region opened by BuiltinPre; accumulates on
            // scope exit even when the intrinsic raises, exactly
            // like the tree walker's RAII timer.
            ScopedIntrinsicTimer scoped{
                &intrinsicNs_[static_cast<size_t>(e.builtinId)],
                timers_.back().second};
            timers_.pop_back();
            push(builtinCall(e, args));
        }
        VM_NEXT();
    }
    VM_OP(PushScope)
    {
        pushScope();
        VM_NEXT();
    }
    VM_OP(PopScope)
    {
        popScope(st().loc);
        VM_NEXT();
    }
    VM_OP(Alloc)
    {
        const frontend::VarDecl &d = dc();
        PointerValue place = unwrap(mm_.allocateObject(
            d.name, d.type, d.type->isConst,
            /*is_static=*/false));
        Binding b{place, d.type};
        scopes_.back().vars[d.name] = b;
        scopes_.back().toKill.push_back(place);
        slotAt(in->a) = std::move(b);
        VM_NEXT();
    }
    VM_OP(AllocStatic)
    {
        const frontend::VarDecl &d = dc();
        auto it = staticLocals_.find(&d);
        if (it == staticLocals_.end()) {
            PointerValue place = unwrap(mm_.allocateObject(
                d.name, d.type, d.type->isConst,
                /*is_static=*/true));
            storeZero(d.loc, place, d.type);
            if (d.hasInit)
                storeInitializer(d.loc, place, d.type, d.init);
            it = staticLocals_
                     .emplace(&d, Binding{place, d.type})
                     .first;
        }
        scopes_.back().vars[d.name] = it->second;
        slotAt(in->a) = it->second;
        VM_NEXT();
    }
    VM_OP(InitTree)
    {
        const frontend::VarDecl &d = dc();
        const Binding &b = slotAt(in->a);
        storeInitializer(d.loc, b.place, d.type, d.init);
        VM_NEXT();
    }
    VM_OP(StoreInit)
    {
        const frontend::VarDecl &d = dc();
        MemValue v = pop();
        const Binding &b = slotAt(in->a);
        unwrap(mm_.store(d.loc, d.type, writablePlace(b.place), v,
                         /*initializing=*/true));
        VM_NEXT();
    }
    VM_OP(StoreRet)
    {
        ret = pop();
        VM_NEXT();
    }
    VM_OP(TreeStmt)
    {
        const Stmt &s = st();
        Flow f = execStmt(s, &ret);
        if (f != Flow::Normal) {
            const FlowRoute &r = ch.routes[in->b];
            uint32_t target = f == Flow::Break
                                  ? r.brk
                                  : (f == Flow::Continue ? r.cont
                                                         : r.ret);
            if (target == kNoTarget) {
                raise(Failure::internal(
                    "unroutable control flow from statement",
                    s.loc));
            }
            VM_JUMP(target);
        }
        VM_NEXT();
    }
    VM_OP(TreeExpr)
    {
        push(evalExpr(ex()));
        VM_NEXT();
    }
    VM_OP(TreeLValue)
    {
        push(MemValue(evalLValue(ex())));
        VM_NEXT();
    }

#if !CHERISEM_VM_COMPUTED_GOTO
    }
    raise(Failure::internal("bad opcode"));
#endif
}

#undef VM_JUMP
#undef VM_NEXT
#undef VM_DISPATCH
#undef VM_OP
#undef VM_CHARGE

} // namespace cherisem::corelang
