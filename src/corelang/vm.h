/**
 * @file
 * The bytecode VM: the fast execution engine.
 *
 * Vm subclasses Machine and overrides exactly one method —
 * callFunction — to run a function's compiled chunk instead of
 * walking its body AST.  Everything else (global initialization, the
 * memory model, scope/lifetime discipline, builtins, UB propagation,
 * the outcome assembly in run()) is inherited unchanged, and every
 * instruction handler calls the Machine's own semantic helpers on
 * operands popped from the VM stack.  Tree-walked fragments (switch
 * statements, braced initializers) that call functions re-enter the
 * VM through this same virtual seam, so a run never mixes semantics:
 * there is one implementation of every rule, dispatched two ways.
 *
 * The dispatch loop uses computed goto on GCC/Clang (one indirect
 * branch per instruction, letting the predictor specialise per
 * opcode) with a portable switch fallback.
 */
#ifndef CHERISEM_CORELANG_VM_H
#define CHERISEM_CORELANG_VM_H

#include <chrono>
#include <utility>

#include "corelang/bytecode.h"
#include "corelang/machine.h"

namespace cherisem::corelang {

class Vm : public Machine
{
  public:
    /** Compile-and-own: the evaluate() entry point. */
    Vm(const sema::Program &prog, const EvalOptions &opts);
    /** Shared immutable module: compile once, run many (benchmarks
     *  and the differential harnesses re-running one program). */
    Vm(const sema::Program &prog, const EvalOptions &opts,
       const BytecodeModule *module);

    /** Machine::restoreSnapshot plus clearing the VM's frame state
     *  (operand stack, slot frames, callee/timer stacks).  These are
     *  stack-disciplined and empty at every quiescent point, but a
     *  terminal unwind (UB mid-call) can leave residue behind. */
    void restoreSnapshot(const SnapshotPtr &snap) override;

  protected:
    mem::MemValue callFunction(
        uint32_t idx, std::vector<mem::MemValue> args,
        const std::vector<ctype::TypeRef> &arg_types) override;

  private:
    /** Run one compiled chunk; returns on Halt.  @p slot_base is
     *  this frame's offset into slots_, @p ret the frame's return
     *  value storage (shared with tree-walked Return statements). */
    void execChunk(const Chunk &ch, size_t slot_base,
                   mem::MemValue &ret);

    /** Cold step-limit raise with the exact per-charge location. */
    [[noreturn]] void stepLimit(const Chunk &ch, uint32_t pc,
                                uint8_t n);

    /** Slow side of VM_CHARGE: step-limit raise, or watchdog poll +
     *  checkAt_ rearm when only a poll boundary was crossed. */
    void chargeSlow(const Chunk &ch, uint32_t pc, uint8_t n);

    /** The tree walker's full Ident rvalue path (dynamic lookup,
     *  function designators, unbound-identifier error) — the
     *  LoadNamed handler, and LoadSlot's fallback when the slot's
     *  declaration never executed (unpassed parameter). */
    mem::MemValue loadIdent(const frontend::Expr &e);
    /** Likewise for the Ident lvalue path. */
    mem::PointerValue placeIdent(const frontend::Expr &e);
    /** Resolve global slot @p i to its binding, or null while the
     *  global is not bound yet (global-initializer evaluation
     *  order).  Memoizes the globals_ map node — stable across
     *  inserts; invalidated wholesale by restoreSnapshot. */
    const Binding *globalBinding(uint32_t i);

    BytecodeModule owned_;
    const BytecodeModule *module_;
    /** Frame-local slot bindings (all frames, stack discipline). */
    std::vector<Binding> slots_;
    /** Operand stack (all frames; each chunk is balanced). */
    std::vector<mem::MemValue> stack_;
    /** Callees resolved by CallPrep/CallResolve, consumed by
     *  CallIndirect (stack: calls nest in argument lists). */
    std::vector<uint32_t> callees_;
    /** Traced runs: intrinsic timer starts pushed by BuiltinPre
     *  (builtin index, start time), popped by BuiltinCall. */
    std::vector<std::pair<size_t,
                          std::chrono::steady_clock::time_point>>
        timers_;
    /** Per-global-slot memo of the globals_ map node (see
     *  globalBinding); null = not resolved yet. */
    std::vector<const Binding *> globalCache_;
};

} // namespace cherisem::corelang

#endif // CHERISEM_CORELANG_VM_H
