#include "corelang/optimize.h"

#include <optional>

#include "intrinsics/intrinsics.h"

namespace cherisem::corelang {

using frontend::BinOp;
using frontend::Expr;
using frontend::ExprPtr;
using frontend::Stmt;
using frontend::StmtPtr;
using frontend::UnOp;
using ctype::IntKind;
using ctype::TypeRef;

namespace {

class Optimizer
{
  public:
    Optimizer(sema::Program &prog, const OptimizeOptions &opts)
        : prog_(prog), opts_(opts),
          layout_(prog.machine, &prog.unit.tags)
    {}

    OptimizeStats
    run()
    {
        for (auto &fn : prog_.unit.functions) {
            if (fn.body)
                walkStmt(*fn.body);
        }
        return stats_;
    }

  private:
    // ---- constant evaluation over the typed AST ----

    std::optional<__int128>
    constEval(const Expr &e) const
    {
        switch (e.kind) {
          case Expr::Kind::IntLit:
            return static_cast<__int128>(e.intValue);
          case Expr::Kind::Ident:
            if (e.isEnumConst)
                return e.enumValue;
            return std::nullopt;
          case Expr::Kind::SizeofType:
            return static_cast<__int128>(
                layout_.sizeOf(e.typeOperand));
          case Expr::Kind::SizeofExpr:
            return static_cast<__int128>(layout_.sizeOf(e.lhs->type));
          case Expr::Kind::Cast: {
            // Fold numeric casts; casts *to* (u)intptr_t from a
            // constant produce a null-derived value whose numeric
            // value is the constant, so folding is value-preserving.
            if (!e.type->isInteger())
                return std::nullopt;
            return constEval(*e.lhs);
          }
          case Expr::Kind::Unary:
            if (e.unop == UnOp::Minus) {
                auto v = constEval(*e.lhs);
                if (v)
                    return -*v;
            }
            if (e.unop == UnOp::Plus)
                return constEval(*e.lhs);
            return std::nullopt;
          case Expr::Kind::Binary: {
            auto a = constEval(*e.lhs);
            auto b = constEval(*e.rhs);
            if (!a || !b)
                return std::nullopt;
            switch (e.binop) {
              case BinOp::Add: return *a + *b;
              case BinOp::Sub: return *a - *b;
              case BinOp::Mul: return *a * *b;
              default: return std::nullopt;
            }
          }
          default:
            return std::nullopt;
        }
    }

    // ---- pass 1: fold transient out-of-bounds arithmetic ----

    /** Is this an Add/Sub of a capability-carrying lhs and a constant
     *  rhs? (The shape compilers reassociate.) */
    bool
    capPlusConst(const Expr &e, __int128 &delta) const
    {
        if (e.kind != Expr::Kind::Binary ||
            (e.binop != BinOp::Add && e.binop != BinOp::Sub)) {
            return false;
        }
        if (!e.type || !e.type->isCapCarrying())
            return false;
        if (!e.lhs->type || !e.lhs->type->isCapCarrying())
            return false;
        auto c = constEval(*e.rhs);
        if (!c)
            return false;
        delta = e.binop == BinOp::Add ? *c : -*c;
        return true;
    }

    void
    foldTransient(ExprPtr &e)
    {
        __int128 outer = 0, inner = 0;
        if (!capPlusConst(*e, outer))
            return;
        if (!capPlusConst(*e->lhs, inner))
            return;
        __int128 total = inner + outer;
        // (p + c1) - c2  ==>  p + (c1 - c2): drop the intermediate
        // value that may be non-representable.
        ExprPtr base = std::move(e->lhs->lhs);
        ExprPtr lit = Expr::make(Expr::Kind::IntLit, e->loc);
        bool neg = total < 0;
        lit->intValue = static_cast<uint64_t>(neg ? -total : total);
        lit->type = ctype::intType(IntKind::Long);
        ExprPtr n = Expr::make(Expr::Kind::Binary, e->loc);
        n->binop = neg ? BinOp::Sub : BinOp::Add;
        n->type = e->type;
        n->deriv = frontend::DerivSource::Left;
        n->lhs = std::move(base);
        n->rhs = std::move(lit);
        e = std::move(n);
        ++stats_.foldedArith;
    }

    // ---- pass 2: identity representation writes ----

    bool
    sameLValue(const Expr &a, const Expr &b) const
    {
        if (a.kind != b.kind)
            return false;
        switch (a.kind) {
          case Expr::Kind::Ident:
            return a.text == b.text;
          case Expr::Kind::IntLit:
            return a.intValue == b.intValue;
          case Expr::Kind::Index:
            return sameLValue(*a.lhs, *b.lhs) &&
                sameLValue(*a.rhs, *b.rhs);
          case Expr::Kind::Member:
            return a.text == b.text && a.isArrow == b.isArrow &&
                sameLValue(*a.lhs, *b.lhs);
          case Expr::Kind::Unary:
            return a.unop == b.unop && a.lhs && b.lhs &&
                sameLValue(*a.lhs, *b.lhs);
          case Expr::Kind::Cast:
            return b.lhs && a.lhs && sameLValue(*a.lhs, *b.lhs);
          default:
            return false;
        }
    }

    bool
    isIdentityWrite(const Stmt &s) const
    {
        if (s.kind != Stmt::Kind::Expr || !s.expr)
            return false;
        const Expr &e = *s.expr;
        if (e.kind != Expr::Kind::Assign || e.binop != BinOp::Comma)
            return false;
        // rhs may be wrapped in an implicit conversion.
        const Expr *rhs = e.rhs.get();
        while (rhs->kind == Expr::Kind::Cast && rhs->implicitCast)
            rhs = rhs->lhs.get();
        return sameLValue(*e.lhs, *rhs);
    }

    // ---- pass 3: byte-copy loops to memcpy ----

    /** Match `for (i = 0; i < N; i++) dst[i] = src[i];` over
     *  character types with constant N. */
    bool
    matchCopyLoop(const Stmt &s, const Expr *&dst, const Expr *&src,
                  uint64_t &n) const
    {
        if (s.kind != Stmt::Kind::For || !s.forCond || !s.forStep ||
            !s.thenStmt) {
            return false;
        }
        // Condition: i < const.
        const Expr &cond = *s.forCond;
        if (cond.kind != Expr::Kind::Binary ||
            cond.binop != BinOp::Lt) {
            return false;
        }
        auto bound = constEval(*cond.rhs);
        if (!bound || *bound <= 0)
            return false;
        // Body: single expression statement (possibly in a block).
        const Stmt *body = s.thenStmt.get();
        while (body->kind == Stmt::Kind::Block &&
               body->body.size() == 1) {
            body = body->body[0].get();
        }
        if (body->kind != Stmt::Kind::Expr || !body->expr)
            return false;
        const Expr &as = *body->expr;
        if (as.kind != Expr::Kind::Assign || as.binop != BinOp::Comma)
            return false;
        if (as.lhs->kind != Expr::Kind::Index)
            return false;
        const Expr *rhs = as.rhs.get();
        while (rhs->kind == Expr::Kind::Cast && rhs->implicitCast)
            rhs = rhs->lhs.get();
        if (rhs->kind != Expr::Kind::Index)
            return false;
        // Byte-sized element type on both sides.
        if (!as.lhs->type->isInteger() ||
            layout_.sizeOf(as.lhs->type) != 1 ||
            layout_.sizeOf(rhs->type) != 1) {
            return false;
        }
        dst = as.lhs->lhs.get();
        src = rhs->lhs.get();
        n = static_cast<uint64_t>(*bound);
        return true;
    }

    ExprPtr
    cloneSimple(const Expr &e) const
    {
        ExprPtr n = Expr::make(e.kind, e.loc);
        n->text = e.text;
        n->intValue = e.intValue;
        n->type = e.type;
        n->isLValue = e.isLValue;
        n->unop = e.unop;
        n->binop = e.binop;
        n->isArrow = e.isArrow;
        n->implicitCast = e.implicitCast;
        n->typeOperand = e.typeOperand;
        n->isEnumConst = e.isEnumConst;
        n->enumValue = e.enumValue;
        if (e.lhs)
            n->lhs = cloneSimple(*e.lhs);
        if (e.rhs)
            n->rhs = cloneSimple(*e.rhs);
        if (e.cond)
            n->cond = cloneSimple(*e.cond);
        for (const auto &a : e.args)
            n->args.push_back(cloneSimple(*a));
        return n;
    }

    StmtPtr
    makeMemcpyStmt(const Stmt &loop, const Expr &dst, const Expr &src,
                   uint64_t n)
    {
        ExprPtr call = Expr::make(Expr::Kind::Call, loop.loc);
        call->builtinId = static_cast<int>(
            intrinsics::Builtin::Memcpy);
        ExprPtr callee = Expr::make(Expr::Kind::Ident, loop.loc);
        callee->text = "memcpy";
        callee->type = ctype::voidType();
        call->lhs = std::move(callee);
        call->args.push_back(cloneSimple(dst));
        call->args.push_back(cloneSimple(src));
        ExprPtr len = Expr::make(Expr::Kind::IntLit, loop.loc);
        len->intValue = n;
        len->type = ctype::intType(IntKind::ULong);
        call->args.push_back(std::move(len));
        call->type = ctype::pointerTo(ctype::voidType());
        StmtPtr st = Stmt::make(Stmt::Kind::Expr, loop.loc);
        st->expr = std::move(call);
        return st;
    }

    // ---- traversal ----

    void
    walkExpr(ExprPtr &e)
    {
        if (!e)
            return;
        walkExpr(e->lhs);
        walkExpr(e->rhs);
        walkExpr(e->cond);
        for (auto &a : e->args)
            walkExpr(a);
        if (opts_.foldTransientArith)
            foldTransient(e);
    }

    void
    walkStmt(Stmt &s)
    {
        if (opts_.loopsToMemcpy) {
            for (auto &sub : s.body) {
                const Expr *dst;
                const Expr *src;
                uint64_t n;
                if (matchCopyLoop(*sub, dst, src, n)) {
                    sub = makeMemcpyStmt(*sub, *dst, *src, n);
                    ++stats_.loopsRewritten;
                }
            }
        }
        if (opts_.elideIdentityWrites) {
            for (auto &sub : s.body) {
                if (isIdentityWrite(*sub)) {
                    sub = Stmt::make(Stmt::Kind::Empty, sub->loc);
                    ++stats_.elidedWrites;
                }
            }
        }
        walkExpr(s.expr);
        walkExpr(s.forCond);
        walkExpr(s.forStep);
        if (s.forInit)
            walkStmt(*s.forInit);
        for (auto &d : s.decls) {
            if (d.hasInit)
                walkInit(d.init);
        }
        for (auto &sub : s.body)
            walkStmt(*sub);
        if (s.thenStmt)
            walkStmt(*s.thenStmt);
        if (s.elseStmt)
            walkStmt(*s.elseStmt);
    }

    void
    walkInit(frontend::Initializer &init)
    {
        if (init.expr)
            walkExpr(init.expr);
        for (auto &sub : init.list)
            walkInit(sub);
    }

    sema::Program &prog_;
    const OptimizeOptions &opts_;
    ctype::LayoutEngine layout_;
    OptimizeStats stats_;
};

} // namespace

OptimizeStats
optimize(sema::Program &prog, const OptimizeOptions &opts)
{
    Optimizer o(prog, opts);
    return o.run();
}

} // namespace cherisem::corelang
