/**
 * @file
 * The shared semantic core of the two execution engines.
 *
 * Machine is the complete tree-walking abstract machine of the paper
 * (section 4): expression evaluation, the statement machine, frames
 * with object lifetimes, the builtin/intrinsic implementations, and
 * undefined-behaviour propagation.  Used directly it *is* the
 * reference tree-walking engine; the bytecode VM (vm.h) subclasses it,
 * overriding only function-body execution (callFunction) while
 * inheriting every value-level transformation, the global/static
 * initialization paths, the scope/lifetime discipline, and the
 * builtins.  That inheritance — not testing alone — is what makes the
 * two engines agree bit-for-bit: there is exactly one implementation
 * of each semantic rule.
 *
 * The value-level helpers the bytecode instructions call directly
 * (binaryOp, castValueOp, incDecNext, builtinCall, ...) are the
 * tree evaluator's own post-operand-evaluation bodies, factored so an
 * instruction that has already materialised its operands on the VM
 * stack runs the identical code the tree walker runs under an Expr
 * node.
 */
#ifndef CHERISEM_CORELANG_MACHINE_H
#define CHERISEM_CORELANG_MACHINE_H

#include <array>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "corelang/eval.h"
#include "intrinsics/intrinsics.h"

namespace cherisem::corelang {

/// @name Non-local control flow inside the engines.
/// UB and semantic errors unwind as EvalFailure; exit()/abort()/assert
/// have their own carriers.  Both engines throw and catch these with
/// the same frame discipline, so object-lifetime (kill) event order on
/// unwind is identical by construction.
/// @{
struct EvalFailure
{
    mem::Failure failure;
};
struct ExitException
{
    int code;
};
struct AssertFailure
{
    std::string message;
};

[[noreturn]] inline void
raise(mem::Failure f)
{
    throw EvalFailure{std::move(f)};
}

[[noreturn]] inline void
raiseUb(mem::Ub ub, SourceLoc loc, std::string msg = "")
{
    throw EvalFailure{
        mem::Failure::undefined(ub, std::move(loc), std::move(msg))};
}

template <typename T>
T
unwrap(mem::MemResult<T> r)
{
    if (!r)
        raise(std::move(r).error());
    return std::move(r).value();
}
/// @}

/** Statement execution result. */
enum class Flow { Normal, Break, Continue, Return };

class Machine
{
  public:
    Machine(const sema::Program &prog, const EvalOptions &opts);
    virtual ~Machine() = default;

    /** Reserved function name: when a program defines `__prelude()`,
     *  run() executes it between global initialization and main().
     *  The machine is *quiescent* right after it returns (no scopes,
     *  no native recursion), which is the one point capture() may
     *  fork the state. */
    static constexpr const char *kPreludeFunction = "__prelude";

    /** Execute the program: globals, the optional __prelude(), then
     *  main().  Equivalent to runPrelude() + runMain(). */
    Outcome run();

    /** Initialise globals and execute the reserved __prelude()
     *  function if the program defines one.  Returns an Outcome iff
     *  the run already terminated (UB, exit(), assert failure,
     *  resource exhaustion — runMain() must not be called then);
     *  nullopt means the machine is quiescent and ready for
     *  capture() / runMain(). */
    std::optional<Outcome> runPrelude();
    /** Execute main() from the current state: either straight after
     *  runPrelude() or after restoreSnapshot(). */
    Outcome runMain();

    /**
     * A fork of the whole machine state at a quiescent point: the
     * memory model's (A, S, (B, C)) snapshot plus the engine-level
     * environment (global bindings, interned string literals, static
     * locals, function-pointer cache, accumulated output, step and
     * intrinsic counters).  Bindings reference AST nodes of *this*
     * program, so a snapshot is only meaningful for machines built
     * over the same sema::Program (the serve layer keys warm state
     * per compiled program for exactly this reason).
     */
    struct Snapshot;
    using SnapshotPtr = std::shared_ptr<const Snapshot>;

    /** Fork the current state.  Only valid at a quiescent point
     *  (after runPrelude() returned nullopt; scopes empty, no native
     *  recursion) — asserted. */
    SnapshotPtr capture() const;
    /** Rewind to @p snap.  Virtual so the bytecode VM can also clear
     *  its (stack-disciplined, normally empty) frame state after a
     *  terminal unwind. */
    virtual void restoreSnapshot(const SnapshotPtr &snap);

    /** Overwrite an integer-typed global with @p value (the fuzz
     *  fork driver's variant injection).  Returns false when no such
     *  global exists or the store faults. */
    bool pokeGlobalInt(const std::string &name, int64_t value);

  protected:
    // ---- environment ----

    struct Binding
    {
        mem::PointerValue place;
        ctype::TypeRef type;
    };
    struct Scope
    {
        std::map<std::string, Binding> vars;
        std::vector<mem::PointerValue> toKill;
    };

    /** Steps between cancellation/deadline polls.  Polling is
     *  side-effect free, so the interval only bounds reaction
     *  latency; it never changes a run's observable behaviour. */
    static constexpr uint64_t kWatchdogPollSteps = 8192;

    void
    step(const SourceLoc &loc)
    {
        // Single predictable compare on the hot path; checkAt_ is
        // maxSteps+1 when no watchdog is armed (the historical step
        // budget check), else the next poll boundary.
        if (++steps_ >= checkAt_)
            stepSlow(loc);
    }

    /** Out-of-line step-budget raise / watchdog poll. */
    void stepSlow(const SourceLoc &loc);
    /** Raise ResourceExhausted when cancelled or past the deadline. */
    void pollWatchdog(const SourceLoc &loc);
    /** The next steps_ value at which step() must leave the fast
     *  path. */
    uint64_t nextCheckAt() const;

    const Binding *
    lookup(const std::string &name) const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto f = it->vars.find(name);
            if (f != it->vars.end())
                return &f->second;
        }
        auto g = globals_.find(name);
        if (g != globals_.end())
            return &g->second;
        return nullptr;
    }

    void
    pushScope()
    {
        scopes_.emplace_back();
    }

    void
    popScope(const SourceLoc &loc)
    {
        for (auto it = scopes_.back().toKill.rbegin();
             it != scopes_.back().toKill.rend(); ++it) {
            unwrap(mm_.kill(loc, false, *it));
        }
        scopes_.pop_back();
    }

    /** Translate a caught EvalFailure into @p out (UB / resource /
     *  error verdict) and witness UbRaise as the stream's terminal
     *  event — the shared tail of every catch site. */
    void failureOutcome(Outcome &out, const EvalFailure &f);
    /** Fill the outcome's output / stats / steps / intrinsic maps
     *  from the machine state. */
    void finalizeOutcome(Outcome &out);

    // ---- globals and initializers ----

    void initGlobals();
    void storeZero(const SourceLoc &loc, const mem::PointerValue &place,
                   const ctype::TypeRef &ty);
    mem::PointerValue writablePlace(const mem::PointerValue &p) const;
    void storeInitializer(const SourceLoc &loc,
                          const mem::PointerValue &place,
                          const ctype::TypeRef &ty,
                          const frontend::Initializer &init);
    void storeStringInto(const SourceLoc &loc,
                         const mem::PointerValue &place,
                         const ctype::TypeRef &ty, const std::string &s);
    mem::PointerValue stringLiteralPlace(const frontend::Expr &e);

    // ---- integer helpers ----

    bool
    isSignedKind(ctype::IntKind k) const
    {
        return ctype::isSignedIntKind(k);
    }

    __int128 fitInt(const SourceLoc &loc, ctype::IntKind k, __int128 v,
                    bool check_overflow);
    mem::IntegerValue makeInt(const SourceLoc &loc, ctype::IntKind k,
                              __int128 v, bool check_overflow = false);
    bool truthy(const SourceLoc &loc, const mem::MemValue &v);

    // ---- lvalues / expressions (tree walk) ----

    mem::PointerValue evalLValue(const frontend::Expr &e);
    mem::PointerValue pointerOf(const SourceLoc &loc,
                                const mem::MemValue &v);
    mem::MemValue evalExpr(const frontend::Expr &e);
    mem::PointerValue functionPointer(uint32_t idx);
    mem::MemValue evalUnary(const frontend::Expr &e);
    mem::MemValue evalBinary(const frontend::Expr &e);
    mem::MemValue evalAssign(const frontend::Expr &e);
    mem::MemValue evalCast(const frontend::Expr &e);
    mem::MemValue evalCall(const frontend::Expr &e);

    /// @name Post-operand value transformations.
    /// The bodies the tree walker runs once an Expr node's operands
    /// are evaluated; bytecode instructions call these directly with
    /// operands popped off the VM stack.
    /// @{
    cap::Capability addressArith(const cap::Capability &c,
                                 uint64_t a) const;
    mem::IntegerValue capPreservingInt(const SourceLoc &loc,
                                       ctype::IntKind k, __int128 v,
                                       const mem::IntegerValue &src);
    mem::IntegerValue intArith(const SourceLoc &loc, frontend::BinOp op,
                               const ctype::TypeRef &ty,
                               const mem::IntegerValue &a,
                               const mem::IntegerValue &b,
                               frontend::DerivSource deriv);
    /** Non-short-circuit binary operators on evaluated operands. */
    mem::MemValue binaryOp(const frontend::Expr &e, const mem::MemValue &lv,
                           const mem::MemValue &rv);
    /** Pure-value unary operators (Plus/Minus/BitNot/LogNot). */
    mem::MemValue unaryValueOp(const frontend::Expr &e,
                               const mem::MemValue &v);
    /** The ++/-- "next" value from the loaded old value. */
    mem::MemValue incDecNext(const frontend::Expr &e,
                             const ctype::TypeRef &ty,
                             const mem::MemValue &old);
    /** Compound-assignment "next" value from old and evaluated rhs. */
    mem::MemValue compoundNext(const frontend::Expr &e,
                               const ctype::TypeRef &ty,
                               const mem::MemValue &old,
                               const mem::MemValue &rv);
    /** Scalar cast on an evaluated operand (not array decay /
     *  function designators — the engines handle those shapes). */
    mem::MemValue castValueOp(const frontend::Expr &e, mem::MemValue v);
    /** Resolve an indirect callee value to a function index (UB on
     *  untagged capability / non-function target). */
    uint32_t resolveIndirectCallee(const frontend::Expr &e,
                                   const mem::MemValue &fv);
    /** Raise the constraint failure for calling an undefined body. */
    void checkCallable(uint32_t idx, const SourceLoc &loc);
    /// @}

    static int cmp(const mem::IntegerValue &a, const mem::IntegerValue &b);
    mem::MemValue floatVal(double d);
    mem::MemValue boolVal(const SourceLoc &loc, bool b);

    // ---- calls ----

    /** Execute function @p idx with evaluated arguments.  Virtual:
     *  the bytecode engine overrides this (only this) to run the
     *  compiled chunk instead of walking the body AST. */
    virtual mem::MemValue callFunction(
        uint32_t idx, std::vector<mem::MemValue> args,
        const std::vector<ctype::TypeRef> &arg_types);

    // ---- statements (tree walk) ----

    Flow execStmt(const frontend::Stmt &s, mem::MemValue *ret);

    // ---- builtins ----

    /** Counter + trace + timer wrapper; tree-evaluates arguments. */
    mem::MemValue evalBuiltin(const frontend::Expr &e);
    /** Bump the per-intrinsic counter and emit the Intrinsic witness
     *  event — the prefix both engines run *before* argument
     *  evaluation (the event order is part of the trace contract). */
    void builtinPrologue(const frontend::Expr &e);
    /** Dispatch builtin @p e on already-evaluated arguments. */
    mem::MemValue builtinCall(const frontend::Expr &e,
                              std::vector<mem::MemValue> &args);
    std::string readCString(const SourceLoc &loc,
                            const mem::PointerValue &p);
    std::string formatPrintf(const SourceLoc &loc, const std::string &fmt,
                             const std::vector<mem::MemValue> &args,
                             size_t first_arg);
    std::string formatCapValue(const mem::MemValue &v);
    mem::MemValue capArgRebuild(const SourceLoc &loc,
                                const mem::MemValue &orig,
                                const cap::Capability &c);
    static const cap::Capability *capOf(const mem::MemValue &v);
    static mem::Provenance provOf(const mem::MemValue &v);

    /** RAII accumulator for the per-intrinsic nanosecond counters
     *  (constructed only on traced runs). */
    struct ScopedIntrinsicTimer
    {
        uint64_t *slot;
        std::chrono::steady_clock::time_point t0 =
            std::chrono::steady_clock::now();
        ~ScopedIntrinsicTimer()
        {
            *slot += static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
        }
    };

    // ---- state ----

    const sema::Program &prog_;
    EvalOptions opts_;
    mem::MemoryModel mm_;

    std::vector<Scope> scopes_;
    std::map<std::string, Binding> globals_;
    std::map<const frontend::Expr *, mem::PointerValue> stringLits_;
    std::map<const frontend::VarDecl *, Binding> staticLocals_;
    std::map<uint32_t, mem::PointerValue> funcPtrs_;
    std::string output_;
    uint64_t steps_ = 0;
    /** steps_ threshold at which step()/VM_CHARGE take the slow
     *  path: maxSteps+1 (saturated) without a watchdog, else the
     *  next poll boundary.  Maintained by stepSlow(). */
    uint64_t checkAt_ = 0;
    int callDepth_ = 0;

    // Per-intrinsic counters (always on: one array increment per
    // call) and scoped-timer accumulators (tracing runs only).
    static constexpr size_t kNumBuiltins =
        static_cast<size_t>(intrinsics::Builtin::CheriDdcGet) + 1;
    std::array<uint64_t, kNumBuiltins> intrinsicCount_{};
    std::array<uint64_t, kNumBuiltins> intrinsicNs_{};
};

struct Machine::Snapshot
{
    mem::MemorySnapshotPtr mem;
    std::map<std::string, Binding> globals;
    std::map<const frontend::Expr *, mem::PointerValue> stringLits;
    std::map<const frontend::VarDecl *, Binding> staticLocals;
    std::map<uint32_t, mem::PointerValue> funcPtrs;
    std::string output;
    uint64_t steps = 0;
    std::array<uint64_t, kNumBuiltins> intrinsicCount{};
    std::array<uint64_t, kNumBuiltins> intrinsicNs{};
};

} // namespace cherisem::corelang

#endif // CHERISEM_CORELANG_MACHINE_H
