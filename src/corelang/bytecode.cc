/**
 * @file
 * The bytecode compiler: one pass over each function body, mirroring
 * the tree walker's evaluation order instruction by instruction.
 *
 * Step accounting: the tree walker calls step() on entry to every
 * evalExpr / evalLValue / execStmt and once per loop iteration.  The
 * compiler accumulates those charges in `pending_` and attaches them
 * to the next emitted instruction (`Instr::n`), flushing into an
 * explicit Step instruction at control-flow joins so a charge is
 * never attributed across a branch.  Fallback instructions (TreeStmt
 * / TreeExpr / TreeLValue / InitTree / AllocStatic) charge nothing
 * for the node itself — the tree walker they invoke does its own
 * accounting — so the total is exact by construction.
 *
 * Name resolution: locals resolve to frame slots at compile time
 * (the innermost lexical declarator — identical to what the runtime
 * scope walk would find, since the current frame's scopes sit on top
 * of the dynamic chain).  A file-scope object whose name is never
 * declared by any parameter or local anywhere in the program resolves
 * to a global slot (LoadGlobal/PlaceGlobal): no scope binding with
 * that name can ever exist, so the runtime lookup() walk degenerates
 * to the globals_ map probe the VM memoizes per slot.  Anything else
 * stays a named instruction that performs the tree walker's own
 * dynamic lookup() at runtime, preserving its exact behaviour —
 * including the cross-frame shadowing quirk for globals and the
 * direct-call `!lookup(name)` guard.
 */
#include "corelang/bytecode.h"

#include <cassert>
#include <map>
#include <set>

#include "support/format.h"

namespace cherisem::corelang {

using frontend::BinOp;
using frontend::Expr;
using frontend::Stmt;
using frontend::UnOp;

namespace {

/** One open lexical scope during compilation. */
struct CScope
{
    /** The Block/For/... statement whose loc popScope charges; the
     *  function-level (parameter) scope has no owner and is popped
     *  by callFunction, not by compiled code. */
    const Stmt *owner = nullptr;
    std::map<std::string, uint16_t> slots;
};

/** An enclosing loop during compilation. */
struct CLoop
{
    /** Scope depth at the loop body (break/continue pop deeper). */
    size_t scopeDepth = 0;
    /** Continue target pc (known up front for While; bound after
     *  the body for DoWhile/For, whose continues jump forward). */
    uint32_t contPc = kNoTarget;
    /** Forward patches waiting for the break target. */
    std::vector<uint32_t> breakPatches;
    /** Forward patches waiting for the continue target. */
    std::vector<uint32_t> contPatches;
};

class FnCompiler
{
  public:
    FnCompiler(const sema::Program &prog,
               const std::map<std::string, uint32_t> &global_index)
        : prog_(prog), globalIndex_(global_index)
    {
    }

    Chunk
    compile(const frontend::FunctionDef &fn)
    {
        scopes_.push_back(CScope{}); // parameter scope
        for (size_t i = 0; i < fn.type->params.size(); ++i) {
            uint16_t slot = newSlot();
            if (i < fn.paramNames.size() && !fn.paramNames[i].empty())
                scopes_.back().slots[fn.paramNames[i]] = slot;
        }
        compileStmt(*fn.body);
        flushPending(&fn.body->loc);
        emit(Op::Halt, fn.body.get(), &fn.body->loc);
        assert(scopes_.size() == 1 && "unbalanced compile scopes");
        ch_.numSlots = nextSlot_;
        return std::move(ch_);
    }

  private:
    const sema::Program &prog_;
    /** Unshadowable file-scope objects: name -> LoadGlobal index. */
    const std::map<std::string, uint32_t> &globalIndex_;
    Chunk ch_;
    std::vector<CScope> scopes_;
    std::vector<CLoop> loops_;
    /** Pending step charges (one loc per charge, tree-walk order),
     *  attached to the next emitted instruction. */
    std::vector<const SourceLoc *> pending_;
    uint16_t nextSlot_ = 0;

    uint16_t
    newSlot()
    {
        assert(nextSlot_ < 0xffff);
        return nextSlot_++;
    }

    /** Innermost compile-time slot for @p name, or -1. */
    int
    findSlot(const std::string &name) const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto f = it->slots.find(name);
            if (f != it->slots.end())
                return f->second;
        }
        return -1;
    }

    // ---- emission ----

    /** Record one step charge at @p loc (what the tree walker's
     *  step(loc) would do at the same point). */
    void
    charge(const SourceLoc &loc)
    {
        pending_.push_back(&loc);
    }

    void
    uncharge()
    {
        pending_.pop_back();
    }

    uint32_t
    emit(Op op, const void *p, const SourceLoc *loc, uint16_t a = 0,
         uint32_t b = 0)
    {
        // The step charges ride on the next instruction; charges
        // above the field's range (255 nested single-instruction
        // nodes) spill into explicit Step instructions.
        while (pending_.size() > 255) {
            Instr st;
            st.op = Op::Step;
            st.n = 255;
            st.p = p;
            st.loc = loc;
            uint32_t pc = here();
            ch_.code.push_back(st);
            ch_.stepLocs[pc].assign(pending_.begin(),
                                    pending_.begin() + 255);
            pending_.erase(pending_.begin(),
                           pending_.begin() + 255);
        }
        Instr in;
        in.op = op;
        in.n = static_cast<uint8_t>(pending_.size());
        in.a = a;
        in.b = b;
        in.p = p;
        in.loc = loc;
        uint32_t pc = here();
        if (!pending_.empty()) {
            ch_.stepLocs[pc] = std::move(pending_);
            pending_.clear();
        }
        ch_.code.push_back(in);
        return pc;
    }

    /** Emit any pending step charges as an explicit Step so they
     *  cannot leak across a label or jump. */
    void
    flushPending(const SourceLoc *loc)
    {
        if (!pending_.empty())
            emit(Op::Step, nullptr, loc);
    }

    uint32_t
    here() const
    {
        return static_cast<uint32_t>(ch_.code.size());
    }

    /** Emit a forward jump; returns the patch index. */
    uint32_t
    emitJump(Op op, const void *p, const SourceLoc *loc)
    {
        return emit(op, p, loc, 0, kNoTarget);
    }

    void
    patch(uint32_t at, uint32_t target)
    {
        ch_.code[at].b = target;
    }

    uint16_t
    addType(ctype::TypeRef t)
    {
        ch_.types.push_back(std::move(t));
        assert(ch_.types.size() <= 0xffff);
        return static_cast<uint16_t>(ch_.types.size() - 1);
    }

    uint32_t
    addCall(CallInfo ci)
    {
        ch_.calls.push_back(std::move(ci));
        return static_cast<uint32_t>(ch_.calls.size() - 1);
    }

    // ---- scope bookkeeping ----

    void
    openScope(const Stmt *owner)
    {
        scopes_.push_back(CScope{});
        scopes_.back().owner = owner;
    }

    void
    closeScope()
    {
        scopes_.pop_back();
    }

    /** Emit PopScope for every scope strictly deeper than @p depth
     *  (innermost first), charging each pop to its owner's loc —
     *  the order and locations the tree walker produces when a
     *  Break/Continue/Return flow unwinds through nested blocks. */
    void
    emitScopeUnwind(size_t depth)
    {
        for (size_t i = scopes_.size(); i-- > depth;) {
            const Stmt *owner = scopes_[i].owner;
            assert(owner && "cannot unwind the parameter scope");
            emit(Op::PopScope, owner, &owner->loc);
        }
    }

    /** The function's return path from the current position: store
     *  the value (already on the stack when @p has_value), unwind
     *  every open scope, halt. */
    void
    emitReturnPath(bool has_value, const Stmt *s)
    {
        if (has_value)
            emit(Op::StoreRet, s, &s->loc);
        emitScopeUnwind(1);
        emit(Op::Halt, s, &s->loc);
    }

    // ---- expressions ----

    void
    compileExpr(const Expr &e)
    {
        charge(e.loc); // evalExpr entry step
        switch (e.kind) {
          case Expr::Kind::IntLit:
            emit(Op::PushInt, &e, &e.loc);
            return;
          case Expr::Kind::FloatLit:
            emit(Op::PushFloat, &e, &e.loc);
            return;
          case Expr::Kind::StringLit:
            // Whole-array load of the literal object (rare; decay
            // is the common shape and goes through Cast below).
            emit(Op::PlaceString, &e, &e.loc);
            emit(Op::LoadAt, &e, &e.loc);
            return;
          case Expr::Kind::Ident:
            if (e.isEnumConst) {
                emit(Op::PushEnum, &e, &e.loc);
                return;
            }
            if (int slot = findSlot(e.text); slot >= 0) {
                emit(Op::LoadSlot, &e, &e.loc,
                     static_cast<uint16_t>(slot));
                return;
            }
            if (auto g = globalIndex_.find(e.text);
                g != globalIndex_.end()) {
                emit(Op::LoadGlobal, &e, &e.loc, 0, g->second);
                return;
            }
            emit(Op::LoadNamed, &e, &e.loc);
            return;
          case Expr::Kind::Unary:
            compileUnary(e);
            return;
          case Expr::Kind::Binary:
            compileBinary(e);
            return;
          case Expr::Kind::Assign:
            compileAssign(e);
            return;
          case Expr::Kind::Cond: {
            compileExpr(*e.cond);
            uint32_t to_else =
                emitJump(Op::BrFalse, &e, &e.cond->loc);
            compileExpr(*e.lhs);
            uint32_t to_end = emitJump(Op::Jmp, &e, &e.loc);
            patch(to_else, here());
            compileExpr(*e.rhs);
            patch(to_end, here());
            return;
          }
          case Expr::Kind::Cast:
            compileCast(e);
            return;
          case Expr::Kind::Call:
            compileCall(e);
            return;
          case Expr::Kind::Index:
          case Expr::Kind::Member:
            // Rvalue load through the lvalue path: the tree walker
            // charges both the evalExpr and the evalLValue entry.
            compileLValue(e);
            emit(Op::LoadAt, &e, &e.loc);
            return;
          case Expr::Kind::SizeofExpr:
          case Expr::Kind::SizeofType:
          case Expr::Kind::AlignofType:
          case Expr::Kind::OffsetOf:
            emit(Op::PushMeta, &e, &e.loc);
            return;
        }
        // Unknown shape: let the tree walker handle (and charge) it.
        uncharge();
        emit(Op::TreeExpr, &e, &e.loc);
    }

    void
    compileUnary(const Expr &e)
    {
        switch (e.unop) {
          case UnOp::Deref:
            compileExpr(*e.lhs);
            if (!e.type->isFunction())
                emit(Op::LoadDeref, &e, &e.loc);
            return;
          case UnOp::AddrOf:
            if (e.lhs->type->isFunction()) {
                if (e.lhs->kind == Expr::Kind::Ident) {
                    auto fi =
                        prog_.functionIndex.find(e.lhs->text);
                    if (fi != prog_.functionIndex.end()) {
                        emit(Op::PushFunc, &e, &e.loc, 0,
                             fi->second);
                        return;
                    }
                }
                compileExpr(*e.lhs);
                return;
            }
            // &lvalue: the place itself is the value.
            compileLValue(*e.lhs);
            return;
          case UnOp::Plus:
          case UnOp::Minus:
          case UnOp::BitNot:
          case UnOp::LogNot:
            compileExpr(*e.lhs);
            emit(Op::UnaryOp, &e, &e.loc);
            return;
          case UnOp::PreInc:
          case UnOp::PreDec:
          case UnOp::PostInc:
          case UnOp::PostDec: {
            bool pre = e.unop == UnOp::PreInc ||
                e.unop == UnOp::PreDec;
            compileLValue(*e.lhs);
            uint16_t ty =
                addType(ctype::withConst(e.lhs->type, false));
            emit(Op::IncDec, &e, &e.loc, pre ? 1 : 0, ty);
            return;
          }
        }
        uncharge();
        emit(Op::TreeExpr, &e, &e.loc);
    }

    void
    compileBinary(const Expr &e)
    {
        switch (e.binop) {
          case BinOp::LogAnd: {
            compileExpr(*e.lhs);
            uint32_t to_false = emitJump(Op::BrFalse, &e, &e.loc);
            compileExpr(*e.rhs);
            emit(Op::Truthy01, &e, &e.loc);
            uint32_t to_end = emitJump(Op::Jmp, &e, &e.loc);
            patch(to_false, here());
            emit(Op::PushIntK, &e, &e.loc, 0);
            patch(to_end, here());
            return;
          }
          case BinOp::LogOr: {
            compileExpr(*e.lhs);
            uint32_t to_true = emitJump(Op::BrTrue, &e, &e.loc);
            compileExpr(*e.rhs);
            emit(Op::Truthy01, &e, &e.loc);
            uint32_t to_end = emitJump(Op::Jmp, &e, &e.loc);
            patch(to_true, here());
            emit(Op::PushIntK, &e, &e.loc, 1);
            patch(to_end, here());
            return;
          }
          case BinOp::Comma:
            compileExpr(*e.lhs);
            emit(Op::Pop, &e, &e.loc);
            compileExpr(*e.rhs);
            return;
          default:
            compileExpr(*e.lhs);
            compileExpr(*e.rhs);
            emit(Op::BinaryOp, &e, &e.loc);
            return;
        }
    }

    void
    compileAssign(const Expr &e)
    {
        compileLValue(*e.lhs);
        uint16_t ty = addType(ctype::withConst(e.lhs->type, false));
        if (e.binop == BinOp::Comma) { // plain '='
            compileExpr(*e.rhs);
            emit(Op::StorePlain, &e, &e.loc, 0, ty);
            return;
        }
        // Compound: the old value loads BEFORE the rhs evaluates.
        emit(Op::CompLoad, &e, &e.loc, 0, ty);
        compileExpr(*e.rhs);
        emit(Op::CompStore, &e, &e.loc, 0, ty);
    }

    void
    compileCast(const Expr &e)
    {
        const ctype::TypeRef &from = e.lhs->type;
        if (from->isArray()) {
            compileLValue(*e.lhs);
            emit(Op::Decay, &e, &e.loc);
            return;
        }
        if (from->isFunction()) {
            compileExpr(*e.lhs);
            return;
        }
        compileExpr(*e.lhs);
        emit(Op::CastOp, &e, &e.loc);
    }

    void
    compileCall(const Expr &e)
    {
        if (e.builtinId >= 0) {
            // The Intrinsic witness event precedes argument
            // evaluation — part of the trace contract.
            emit(Op::BuiltinPre, &e, &e.loc);
            for (const auto &a : e.args)
                compileExpr(*a);
            emit(Op::BuiltinCall, &e, &e.loc,
                 static_cast<uint16_t>(e.args.size()));
            return;
        }
        CallInfo ci;
        for (const auto &a : e.args)
            ci.argTypes.push_back(a->type);
        uint32_t call = addCall(std::move(ci));

        if (e.lhs->kind == Expr::Kind::Ident &&
            prog_.functionIndex.count(e.lhs->text) &&
            findSlot(e.lhs->text) < 0) {
            // Statically a direct call; CallPrep still re-checks
            // lookup() at runtime for tree-exact dynamic shadowing.
            emit(Op::CallPrep, &e, &e.loc);
        } else {
            compileExpr(*e.lhs);
            emit(Op::CallResolve, &e, &e.loc);
        }
        for (const auto &a : e.args)
            compileExpr(*a);
        emit(Op::CallIndirect, &e, &e.loc,
             static_cast<uint16_t>(e.args.size()), call);
    }

    void
    compileLValue(const Expr &e)
    {
        charge(e.loc); // evalLValue entry step
        switch (e.kind) {
          case Expr::Kind::Ident:
            if (int slot = findSlot(e.text); slot >= 0) {
                emit(Op::PlaceSlot, &e, &e.loc,
                     static_cast<uint16_t>(slot));
                return;
            }
            if (auto g = globalIndex_.find(e.text);
                g != globalIndex_.end()) {
                emit(Op::PlaceGlobal, &e, &e.loc, 0, g->second);
                return;
            }
            emit(Op::PlaceNamed, &e, &e.loc);
            return;
          case Expr::Kind::StringLit:
            emit(Op::PlaceString, &e, &e.loc);
            return;
          case Expr::Kind::Unary:
            if (e.unop == UnOp::Deref) {
                compileExpr(*e.lhs);
                emit(Op::PointerOf, &e, &e.loc);
                return;
            }
            break;
          case Expr::Kind::Index: {
            const Expr &pe =
                e.lhs->type->isPointer() ? *e.lhs : *e.rhs;
            const Expr &ie =
                e.lhs->type->isPointer() ? *e.rhs : *e.lhs;
            compileExpr(pe);
            compileExpr(ie);
            emit(Op::IndexShift, &e, &e.loc);
            return;
          }
          case Expr::Kind::Member:
            if (e.isArrow) {
                compileExpr(*e.lhs);
                emit(Op::MemberArrow, &e, &e.loc);
            } else {
                compileLValue(*e.lhs);
                emit(Op::MemberDot, &e, &e.loc);
            }
            return;
          default:
            break;
        }
        // Not an lvalue shape: the tree walker raises the identical
        // internal error at runtime.
        uncharge();
        emit(Op::TreeLValue, &e, &e.loc);
    }

    // ---- statements ----

    void
    compileStmt(const Stmt &s)
    {
        charge(s.loc); // execStmt entry step
        switch (s.kind) {
          case Stmt::Kind::Empty:
            return; // charge rides on whatever comes next
          case Stmt::Kind::Expr:
            compileExpr(*s.expr);
            emit(Op::Pop, &s, &s.loc);
            return;
          case Stmt::Kind::Decl:
            compileDecl(s);
            return;
          case Stmt::Kind::Block: {
            emit(Op::PushScope, &s, &s.loc);
            openScope(&s);
            for (const auto &sub : s.body)
                compileStmt(*sub);
            flushPending(&s.loc);
            emit(Op::PopScope, &s, &s.loc);
            closeScope();
            return;
          }
          case Stmt::Kind::If: {
            compileExpr(*s.expr);
            uint32_t to_else =
                emitJump(Op::BrFalse, &s, &s.expr->loc);
            compileStmt(*s.thenStmt);
            if (s.elseStmt) {
                flushPending(&s.loc);
                uint32_t to_end = emitJump(Op::Jmp, &s, &s.loc);
                patch(to_else, here());
                compileStmt(*s.elseStmt);
                flushPending(&s.loc);
                patch(to_end, here());
            } else {
                flushPending(&s.loc);
                patch(to_else, here());
            }
            return;
          }
          case Stmt::Kind::While: {
            flushPending(&s.loc);
            uint32_t top = here();
            loops_.push_back(CLoop{scopes_.size(), top, {}, {}});
            charge(s.loc); // per-iteration step
            compileExpr(*s.expr);
            uint32_t to_end =
                emitJump(Op::BrFalse, &s, &s.expr->loc);
            compileStmt(*s.thenStmt);
            flushPending(&s.loc);
            emit(Op::Jmp, &s, &s.loc, 0, top);
            patch(to_end, here());
            closeLoop(here());
            return;
          }
          case Stmt::Kind::DoWhile: {
            flushPending(&s.loc);
            uint32_t top = here();
            loops_.push_back(CLoop{scopes_.size(), kNoTarget, {}, {}});
            charge(s.loc); // per-iteration step
            compileStmt(*s.thenStmt);
            flushPending(&s.loc);
            loops_.back().contPc = here(); // continue -> condition
            compileExpr(*s.expr);
            emit(Op::BrTrue, &s, &s.expr->loc, 0, top);
            closeLoop(here());
            return;
          }
          case Stmt::Kind::For:
            compileFor(s);
            return;
          case Stmt::Kind::Return:
            if (s.expr) {
                compileExpr(*s.expr);
                emitReturnPath(true, &s);
            } else {
                emitReturnPath(false, &s);
            }
            return;
          case Stmt::Kind::Break: {
            assert(!loops_.empty());
            emitScopeUnwind(loops_.back().scopeDepth);
            flushPending(&s.loc);
            loops_.back().breakPatches.push_back(
                emitJump(Op::Jmp, &s, &s.loc));
            return;
          }
          case Stmt::Kind::Continue: {
            assert(!loops_.empty());
            emitScopeUnwind(loops_.back().scopeDepth);
            flushPending(&s.loc);
            loops_.back().contPatches.push_back(
                emitJump(Op::Jmp, &s, &s.loc));
            return;
          }
          case Stmt::Kind::Switch:
            // Cold construct: tree-walk the whole statement (its
            // label scan has bespoke step/order semantics), routing
            // any escaping Flow back into compiled code.
            compileTreeStmt(s);
            return;
        }
        compileTreeStmt(s);
    }

    void
    compileDecl(const Stmt &s)
    {
        for (const frontend::VarDecl &d : s.decls) {
            // The declarator is visible in its own initializer.
            uint16_t slot = newSlot();
            scopes_.back().slots[d.name] = slot;
            if (d.isStatic) {
                emit(Op::AllocStatic, &d, &d.loc, slot);
                continue;
            }
            emit(Op::Alloc, &d, &d.loc, slot);
            if (!d.hasInit)
                continue;
            if (!d.init.isList && !d.type->isArray()) {
                // Scalar initializer: compiled expression plus an
                // initializing store — the storeInitializer fast
                // shape.
                compileExpr(*d.init.expr);
                emit(Op::StoreInit, &d, &d.loc, slot);
            } else {
                // Braced lists, string-into-array: tree walker
                // (identical traversal, including nested evalExpr
                // step/trace charges).
                emit(Op::InitTree, &d, &d.loc, slot);
            }
        }
    }

    void
    compileFor(const Stmt &s)
    {
        emit(Op::PushScope, &s, &s.loc);
        openScope(&s);
        if (s.forInit)
            compileStmt(*s.forInit);
        flushPending(&s.loc);
        uint32_t top = here();
        loops_.push_back(CLoop{scopes_.size(), kNoTarget, {}, {}});
        charge(s.loc); // per-iteration step
        uint32_t to_end = kNoTarget;
        if (s.forCond) {
            compileExpr(*s.forCond);
            to_end = emitJump(Op::BrFalse, &s, &s.forCond->loc);
        }
        compileStmt(*s.thenStmt);
        flushPending(&s.loc);
        loops_.back().contPc = here(); // continue -> step expr
        if (s.forStep) {
            compileExpr(*s.forStep);
            emit(Op::Pop, &s, &s.loc);
        }
        emit(Op::Jmp, &s, &s.loc, 0, top);
        if (to_end != kNoTarget)
            patch(to_end, here());
        closeLoop(here());
        emit(Op::PopScope, &s, &s.loc);
        closeScope();
    }

    /** Pop the loop context, pointing its break patches at
     *  @p target and its continue patches at the loop's (by now
     *  bound) continue pc. */
    void
    closeLoop(uint32_t target)
    {
        CLoop &l = loops_.back();
        for (uint32_t at : l.breakPatches)
            patch(at, target);
        assert(l.contPatches.empty() || l.contPc != kNoTarget);
        for (uint32_t at : l.contPatches)
            patch(at, l.contPc);
        loops_.pop_back();
    }

    void
    compileTreeStmt(const Stmt &s)
    {
        uncharge(); // execStmt charges its own entry step
        FlowRoute route;
        uint32_t idx = static_cast<uint32_t>(ch_.routes.size());
        ch_.routes.push_back(route);
        emit(Op::TreeStmt, &s, &s.loc, 0, idx);
        uint32_t over = emitJump(Op::Jmp, &s, &s.loc);
        // Flow stubs: unwind compiled scopes exactly as the tree
        // walker's Flow propagation would, then rejoin.
        if (!loops_.empty()) {
            ch_.routes[idx].brk = here();
            emitScopeUnwind(loops_.back().scopeDepth);
            loops_.back().breakPatches.push_back(
                emitJump(Op::Jmp, &s, &s.loc));
            ch_.routes[idx].cont = here();
            emitScopeUnwind(loops_.back().scopeDepth);
            loops_.back().contPatches.push_back(
                emitJump(Op::Jmp, &s, &s.loc));
        }
        ch_.routes[idx].ret = here();
        emitScopeUnwind(1);
        emit(Op::Halt, &s, &s.loc);
        patch(over, here());
    }
};

} // namespace

namespace {

/** Every declarator name in @p s and below (the names Alloc /
 *  AllocStatic / parameter binding can ever introduce into a runtime
 *  scope).  The walk is structural — it visits every child statement
 *  regardless of kind, so switch bodies and loop inits are covered. */
void
collectDeclNames(const Stmt &s, std::set<std::string> &out)
{
    for (const auto &d : s.decls)
        out.insert(d.name);
    for (const auto &c : s.body)
        collectDeclNames(*c, out);
    if (s.thenStmt)
        collectDeclNames(*s.thenStmt, out);
    if (s.elseStmt)
        collectDeclNames(*s.elseStmt, out);
    if (s.forInit)
        collectDeclNames(*s.forInit, out);
}

} // namespace

BytecodeModule
compileProgram(const sema::Program &prog)
{
    BytecodeModule m;

    // Names any runtime scope binding can ever carry: parameters and
    // local declarators, across the whole program (lookup() walks the
    // *dynamic* scope chain, so a caller's local can shadow a global
    // inside a callee — a global is only slot-addressable when no
    // function anywhere declares its name).
    std::set<std::string> shadowable;
    for (const auto &fn : prog.unit.functions) {
        for (const auto &p : fn.paramNames)
            if (!p.empty())
                shadowable.insert(p);
        if (fn.body)
            collectDeclNames(*fn.body, shadowable);
    }
    std::map<std::string, uint32_t> global_index;
    for (const auto &g : prog.unit.globals) {
        if (shadowable.count(g.name) || global_index.count(g.name))
            continue;
        global_index.emplace(
            g.name, static_cast<uint32_t>(m.globalNames.size()));
        m.globalNames.push_back(g.name);
    }

    m.chunks.resize(prog.unit.functions.size());
    for (size_t i = 0; i < prog.unit.functions.size(); ++i) {
        const frontend::FunctionDef &fn = prog.unit.functions[i];
        if (!fn.body)
            continue;
        m.chunks[i] = FnCompiler(prog, global_index).compile(fn);
    }
    return m;
}

// ---------------------------------------------------------------------
// Disassembler.
// ---------------------------------------------------------------------

namespace {

const char *
opName(Op op)
{
    switch (op) {
      case Op::PushInt: return "push.int";
      case Op::PushFloat: return "push.float";
      case Op::PushEnum: return "push.enum";
      case Op::PushIntK: return "push.k";
      case Op::PushMeta: return "push.meta";
      case Op::PushFunc: return "push.func";
      case Op::LoadSlot: return "load.slot";
      case Op::LoadNamed: return "load.named";
      case Op::LoadAt: return "load.at";
      case Op::LoadDeref: return "load.deref";
      case Op::PlaceSlot: return "place.slot";
      case Op::PlaceNamed: return "place.named";
      case Op::PlaceString: return "place.string";
      case Op::PointerOf: return "pointer.of";
      case Op::Decay: return "decay";
      case Op::IndexShift: return "index.shift";
      case Op::MemberDot: return "member.dot";
      case Op::MemberArrow: return "member.arrow";
      case Op::UnaryOp: return "unary";
      case Op::IncDec: return "incdec";
      case Op::BinaryOp: return "binary";
      case Op::StorePlain: return "store";
      case Op::CompLoad: return "comp.load";
      case Op::CompStore: return "comp.store";
      case Op::CastOp: return "cast";
      case Op::Truthy01: return "truthy01";
      case Op::Pop: return "pop";
      case Op::Jmp: return "jmp";
      case Op::BrFalse: return "br.false";
      case Op::BrTrue: return "br.true";
      case Op::Step: return "step";
      case Op::Halt: return "halt";
      case Op::CallPrep: return "call.prep";
      case Op::CallResolve: return "call.resolve";
      case Op::CallIndirect: return "call";
      case Op::BuiltinPre: return "builtin.pre";
      case Op::BuiltinCall: return "builtin";
      case Op::PushScope: return "scope.push";
      case Op::PopScope: return "scope.pop";
      case Op::Alloc: return "alloc";
      case Op::AllocStatic: return "alloc.static";
      case Op::InitTree: return "init.tree";
      case Op::StoreInit: return "store.init";
      case Op::StoreRet: return "store.ret";
      case Op::TreeStmt: return "tree.stmt";
      case Op::TreeExpr: return "tree.expr";
      case Op::TreeLValue: return "tree.lvalue";
      case Op::LoadGlobal: return "load.global";
      case Op::PlaceGlobal: return "place.global";
    }
    return "?";
}

bool
hasJumpTarget(Op op)
{
    return op == Op::Jmp || op == Op::BrFalse || op == Op::BrTrue;
}

/** Human anchor for the instruction's AST node. */
std::string
note(const Instr &in)
{
    switch (in.op) {
      case Op::PushInt: {
        const Expr &e = *static_cast<const Expr *>(in.p);
        return decStr(static_cast<cherisem::int128>(e.intValue));
      }
      case Op::PushEnum: {
        const Expr &e = *static_cast<const Expr *>(in.p);
        return e.text;
      }
      case Op::LoadSlot:
      case Op::LoadNamed:
      case Op::LoadGlobal:
      case Op::PlaceSlot:
      case Op::PlaceNamed:
      case Op::PlaceGlobal: {
        const Expr &e = *static_cast<const Expr *>(in.p);
        return e.text;
      }
      case Op::MemberDot:
      case Op::MemberArrow: {
        const Expr &e = *static_cast<const Expr *>(in.p);
        return "." + e.text;
      }
      case Op::CallPrep: {
        const Expr &e = *static_cast<const Expr *>(in.p);
        return e.lhs->text;
      }
      case Op::BuiltinPre:
      case Op::BuiltinCall: {
        const Expr &e = *static_cast<const Expr *>(in.p);
        return e.lhs->text;
      }
      case Op::Alloc:
      case Op::AllocStatic:
      case Op::InitTree:
      case Op::StoreInit: {
        const frontend::VarDecl &d =
            *static_cast<const frontend::VarDecl *>(in.p);
        return d.name;
      }
      default:
        return "";
    }
}

} // namespace

std::string
disassemble(const BytecodeModule &m, const sema::Program &prog)
{
    std::string out;
    for (size_t f = 0; f < m.chunks.size(); ++f) {
        const Chunk &ch = m.chunks[f];
        if (ch.empty())
            continue;
        const frontend::FunctionDef &fn = prog.unit.functions[f];
        out += strPrintf("%s:  ; %u slots, %zu instrs\n",
                         fn.name.c_str(), ch.numSlots,
                         ch.code.size());
        for (size_t pc = 0; pc < ch.code.size(); ++pc) {
            const Instr &in = ch.code[pc];
            out += strPrintf("  %4zu  %-12s", pc, opName(in.op));
            if (in.n)
                out += strPrintf(" n=%u", in.n);
            if (in.a)
                out += strPrintf(" a=%u", in.a);
            if (hasJumpTarget(in.op)) {
                out += strPrintf(" -> %u", in.b);
            } else if (in.op == Op::TreeStmt) {
                const FlowRoute &r = ch.routes[in.b];
                out += strPrintf(" routes[brk=%d cont=%d ret=%d]",
                                 r.brk == kNoTarget
                                     ? -1
                                     : static_cast<int>(r.brk),
                                 r.cont == kNoTarget
                                     ? -1
                                     : static_cast<int>(r.cont),
                                 r.ret == kNoTarget
                                     ? -1
                                     : static_cast<int>(r.ret));
            } else if (in.op == Op::CallIndirect ||
                       in.op == Op::StorePlain ||
                       in.op == Op::CompLoad ||
                       in.op == Op::CompStore ||
                       in.op == Op::IncDec ||
                       in.op == Op::PushFunc) {
                if (in.b)
                    out += strPrintf(" b=%u", in.b);
            }
            std::string nt = note(in);
            if (!nt.empty())
                out += "  ; " + nt;
            if (in.loc && in.loc->isKnown())
                out += strPrintf("  @%u:%u", in.loc->line,
                                 in.loc->column);
            out += "\n";
        }
    }
    return out;
}

} // namespace cherisem::corelang
