/**
 * @file
 * Machine method bodies: the tree-walking reference engine and every
 * semantic rule the bytecode VM inherits.  Moved verbatim from the
 * original single-file evaluator; the only structural change is that
 * the post-operand value transformations (binaryOp, castValueOp,
 * incDecNext, compoundNext, builtinCall) are separate methods so
 * bytecode instructions can invoke them on operands that are already
 * on the VM stack.
 */
#include "corelang/machine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cinttypes>

#include "support/format.h"

namespace cherisem::corelang {

using frontend::BinOp;
using frontend::DerivSource;
using frontend::Expr;
using frontend::Stmt;
using frontend::UnOp;
using ctype::IntKind;
using ctype::intType;
using ctype::Type;
using ctype::TypeRef;
using mem::Failure;
using mem::IntegerValue;
using mem::MemValue;
using mem::PointerValue;
using mem::Provenance;
using mem::Ub;
using cap::Capability;
using intrinsics::Builtin;

Machine::Machine(const sema::Program &prog, const EvalOptions &opts)
    : prog_(prog), opts_(opts), mm_(opts.memConfig)
{
    mm_.setTagTable(&prog_.unit.tags);
    checkAt_ = nextCheckAt();
}

uint64_t
Machine::nextCheckAt() const
{
    // Saturate: maxSteps == UINT64_MAX means "unlimited".
    uint64_t limit = opts_.maxSteps == UINT64_MAX
                         ? UINT64_MAX
                         : opts_.maxSteps + 1;
    if (!opts_.hasWatchdog())
        return limit;
    return std::min(limit, steps_ + kWatchdogPollSteps);
}

void
Machine::pollWatchdog(const SourceLoc &loc)
{
    if (opts_.cancel &&
        opts_.cancel->load(std::memory_order_relaxed)) {
        raise(mem::Failure::resourceExhausted("cancelled", loc));
    }
    if (opts_.deadline.time_since_epoch().count() != 0 &&
        std::chrono::steady_clock::now() >= opts_.deadline) {
        raise(mem::Failure::resourceExhausted(
            "wall-clock deadline exceeded", loc));
    }
}

void
Machine::stepSlow(const SourceLoc &loc)
{
    if (steps_ > opts_.maxSteps) {
        raise(mem::Failure::resourceExhausted(
            "step limit exceeded (non-terminating program?)", loc));
    }
    pollWatchdog(loc);
    checkAt_ = nextCheckAt();
}

void
Machine::failureOutcome(Outcome &out, const EvalFailure &f)
{
    out.kind = f.failure.isUb() ? Outcome::Kind::Undefined
        : f.failure.kind == mem::Failure::Kind::ResourceExhausted
        ? Outcome::Kind::ResourceExhausted
        : Outcome::Kind::Error;
    out.failure = f.failure;
    out.message = f.failure.str();
    // Witness the UB verdict with its source location; this
    // is the stream's terminal event for undefined runs.
    if (f.failure.isUb() && mm_.tracer().enabled()) {
        mm_.tracer().emit(
            {.kind = obs::EventKind::UbRaise,
             .a = static_cast<uint64_t>(f.failure.ub),
             .line = f.failure.loc.line,
             .label = mem::ubName(f.failure.ub)});
    }
}

void
Machine::finalizeOutcome(Outcome &out)
{
    out.output = output_;
    out.memStats = mm_.stats();
    out.steps = steps_;
    for (size_t i = 0; i < kNumBuiltins; ++i) {
        const char *name =
            intrinsics::builtinName(static_cast<Builtin>(i));
        if (intrinsicCount_[i] > 0)
            out.intrinsicCalls[name] = intrinsicCount_[i];
        if (intrinsicNs_[i] > 0)
            out.intrinsicNanos[name] = intrinsicNs_[i];
    }
}

Outcome
Machine::run()
{
    if (std::optional<Outcome> out = runPrelude())
        return *out;
    return runMain();
}

std::optional<Outcome>
Machine::runPrelude()
{
    Outcome out;
    try {
        initGlobals();
        auto it = prog_.functionIndex.find(kPreludeFunction);
        if (it != prog_.functionIndex.end() &&
            prog_.unit.functions[it->second].body) {
            callFunction(it->second, {}, {});
        }
        return std::nullopt;
    } catch (const EvalFailure &f) {
        failureOutcome(out, f);
    } catch (const ExitException &e) {
        out.kind = Outcome::Kind::Exit;
        out.exitCode = e.code;
    } catch (const AssertFailure &a) {
        out.kind = Outcome::Kind::AssertFail;
        out.message = a.message;
    }
    finalizeOutcome(out);
    return out;
}

Outcome
Machine::runMain()
{
    Outcome out;
    try {
        auto it = prog_.functionIndex.find("main");
        if (it == prog_.functionIndex.end() ||
            !prog_.unit.functions[it->second].body) {
            out.kind = Outcome::Kind::Error;
            out.message = "no main function";
        } else {
            MemValue r = callFunction(it->second, {}, {});
            out.kind = Outcome::Kind::Exit;
            out.exitCode = r.isInteger()
                               ? static_cast<int>(
                                     r.asInteger().value())
                               : 0;
        }
    } catch (const EvalFailure &f) {
        failureOutcome(out, f);
    } catch (const ExitException &e) {
        out.kind = Outcome::Kind::Exit;
        out.exitCode = e.code;
    } catch (const AssertFailure &a) {
        out.kind = Outcome::Kind::AssertFail;
        out.message = a.message;
    }
    finalizeOutcome(out);
    return out;
}

// ---- snapshot / restore ----

Machine::SnapshotPtr
Machine::capture() const
{
    // Quiescent point only: no live frames means every piece of
    // engine state that matters is in the members captured below
    // (the VM's operand stack and slot frames are empty too).
    assert(scopes_.empty() && callDepth_ == 0 &&
           "capture() outside a quiescent point");
    auto snap = std::make_shared<Snapshot>();
    snap->mem = mm_.snapshot();
    snap->globals = globals_;
    snap->stringLits = stringLits_;
    snap->staticLocals = staticLocals_;
    snap->funcPtrs = funcPtrs_;
    snap->output = output_;
    snap->steps = steps_;
    snap->intrinsicCount = intrinsicCount_;
    snap->intrinsicNs = intrinsicNs_;
    return snap;
}

void
Machine::restoreSnapshot(const SnapshotPtr &snap)
{
    assert(snap);
    mm_.restore(snap->mem);
    globals_ = snap->globals;
    stringLits_ = snap->stringLits;
    staticLocals_ = snap->staticLocals;
    funcPtrs_ = snap->funcPtrs;
    output_ = snap->output;
    steps_ = snap->steps;
    intrinsicCount_ = snap->intrinsicCount;
    intrinsicNs_ = snap->intrinsicNs;
    scopes_.clear();
    callDepth_ = 0;
    // steps_ moved: recompute the step/watchdog poll boundary.
    checkAt_ = nextCheckAt();
}

bool
Machine::pokeGlobalInt(const std::string &name, int64_t value)
{
    auto it = globals_.find(name);
    if (it == globals_.end() || !it->second.type->isInteger())
        return false;
    const Binding &b = it->second;
    try {
        SourceLoc loc{};
        unwrap(mm_.store(
            loc, b.type, writablePlace(b.place),
            MemValue(makeInt(loc, b.type->intKind, value))));
    } catch (const EvalFailure &) {
        return false;
    }
    return true;
}

// ---- globals ----

void
Machine::initGlobals()
{
    for (const frontend::VarDecl &g : prog_.unit.globals) {
        if (g.isExtern && !g.hasInit)
            continue;
        PointerValue place = unwrap(mm_.allocateObject(
            g.name, g.type, g.type->isConst, /*is_static=*/true));
        globals_[g.name] = Binding{place, g.type};
    }
    // Two passes so address-of-global initializers see every
    // global.  Static storage is zero-initialized first.
    for (const frontend::VarDecl &g : prog_.unit.globals) {
        auto it = globals_.find(g.name);
        if (it == globals_.end())
            continue;
        storeZero(g.loc, it->second.place, g.type);
    }
    for (const frontend::VarDecl &g : prog_.unit.globals) {
        auto it = globals_.find(g.name);
        if (it == globals_.end() || !g.hasInit)
            continue;
        storeInitializer(g.loc, it->second.place, g.type, g.init);
    }
}

void
Machine::storeZero(const SourceLoc &loc, const PointerValue &place,
                   const TypeRef &ty)
{
    // Static zero-initialization: write zero bytes for the whole
    // footprint (null caps for pointer members fall out of the
    // all-zero representation plus absent tags).
    uint64_t n = mm_.layout().sizeOf(ty);
    unwrap(mm_.memsetOp(loc, writablePlace(place), 0, n,
                    /*initializing=*/true));
}

PointerValue
Machine::writablePlace(const PointerValue &p) const
{
    if (!p.cap || p.cap->canStore())
        return p;
    PointerValue q = p;
    q.cap = p.cap->withPerms(cap::PermSet::all())
                .withTag(p.cap->tag());
    // withPerms intersects; rebuild from a fresh data-perm cap.
    Capability c = Capability::make(
        mm_.arch(), static_cast<uint64_t>(p.cap->base()),
        p.cap->top(), cap::PermSet::data());
    q.cap = c.withAddress(p.cap->address());
    return q;
}

void
Machine::storeInitializer(const SourceLoc &loc, const PointerValue &place,
                          const TypeRef &ty,
                          const frontend::Initializer &init)
{
    PointerValue wplace = writablePlace(place);
    if (!init.isList) {
        // char a[N] = "literal";
        if (ty->isArray() && init.expr->kind == Expr::Kind::Cast &&
            init.expr->lhs->kind == Expr::Kind::StringLit) {
            storeStringInto(loc, wplace, ty,
                            init.expr->lhs->text);
            return;
        }
        if (ty->isArray() &&
            init.expr->kind == Expr::Kind::StringLit) {
            storeStringInto(loc, wplace, ty, init.expr->text);
            return;
        }
        MemValue v = evalExpr(*init.expr);
        unwrap(mm_.store(loc, ty, wplace, v,
                         /*initializing=*/true));
        return;
    }
    if (ty->isArray()) {
        uint64_t esize = mm_.layout().sizeOf(ty->element);
        for (uint64_t i = 0; i < ty->arraySize; ++i) {
            PointerValue ep = wplace;
            ep.cap = wplace.cap->withAddress(wplace.address() +
                                             i * esize);
            if (i < init.list.size()) {
                storeInitializer(loc, ep, ty->element,
                                 init.list[i]);
            } else {
                storeZero(loc, ep, ty->element);
            }
        }
        return;
    }
    if (ty->isStructOrUnion()) {
        const ctype::TagDef &def = prog_.unit.tags.get(ty->tag);
        size_t limit = def.isUnion
                           ? std::min<size_t>(1, init.list.size())
                           : def.members.size();
        for (size_t i = 0; i < limit; ++i) {
            ctype::FieldLoc fl = mm_.layout().fieldOf(
                ty->tag, def.members[i].name);
            PointerValue mp = wplace;
            mp.cap = wplace.cap->withAddress(wplace.address() +
                                             fl.offset);
            if (i < init.list.size()) {
                storeInitializer(loc, mp, fl.type, init.list[i]);
            } else {
                storeZero(loc, mp, fl.type);
            }
        }
        return;
    }
    // Scalar with braces.
    if (!init.list.empty())
        storeInitializer(loc, wplace, ty, init.list[0]);
}

void
Machine::storeStringInto(const SourceLoc &loc, const PointerValue &place,
                         const TypeRef &ty, const std::string &s)
{
    uint64_t n = ty->arraySize;
    for (uint64_t i = 0; i < n; ++i) {
        uint8_t byte = i < s.size() ? s[i] : 0;
        PointerValue bp = place;
        bp.cap = place.cap->withAddress(place.address() + i);
        unwrap(mm_.store(loc, intType(IntKind::Char), bp,
                         MemValue(IntegerValue::ofNum(
                             IntKind::Char, byte)),
                         /*initializing=*/true));
    }
}

PointerValue
Machine::stringLiteralPlace(const Expr &e)
{
    auto it = stringLits_.find(&e);
    if (it != stringLits_.end())
        return it->second;
    TypeRef ty = e.type;
    PointerValue place = unwrap(mm_.allocateObject(
        "\"" + e.text.substr(0, 8) + "\"", ty, /*read_only=*/true,
        /*is_static=*/true));
    storeStringInto(e.loc, writablePlace(place), ty, e.text);
    stringLits_[&e] = place;
    return place;
}

// ---- integer helpers ----

__int128
Machine::fitInt(const SourceLoc &loc, IntKind k, __int128 v,
                bool check_overflow)
{
    unsigned bits = mm_.layout().intValueBytes(k) * 8;
    if (k == IntKind::Bool)
        return v != 0 ? 1 : 0;
    if (isSignedKind(k)) {
        __int128 lo = mm_.layout().intMin(k);
        __int128 hi = mm_.layout().intMax(k);
        if (v < lo || v > hi) {
            if (check_overflow)
                raiseUb(Ub::SignedOverflow, loc);
            // Implementation-defined conversion: wrap.
            cherisem::uint128 m =
                static_cast<cherisem::uint128>(v) &
                ((cherisem::uint128(1) << bits) - 1);
            __int128 r = static_cast<__int128>(m);
            if ((m >> (bits - 1)) & 1)
                r -= static_cast<__int128>(cherisem::uint128(1)
                                           << bits);
            return r;
        }
        return v;
    }
    cherisem::uint128 m = static_cast<cherisem::uint128>(v);
    if (bits < 128)
        m &= (cherisem::uint128(1) << bits) - 1;
    return static_cast<__int128>(m);
}

IntegerValue
Machine::makeInt(const SourceLoc &loc, IntKind k, __int128 v,
                 bool check_overflow)
{
    v = fitInt(loc, k, v, check_overflow);
    if (k == IntKind::Intptr || k == IntKind::Uintptr) {
        Capability c = Capability::null(mm_.arch())
                           .withAddress(static_cast<uint64_t>(v));
        return IntegerValue::ofCap(k, c, Provenance::empty());
    }
    return IntegerValue::ofNum(k, v);
}

bool
Machine::truthy(const SourceLoc &loc, const MemValue &v)
{
    if (v.isInteger())
        return v.asInteger().value() != 0;
    if (v.isPointer())
        return !v.asPointer().isNull() &&
            v.asPointer().address() != 0;
    if (v.isFloating())
        return v.asFloating().value != 0;
    if (v.isUnspec())
        raiseUb(Ub::UseOfIndeterminateValue, loc);
    raise(Failure::constraint("non-scalar condition", loc));
}

// ---- lvalues ----

PointerValue
Machine::evalLValue(const Expr &e)
{
    step(e.loc);
    switch (e.kind) {
      case Expr::Kind::Ident: {
        const Binding *b = lookup(e.text);
        if (b)
            return b->place;
        raise(Failure::internal("unbound identifier " + e.text,
                                e.loc));
      }
      case Expr::Kind::StringLit:
        return stringLiteralPlace(e);
      case Expr::Kind::Unary:
        if (e.unop == UnOp::Deref) {
            MemValue p = evalExpr(*e.lhs);
            return pointerOf(e.loc, p);
        }
        break;
      case Expr::Kind::Index: {
        const Expr &pe =
            e.lhs->type->isPointer() ? *e.lhs : *e.rhs;
        const Expr &ie =
            e.lhs->type->isPointer() ? *e.rhs : *e.lhs;
        MemValue pv = evalExpr(pe);
        MemValue iv = evalExpr(ie);
        PointerValue p = pointerOf(e.loc, pv);
        __int128 idx = iv.asInteger().value();
        return unwrap(mm_.arrayShift(e.loc, p, e.type, idx));
      }
      case Expr::Kind::Member: {
        PointerValue base =
            e.isArrow ? pointerOf(e.loc, evalExpr(*e.lhs))
                      : evalLValue(*e.lhs);
        ctype::TagId tag = e.isArrow
                               ? e.lhs->type->pointee->tag
                               : e.lhs->type->tag;
        return unwrap(mm_.memberShift(e.loc, base, tag, e.text));
      }
      default:
        break;
    }
    raise(Failure::internal("expression is not an lvalue", e.loc));
}

PointerValue
Machine::pointerOf(const SourceLoc &loc, const MemValue &v)
{
    if (v.isPointer())
        return v.asPointer();
    if (v.isUnspec())
        raiseUb(Ub::UseOfIndeterminateValue, loc);
    raise(Failure::internal("pointer value expected", loc));
}

// ---- expressions ----

MemValue
Machine::evalExpr(const Expr &e)
{
    step(e.loc);
    switch (e.kind) {
      case Expr::Kind::IntLit:
        return MemValue(makeInt(e.loc, e.type->intKind,
                                static_cast<__int128>(e.intValue)));
      case Expr::Kind::FloatLit: {
        mem::FloatingValue fv;
        fv.kind = e.type->floatKind;
        fv.value = e.floatValue;
        return MemValue(fv);
      }
      case Expr::Kind::StringLit:
        // Only reachable for whole-array loads; normally wrapped
        // in a decay cast.
        return unwrap(mm_.load(e.loc, e.type,
                               stringLiteralPlace(e)));
      case Expr::Kind::Ident: {
        if (e.isEnumConst) {
            return MemValue(
                makeInt(e.loc, IntKind::Int, e.enumValue));
        }
        if (const Binding *b = lookup(e.text))
            return unwrap(mm_.load(e.loc, b->type, b->place));
        auto fi = prog_.functionIndex.find(e.text);
        if (fi != prog_.functionIndex.end())
            return MemValue(functionPointer(fi->second));
        raise(Failure::internal("unbound identifier " + e.text,
                                e.loc));
      }
      case Expr::Kind::Unary:
        return evalUnary(e);
      case Expr::Kind::Binary:
        return evalBinary(e);
      case Expr::Kind::Assign:
        return evalAssign(e);
      case Expr::Kind::Cond: {
        bool c = truthy(e.cond->loc, evalExpr(*e.cond));
        return evalExpr(c ? *e.lhs : *e.rhs);
      }
      case Expr::Kind::Cast:
        return evalCast(e);
      case Expr::Kind::Call:
        return evalCall(e);
      case Expr::Kind::Index:
      case Expr::Kind::Member: {
        PointerValue place = evalLValue(e);
        return unwrap(mm_.load(e.loc, e.type, place));
      }
      case Expr::Kind::SizeofExpr:
        return MemValue(makeInt(
            e.loc, IntKind::ULong,
            static_cast<__int128>(
                mm_.layout().sizeOf(e.lhs->type))));
      case Expr::Kind::SizeofType:
        return MemValue(makeInt(
            e.loc, IntKind::ULong,
            static_cast<__int128>(
                mm_.layout().sizeOf(e.typeOperand))));
      case Expr::Kind::AlignofType:
        return MemValue(makeInt(
            e.loc, IntKind::ULong,
            static_cast<__int128>(
                mm_.layout().alignOf(e.typeOperand))));
      case Expr::Kind::OffsetOf: {
        ctype::FieldLoc fl =
            mm_.layout().fieldOf(e.typeOperand->tag, e.text);
        return MemValue(makeInt(
            e.loc, IntKind::ULong,
            static_cast<__int128>(fl.offset)));
      }
    }
    raise(Failure::internal("unhandled expression", e.loc));
}

PointerValue
Machine::functionPointer(uint32_t idx)
{
    auto it = funcPtrs_.find(idx);
    if (it != funcPtrs_.end())
        return it->second;
    PointerValue p = mm_.makeFunctionPointer(
        idx, prog_.unit.functions[idx].name);
    funcPtrs_[idx] = p;
    return p;
}

MemValue
Machine::evalUnary(const Expr &e)
{
    switch (e.unop) {
      case UnOp::Deref: {
        MemValue p = evalExpr(*e.lhs);
        if (e.type->isFunction())
            return p; // *fp is the function designator.
        return unwrap(mm_.load(e.loc, e.type,
                               pointerOf(e.loc, p)));
      }
      case UnOp::AddrOf: {
        if (e.lhs->type->isFunction()) {
            if (e.lhs->kind == Expr::Kind::Ident) {
                auto fi = prog_.functionIndex.find(e.lhs->text);
                if (fi != prog_.functionIndex.end())
                    return MemValue(functionPointer(fi->second));
            }
            return evalExpr(*e.lhs);
        }
        PointerValue place = evalLValue(*e.lhs);
        return MemValue(place);
      }
      case UnOp::Plus:
      case UnOp::Minus:
      case UnOp::BitNot:
      case UnOp::LogNot:
        return unaryValueOp(e, evalExpr(*e.lhs));
      case UnOp::PreInc:
      case UnOp::PreDec:
      case UnOp::PostInc:
      case UnOp::PostDec: {
        bool pre = e.unop == UnOp::PreInc ||
            e.unop == UnOp::PreDec;
        PointerValue place = evalLValue(*e.lhs);
        TypeRef ty = ctype::withConst(e.lhs->type, false);
        MemValue old = unwrap(mm_.load(e.loc, ty, place));
        MemValue next = incDecNext(e, ty, old);
        unwrap(mm_.store(e.loc, ty, place, next));
        return pre ? next : old;
      }
    }
    raise(Failure::internal("unhandled unary op", e.loc));
}

MemValue
Machine::unaryValueOp(const Expr &e, const MemValue &v)
{
    switch (e.unop) {
      case UnOp::Plus:
        return v;
      case UnOp::Minus: {
        if (v.isFloating()) {
            mem::FloatingValue fv = v.asFloating();
            fv.value = -fv.value;
            return MemValue(fv);
        }
        return MemValue(intArith(e.loc, BinOp::Sub, e.type,
                                 makeInt(e.loc, e.type->intKind, 0),
                                 v.asInteger(),
                                 DerivSource::Right));
      }
      case UnOp::BitNot: {
        const IntegerValue &iv = v.asInteger();
        __int128 r = ~iv.value();
        return MemValue(capPreservingInt(e.loc, e.type->intKind,
                                         r, iv));
      }
      case UnOp::LogNot: {
        bool t = truthy(e.loc, v);
        return MemValue(makeInt(e.loc, IntKind::Int, t ? 0 : 1));
      }
      default:
        break;
    }
    raise(Failure::internal("unhandled unary op", e.loc));
}

MemValue
Machine::incDecNext(const Expr &e, const TypeRef &ty, const MemValue &old)
{
    bool inc = e.unop == UnOp::PreInc || e.unop == UnOp::PostInc;
    if (ty->isPointer()) {
        PointerValue p = pointerOf(e.loc, old);
        return MemValue(unwrap(mm_.arrayShift(
            e.loc, p, ty->pointee, inc ? 1 : -1)));
    }
    if (ty->isFloating()) {
        mem::FloatingValue fv = old.asFloating();
        fv.value += inc ? 1 : -1;
        return MemValue(fv);
    }
    return MemValue(intArith(
        e.loc, inc ? BinOp::Add : BinOp::Sub, ty,
        old.asInteger(),
        makeInt(e.loc, ty->intKind, 1),
        DerivSource::Left));
}

Capability
Machine::addressArith(const Capability &c, uint64_t a) const
{
    return mm_.config().ghostState ? c.withAddressGhost(a)
                                   : c.withAddress(a);
}

IntegerValue
Machine::capPreservingInt(const SourceLoc &loc, IntKind k, __int128 v,
                          const IntegerValue &src)
{
    v = fitInt(loc, k, v, /*check_overflow=*/false);
    if ((k == IntKind::Intptr || k == IntKind::Uintptr) &&
        src.isCap()) {
        Capability c = addressArith(*src.cap,
                                    static_cast<uint64_t>(v));
        return IntegerValue::ofCap(k, c, src.prov);
    }
    return makeInt(loc, k, v);
}

IntegerValue
Machine::intArith(const SourceLoc &loc, BinOp op, const TypeRef &ty,
                  const IntegerValue &a, const IntegerValue &b,
                  DerivSource deriv)
{
    IntKind k = ty->intKind;
    bool is_signed = isSignedKind(k);
    __int128 x = a.value();
    __int128 y = b.value();
    __int128 r = 0;
    switch (op) {
      case BinOp::Add: r = x + y; break;
      case BinOp::Sub: r = x - y; break;
      case BinOp::Mul: r = x * y; break;
      case BinOp::Div:
        if (y == 0)
            raiseUb(Ub::DivisionByZero, loc);
        r = x / y;
        break;
      case BinOp::Rem:
        if (y == 0)
            raiseUb(Ub::DivisionByZero, loc);
        r = x % y;
        break;
      case BinOp::BitAnd: r = x & y; break;
      case BinOp::BitOr: r = x | y; break;
      case BinOp::BitXor: r = x ^ y; break;
      case BinOp::Shl:
      case BinOp::Shr: {
        unsigned bits = mm_.layout().intValueBytes(k) * 8;
        if (y < 0 || y >= bits)
            raiseUb(Ub::ShiftOutOfRange, loc);
        if (op == BinOp::Shl) {
            r = static_cast<__int128>(
                static_cast<cherisem::uint128>(x)
                << static_cast<unsigned>(y));
        } else {
            r = is_signed
                    ? (x >> static_cast<unsigned>(y))
                    : static_cast<__int128>(
                          (static_cast<cherisem::uint128>(x) &
                           ((cherisem::uint128(1) << bits) - 1)) >>
                          static_cast<unsigned>(y));
        }
        break;
      }
      default:
        raise(Failure::internal("bad arithmetic op", loc));
    }
    r = fitInt(loc, k, r, /*check_overflow=*/is_signed);

    if (k == IntKind::Intptr || k == IntKind::Uintptr) {
        const IntegerValue &src =
            deriv == DerivSource::Right ? b : a;
        if (src.isCap()) {
            Capability c = addressArith(*src.cap,
                                        static_cast<uint64_t>(r));
            // Once the value is non-representable, its abstract
            // provenance is gone too (Appendix A: "@empty").
            Provenance prov = c.ghost().boundsUnspec
                                  ? Provenance::empty()
                                  : src.prov;
            return IntegerValue::ofCap(k, c, prov);
        }
    }
    return makeInt(loc, k, r);
}

MemValue
Machine::evalBinary(const Expr &e)
{
    switch (e.binop) {
      case BinOp::LogAnd: {
        if (!truthy(e.loc, evalExpr(*e.lhs)))
            return MemValue(makeInt(e.loc, IntKind::Int, 0));
        bool r = truthy(e.loc, evalExpr(*e.rhs));
        return MemValue(makeInt(e.loc, IntKind::Int, r ? 1 : 0));
      }
      case BinOp::LogOr: {
        if (truthy(e.loc, evalExpr(*e.lhs)))
            return MemValue(makeInt(e.loc, IntKind::Int, 1));
        bool r = truthy(e.loc, evalExpr(*e.rhs));
        return MemValue(makeInt(e.loc, IntKind::Int, r ? 1 : 0));
      }
      case BinOp::Comma:
        evalExpr(*e.lhs);
        return evalExpr(*e.rhs);
      default:
        break;
    }

    MemValue lv = evalExpr(*e.lhs);
    MemValue rv = evalExpr(*e.rhs);
    return binaryOp(e, lv, rv);
}

MemValue
Machine::binaryOp(const Expr &e, const MemValue &lv, const MemValue &rv)
{
    TypeRef lt = e.lhs->type;
    TypeRef rt = e.rhs->type;

    // Pointer arithmetic / comparison.
    if (lt->isPointer() || rt->isPointer()) {
        switch (e.binop) {
          case BinOp::Add: {
            const MemValue &pv = lt->isPointer() ? lv : rv;
            const MemValue &iv = lt->isPointer() ? rv : lv;
            PointerValue p = pointerOf(e.loc, pv);
            return MemValue(unwrap(mm_.arrayShift(
                e.loc, p, e.type->pointee,
                iv.asInteger().value())));
          }
          case BinOp::Sub: {
            if (rt->isPointer() && lt->isPointer()) {
                return MemValue(unwrap(mm_.ptrDiff(
                    e.loc, lt->pointee,
                    pointerOf(e.loc, lv),
                    pointerOf(e.loc, rv))));
            }
            PointerValue p = pointerOf(e.loc, lv);
            return MemValue(unwrap(mm_.arrayShift(
                e.loc, p, e.type->pointee,
                -rv.asInteger().value())));
          }
          case BinOp::Eq:
          case BinOp::Ne: {
            bool eq = unwrap(mm_.ptrEq(pointerOf(e.loc, lv),
                                       pointerOf(e.loc, rv)));
            bool r = e.binop == BinOp::Eq ? eq : !eq;
            return MemValue(
                makeInt(e.loc, IntKind::Int, r ? 1 : 0));
          }
          case BinOp::Lt:
          case BinOp::Gt:
          case BinOp::Le:
          case BinOp::Ge: {
            mem::RelOp op = e.binop == BinOp::Lt ? mem::RelOp::Lt
                : e.binop == BinOp::Gt           ? mem::RelOp::Gt
                : e.binop == BinOp::Le           ? mem::RelOp::Le
                                                 : mem::RelOp::Ge;
            bool r = unwrap(mm_.ptrRelational(
                e.loc, op, pointerOf(e.loc, lv),
                pointerOf(e.loc, rv)));
            return MemValue(
                makeInt(e.loc, IntKind::Int, r ? 1 : 0));
          }
          default:
            raise(Failure::internal("bad pointer op", e.loc));
        }
    }

    if (lv.isFloating() || rv.isFloating()) {
        double x = lv.asFloating().value;
        double y = rv.asFloating().value;
        switch (e.binop) {
          case BinOp::Add: return floatVal(x + y);
          case BinOp::Sub: return floatVal(x - y);
          case BinOp::Mul: return floatVal(x * y);
          case BinOp::Div: return floatVal(x / y);
          case BinOp::Lt: return boolVal(e.loc, x < y);
          case BinOp::Gt: return boolVal(e.loc, x > y);
          case BinOp::Le: return boolVal(e.loc, x <= y);
          case BinOp::Ge: return boolVal(e.loc, x >= y);
          case BinOp::Eq: return boolVal(e.loc, x == y);
          case BinOp::Ne: return boolVal(e.loc, x != y);
          default:
            raise(Failure::internal("bad float op", e.loc));
        }
    }

    if (lv.isUnspec() || rv.isUnspec())
        raiseUb(Ub::UseOfIndeterminateValue, e.loc);

    const IntegerValue &a = lv.asInteger();
    const IntegerValue &b = rv.asInteger();
    switch (e.binop) {
      case BinOp::Lt: return boolVal(e.loc, cmp(a, b) < 0);
      case BinOp::Gt: return boolVal(e.loc, cmp(a, b) > 0);
      case BinOp::Le: return boolVal(e.loc, cmp(a, b) <= 0);
      case BinOp::Ge: return boolVal(e.loc, cmp(a, b) >= 0);
      // Section 3.6: == on capability-carrying values compares
      // address fields only, which cmp() implements via value().
      case BinOp::Eq: return boolVal(e.loc, cmp(a, b) == 0);
      case BinOp::Ne: return boolVal(e.loc, cmp(a, b) != 0);
      default:
        return MemValue(
            intArith(e.loc, e.binop, e.type, a, b, e.deriv));
    }
}

int
Machine::cmp(const IntegerValue &a, const IntegerValue &b)
{
    __int128 x = a.value();
    __int128 y = b.value();
    return x < y ? -1 : (x > y ? 1 : 0);
}

MemValue
Machine::floatVal(double d)
{
    mem::FloatingValue fv;
    fv.value = d;
    return MemValue(fv);
}

MemValue
Machine::boolVal(const SourceLoc &loc, bool b)
{
    return MemValue(makeInt(loc, IntKind::Int, b ? 1 : 0));
}

MemValue
Machine::evalAssign(const Expr &e)
{
    PointerValue place = evalLValue(*e.lhs);
    TypeRef ty = ctype::withConst(e.lhs->type, false);
    if (e.binop == BinOp::Comma) {
        MemValue v = evalExpr(*e.rhs);
        unwrap(mm_.store(e.loc, ty, place, v));
        return v;
    }
    // Compound assignment: load, op, store.
    MemValue old = unwrap(mm_.load(e.loc, ty, place));
    MemValue rv = evalExpr(*e.rhs);
    MemValue next = compoundNext(e, ty, old, rv);
    unwrap(mm_.store(e.loc, ty, place, next));
    return next;
}

MemValue
Machine::compoundNext(const Expr &e, const TypeRef &ty,
                      const MemValue &old, const MemValue &rv)
{
    if (ty->isPointer()) {
        __int128 delta = rv.asInteger().value();
        if (e.binop == BinOp::Sub)
            delta = -delta;
        return MemValue(unwrap(mm_.arrayShift(
            e.loc, pointerOf(e.loc, old), ty->pointee, delta)));
    }
    if (ty->isFloating() || rv.isFloating()) {
        double x = old.asFloating().value;
        double y = rv.isFloating()
                       ? rv.asFloating().value
                       : static_cast<double>(
                             rv.asInteger().value());
        double r = 0;
        switch (e.binop) {
          case BinOp::Add: r = x + y; break;
          case BinOp::Sub: r = x - y; break;
          case BinOp::Mul: r = x * y; break;
          case BinOp::Div: r = x / y; break;
          default:
            raise(Failure::internal("bad float compound op",
                                    e.loc));
        }
        mem::FloatingValue fv = old.asFloating();
        fv.value = r;
        return MemValue(fv);
    }
    // As-if: (T)((UAC)lhs op rhs); the capability derives
    // from the left (the lhs is never a converted operand).
    IntegerValue a = old.asInteger();
    IntegerValue b = rv.asInteger();
    // Compute at the wider of the two kinds.
    TypeRef common =
        ctype::intRank(a.kind) >= ctype::intRank(b.kind)
            ? intType(a.kind)
            : intType(b.kind);
    IntegerValue r = intArith(e.loc, e.binop, common,
                              a, b, DerivSource::Left);
    return MemValue(capPreservingInt(e.loc, ty->intKind,
                                     r.value(), r));
}

MemValue
Machine::evalCast(const Expr &e)
{
    TypeRef from = e.lhs->type;

    // Array-to-pointer decay: the operand is an lvalue.
    if (from->isArray()) {
        PointerValue place = evalLValue(*e.lhs);
        PointerValue p = place;
        p.kind = PointerValue::Kind::Object;
        return MemValue(p);
    }
    if (from->isFunction())
        return evalExpr(*e.lhs);

    MemValue v = evalExpr(*e.lhs);
    return castValueOp(e, std::move(v));
}

MemValue
Machine::castValueOp(const Expr &e, MemValue v)
{
    TypeRef to = e.typeOperand;
    TypeRef from = e.lhs->type;

    if (to->isVoid())
        return MemValue(mem::UnspecValue{to});
    if (v.isUnspec())
        return MemValue(mem::UnspecValue{to});

    if (to->isPointer()) {
        if (from->isPointer()) {
            // Pointer-to-pointer casts (including const casts,
            // section 3.9, and unsigned char* views) are
            // capability no-ops.
            return v;
        }
        // Integer to pointer (PNVI-ae-udi attach; (u)intptr_t is
        // a capability no-op, section 3.3).
        return MemValue(
            unwrap(mm_.ptrFromInt(e.loc, v.asInteger())));
    }
    if (to->isInteger()) {
        if (from->isPointer()) {
            return MemValue(unwrap(mm_.intFromPtr(
                e.loc, to->intKind, pointerOf(e.loc, v))));
        }
        if (from->isFloating()) {
            return MemValue(makeInt(
                e.loc, to->intKind,
                static_cast<__int128>(v.asFloating().value)));
        }
        const IntegerValue &iv = v.asInteger();
        if (to->isCapInteger()) {
            if (iv.isCap()) {
                // (u)intptr_t <-> (u)intptr_t: keep the cap.
                IntegerValue out = iv;
                out.kind = to->intKind;
                return MemValue(out);
            }
            return MemValue(
                makeInt(e.loc, to->intKind, iv.value()));
        }
        // Narrowing from a capability integer takes the address
        // value (implementation-defined, sections 3.3/3.5).
        return MemValue(makeInt(e.loc, to->intKind, iv.value()));
    }
    if (to->isFloating()) {
        double d = v.isFloating()
                       ? v.asFloating().value
                       : static_cast<double>(
                             v.asInteger().value());
        mem::FloatingValue fv;
        fv.kind = to->floatKind;
        fv.value = to->floatKind == ctype::FloatKind::Float
                       ? static_cast<float>(d)
                       : d;
        return MemValue(fv);
    }
    raise(Failure::internal("unsupported cast", e.loc));
}

// ---- calls ----

uint32_t
Machine::resolveIndirectCallee(const Expr &e, const MemValue &fv)
{
    PointerValue fp = pointerOf(e.loc, fv);
    if (fp.isFunc())
        return fp.funcId;
    // Indirect call through a capability: resolve the
    // address back to a function.
    if (!fp.cap || !fp.cap->tag()) {
        raiseUb(Ub::CheriInvalidCap, e.loc,
                "call via untagged capability");
    }
    auto f = mm_.functionAt(fp.cap->address());
    if (!f) {
        raiseUb(Ub::CallTypeMismatch, e.loc,
                "no function at target address");
    }
    return *f;
}

void
Machine::checkCallable(uint32_t idx, const SourceLoc &loc)
{
    const frontend::FunctionDef &fn = prog_.unit.functions[idx];
    if (!fn.body) {
        raise(Failure::constraint(
            "call to undefined function " + fn.name, loc));
    }
}

MemValue
Machine::evalCall(const Expr &e)
{
    if (e.builtinId >= 0)
        return evalBuiltin(e);

    // Resolve the callee.
    uint32_t idx;
    if (e.lhs->kind == Expr::Kind::Ident &&
        prog_.functionIndex.count(e.lhs->text) &&
        !lookup(e.lhs->text)) {
        idx = prog_.functionIndex.at(e.lhs->text);
    } else {
        MemValue fv = evalExpr(*e.lhs);
        idx = resolveIndirectCallee(e, fv);
    }
    checkCallable(idx, e.loc);
    // Dynamic call-type check (UB_call_type_mismatch): tolerated —
    // sema already checked direct calls; function pointer casts can
    // still mismatch, which real CHERI C leaves undetected until the
    // call.
    std::vector<MemValue> args;
    args.reserve(e.args.size());
    for (const auto &a : e.args)
        args.push_back(evalExpr(*a));
    std::vector<TypeRef> arg_types;
    for (const auto &a : e.args)
        arg_types.push_back(a->type);
    return callFunction(idx, std::move(args), arg_types);
}

MemValue
Machine::callFunction(uint32_t idx, std::vector<MemValue> args,
                      const std::vector<TypeRef> &arg_types)
{
    const frontend::FunctionDef &fn = prog_.unit.functions[idx];
    if (++callDepth_ > 1000) {
        --callDepth_;
        raise(Failure::constraint("call depth limit (stack "
                                  "overflow)",
                                  fn.loc));
    }
    if (mm_.tracer().enabled()) {
        mm_.tracer().emit({.kind = obs::EventKind::FuncEnter,
                           .a = idx,
                           .b = static_cast<uint64_t>(callDepth_),
                           .label = fn.name});
    }
    uint64_t sp = mm_.stackSave();
    pushScope();
    for (size_t i = 0; i < fn.type->params.size() &&
         i < args.size();
         ++i) {
        std::string name = i < fn.paramNames.size()
                               ? fn.paramNames[i]
                               : "";
        TypeRef pty = fn.type->params[i];
        PointerValue place = unwrap(mm_.allocateObject(
            name.empty() ? "param" : name, pty, false, false));
        unwrap(mm_.store(fn.loc, pty, writablePlace(place),
                         args[i], /*initializing=*/true));
        if (!name.empty())
            scopes_.back().vars[name] = Binding{place, pty};
        scopes_.back().toKill.push_back(place);
    }
    // Variadic extras are accessible via the builtin va-list
    // emulation (not exposed to the corpus beyond printf).
    (void)arg_types;

    MemValue result = MemValue(mem::UnspecValue{
        fn.type->returnType});
    Flow flow = Flow::Normal;
    auto trace_exit = [&] {
        if (mm_.tracer().enabled()) {
            mm_.tracer().emit(
                {.kind = obs::EventKind::FuncExit,
                 .a = idx,
                 .b = static_cast<uint64_t>(callDepth_),
                 .label = fn.name});
        }
    };
    try {
        flow = execStmt(*fn.body, &result);
    } catch (...) {
        popScope(fn.loc);
        mm_.stackRestore(sp);
        // Balance FuncEnter even on non-local exit so duration
        // slices in the Chrome exporter stay well-nested.
        trace_exit();
        --callDepth_;
        throw;
    }
    (void)flow;
    popScope(fn.loc);
    mm_.stackRestore(sp);
    trace_exit();
    --callDepth_;
    if (fn.name == "main" && result.isUnspec())
        return MemValue(makeInt(fn.loc, IntKind::Int, 0));
    return result;
}

// ---- statements ----

Flow
Machine::execStmt(const Stmt &s, MemValue *ret)
{
    step(s.loc);
    switch (s.kind) {
      case Stmt::Kind::Empty:
        return Flow::Normal;
      case Stmt::Kind::Expr:
        evalExpr(*s.expr);
        return Flow::Normal;
      case Stmt::Kind::Decl:
        for (const frontend::VarDecl &d : s.decls) {
            if (d.isStatic) {
                // Static locals: one allocation, initialized on
                // first execution only, surviving across calls.
                auto it = staticLocals_.find(&d);
                if (it == staticLocals_.end()) {
                    PointerValue place =
                        unwrap(mm_.allocateObject(
                            d.name, d.type, d.type->isConst,
                            /*is_static=*/true));
                    storeZero(d.loc, place, d.type);
                    if (d.hasInit)
                        storeInitializer(d.loc, place, d.type,
                                         d.init);
                    it = staticLocals_
                             .emplace(&d,
                                      Binding{place, d.type})
                             .first;
                }
                scopes_.back().vars[d.name] = it->second;
                continue;
            }
            PointerValue place = unwrap(mm_.allocateObject(
                d.name, d.type, d.type->isConst,
                /*is_static=*/false));
            scopes_.back().vars[d.name] =
                Binding{place, d.type};
            scopes_.back().toKill.push_back(place);
            if (d.hasInit)
                storeInitializer(d.loc, place, d.type, d.init);
        }
        return Flow::Normal;
      case Stmt::Kind::Block: {
        pushScope();
        Flow f = Flow::Normal;
        for (const auto &sub : s.body) {
            f = execStmt(*sub, ret);
            if (f != Flow::Normal)
                break;
        }
        popScope(s.loc);
        return f;
      }
      case Stmt::Kind::If: {
        bool c = truthy(s.expr->loc, evalExpr(*s.expr));
        if (c)
            return execStmt(*s.thenStmt, ret);
        if (s.elseStmt)
            return execStmt(*s.elseStmt, ret);
        return Flow::Normal;
      }
      case Stmt::Kind::While:
        for (;;) {
            step(s.loc);
            if (!truthy(s.expr->loc, evalExpr(*s.expr)))
                return Flow::Normal;
            Flow f = execStmt(*s.thenStmt, ret);
            if (f == Flow::Break)
                return Flow::Normal;
            if (f == Flow::Return)
                return f;
        }
      case Stmt::Kind::DoWhile:
        for (;;) {
            step(s.loc);
            Flow f = execStmt(*s.thenStmt, ret);
            if (f == Flow::Break)
                return Flow::Normal;
            if (f == Flow::Return)
                return f;
            if (!truthy(s.expr->loc, evalExpr(*s.expr)))
                return Flow::Normal;
        }
      case Stmt::Kind::For: {
        pushScope();
        Flow result = Flow::Normal;
        if (s.forInit)
            execStmt(*s.forInit, ret);
        for (;;) {
            step(s.loc);
            if (s.forCond &&
                !truthy(s.forCond->loc, evalExpr(*s.forCond))) {
                break;
            }
            Flow f = execStmt(*s.thenStmt, ret);
            if (f == Flow::Break)
                break;
            if (f == Flow::Return) {
                result = f;
                break;
            }
            if (s.forStep)
                evalExpr(*s.forStep);
        }
        popScope(s.loc);
        return result;
      }
      case Stmt::Kind::Switch: {
        __int128 control =
            evalExpr(*s.expr).asInteger().value();
        // The body is (almost always) a block whose top-level
        // statements carry case labels; find the entry point and
        // fall through from there.
        if (s.thenStmt->kind != Stmt::Kind::Block) {
            raise(Failure::constraint(
                "switch body must be a block", s.loc));
        }
        const auto &stmts = s.thenStmt->body;
        size_t entry = stmts.size();
        size_t dflt = stmts.size();
        for (size_t i = 0; i < stmts.size(); ++i) {
            for (const auto &label : stmts[i]->caseExprs) {
                if (evalExpr(*label).asInteger().value() ==
                    control) {
                    entry = i;
                    break;
                }
            }
            if (entry != stmts.size())
                break;
            if (stmts[i]->isDefault && dflt == stmts.size())
                dflt = i;
        }
        if (entry == stmts.size()) {
            // Labels after the matching one were not scanned for
            // default above; complete the scan.
            for (size_t i = dflt; i < stmts.size(); ++i) {
                if (stmts[i]->isDefault) {
                    dflt = i;
                    break;
                }
            }
            entry = dflt;
        }
        pushScope();
        Flow result = Flow::Normal;
        for (size_t i = entry; i < stmts.size(); ++i) {
            Flow f = execStmt(*stmts[i], ret);
            if (f == Flow::Break)
                break;
            if (f != Flow::Normal) {
                result = f;
                break;
            }
        }
        popScope(s.loc);
        return result;
      }
      case Stmt::Kind::Return:
        if (s.expr && ret)
            *ret = evalExpr(*s.expr);
        return Flow::Return;
      case Stmt::Kind::Break:
        return Flow::Break;
      case Stmt::Kind::Continue:
        return Flow::Continue;
    }
    return Flow::Normal;
}

// ---------------------------------------------------------------------
// Builtins and intrinsics.
// ---------------------------------------------------------------------

const Capability *
Machine::capOf(const MemValue &v)
{
    if (v.isPointer() && v.asPointer().cap)
        return &*v.asPointer().cap;
    if (v.isInteger() && v.asInteger().isCap())
        return &*v.asInteger().cap;
    return nullptr;
}

Provenance
Machine::provOf(const MemValue &v)
{
    if (v.isPointer())
        return v.asPointer().prov;
    if (v.isInteger())
        return v.asInteger().prov;
    return Provenance::empty();
}

/** Rebuild a value of the original capability-carrying type around a
 *  transformed capability (the intrinsics' "C -> C" shape). */
MemValue
Machine::capArgRebuild(const SourceLoc &loc, const MemValue &orig,
                       const Capability &c)
{
    (void)loc;
    if (orig.isPointer()) {
        PointerValue p = orig.asPointer();
        p.cap = c;
        if (p.isNull() && c.address() != 0)
            p.kind = PointerValue::Kind::Object;
        return MemValue(p);
    }
    IntegerValue iv = orig.asInteger();
    iv.cap = c;
    return MemValue(iv);
}

std::string
Machine::readCString(const SourceLoc &loc, const PointerValue &p)
{
    std::string out;
    PointerValue cur = p;
    for (uint64_t i = 0; i < 1u << 20; ++i) {
        MemValue b = unwrap(
            mm_.load(loc, intType(IntKind::UChar), cur));
        uint8_t c = static_cast<uint8_t>(b.asInteger().value());
        if (c == 0)
            return out;
        out += static_cast<char>(c);
        cur.cap = cur.cap->withAddress(cur.address() + 1);
    }
    raise(Failure::constraint("unterminated string", loc));
}

std::string
Machine::formatCapValue(const MemValue &v)
{
    const Capability *c = capOf(v);
    if (!c) {
        if (v.isInteger())
            return decStr(static_cast<cherisem::int128>(
                v.asInteger().value()));
        return "<?>";
    }
    std::string body = cap::formatCap(*c, opts_.capFormat);
    if (opts_.printProvenance)
        return "(" + provOf(v).str() + ", " + body + ")";
    return body;
}

std::string
Machine::formatPrintf(const SourceLoc &loc, const std::string &fmt,
                      const std::vector<MemValue> &args,
                      size_t first_arg)
{
    std::string out;
    size_t ai = first_arg;
    auto next_arg = [&]() -> const MemValue & {
        if (ai >= args.size()) {
            raise(Failure::constraint("printf: not enough arguments",
                                      loc));
        }
        return args[ai++];
    };
    for (size_t i = 0; i < fmt.size(); ++i) {
        char c = fmt[i];
        if (c != '%') {
            out += c;
            continue;
        }
        ++i;
        if (i >= fmt.size())
            break;
        // Skip flags/width and parse length modifiers.
        while (i < fmt.size() &&
               (fmt[i] == '-' || fmt[i] == '+' || fmt[i] == ' ' ||
                fmt[i] == '#' || fmt[i] == '0' ||
                (fmt[i] >= '1' && fmt[i] <= '9') || fmt[i] == '.')) {
            ++i;
        }
        int longs = 0;
        bool size_mod = false;
        while (i < fmt.size() &&
               (fmt[i] == 'l' || fmt[i] == 'z' || fmt[i] == 'j' ||
                fmt[i] == 't' || fmt[i] == 'h')) {
            if (fmt[i] == 'l')
                ++longs;
            if (fmt[i] == 'z' || fmt[i] == 'j' || fmt[i] == 't')
                size_mod = true;
            ++i;
        }
        (void)longs;
        (void)size_mod;
        if (i >= fmt.size())
            break;
        switch (fmt[i]) {
          case '%':
            out += '%';
            break;
          case 'd':
          case 'i':
            out += decStr(static_cast<cherisem::int128>(
                next_arg().asInteger().value()));
            break;
          case 'u':
            out += decStr(static_cast<cherisem::uint128>(
                next_arg().asInteger().value()));
            break;
          case 'x':
          case 'X':
          case 'a': {
            std::string h = hexStr(static_cast<cherisem::uint128>(
                next_arg().asInteger().value()));
            out += h.substr(2); // printf %x has no 0x prefix
            break;
          }
          case 'c':
            out += static_cast<char>(next_arg().asInteger().value());
            break;
          case 's':
            out += readCString(
                loc, next_arg().asPointer());
            break;
          case 'p':
            out += formatCapValue(next_arg());
            break;
          case 'f':
          case 'g':
          case 'e': {
            const MemValue &v = next_arg();
            double d = v.isFloating()
                           ? v.asFloating().value
                           : static_cast<double>(
                                 v.asInteger().value());
            out += strPrintf("%g", d);
            break;
          }
          default:
            out += fmt[i];
            break;
        }
    }
    return out;
}

void
Machine::builtinPrologue(const Expr &e)
{
    Builtin b = static_cast<Builtin>(e.builtinId);
    size_t idx = static_cast<size_t>(b);
    assert(idx < kNumBuiltins);
    ++intrinsicCount_[idx];
    const obs::Tracer &tr = mm_.tracer();
    if (tr.enabled()) {
        tr.emit({.kind = obs::EventKind::Intrinsic,
                 .a = static_cast<uint64_t>(idx),
                 .line = e.loc.line,
                 .label = intrinsics::builtinName(b)});
    }
}

MemValue
Machine::evalBuiltin(const Expr &e)
{
    builtinPrologue(e);
    size_t idx = static_cast<size_t>(e.builtinId);

    auto eval_args = [&] {
        std::vector<MemValue> args;
        args.reserve(e.args.size());
        for (const auto &a : e.args)
            args.push_back(evalExpr(*a));
        return args;
    };

    if (!mm_.tracer().enabled()) {
        std::vector<MemValue> args = eval_args();
        return builtinCall(e, args);
    }
    // Scoped timer: accumulate even when the intrinsic raises (UB
    // unwinds through here as an EvalFailure exception).  Argument
    // evaluation is inside the timed region, matching the original
    // single-method shape.
    ScopedIntrinsicTimer scoped{&intrinsicNs_[idx]};
    std::vector<MemValue> args = eval_args();
    return builtinCall(e, args);
}

MemValue
Machine::builtinCall(const Expr &e, std::vector<MemValue> &args)
{
    Builtin b = static_cast<Builtin>(e.builtinId);
    const SourceLoc &loc = e.loc;
    auto void_result = [&]() {
        return MemValue(mem::UnspecValue{ctype::voidType()});
    };
    auto uintval = [&](size_t i) -> uint64_t {
        return static_cast<uint64_t>(args[i].asInteger().value());
    };

    switch (b) {
      case Builtin::Malloc:
        return MemValue(unwrap(mm_.allocateRegion(
            "malloc", uintval(0), mm_.arch().capSize())));
      case Builtin::Calloc: {
        uint64_t n = uintval(0) * uintval(1);
        PointerValue p = unwrap(mm_.allocateRegion(
            "calloc", n, mm_.arch().capSize()));
        unwrap(mm_.memsetOp(loc, p, 0, n));
        return MemValue(p);
      }
      case Builtin::Free:
        unwrap(mm_.kill(loc, true, args[0].asPointer()));
        return void_result();
      case Builtin::Realloc:
        return MemValue(unwrap(mm_.reallocRegion(
            loc, args[0].asPointer(), uintval(1))));
      case Builtin::Memcpy:
      case Builtin::Memmove: {
        PointerValue dst = args[0].asPointer();
        PointerValue src = args[1].asPointer();
        uint64_t n = uintval(2);
        if (b == Builtin::Memmove && n > 0) {
            // memmove permits overlap: the memory model stages the
            // copy (bytes and capability metadata) internally.
            unwrap(mm_.memmoveOp(loc, dst, src, n));
        } else if (n > 0) {
            unwrap(mm_.memcpyOp(loc, dst, src, n));
        }
        return args[0];
      }
      case Builtin::Memset:
        unwrap(mm_.memsetOp(loc, args[0].asPointer(),
                            static_cast<uint8_t>(uintval(1)),
                            uintval(2)));
        return args[0];
      case Builtin::Memcmp:
        return MemValue(unwrap(mm_.memcmpOp(
            loc, args[0].asPointer(), args[1].asPointer(),
            uintval(2))));
      case Builtin::Strlen: {
        std::string s = readCString(loc, args[0].asPointer());
        return MemValue(makeInt(loc, IntKind::ULong,
                                static_cast<__int128>(s.size())));
      }
      case Builtin::Printf: {
        std::string fmt = readCString(loc, args[0].asPointer());
        std::string s = formatPrintf(loc, fmt, args, 1);
        output_ += s;
        return MemValue(makeInt(loc, IntKind::Int,
                                static_cast<__int128>(s.size())));
      }
      case Builtin::Fprintf: {
        std::string fmt = readCString(loc, args[1].asPointer());
        std::string s = formatPrintf(loc, fmt, args, 2);
        output_ += s;
        return MemValue(makeInt(loc, IntKind::Int,
                                static_cast<__int128>(s.size())));
      }
      case Builtin::Assert:
        if (!truthy(loc, args[0]))
            throw AssertFailure{"assertion failed at " + loc.str()};
        return void_result();
      case Builtin::Abort:
        throw AssertFailure{"abort() called at " + loc.str()};
      case Builtin::Exit:
        throw ExitException{
            static_cast<int>(args[0].asInteger().value())};
      case Builtin::CheriDdcGet: {
        // The DDC root capability: whole address space, every
        // permission.  PNVI provenance is empty — accesses through it
        // model legacy (non-capability-aware) code and are outside
        // the provenance discipline.
        Capability ddc = Capability::make(
            mm_.arch(), 0, mm_.arch().addrSpaceTop(),
            mm_.arch().allPerms());
        return MemValue(PointerValue::object(Provenance::empty(),
                                             ddc));
      }
      case Builtin::PrintCap: {
        std::string label = readCString(loc, args[0].asPointer());
        output_ += label + " " + formatCapValue(args[1]) + "\n";
        return void_result();
      }
      default:
        break;
    }

    // CHERI intrinsics: all take a capability-carrying first (or
    // only) argument.
    const Capability *c0 = capOf(args[0]);
    if (!c0) {
        // Fixed-type intrinsics (representable_length & mask).
        if (b == Builtin::CheriRepresentableLength) {
            return MemValue(makeInt(
                loc, IntKind::ULong,
                static_cast<__int128>(
                    mm_.arch().representableLength(uintval(0)))));
        }
        if (b == Builtin::CheriRepresentableAlignmentMask) {
            return MemValue(makeInt(
                loc, IntKind::ULong,
                static_cast<__int128>(
                    mm_.arch().representableAlignmentMask(
                        uintval(0)))));
        }
        raise(Failure::internal("intrinsic needs capability argument",
                                loc));
    }

    switch (b) {
      case Builtin::CheriAddressGet:
        return MemValue(makeInt(loc, IntKind::Ptraddr,
                                static_cast<__int128>(c0->address())));
      case Builtin::CheriAddressSet: {
        uint64_t a = uintval(1);
        Capability nc = mm_.config().ghostState
                            ? c0->withAddressGhost(a)
                            : c0->withAddress(a);
        return capArgRebuild(loc, args[0], nc);
      }
      case Builtin::CheriBaseGet:
        return MemValue(makeInt(
            loc, IntKind::Ptraddr,
            static_cast<__int128>(
                static_cast<uint64_t>(c0->base()))));
      case Builtin::CheriLengthGet:
        return MemValue(makeInt(
            loc, IntKind::ULong,
            static_cast<__int128>(static_cast<cherisem::uint128>(
                c0->length()))));
      case Builtin::CheriOffsetGet:
        return MemValue(makeInt(
            loc, IntKind::ULong,
            static_cast<__int128>(
                c0->address() -
                static_cast<uint64_t>(c0->base()))));
      case Builtin::CheriOffsetSet: {
        uint64_t a = static_cast<uint64_t>(c0->base()) + uintval(1);
        Capability nc = mm_.config().ghostState
                            ? c0->withAddressGhost(a)
                            : c0->withAddress(a);
        return capArgRebuild(loc, args[0], nc);
      }
      case Builtin::CheriPermsGet:
        return MemValue(makeInt(
            loc, IntKind::ULong,
            static_cast<__int128>(c0->perms().bits())));
      case Builtin::CheriPermsAnd:
        return capArgRebuild(
            loc, args[0],
            c0->withPerms(cap::PermSet(
                static_cast<uint32_t>(uintval(1)))));
      case Builtin::CheriTagGet:
      case Builtin::CheriIsValid:
        // Section 3.5: if the ghost state marks the tag unspecified,
        // the result is an unspecified boolean; we return the stored
        // bit (a legitimate refinement) — cheri_ghost_state_get lets
        // tests observe the difference.
        return MemValue(makeInt(loc, IntKind::Bool,
                                c0->tag() ? 1 : 0));
      case Builtin::CheriTagClear:
        return capArgRebuild(loc, args[0], c0->withTagCleared());
      case Builtin::CheriBoundsSet:
      case Builtin::CheriBoundsSetExact: {
        uint64_t len = uintval(1);
        Capability nc = c0->withBounds(
            c0->address(), cherisem::uint128(c0->address()) + len);
        if (b == Builtin::CheriBoundsSetExact &&
            nc.length() != len) {
            raiseUb(Ub::CheriBoundsViolation, loc,
                    "cheri_bounds_set_exact: length not exactly "
                    "representable");
        }
        return capArgRebuild(loc, args[0], nc);
      }
      case Builtin::CheriIsEqualExact: {
        const Capability *c1 = capOf(args[1]);
        bool eq = c1 && c0->equalExact(*c1);
        return MemValue(makeInt(loc, IntKind::Bool, eq ? 1 : 0));
      }
      case Builtin::CheriTypeGet:
        return MemValue(makeInt(
            loc, IntKind::Long,
            c0->isSealed() ? static_cast<__int128>(c0->otype())
                           : -1));
      case Builtin::CheriIsSealed:
        return MemValue(makeInt(loc, IntKind::Bool,
                                c0->isSealed() ? 1 : 0));
      case Builtin::CheriSeal: {
        const Capability *auth = capOf(args[1]);
        if (!auth || !auth->tag() ||
            !auth->perms().has(cap::Perm::Seal)) {
            return capArgRebuild(loc, args[0],
                                 c0->withTagCleared());
        }
        return capArgRebuild(loc, args[0],
                             c0->sealed(auth->address()));
      }
      case Builtin::CheriUnseal: {
        const Capability *auth = capOf(args[1]);
        if (!auth || !auth->tag() ||
            !auth->perms().has(cap::Perm::Unseal) ||
            !c0->isSealed() || c0->otype() != auth->address()) {
            return capArgRebuild(loc, args[0],
                                 c0->withTagCleared());
        }
        return capArgRebuild(loc, args[0], c0->unsealed());
      }
      case Builtin::CheriSentryCreate:
        return capArgRebuild(loc, args[0],
                             c0->sealed(cap::OTYPE_SENTRY));
      case Builtin::CheriGhostStateGet: {
        int bits = (c0->ghost().tagUnspec ? 1 : 0) |
            (c0->ghost().boundsUnspec ? 2 : 0);
        return MemValue(makeInt(loc, IntKind::Int, bits));
      }
      case Builtin::CheriRepresentableLength:
      case Builtin::CheriRepresentableAlignmentMask:
      default:
        raise(Failure::internal("unhandled builtin", loc));
    }
}

} // namespace cherisem::corelang
