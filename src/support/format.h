/**
 * @file
 * Small string-formatting helpers used throughout the library.
 *
 * We deliberately avoid iostreams in hot paths and provide the hex /
 * decimal helpers the capability printers (Appendix A format) need.
 */
#ifndef CHERISEM_SUPPORT_FORMAT_H
#define CHERISEM_SUPPORT_FORMAT_H

#include <cstdint>
#include <string>

namespace cherisem {

/** 128-bit unsigned integer, used for capability "top" values (can be
 *  2^64) and intermediate bounds arithmetic. */
using uint128 = unsigned __int128;
/** 128-bit signed integer for correction arithmetic in bounds decode. */
using int128 = __int128;

/** Format @p v as "0x..." with no leading zeros (matches the paper's
 *  Appendix A capability printing). */
std::string hexStr(uint128 v);

/** Format @p v as a decimal string (supports the full 128-bit range). */
std::string decStr(uint128 v);

/** Format a signed 128-bit value as decimal. */
std::string decStr(int128 v);

/** printf-style formatting into a std::string. */
std::string strPrintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace cherisem

#endif // CHERISEM_SUPPORT_FORMAT_H
