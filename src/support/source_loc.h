/**
 * @file
 * Source locations for diagnostics.
 *
 * Both the frontend (token positions) and the dynamic semantics (UB
 * reports) refer back to positions in the interpreted program, so this
 * lives at the bottom of the dependency stack.
 */
#ifndef CHERISEM_SUPPORT_SOURCE_LOC_H
#define CHERISEM_SUPPORT_SOURCE_LOC_H

#include <cstdint>
#include <string>

namespace cherisem {

/** A position in an interpreted source file (1-based line/column). */
struct SourceLoc
{
    /** File name as given to the lexer; empty for synthetic nodes. */
    std::string file;
    /** 1-based line number; 0 means "unknown". */
    uint32_t line = 0;
    /** 1-based column number; 0 means "unknown". */
    uint32_t column = 0;

    bool isKnown() const { return line != 0; }

    /** Render as "file:line:column" (or "<unknown>"). */
    std::string str() const;

    bool operator==(const SourceLoc &) const = default;
};

} // namespace cherisem

#endif // CHERISEM_SUPPORT_SOURCE_LOC_H
