#include "support/format.h"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace cherisem {

std::string
hexStr(uint128 v)
{
    static const char digits[] = "0123456789abcdef";
    if (v == 0)
        return "0x0";
    std::string out;
    while (v != 0) {
        out.insert(out.begin(), digits[static_cast<unsigned>(v & 0xf)]);
        v >>= 4;
    }
    return "0x" + out;
}

std::string
decStr(uint128 v)
{
    if (v == 0)
        return "0";
    std::string out;
    while (v != 0) {
        out.insert(out.begin(), static_cast<char>('0' + (unsigned)(v % 10)));
        v /= 10;
    }
    return out;
}

std::string
decStr(int128 v)
{
    if (v < 0)
        return "-" + decStr(static_cast<uint128>(-v));
    return decStr(static_cast<uint128>(v));
}

std::string
strPrintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::vector<char> buf(n + 1);
    vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), n);
}

} // namespace cherisem
