#include "support/source_loc.h"

namespace cherisem {

std::string
SourceLoc::str() const
{
    if (!isKnown())
        return "<unknown>";
    std::string out = file.empty() ? std::string("<input>") : file;
    out += ':';
    out += std::to_string(line);
    out += ':';
    out += std::to_string(column);
    return out;
}

} // namespace cherisem
