/**
 * @file
 * A Result<T, E> error-propagation type.
 *
 * The Coq memory object model of the paper is written in a combined
 * state+error monad ("memM", section 4.3).  In C++ we render the error
 * component as Result and the state component as the MemoryModel object
 * itself; the CHERISEM_TRY macro plays the role of monadic bind.
 */
#ifndef CHERISEM_SUPPORT_RESULT_H
#define CHERISEM_SUPPORT_RESULT_H

#include <cassert>
#include <utility>
#include <variant>

namespace cherisem {

/** Unit type for Result<Unit, E> ("void" results). */
struct Unit
{
    bool operator==(const Unit &) const = default;
};

/**
 * Value-or-error sum type.
 *
 * A Result is truthy when it holds a value.  Errors propagate with
 * CHERISEM_TRY; terminal consumers use value()/error().
 */
template <typename T, typename E>
class Result
{
  public:
    // Implicit construction from both alternatives keeps call sites
    // readable: `return someT;` / `return someE;`.
    Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}
    Result(E error) : data_(std::in_place_index<1>, std::move(error)) {}
    /** In-place value construction: builds T directly in the result
     *  slot, skipping the intermediate T and variant moves the
     *  implicit constructor performs (hot paths care: a MemValue move
     *  is a runtime-dispatched 200+-byte variant move). */
    template <typename... Args>
    explicit Result(std::in_place_t, Args &&...args)
        : data_(std::in_place_index<0>, std::forward<Args>(args)...)
    {}

    bool ok() const { return data_.index() == 0; }
    explicit operator bool() const { return ok(); }

    T &value() & { assert(ok()); return std::get<0>(data_); }
    const T &value() const & { assert(ok()); return std::get<0>(data_); }
    T &&value() && { assert(ok()); return std::get<0>(std::move(data_)); }

    E &error() & { assert(!ok()); return std::get<1>(data_); }
    const E &error() const & { assert(!ok()); return std::get<1>(data_); }
    E &&error() && { assert(!ok()); return std::get<1>(std::move(data_)); }

    /** Value, or @p dflt when this holds an error. */
    T valueOr(T dflt) const { return ok() ? std::get<0>(data_) : dflt; }

  private:
    std::variant<T, E> data_;
};

} // namespace cherisem

#define CHERISEM_CAT_(a, b) a##b
#define CHERISEM_CAT(a, b) CHERISEM_CAT_(a, b)

/**
 * Monadic bind: evaluate @p expr (a Result), propagate its error out of
 * the enclosing function, otherwise bind the value to @p var.
 */
#define CHERISEM_TRY(var, expr)                                           \
    auto CHERISEM_CAT(_try_tmp_, __LINE__) = (expr);                      \
    if (!CHERISEM_CAT(_try_tmp_, __LINE__))                               \
        return std::move(CHERISEM_CAT(_try_tmp_, __LINE__)).error();      \
    auto var = std::move(CHERISEM_CAT(_try_tmp_, __LINE__)).value()

/** Bind variant for results whose value is discarded. */
#define CHERISEM_TRYV(expr)                                               \
    do {                                                                  \
        auto _try_tmp_v = (expr);                                         \
        if (!_try_tmp_v)                                                  \
            return std::move(_try_tmp_v).error();                         \
    } while (0)

#endif // CHERISEM_SUPPORT_RESULT_H
