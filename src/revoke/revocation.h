/**
 * @file
 * Temporal-safety revocation engine (paper sections 3.10, 5.4, 7).
 *
 * The paper's CHERIoT-style `revokeOnFree` semantics — free() clears
 * the tag of every stored capability whose bounds overlap the freed
 * region — was reproduced as an eager full-index sweep on every free,
 * which is O(capability slots) *per free* and quadratic on
 * allocation-heavy workloads.  Real CHERI stacks (CheriBSD's
 * Cornucopia, CHERIoT's allocator) amortise the sweep:
 *
 *  1. a **quarantine** holds freed-but-unrevoked regions.  A
 *     quarantined footprint is dead (the abstract machine still
 *     raises UB_access_dead_allocation through stale pointers under
 *     provenance checks) and MUST NOT be reused by the allocator
 *     until it has been swept — only the *tag-clearing* is deferred;
 *  2. a **shadow revocation bitmap** marks quarantined footprints at
 *     capability-granule resolution, so a sweep classifies each
 *     stored capability with a few bit-lookups instead of a
 *     per-region range compare;
 *  3. **batched epoch sweeps** walk only the capability-bearing slots
 *     (AbstractStore::forEachCapInRange) once per epoch, clearing
 *     every capability that points into any quarantined region, then
 *     release the whole batch back to the allocator's free list.
 *
 * Policies (RevokePolicy):
 *
 *  - Off: no revocation (spatial-safety-only profiles);
 *  - Eager: sweep on every free (the seed's semantics, one-region
 *    epochs) — the reference for what the batched sweep must equal;
 *  - Quarantine: defer until quarantineMaxBytes/quarantineMaxRegions
 *    is exceeded, then sweep the batch;
 *  - Manual: defer until an explicit flush (tests, intrinsics).
 *
 * Determinism contract: the engine emits TagClear events in sorted
 * slot order (forEachCapInRange visit order is backend-specific) and
 * never puts wall-clock time into events — sweep timing goes only
 * into RevokeStats::sweepNs.  Eager and deferred policies clear
 * exactly the same tag *set* for the same frees; only the epoch
 * boundary (when) moves.
 */
#ifndef CHERISEM_REVOKE_REVOCATION_H
#define CHERISEM_REVOKE_REVOCATION_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cap/capability.h"
#include "mem/store.h"
#include "obs/tracer.h"
#include "support/format.h"

namespace cherisem::revoke {

/** When freed regions have their stale capabilities revoked. */
enum class RevokePolicy : uint8_t
{
    Off,        ///< no temporal safety
    Eager,      ///< sweep on every free() (seed semantics)
    Quarantine, ///< batch frees, sweep when the quarantine fills
    Manual,     ///< batch frees, sweep only on explicit flush()
};

/** Stable identifier, e.g. "quarantine". */
const char *revokePolicyName(RevokePolicy p);

/** Per-model revocation configuration (MemoryModel::Config::revoke). */
struct RevokeConfig
{
    RevokePolicy policy = RevokePolicy::Off;
    /** Quarantine policy: flush when the pending footprint bytes
     *  exceed this. */
    uint64_t quarantineMaxBytes = 1 << 16;
    /** Quarantine policy: flush when more regions than this are
     *  pending. */
    uint64_t quarantineMaxRegions = 64;

    bool enabled() const { return policy != RevokePolicy::Off; }
};

/** Counters the engine maintains (mirrored into mem::MemStats).
 *  Everything except sweepNs is deterministic — a function of the
 *  operation sequence only — so the store-equivalence tests may
 *  compare these across backends. */
struct RevokeStats
{
    uint64_t sweeps = 0;            ///< epoch sweeps run
    uint64_t slotsVisited = 0;      ///< cap slots examined across sweeps
    uint64_t tagsRevoked = 0;       ///< tags cleared across sweeps
    uint64_t regionsQuarantined = 0; ///< regions ever enqueued (deferred)
    uint64_t regionsFlushed = 0;    ///< regions released by sweeps
    uint64_t pendingRegions = 0;    ///< quarantine occupancy (now)
    uint64_t pendingBytes = 0;      ///< quarantine footprint bytes (now)
    uint64_t quarantinePeakBytes = 0; ///< high-water mark
    /** Wall-clock nanoseconds spent sweeping.  NOT deterministic:
     *  never compared, never emitted into trace events. */
    uint64_t sweepNs = 0;
};

/**
 * Shadow revocation bitmap: one bit per capability granule of the
 * address space, set while the granule lies inside a quarantined
 * footprint.  Storage is a sparse map of 64-granule chunks (with a
 * granule-index bounding box), so marking is O(footprint/granule) and
 * an intersection query costs a couple of hash lookups for the
 * typical small-bounds capability.
 *
 * Granularity: heap allocations are capability-size aligned and
 * representability-padded, so two distinct allocations never share a
 * granule; the bitmap is therefore an exact classifier for
 * whole-allocation capabilities and a conservative pre-filter for
 * narrowed ones (the engine confirms hits against the exact region
 * list to match the eager byte-precise semantics).
 */
class ShadowBitmap
{
  public:
    /** @p granule must be a power of two (the capability size). */
    explicit ShadowBitmap(unsigned granule);

    /** Mark every granule overlapping [base, base+size). */
    void mark(uint64_t base, uint64_t size);
    /** Does the byte range [base, top) overlap any marked granule? */
    bool intersects(uint64_t base, uint128 top) const;
    /** Is the granule containing @p addr marked? */
    bool test(uint64_t addr) const;
    /** Unmark everything (end of an epoch). */
    void clearAll();

    bool empty() const { return chunks_.empty(); }
    unsigned granule() const { return 1u << shift_; }
    /** Number of marked granules (tests/introspection). */
    uint64_t markedGranules() const;

  private:
    unsigned shift_;
    /** Bounding box over marked granule indices (inclusive). */
    uint64_t loGranule_ = ~uint64_t(0);
    uint64_t hiGranule_ = 0;
    /** chunk index (granule >> 6) -> 64 granule-presence bits. */
    std::unordered_map<uint64_t, uint64_t> chunks_;
};

/**
 * The revocation engine.  Owned by the MemoryModel when its config
 * enables a policy; the model routes dynamic frees through onFree()
 * instead of putting footprints straight on its free list, and the
 * engine hands them back through the release callback once swept.
 */
class RevocationEngine
{
  public:
    /** Returns a swept footprint to the allocator's free list. */
    using ReleaseFn = std::function<void(uint64_t base, uint64_t size)>;

    /** @p hardTagCounter is the model's hardTagInvalidations stat
     *  (incremented per revoked tag, as the eager path always did);
     *  may be null. */
    RevocationEngine(const RevokeConfig &config,
                     mem::AbstractStore &store,
                     const cap::CapArch &arch, const obs::Tracer &tracer,
                     uint64_t *hardTagCounter, ReleaseFn release);

    /** A dynamic free of [base, base+size) (allocation @p allocId).
     *  Eager: sweeps immediately.  Quarantine: enqueues, emits a
     *  Quarantine event, flushes if over threshold.  Manual:
     *  enqueues only. */
    void onFree(uint64_t base, uint64_t size, uint64_t allocId);

    /** Run an epoch sweep over the whole quarantine: clear every
     *  stored capability pointing into a quarantined region, release
     *  the regions, emit TagClear events (sorted by slot) and one
     *  RevokeSweep.  Returns the number of tags cleared (0 when the
     *  quarantine is empty — no events in that case). */
    uint64_t flush();

    /** Is @p addr inside a quarantined (freed, unswept) footprint? */
    bool quarantined(uint64_t addr) const;

    const RevokeConfig &config() const { return config_; }
    const RevokeStats &stats() const { return stats_; }
    uint64_t pendingRegions() const { return regions_.size(); }
    uint64_t pendingBytes() const { return stats_.pendingBytes; }
    const ShadowBitmap &bitmap() const { return bitmap_; }

    struct Region
    {
        uint64_t base = 0;
        uint64_t size = 0;   ///< exact allocation size (may be 0)
        uint64_t allocId = 0;
    };

    /** The engine's whole mutable state, for MemoryModel snapshots:
     *  quarantine queue, shadow bitmap, and counters.  Config, the
     *  store binding, and the release callback are structural and
     *  stay with the engine. */
    struct Snapshot
    {
        std::vector<Region> regions;
        ShadowBitmap bitmap;
        RevokeStats stats;
    };

    Snapshot capture() const { return {regions_, bitmap_, stats_}; }
    void
    restoreFrom(const Snapshot &snap)
    {
        regions_ = snap.regions;
        bitmap_ = snap.bitmap;
        stats_ = snap.stats;
    }

  private:
    /** Byte-precise check against the pending regions (the eager
     *  semantics' intersection test). */
    bool intersectsRegion(uint128 capBase, uint128 capTop) const;

    RevokeConfig config_;
    mem::AbstractStore &store_;
    const cap::CapArch &arch_;
    obs::Tracer tracer_;
    uint64_t *hardTagCounter_;
    ReleaseFn release_;

    std::vector<Region> regions_;
    ShadowBitmap bitmap_;
    RevokeStats stats_;
};

} // namespace cherisem::revoke

#endif // CHERISEM_REVOKE_REVOCATION_H
