/**
 * @file
 * Revocation engine implementation (see revocation.h for the model).
 */
#include "revoke/revocation.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace cherisem::revoke {

const char *
revokePolicyName(RevokePolicy p)
{
    switch (p) {
      case RevokePolicy::Off:        return "off";
      case RevokePolicy::Eager:      return "eager";
      case RevokePolicy::Quarantine: return "quarantine";
      case RevokePolicy::Manual:     return "manual";
    }
    return "?";
}

// ---------------------------------------------------------------------
// ShadowBitmap.
// ---------------------------------------------------------------------

namespace {

unsigned
log2Exact(unsigned v)
{
    assert(v != 0 && (v & (v - 1)) == 0 && "granule must be 2^k");
    unsigned s = 0;
    while ((1u << s) < v)
        ++s;
    return s;
}

/** Presence bits of chunk @p chunk for granules in [first, last]. */
uint64_t
chunkMask(uint64_t chunk, uint64_t first, uint64_t last)
{
    uint64_t lo = chunk == (first >> 6) ? (first & 63) : 0;
    uint64_t hi = chunk == (last >> 6) ? (last & 63) : 63;
    return (~uint64_t(0) >> (63 - hi)) & (~uint64_t(0) << lo);
}

} // namespace

ShadowBitmap::ShadowBitmap(unsigned granule) : shift_(log2Exact(granule))
{
}

void
ShadowBitmap::mark(uint64_t base, uint64_t size)
{
    if (size == 0)
        return;
    uint64_t first = base >> shift_;
    uint64_t last = (base + size - 1) >> shift_;
    loGranule_ = std::min(loGranule_, first);
    hiGranule_ = std::max(hiGranule_, last);
    for (uint64_t chunk = first >> 6; chunk <= last >> 6; ++chunk)
        chunks_[chunk] |= chunkMask(chunk, first, last);
}

bool
ShadowBitmap::intersects(uint64_t base, uint128 top) const
{
    if (chunks_.empty() || top <= uint128(base))
        return false;
    // Clamp the (possibly whole-address-space) capability range to
    // the bounding box of marked granules.
    uint64_t first = base >> shift_;
    uint128 lastByte = top - 1;
    uint64_t last = lastByte > uint128(~uint64_t(0))
        ? (~uint64_t(0) >> shift_)
        : static_cast<uint64_t>(lastByte) >> shift_;
    if (first > hiGranule_ || last < loGranule_)
        return false;
    first = std::max(first, loGranule_);
    last = std::min(last, hiGranule_);
    uint64_t cfirst = first >> 6, clast = last >> 6;
    if (clast - cfirst >= chunks_.size()) {
        // Wide query over a sparse map: walk the marked chunks.
        for (const auto &[chunk, bits] : chunks_) {
            if (chunk >= cfirst && chunk <= clast &&
                (bits & chunkMask(chunk, first, last)))
                return true;
        }
        return false;
    }
    for (uint64_t chunk = cfirst; chunk <= clast; ++chunk) {
        auto it = chunks_.find(chunk);
        if (it != chunks_.end() &&
            (it->second & chunkMask(chunk, first, last)))
            return true;
    }
    return false;
}

bool
ShadowBitmap::test(uint64_t addr) const
{
    uint64_t g = addr >> shift_;
    auto it = chunks_.find(g >> 6);
    return it != chunks_.end() && (it->second >> (g & 63)) & 1;
}

void
ShadowBitmap::clearAll()
{
    chunks_.clear();
    loGranule_ = ~uint64_t(0);
    hiGranule_ = 0;
}

uint64_t
ShadowBitmap::markedGranules() const
{
    uint64_t n = 0;
    for (const auto &[chunk, bits] : chunks_)
        n += static_cast<uint64_t>(__builtin_popcountll(bits));
    return n;
}

// ---------------------------------------------------------------------
// RevocationEngine.
// ---------------------------------------------------------------------

RevocationEngine::RevocationEngine(const RevokeConfig &config,
                                   mem::AbstractStore &store,
                                   const cap::CapArch &arch,
                                   const obs::Tracer &tracer,
                                   uint64_t *hardTagCounter,
                                   ReleaseFn release)
    : config_(config), store_(store), arch_(arch), tracer_(tracer),
      hardTagCounter_(hardTagCounter), release_(std::move(release)),
      bitmap_(arch.capSize())
{
}

void
RevocationEngine::onFree(uint64_t base, uint64_t size, uint64_t allocId)
{
    regions_.push_back({base, size, allocId});
    // Mark the full footprint (a zero-size malloc still occupies one
    // byte of address space) so quarantined() covers it; capability
    // intersection stays byte-precise via intersectsRegion().
    bitmap_.mark(base, std::max<uint64_t>(size, 1));
    stats_.pendingRegions = regions_.size();
    stats_.pendingBytes += size;
    stats_.quarantinePeakBytes =
        std::max(stats_.quarantinePeakBytes, stats_.pendingBytes);

    if (config_.policy == RevokePolicy::Eager) {
        flush();
        return;
    }

    ++stats_.regionsQuarantined;
    if (tracer_.enabled()) {
        tracer_.emit({.kind = obs::EventKind::Quarantine,
                      .addr = base,
                      .size = size,
                      .a = allocId,
                      .b = regions_.size()});
    }
    if (config_.policy == RevokePolicy::Quarantine &&
        (stats_.pendingBytes > config_.quarantineMaxBytes ||
         regions_.size() > config_.quarantineMaxRegions)) {
        flush();
    }
}

bool
RevocationEngine::quarantined(uint64_t addr) const
{
    if (!bitmap_.test(addr))
        return false;
    for (const Region &r : regions_) {
        if (addr >= r.base && addr < r.base + std::max<uint64_t>(r.size, 1))
            return true;
    }
    return false;
}

bool
RevocationEngine::intersectsRegion(uint128 capBase, uint128 capTop) const
{
    for (const Region &r : regions_) {
        if (capBase < uint128(r.base) + r.size &&
            capTop > uint128(r.base))
            return true;
    }
    return false;
}

uint64_t
RevocationEngine::flush()
{
    if (regions_.empty())
        return 0;
    auto t0 = std::chrono::steady_clock::now();

    const unsigned cs = arch_.capSize();
    std::vector<mem::AbsByte> bs(cs);
    std::vector<uint8_t> raw(cs);
    // Collect first, emit second: forEachCapInRange's visit order is
    // backend-specific (PagedStore walks an unordered page map), and
    // the trace streams of the two backends must stay bit-identical.
    std::vector<uint64_t> cleared;
    uint64_t visited = 0;
    store_.forEachCapInRange(
        0, ~uint64_t(0), [&](uint64_t slot, mem::CapMeta &meta) {
            ++visited;
            if (!meta.tag)
                return;
            store_.readBytes(slot, cs, bs.data());
            for (unsigned i = 0; i < cs; ++i) {
                if (!bs[i].value)
                    return;
                raw[i] = *bs[i].value;
            }
            cap::Capability c = arch_.fromBytes(raw.data(), true);
            // One-bit fast path; a hit is confirmed against the exact
            // region list so the revoked set matches the eager
            // byte-precise intersection test exactly.
            if (!bitmap_.intersects(
                    static_cast<uint64_t>(c.base() &
                                          uint128(~uint64_t(0))),
                    c.top()))
                return;
            if (!intersectsRegion(c.base(), c.top()))
                return;
            meta.tag = false;
            cleared.push_back(slot);
        });
    std::sort(cleared.begin(), cleared.end());
    if (tracer_.enabled()) {
        for (uint64_t slot : cleared) {
            tracer_.emit({.kind = obs::EventKind::TagClear,
                          .addr = slot,
                          .size = cs,
                          .a = 1,
                          .label = "revoke"});
        }
    }
    if (hardTagCounter_)
        *hardTagCounter_ += cleared.size();

    // One RevokeSweep per epoch.  A single-region epoch (the eager
    // policy) keeps the seed's event shape: addr/size = the freed
    // footprint; batched epochs report the whole quarantine.
    uint64_t sweptBytes = 0;
    for (const Region &r : regions_)
        sweptBytes += r.size;
    if (tracer_.enabled()) {
        tracer_.emit({.kind = obs::EventKind::RevokeSweep,
                      .addr = regions_.size() == 1 ? regions_[0].base
                                                   : 0,
                      .size = regions_.size() == 1 ? regions_[0].size
                                                   : sweptBytes,
                      .a = cleared.size(),
                      .b = regions_.size()});
    }

    stats_.sweeps += 1;
    stats_.slotsVisited += visited;
    stats_.tagsRevoked += cleared.size();
    stats_.regionsFlushed += regions_.size();

    // Release the swept footprints to the allocator and start the
    // next epoch.
    if (release_) {
        for (const Region &r : regions_)
            release_(r.base, std::max<uint64_t>(r.size, 1));
    }
    regions_.clear();
    bitmap_.clearAll();
    stats_.pendingRegions = 0;
    stats_.pendingBytes = 0;

    stats_.sweepNs += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    return cleared.size();
}

} // namespace cherisem::revoke
