#include "intrinsics/intrinsics.h"

#include <unordered_map>

namespace cherisem::intrinsics {

using ctype::IntKind;
using ctype::intType;
using ctype::pointerTo;
using ctype::TypeRef;
using ctype::voidType;

namespace {

TypeRef
sizeT()
{
    return intType(IntKind::ULong);
}

TypeRef
voidPtr()
{
    return pointerTo(voidType());
}

std::unordered_map<std::string, BuiltinSig>
makeTable()
{
    using TS = TypeSpec;
    std::unordered_map<std::string, BuiltinSig> t;
    auto add = [&](const std::string &name, Builtin id, TypeSpec ret,
                   std::vector<TypeSpec> params, bool variadic = false) {
        t[name] = BuiltinSig{id, std::move(ret), std::move(params),
                             variadic};
    };

    // --- libc subset ---
    add("malloc", Builtin::Malloc, TS::f(voidPtr()), {TS::f(sizeT())});
    add("calloc", Builtin::Calloc, TS::f(voidPtr()),
        {TS::f(sizeT()), TS::f(sizeT())});
    add("free", Builtin::Free, TS::f(voidType()), {TS::p()});
    add("realloc", Builtin::Realloc, TS::f(voidPtr()),
        {TS::p(), TS::f(sizeT())});
    add("memcpy", Builtin::Memcpy, TS::f(voidPtr()),
        {TS::p(), TS::p(), TS::f(sizeT())});
    add("memmove", Builtin::Memmove, TS::f(voidPtr()),
        {TS::p(), TS::p(), TS::f(sizeT())});
    add("memset", Builtin::Memset, TS::f(voidPtr()),
        {TS::p(), TS::f(intType(IntKind::Int)), TS::f(sizeT())});
    add("memcmp", Builtin::Memcmp, TS::f(intType(IntKind::Int)),
        {TS::p(), TS::p(), TS::f(sizeT())});
    add("strlen", Builtin::Strlen, TS::f(sizeT()),
        {TS::f(pointerTo(intType(IntKind::Char)))});
    add("printf", Builtin::Printf, TS::f(intType(IntKind::Int)),
        {TS::f(pointerTo(ctype::withConst(intType(IntKind::Char),
                                          true)))},
        /*variadic=*/true);
    add("fprintf", Builtin::Fprintf, TS::f(intType(IntKind::Int)),
        {TS::p(),
         TS::f(pointerTo(ctype::withConst(intType(IntKind::Char),
                                          true)))},
        /*variadic=*/true);
    add("assert", Builtin::Assert, TS::f(voidType()), {TS::i()});
    add("abort", Builtin::Abort, TS::f(voidType()), {});
    add("exit", Builtin::Exit, TS::f(voidType()),
        {TS::f(intType(IntKind::Int))});
    add("print_cap", Builtin::PrintCap, TS::f(voidType()),
        {TS::f(pointerTo(ctype::withConst(intType(IntKind::Char),
                                          true))),
         TS::c()});

    // --- CHERI intrinsics (polymorphic over capability types) ---
    TypeRef addr = intType(IntKind::Ptraddr);
    TypeRef szt = sizeT();
    TypeRef boolean = intType(IntKind::Bool);
    add("cheri_address_get", Builtin::CheriAddressGet, TS::f(addr),
        {TS::c()});
    add("cheri_address_set", Builtin::CheriAddressSet, TS::c(),
        {TS::c(), TS::f(addr)});
    add("cheri_base_get", Builtin::CheriBaseGet, TS::f(addr),
        {TS::c()});
    add("cheri_length_get", Builtin::CheriLengthGet, TS::f(szt),
        {TS::c()});
    add("cheri_offset_get", Builtin::CheriOffsetGet, TS::f(szt),
        {TS::c()});
    add("cheri_offset_set", Builtin::CheriOffsetSet, TS::c(),
        {TS::c(), TS::f(szt)});
    add("cheri_perms_get", Builtin::CheriPermsGet, TS::f(szt),
        {TS::c()});
    add("cheri_perms_and", Builtin::CheriPermsAnd, TS::c(),
        {TS::c(), TS::f(szt)});
    add("cheri_tag_get", Builtin::CheriTagGet, TS::f(boolean),
        {TS::c()});
    add("cheri_tag_clear", Builtin::CheriTagClear, TS::c(), {TS::c()});
    add("cheri_is_valid", Builtin::CheriIsValid, TS::f(boolean),
        {TS::c()});
    add("cheri_bounds_set", Builtin::CheriBoundsSet, TS::c(),
        {TS::c(), TS::f(szt)});
    add("cheri_bounds_set_exact", Builtin::CheriBoundsSetExact,
        TS::c(), {TS::c(), TS::f(szt)});
    add("cheri_is_equal_exact", Builtin::CheriIsEqualExact,
        TS::f(boolean), {TS::c(0), TS::c(1)});
    add("cheri_representable_length",
        Builtin::CheriRepresentableLength, TS::f(szt), {TS::f(szt)});
    add("cheri_representable_alignment_mask",
        Builtin::CheriRepresentableAlignmentMask, TS::f(szt),
        {TS::f(szt)});
    add("cheri_type_get", Builtin::CheriTypeGet,
        TS::f(intType(IntKind::Long)), {TS::c()});
    add("cheri_is_sealed", Builtin::CheriIsSealed, TS::f(boolean),
        {TS::c()});
    add("cheri_seal", Builtin::CheriSeal, TS::c(0),
        {TS::c(0), TS::c(1)});
    add("cheri_unseal", Builtin::CheriUnseal, TS::c(0),
        {TS::c(0), TS::c(1)});
    add("cheri_sentry_create", Builtin::CheriSentryCreate, TS::c(),
        {TS::c()});
    add("cheri_ghost_state_get", Builtin::CheriGhostStateGet,
        TS::f(intType(IntKind::Int)), {TS::c()});
    add("cheri_ddc_get", Builtin::CheriDdcGet, TS::f(voidPtr()), {});
    return t;
}

const std::unordered_map<std::string, BuiltinSig> &
table()
{
    static auto t = makeTable();
    return t;
}

} // namespace

std::optional<BuiltinSig>
lookupBuiltin(const std::string &name)
{
    auto it = table().find(name);
    if (it == table().end())
        return std::nullopt;
    return it->second;
}

const char *
builtinName(Builtin b)
{
    for (const auto &[name, sig] : table()) {
        if (sig.id == b)
            return name.c_str();
    }
    return "<builtin?>";
}

Result<ResolvedSig, std::string>
resolveBuiltin(const BuiltinSig &sig,
               const std::vector<ctype::TypeRef> &arg_types,
               const ctype::MachineLayout &machine)
{
    (void)machine;
    if (arg_types.size() < sig.params.size() ||
        (!sig.variadic && arg_types.size() > sig.params.size())) {
        return std::string("wrong number of arguments");
    }
    // Unify capability-type variables.
    std::vector<TypeRef> capvars(4);
    for (size_t i = 0; i < sig.params.size(); ++i) {
        const TypeSpec &ps = sig.params[i];
        const TypeRef &at = arg_types[i];
        if (ps.kind == TypeSpec::Kind::CapVar) {
            TypeRef t = at;
            // Arrays decay; plain integers are *not* capability
            // carrying — the intrinsic's type derivation rejects
            // them (Cerberus behaves the same).
            if (t->isArray())
                t = ctype::pointerTo(t->element);
            if (!t->isCapCarrying()) {
                return std::string("argument ") +
                    std::to_string(i + 1) +
                    " must have a capability-carrying type, got " +
                    ctype::typeStr(t);
            }
            if (capvars[ps.var] &&
                !ctype::sameType(capvars[ps.var], t)) {
                // Distinct-capability-type variables use different
                // indices; same index must unify.
                return std::string("capability type mismatch");
            }
            capvars[ps.var] = t;
        }
    }

    ResolvedSig out;
    out.variadic = sig.variadic;
    auto concrete = [&](const TypeSpec &ts,
                        const TypeRef &arg) -> TypeRef {
        switch (ts.kind) {
          case TypeSpec::Kind::Fixed:
            return ts.fixed;
          case TypeSpec::Kind::CapVar:
            return capvars[ts.var];
          case TypeSpec::Kind::AnyPtr: {
            TypeRef t = arg;
            if (t && t->isArray())
                t = ctype::pointerTo(t->element);
            if (t && t->isPointer())
                return t;
            return pointerTo(voidType());
          }
          case TypeSpec::Kind::AnyInt:
            return arg && arg->isInteger() ? arg
                                           : intType(IntKind::Int);
        }
        return intType(IntKind::Int);
    };
    for (size_t i = 0; i < sig.params.size(); ++i)
        out.params.push_back(concrete(sig.params[i], arg_types[i]));
    out.ret = concrete(sig.ret, nullptr);
    if (!out.ret)
        return std::string("unresolved return type");
    return out;
}

} // namespace cherisem::intrinsics
