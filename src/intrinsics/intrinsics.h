/**
 * @file
 * Built-in functions: the CHERI C intrinsics and the libc subset.
 *
 * Many CHERI intrinsics are polymorphic in the capability-carrying
 * type they accept (a pointer type or (u)intptr_t), and their return
 * type can depend on it.  This does not fit the C type system, so —
 * like Cerberus (section 4.5 of the paper) — we resolve intrinsic
 * signatures through a small type-derivation DSL: parameters/results
 * are either fixed types or capability-type variables unified against
 * the call's argument types.
 */
#ifndef CHERISEM_INTRINSICS_INTRINSICS_H
#define CHERISEM_INTRINSICS_INTRINSICS_H

#include <optional>
#include <string>
#include <vector>

#include "ctype/layout.h"
#include "support/result.h"

namespace cherisem::intrinsics {

/** Every built-in function the interpreter provides. */
enum class Builtin
{
    // libc subset.
    Malloc,
    Calloc,
    Free,
    Realloc,
    Memcpy,
    Memmove,
    Memset,
    Memcmp,
    Strlen,
    Printf,
    Fprintf,
    Assert,
    Abort,
    Exit,
    // Test-harness helper modelling the paper's capprint.h: prints
    // "label <capability>" in the active profile's format.
    PrintCap,

    // CHERI intrinsics (cheriintrin.h subset).
    CheriAddressGet,
    CheriAddressSet,
    CheriBaseGet,
    CheriLengthGet,
    CheriOffsetGet,
    CheriOffsetSet,
    CheriPermsGet,
    CheriPermsAnd,
    CheriTagGet,
    CheriTagClear,
    CheriIsValid,
    CheriBoundsSet,
    CheriBoundsSetExact,
    CheriIsEqualExact,
    CheriRepresentableLength,
    CheriRepresentableAlignmentMask,
    CheriTypeGet,
    CheriIsSealed,
    CheriSeal,
    CheriUnseal,
    CheriSentryCreate,
    CheriGhostStateGet, // introspection helper for the test suite
    /** The Default Data Capability (section 2.1): a root capability
     *  spanning the whole address space with all permissions, used by
     *  tests that need sealing authority. */
    CheriDdcGet,
};

/**
 * One parameter/result slot in an intrinsic's signature: a fixed type
 * or a capability-type variable (identified by index; equal indices
 * unify to the same type).
 */
struct TypeSpec
{
    enum class Kind
    {
        Fixed,   ///< exactly this type (after usual conversions)
        CapVar,  ///< any capability-carrying type (ptr / (u)intptr_t)
        AnyPtr,  ///< any pointer type (void* compatible)
        AnyInt,  ///< any integer type
    };

    Kind kind = Kind::Fixed;
    ctype::TypeRef fixed;
    int var = 0;

    static TypeSpec f(ctype::TypeRef t) { return {Kind::Fixed, t, 0}; }
    static TypeSpec c(int v = 0) { return {Kind::CapVar, nullptr, v}; }
    static TypeSpec p() { return {Kind::AnyPtr, nullptr, 0}; }
    static TypeSpec i() { return {Kind::AnyInt, nullptr, 0}; }
};

/** A builtin's (possibly polymorphic) signature. */
struct BuiltinSig
{
    Builtin id;
    TypeSpec ret;
    std::vector<TypeSpec> params;
    bool variadic = false;
};

/** A signature resolved against concrete argument types. */
struct ResolvedSig
{
    ctype::TypeRef ret;
    std::vector<ctype::TypeRef> params;
    bool variadic = false;
};

/** Look up a builtin by source name ("malloc", "cheri_tag_get", ...). */
std::optional<BuiltinSig> lookupBuiltin(const std::string &name);

/** Name of a builtin (diagnostics). */
const char *builtinName(Builtin b);

/**
 * The type-derivation step: unify @p sig against @p arg_types.
 * Returns the concrete signature, or an error message.
 */
Result<ResolvedSig, std::string>
resolveBuiltin(const BuiltinSig &sig,
               const std::vector<ctype::TypeRef> &arg_types,
               const cherisem::ctype::MachineLayout &machine);

} // namespace cherisem::intrinsics

#endif // CHERISEM_INTRINSICS_INTRINSICS_H
