#include "cap/permissions.h"

namespace cherisem::cap {

PermSet
PermSet::basic()
{
    return PermSet()
        .with(Perm::Load)
        .with(Perm::Store)
        .with(Perm::LoadCap)
        .with(Perm::StoreCap)
        .with(Perm::Execute)
        .with(Perm::Seal)
        .with(Perm::Unseal)
        .with(Perm::Global);
}

PermSet
PermSet::data()
{
    return PermSet()
        .with(Perm::Load)
        .with(Perm::Store)
        .with(Perm::LoadCap)
        .with(Perm::StoreCap)
        .with(Perm::StoreLocal)
        .with(Perm::MutableLoad)
        .with(Perm::Global);
}

PermSet
PermSet::readOnlyData()
{
    return data().without(Perm::Store).without(Perm::StoreCap)
        .without(Perm::StoreLocal);
}

PermSet
PermSet::code()
{
    return PermSet()
        .with(Perm::Load)
        .with(Perm::Execute)
        .with(Perm::Global)
        .with(Perm::Executive);
}

std::string
PermSet::shortStr() const
{
    std::string s;
    s += has(Perm::Load) ? 'r' : '-';
    s += has(Perm::Store) ? 'w' : '-';
    s += has(Perm::LoadCap) ? 'R' : '-';
    s += has(Perm::StoreCap) ? 'W' : '-';
    if (has(Perm::Execute))
        s += 'x';
    return s;
}

} // namespace cherisem::cap
