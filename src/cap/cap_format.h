/**
 * @file
 * Capability pretty-printing in the style of the paper's Appendix A.
 *
 * Two styles:
 *  - Abstract (the Cerberus reference semantics): ghost-unspecified
 *    bounds print as "[?-?]" and a cleared/unspecified tag as
 *    "(notag)", e.g.  "0x7fffe6dc [?-?] (notag)".
 *  - Concrete (hardware implementations): bounds always print; an
 *    untagged capability gets the "(invalid)" suffix, e.g.
 *    "0xffdfff08 [rwRW,0xffdfff08-0xffdfff10] (invalid)".
 */
#ifndef CHERISEM_CAP_CAP_FORMAT_H
#define CHERISEM_CAP_CAP_FORMAT_H

#include <string>

#include "cap/capability.h"

namespace cherisem::cap {

enum class FormatStyle
{
    /** Abstract-machine view (ghost state visible). */
    Abstract,
    /** Hardware view (tag valid/invalid only). */
    Concrete,
};

/** Render @p c like the paper's capprint helper. */
std::string formatCap(const Capability &c, FormatStyle style);

/** Render the raw bit-fields (used by `appendix_a --layout` to show
 *  the Fig. 1 layout of a capability). */
std::string formatFields(const Capability &c);

} // namespace cherisem::cap

#endif // CHERISEM_CAP_CAP_FORMAT_H
