/**
 * @file
 * CHERI-Concentrate-style capability bounds compression.
 *
 * Capabilities encode 2*AddrBits of bounds into far fewer bits by
 * storing a shared exponent E and two mantissas B (bottom) and T (top),
 * reconstructing the full bounds relative to the capability's address
 * (Woodruff et al., "CHERI Concentrate", IEEE ToC 2019; Morello
 * supplement section 2.5.1).  The paper relies on three consequences
 * of this scheme (sections 2.1, 3.2, 3.3):
 *
 *  - small regions are exact, large regions are rounded outward;
 *  - only some (address, bounds) combinations are *representable*:
 *    moving the address too far out of bounds changes the decoded
 *    bounds, so the hardware clears the tag instead;
 *  - a slack region below/above the bounds remains representable, so
 *    common transiently-out-of-bounds idioms keep working.
 *
 * This is a clean-room implementation of the scheme's structure (it is
 * validated by its own round-trip/monotonicity property tests, not by
 * bit-equivalence with the Arm ASL model — see DESIGN.md).
 *
 * Field layout, mirroring CC: the stored "bottom" has MW bits and the
 * stored "top" has MW-2 bits (the top two bits of T are derived).
 * When the internal-exponent flag IE is set, the low three bits of
 * each store the 6-bit exponent and bounds granularity becomes
 * 2^(E+3).
 */
#ifndef CHERISEM_CAP_COMPRESSION_H
#define CHERISEM_CAP_COMPRESSION_H

#include <cstdint>

#include "support/format.h"

namespace cherisem::cap {

/** Raw encoded bounds fields as stored in a capability. */
struct BoundsFields
{
    /** Internal exponent flag. */
    bool ie = false;
    /** Stored bottom field (MW bits; low 3 hold E[2:0] when ie). */
    uint32_t bottom = 0;
    /** Stored top field (MW-2 bits; low 3 hold E[5:3] when ie). */
    uint32_t top = 0;

    bool operator==(const BoundsFields &) const = default;
};

/** Decoded bounds: [base, top), with top possibly 2^AddrBits. */
struct Bounds
{
    uint128 base = 0;
    uint128 top = 0;

    uint128 length() const { return top - base; }
    bool contains(uint128 addr, uint128 size) const
    {
        return base <= addr && addr + size <= top;
    }
    bool operator==(const Bounds &) const = default;
};

/** Result of encoding requested bounds: fields plus exactness. */
struct EncodeResult
{
    BoundsFields fields;
    /** Actual (possibly rounded-outward) bounds the fields decode to. */
    Bounds bounds;
    /** True when bounds == the requested bounds. */
    bool exact = false;
};

/**
 * The compression scheme, parameterised by address width and mantissa
 * width.  MW=14/AddrBits=64 models Morello/CHERI-RISC-V ("CC128");
 * MW=11/AddrBits=32 models a CHERIoT-style embedded encoding with
 * byte-granular bounds for objects up to 511 bytes ("CC64").
 */
template <unsigned AddrBits, unsigned MW>
class Compression
{
    static_assert(MW >= 8 && MW < AddrBits, "mantissa must fit address");

  public:
    /** Exponent at/above which the capability spans the whole address
     *  space. */
    static constexpr unsigned eFull = AddrBits - MW + 2;
    /** 2^AddrBits: the exclusive upper bound of the address space. */
    static constexpr uint128 addrSpaceTop = uint128(1) << AddrBits;
    /** Largest length exactly representable with E=0 (IE clear). */
    static constexpr uint64_t maxExactLength = (1u << (MW - 2)) - 1;

    /** Decode stored fields relative to @p addr. */
    static Bounds decode(const BoundsFields &f, uint64_t addr);

    /**
     * Encode the requested bounds, rounding outward when the length /
     * alignment combination is not exactly representable.
     */
    static EncodeResult encode(uint64_t req_base, uint128 req_top);

    /**
     * Would changing the address to @p new_addr preserve the decoded
     * bounds @p current (the architectural representability check)?
     */
    static bool
    isRepresentable(const BoundsFields &f, const Bounds &current,
                    uint64_t new_addr)
    {
        return decode(f, new_addr) == current;
    }

    /** CRRL: the length of the smallest representable region that can
     *  hold @p len bytes. */
    static uint64_t representableLength(uint64_t len);

    /** CRAM: alignment mask required for a region of @p len bytes to
     *  be exactly representable. */
    static uint64_t representableAlignmentMask(uint64_t len);

  private:
    static constexpr uint32_t mask(unsigned bits)
    {
        return (bits >= 32) ? 0xffffffffu : ((1u << bits) - 1);
    }
};

template <unsigned AddrBits, unsigned MW>
Bounds
Compression<AddrBits, MW>::decode(const BoundsFields &f, uint64_t addr)
{
    unsigned E;
    uint32_t B;
    uint32_t t_low;
    unsigned lmsb;
    if (f.ie) {
        E = ((f.top & 7) << 3) | (f.bottom & 7);
        B = f.bottom & mask(MW) & ~7u;
        t_low = f.top & mask(MW - 2) & ~7u;
        lmsb = 1;
    } else {
        E = 0;
        B = f.bottom & mask(MW);
        t_low = f.top & mask(MW - 2);
        lmsb = 0;
    }

    if (E >= eFull)
        return Bounds{0, addrSpaceTop};

    // Derive the top two bits of T from B, a carry, and the length MSB.
    uint32_t carry = (t_low < (B & mask(MW - 2))) ? 1 : 0;
    uint32_t t_hi = ((B >> (MW - 2)) + carry + lmsb) & 3;
    uint32_t T = (t_hi << (MW - 2)) | t_low;

    uint64_t a_mid = (addr >> E) & mask(MW);
    uint64_t a_top = (E + MW >= 64) ? 0 : (addr >> (E + MW));

    // Representable-region base: one eighth of the encodable space
    // below B, giving the out-of-bounds slack of section 3.2.
    uint32_t R = (B - (1u << (MW - 2))) & mask(MW);
    auto corr = [&](uint32_t x) -> int {
        bool xr = x < R;
        bool ar = a_mid < R;
        if (xr == ar)
            return 0;
        return xr ? 1 : -1;
    };

    int128 seg = int128(1) << (E + MW);
    int128 base =
        (int128(a_top) + corr(B)) * seg + (int128(B) << E);
    int128 top =
        (int128(a_top) + corr(T)) * seg + (int128(T) << E);

    if (base < 0)
        base = 0;
    if (base > int128(addrSpaceTop))
        base = int128(addrSpaceTop);
    if (top < 0)
        top = 0;
    if (top > int128(addrSpaceTop))
        top = int128(addrSpaceTop);
    if (top < base)
        top = base;
    return Bounds{uint128(base), uint128(top)};
}

template <unsigned AddrBits, unsigned MW>
EncodeResult
Compression<AddrBits, MW>::encode(uint64_t req_base, uint128 req_top)
{
    if (req_top > addrSpaceTop)
        req_top = addrSpaceTop;
    if (req_top < req_base)
        req_top = req_base;
    uint128 len = req_top - req_base;
    Bounds want{req_base, req_top};

    if (len <= maxExactLength) {
        BoundsFields f;
        f.ie = false;
        f.bottom = static_cast<uint32_t>(req_base) & mask(MW);
        f.top = static_cast<uint32_t>(req_top) & mask(MW - 2);
        Bounds got = decode(f, req_base);
        if (got == want)
            return EncodeResult{f, got, true};
        // Falls through to the internal-exponent path (cannot happen
        // for in-range requests, but stay total).
    }

    // Smallest exponent for which the length mantissa's MSB lands on
    // the derived bit.
    unsigned msb = 0;
    for (uint128 v = len; v > 1; v >>= 1)
        ++msb;
    unsigned e0 = (msb > MW - 2) ? (msb - (MW - 2)) : 0;

    for (unsigned E = e0; E < eFull; ++E) {
        uint128 g = uint128(1) << (E + 3);
        uint64_t b2 = req_base & ~uint64_t(g - 1);
        uint128 t2 = (req_top + g - 1) & ~(g - 1);
        if (t2 > addrSpaceTop)
            continue; // Needs a bigger exponent (or full span).
        BoundsFields f;
        f.ie = true;
        f.bottom = (static_cast<uint32_t>(b2 >> E) & mask(MW) & ~7u) |
            (E & 7u);
        f.top = (static_cast<uint32_t>(t2 >> E) & mask(MW - 2) & ~7u) |
            ((E >> 3) & 7u);
        Bounds got = decode(f, b2);
        if (got.base == b2 && got.top == t2) {
            return EncodeResult{
                f, got, got.base == req_base && got.top == req_top};
        }
    }

    // Full address space fallback.
    BoundsFields f;
    f.ie = true;
    f.bottom = eFull & 7u;
    f.top = (eFull >> 3) & 7u;
    Bounds got = decode(f, req_base);
    return EncodeResult{f, got, got == want};
}

template <unsigned AddrBits, unsigned MW>
uint64_t
Compression<AddrBits, MW>::representableAlignmentMask(uint64_t len)
{
    if (len <= maxExactLength)
        return ~uint64_t(0);
    // No region inside the address space can hold the request: CRAM
    // is 0 ("no alignment helps"), the saturating behaviour of the
    // Morello pseudocode.
    if (uint128(len) > addrSpaceTop)
        return 0;
    unsigned msb = 0;
    for (uint64_t v = len; v > 1; v >>= 1)
        ++msb;
    unsigned e = msb - (MW - 2);
    uint128 g = uint128(1) << (e + 3);
    uint128 rounded = (uint128(len) + g - 1) & ~(g - 1);
    // Rounding to granularity may push the mantissa past its window.
    if ((rounded >> e) >= (uint128(1) << (MW - 1))) {
        ++e;
        g <<= 1;
    }
    return ~(static_cast<uint64_t>(g) - 1);
}

template <unsigned AddrBits, unsigned MW>
uint64_t
Compression<AddrBits, MW>::representableLength(uint64_t len)
{
    uint64_t m = representableAlignmentMask(len);
    if (m == ~uint64_t(0))
        return len;
    if (m == 0)
        return 0; // Length exceeds what any single region can hold.
    // Round up at the CRAM granularity, in 128 bits: a near-top
    // length can round to exactly 2^AddrBits (the full span).  The
    // result truncates to uint64 like Morello's RRLEN register, so a
    // full-span CRRL on a 64-bit architecture reads as 0 — callers
    // must treat CRRL < len as "not satisfiable by one region".
    uint64_t g = ~m + 1;
    uint128 rounded = (uint128(len) + (g - 1)) & ~uint128(g - 1);
    if (rounded > addrSpaceTop)
        return 0; // Unreachable for in-space lengths; stay total.
    return static_cast<uint64_t>(rounded);
}

/** Morello / 64-bit CHERI-RISC-V style compression. */
using CC128 = Compression<64, 14>;
/** CHERIoT-style 32-bit compression (exact bounds up to 511 bytes). */
using CC64 = Compression<32, 11>;

} // namespace cherisem::cap

#endif // CHERISEM_CAP_COMPRESSION_H
