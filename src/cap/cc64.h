/**
 * @file
 * CHERIoT-style 64+1-bit capability architecture (section 3.10).
 *
 * 32-bit addresses, 11-bit mantissa — byte-granular bounds for any
 * object up to 511 bytes, like CHERIoT's encoding, and a compressed
 * 8-bit permission format covering the common basic set.
 */
#ifndef CHERISEM_CAP_CC64_H
#define CHERISEM_CAP_CC64_H

#include "cap/capability.h"

namespace cherisem::cap {

/** Concrete CapArch for the embedded 32-bit core; use cheriot(). */
class CheriotArch : public CapArch
{
  public:
    const char *name() const override { return "cheriot"; }
    unsigned capSize() const override { return 8; }
    unsigned addrBits() const override { return 32; }

    Bounds
    decode(const BoundsFields &f, uint64_t addr) const override
    {
        return CC64::decode(f, static_cast<uint32_t>(addr));
    }
    EncodeResult
    encodeBounds(uint64_t base, uint128 top) const override
    {
        return CC64::encode(static_cast<uint32_t>(base), top);
    }
    bool
    isRepresentable(const BoundsFields &f, const Bounds &current,
                    uint64_t new_addr) const override
    {
        return CC64::isRepresentable(f, current,
                                     static_cast<uint32_t>(new_addr));
    }
    uint64_t
    representableLength(uint64_t len) const override
    {
        if (len >= (uint64_t(1) << 32))
            return 0;
        return CC64::representableLength(len);
    }
    uint64_t
    representableAlignmentMask(uint64_t len) const override
    {
        return CC64::representableAlignmentMask(len);
    }

    PermSet allPerms() const override { return PermSet::basic(); }
    unsigned otypeBits() const override { return 3; }

    void toBytes(const Capability &c, uint8_t *out) const override;
    Capability fromBytes(const uint8_t *bytes, bool tag) const override;
};

} // namespace cherisem::cap

#endif // CHERISEM_CAP_CC64_H
