/**
 * @file
 * Morello-style 128+1-bit capability architecture (section 2.1).
 *
 * 64-bit addresses, 14-bit mantissa CHERI-Concentrate compression,
 * 15-bit object types, 18 permission bits.  The in-memory layout is
 * modelled on Fig. 1: address in the low 64 bits; bounds, otype and
 * permissions packed into the high 64 bits.
 */
#ifndef CHERISEM_CAP_CC128_H
#define CHERISEM_CAP_CC128_H

#include "cap/capability.h"

namespace cherisem::cap {

/** Concrete CapArch for Morello; use the morello() singleton. */
class MorelloArch : public CapArch
{
  public:
    const char *name() const override { return "morello"; }
    unsigned capSize() const override { return 16; }
    unsigned addrBits() const override { return 64; }

    Bounds
    decode(const BoundsFields &f, uint64_t addr) const override
    {
        return CC128::decode(f, addr);
    }
    EncodeResult
    encodeBounds(uint64_t base, uint128 top) const override
    {
        return CC128::encode(base, top);
    }
    bool
    isRepresentable(const BoundsFields &f, const Bounds &current,
                    uint64_t new_addr) const override
    {
        return CC128::isRepresentable(f, current, new_addr);
    }
    uint64_t
    representableLength(uint64_t len) const override
    {
        return CC128::representableLength(len);
    }
    uint64_t
    representableAlignmentMask(uint64_t len) const override
    {
        return CC128::representableAlignmentMask(len);
    }

    PermSet allPerms() const override { return PermSet::all(); }
    unsigned otypeBits() const override { return 15; }

    void toBytes(const Capability &c, uint8_t *out) const override;
    Capability fromBytes(const uint8_t *bytes, bool tag) const override;
};

} // namespace cherisem::cap

#endif // CHERISEM_CAP_CC128_H
