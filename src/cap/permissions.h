/**
 * @file
 * Capability permission sets.
 *
 * The permission list varies between CHERI architectures (section
 * 3.10), but a common basic set is always present.  We model the
 * Morello-style superset; each architecture reports which bits it
 * actually implements via CapArch::allPerms().
 */
#ifndef CHERISEM_CAP_PERMISSIONS_H
#define CHERISEM_CAP_PERMISSIONS_H

#include <cstdint>
#include <string>

namespace cherisem::cap {

/** Individual permission bits (Morello-style naming). */
enum class Perm : uint32_t
{
    Global          = 1u << 0,
    Executive       = 1u << 1,
    User0           = 1u << 2,
    User1           = 1u << 3,
    User2           = 1u << 4,
    User3           = 1u << 5,
    MutableLoad     = 1u << 6,
    CompartmentId   = 1u << 7,
    BranchSealedPair = 1u << 8,
    System          = 1u << 9,
    Unseal          = 1u << 10,
    Seal            = 1u << 11,
    StoreLocal      = 1u << 12,
    StoreCap        = 1u << 13,
    LoadCap         = 1u << 14,
    Execute         = 1u << 15,
    Store           = 1u << 16,
    Load            = 1u << 17,
};

/** A set of permissions; capability operations may clear but never set
 *  bits (monotonicity). */
class PermSet
{
  public:
    constexpr PermSet() = default;
    constexpr explicit PermSet(uint32_t bits) : bits_(bits) {}

    constexpr bool has(Perm p) const
    {
        return (bits_ & static_cast<uint32_t>(p)) != 0;
    }
    constexpr PermSet with(Perm p) const
    {
        return PermSet(bits_ | static_cast<uint32_t>(p));
    }
    constexpr PermSet without(Perm p) const
    {
        return PermSet(bits_ & ~static_cast<uint32_t>(p));
    }
    /** Intersection: the only way to combine perms (monotone). */
    constexpr PermSet operator&(PermSet o) const
    {
        return PermSet(bits_ & o.bits_);
    }
    constexpr uint32_t bits() const { return bits_; }
    constexpr bool operator==(const PermSet &) const = default;

    /** All bits of the modelled superset. */
    static constexpr PermSet all() { return PermSet(0x3ffff); }
    /** The cross-architecture basic set (section 3.10). */
    static PermSet basic();
    /** Read/write data+cap perms used for ordinary allocations. */
    static PermSet data();
    /** Data perms without Store/StoreCap (const objects, section 3.9). */
    static PermSet readOnlyData();
    /** Perms for function-pointer (sentry) capabilities. */
    static PermSet code();

    /**
     * Short render in the style of the paper's Appendix A: "rwRW" plus
     * 'x' when executable (r=Load, w=Store, R=LoadCap, W=StoreCap).
     */
    std::string shortStr() const;

  private:
    uint32_t bits_ = 0;
};

} // namespace cherisem::cap

#endif // CHERISEM_CAP_PERMISSIONS_H
