#include "cap/capability.h"

namespace cherisem::cap {

Capability
Capability::null(const CapArch &arch)
{
    Capability c(arch);
    c.tag_ = false;
    c.address_ = 0;
    c.perms_ = PermSet();
    EncodeResult enc = arch.encodeBounds(0, arch.addrSpaceTop());
    c.fields_ = enc.fields;
    c.bounds_ = enc.bounds;
    return c;
}

Capability
Capability::make(const CapArch &arch, uint64_t base, uint128 top,
                 PermSet perms)
{
    Capability c(arch);
    EncodeResult enc = arch.encodeBounds(base, top);
    c.fields_ = enc.fields;
    c.bounds_ = enc.bounds;
    c.address_ = base;
    c.perms_ = perms & arch.allPerms();
    c.tag_ = true;
    return c;
}

Capability
Capability::withAddress(uint64_t a) const
{
    Capability c = *this;
    a &= arch_->addrMask();
    if (a == address_)
        return c; // No modification: sealed caps stay intact.
    c.address_ = a;
    if (isSealed() && tag_) {
        // Modifying a sealed capability clears the tag.
        c.tag_ = false;
        return c;
    }
    if (!arch_->isRepresentable(fields_, bounds_, a)) {
        // Hardware behaviour (section 3.2): address as expected, tag
        // cleared, bounds re-derived from the unchanged fields.
        c.tag_ = false;
        c.bounds_ = arch_->decode(fields_, a);
    }
    return c;
}

Capability
Capability::withAddressGhost(uint64_t a) const
{
    Capability c = *this;
    a &= arch_->addrMask();
    if (a == address_)
        return c;
    c.address_ = a;
    if (isSealed() && tag_) {
        c.tag_ = false;
        return c;
    }
    if (ghost_.boundsUnspec) {
        // Once the abstract machine has seen non-representability the
        // ghost bit is sticky (section 3.3: optimisations may
        // eliminate the excursion, so neither tag nor bounds may be
        // relied on again); only the address stays authoritative.
        return c;
    }
    if (!arch_->isRepresentable(fields_, bounds_, a)) {
        c.tag_ = false;
        c.ghost_.boundsUnspec = true;
    }
    return c;
}

Capability
Capability::withBounds(uint64_t base, uint128 top) const
{
    Capability c = *this;
    EncodeResult enc = arch_->encodeBounds(base, top);
    c.fields_ = enc.fields;
    c.bounds_ = enc.bounds;
    c.address_ = base;
    // Monotonicity: requesting bounds outside the current ones (or
    // narrowing a sealed/untagged capability) yields an untagged
    // result.
    bool grows = !(bounds_.base <= enc.bounds.base &&
                   enc.bounds.top <= bounds_.top);
    if (!tag_ || isSealed() || grows || !inBounds(address_, 0))
        c.tag_ = false;
    return c;
}

Capability
Capability::withPerms(PermSet p) const
{
    Capability c = *this;
    c.perms_ = perms_ & p;
    if (isSealed() && tag_)
        c.tag_ = false;
    return c;
}

Capability
Capability::withTagCleared() const
{
    Capability c = *this;
    c.tag_ = false;
    return c;
}

Capability
Capability::withTag(bool t) const
{
    Capability c = *this;
    c.tag_ = t;
    return c;
}

Capability
Capability::withGhost(GhostState g) const
{
    Capability c = *this;
    c.ghost_ = g;
    return c;
}

Capability
Capability::sealed(uint64_t otype) const
{
    Capability c = *this;
    c.otype_ = otype & ((uint64_t(1) << arch_->otypeBits()) - 1);
    if (isSealed())
        c.tag_ = false; // Re-sealing a sealed capability is invalid.
    return c;
}

Capability
Capability::unsealed() const
{
    Capability c = *this;
    c.otype_ = OTYPE_UNSEALED;
    return c;
}

bool
Capability::equalExact(const Capability &o) const
{
    return arch_ == o.arch_ && tag_ == o.tag_ && address_ == o.address_ &&
        perms_ == o.perms_ && otype_ == o.otype_ && fields_ == o.fields_;
}

} // namespace cherisem::cap
