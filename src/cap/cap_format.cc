#include "cap/cap_format.h"

#include "support/format.h"

namespace cherisem::cap {

std::string
formatCap(const Capability &c, FormatStyle style)
{
    std::string out = hexStr(c.address());
    bool bounds_known =
        style == FormatStyle::Concrete || !c.ghost().boundsUnspec;
    if (bounds_known) {
        out += " [" + c.perms().shortStr() + "," + hexStr(c.base()) +
            "-" + hexStr(c.top()) + "]";
    } else {
        out += " [?-?]";
    }
    if (c.isSentry())
        out += " (sentry)";
    else if (c.isSealed())
        out += " (sealed:" + decStr(uint128(c.otype())) + ")";
    if (style == FormatStyle::Abstract) {
        if (c.ghost().tagUnspec)
            out += " (tag?)";
        else if (!c.tag())
            out += " (notag)";
    } else if (!c.tag()) {
        out += " (invalid)";
    }
    return out;
}

std::string
formatFields(const Capability &c)
{
    const BoundsFields &f = c.fields();
    std::string out;
    out += "arch=" + std::string(c.arch().name());
    out += " tag=" + std::string(c.tag() ? "1" : "0");
    out += " perms=" + hexStr(c.perms().bits());
    out += " otype=" + hexStr(c.otype());
    out += " ie=" + std::string(f.ie ? "1" : "0");
    out += " bottom=" + hexStr(f.bottom);
    out += " top=" + hexStr(f.top);
    out += " address=" + hexStr(c.address());
    return out;
}

} // namespace cherisem::cap
