/**
 * @file
 * The abstract capability value and the architecture interface.
 *
 * Mirrors the paper's "abstract capabilities" Coq module type
 * (section 4.1): an opaque capability with address, bounds,
 * permissions, object type, tag — plus the two-bit per-value *ghost
 * state* the semantics uses for representability excursions
 * (section 3.3) and representation-byte writes (section 3.5).
 *
 * CapArch is the implementation-defined part (section 3.10): bounds
 * compression, capability size, in-memory layout.  Two concrete
 * architectures are provided: Morello (cc128.h) and a CHERIoT-style
 * 32-bit core (cc64.h).
 */
#ifndef CHERISEM_CAP_CAPABILITY_H
#define CHERISEM_CAP_CAPABILITY_H

#include <cstdint>

#include "cap/compression.h"
#include "cap/permissions.h"

namespace cherisem::cap {

/**
 * Per-capability-value ghost state (section 4.3): the first bit says
 * the tag is unspecified (its representation was modified directly);
 * the second says address/bounds are unspecified (abstract-machine
 * arithmetic made it non-representable).
 */
struct GhostState
{
    bool tagUnspec = false;
    bool boundsUnspec = false;

    bool any() const { return tagUnspec || boundsUnspec; }
    bool operator==(const GhostState &) const = default;
};

/// @name Reserved object types.
/// @{
/** Unsealed (ordinary) capability. */
inline constexpr uint64_t OTYPE_UNSEALED = 0;
/** Sealed entry ("sentry"): used for function pointers. */
inline constexpr uint64_t OTYPE_SENTRY = 1;
/** First object type available for explicit sealing. */
inline constexpr uint64_t OTYPE_FIRST_USER = 4;
/// @}

class Capability;

/**
 * An architecture's implementation-defined capability behaviour.
 *
 * Pure interface (the paper's Coq "module type"); the memory model and
 * interpreter only ever see this, which is what makes the semantics
 * portable across CHERI architectures (section 3.10).
 */
class CapArch
{
  public:
    virtual ~CapArch() = default;

    virtual const char *name() const = 0;
    /** Capability size in bytes (also the tag granule). */
    virtual unsigned capSize() const = 0;
    virtual unsigned addrBits() const = 0;

    virtual Bounds decode(const BoundsFields &f, uint64_t addr) const = 0;
    virtual EncodeResult encodeBounds(uint64_t base,
                                      uint128 top) const = 0;
    virtual bool isRepresentable(const BoundsFields &f,
                                 const Bounds &current,
                                 uint64_t new_addr) const = 0;
    virtual uint64_t representableLength(uint64_t len) const = 0;
    virtual uint64_t representableAlignmentMask(uint64_t len) const = 0;

    /** Permissions this architecture implements. */
    virtual PermSet allPerms() const = 0;
    virtual unsigned otypeBits() const = 0;

    /** Serialize @p c (minus the out-of-band tag) into capSize()
     *  bytes, little-endian, Fig.-1-style layout. */
    virtual void toBytes(const Capability &c, uint8_t *out) const = 0;
    /** Rebuild a capability from its representation bytes; the tag
     *  comes from the out-of-band metadata. */
    virtual Capability fromBytes(const uint8_t *bytes,
                                 bool tag) const = 0;

    /** One past the largest address. */
    uint128 addrSpaceTop() const { return uint128(1) << addrBits(); }
    uint64_t
    addrMask() const
    {
        return addrBits() >= 64 ? ~uint64_t(0)
                                : ((uint64_t(1) << addrBits()) - 1);
    }
};

/** The Morello-style 64-bit architecture singleton. */
const CapArch &morello();
/** The CHERIoT-style 32-bit architecture singleton. */
const CapArch &cheriot();

/**
 * A capability value.
 *
 * Immutable in the hardware sense: all mutators return a new value,
 * and bounds-growing or sealed-modifying operations clear the tag
 * rather than fault (matching the "clear tag to protect integrity"
 * behaviour of section 2.1).
 */
class Capability
{
  public:
    /** The NULL capability: untagged, zero address, full-span bounds,
     *  no permissions. */
    static Capability null(const CapArch &arch);

    /**
     * Forge a fresh tagged capability for an allocation (what the
     * compiler/allocator/linker does, section 3).  Bounds round
     * outward when not exactly representable.
     */
    static Capability make(const CapArch &arch, uint64_t base,
                           uint128 top, PermSet perms);

    const CapArch &arch() const { return *arch_; }
    bool tag() const { return tag_; }
    uint64_t address() const { return address_; }
    uint128 base() const { return bounds_.base; }
    /** Exclusive upper bound (may be 2^addrBits). */
    uint128 top() const { return bounds_.top; }
    uint128 length() const { return bounds_.length(); }
    const Bounds &bounds() const { return bounds_; }
    const BoundsFields &fields() const { return fields_; }
    PermSet perms() const { return perms_; }
    uint64_t otype() const { return otype_; }
    bool isSealed() const { return otype_ != OTYPE_UNSEALED; }
    bool isSentry() const { return otype_ == OTYPE_SENTRY; }
    const GhostState &ghost() const { return ghost_; }

    bool
    inBounds(uint64_t addr, uint64_t size) const
    {
        return bounds_.contains(addr, size);
    }
    bool canLoad() const { return perms_.has(Perm::Load); }
    bool canStore() const { return perms_.has(Perm::Store); }
    bool canLoadCap() const { return perms_.has(Perm::LoadCap); }
    bool canStoreCap() const { return perms_.has(Perm::StoreCap); }

    /**
     * Hardware address update (capability arithmetic): the address
     * becomes @p a; if the result is not representable, bounds are
     * re-derived and the tag is cleared (section 3.2).  Sealed
     * capabilities also lose their tag on modification.
     */
    Capability withAddress(uint64_t a) const;

    /**
     * Abstract-machine (u)intptr_t arithmetic (section 3.3 choice
     * (3)/(c)): the address value is always preserved; going outside
     * the representable region clears the tag and marks the bounds
     * unspecified in ghost state rather than re-deriving them.
     */
    Capability withAddressGhost(uint64_t a) const;

    /** Narrow bounds (cheri_bounds_set).  Requested bounds exceeding
     *  the current ones, or a sealed source, clear the tag. */
    Capability withBounds(uint64_t base, uint128 top) const;

    /** Intersect permissions (cheri_perms_and). */
    Capability withPerms(PermSet p) const;

    Capability withTagCleared() const;
    Capability withTag(bool t) const;
    Capability withGhost(GhostState g) const;

    /** Seal as a sentry or with an explicit object type. */
    Capability sealed(uint64_t otype) const;
    /** Remove the seal (authority checks happen in the caller). */
    Capability unsealed() const;

    /** Full-field comparison backing cheri_is_equal_exact
     *  (section 3.6); ghost state is *not* compared — callers must
     *  consult it to decide whether the answer is even specified. */
    bool equalExact(const Capability &o) const;

    bool operator==(const Capability &o) const { return equalExact(o); }

  private:
    explicit Capability(const CapArch &arch) : arch_(&arch) {}

    const CapArch *arch_;
    bool tag_ = false;
    uint64_t address_ = 0;
    PermSet perms_;
    uint64_t otype_ = OTYPE_UNSEALED;
    BoundsFields fields_;
    Bounds bounds_;
    GhostState ghost_;

    friend class MorelloArch;
    friend class CheriotArch;
};

} // namespace cherisem::cap

#endif // CHERISEM_CAP_CAPABILITY_H
