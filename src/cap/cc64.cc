#include "cap/cc64.h"

#include <cstring>

namespace cherisem::cap {

namespace {

// High-word (32-bit) layout:
//   [10:0] bottom (11)   [19:11] top (9)   [20] IE
//   [23:21] otype (3)    [31:24] compressed perms (8)
constexpr unsigned BOTTOM_SHIFT = 0;
constexpr unsigned TOP_SHIFT = 11;
constexpr unsigned IE_SHIFT = 20;
constexpr unsigned OTYPE_SHIFT = 21;
constexpr unsigned PERMS_SHIFT = 24;

// The common basic permission set (section 3.10) in compression order.
constexpr Perm COMPRESSED_PERMS[8] = {
    Perm::Load,    Perm::Store, Perm::LoadCap, Perm::StoreCap,
    Perm::Execute, Perm::Seal,  Perm::Unseal,  Perm::Global,
};

uint8_t
compressPerms(PermSet p)
{
    uint8_t out = 0;
    for (unsigned i = 0; i < 8; ++i) {
        if (p.has(COMPRESSED_PERMS[i]))
            out |= uint8_t(1) << i;
    }
    return out;
}

PermSet
expandPerms(uint8_t bits)
{
    PermSet p;
    for (unsigned i = 0; i < 8; ++i) {
        if (bits & (uint8_t(1) << i))
            p = p.with(COMPRESSED_PERMS[i]);
    }
    return p;
}

uint32_t
loadLE32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

void
storeLE32(uint8_t *p, uint32_t v)
{
    std::memcpy(p, &v, 4);
}

} // namespace

void
CheriotArch::toBytes(const Capability &c, uint8_t *out) const
{
    storeLE32(out, static_cast<uint32_t>(c.address()));
    uint32_t hi = 0;
    hi |= (c.fields().bottom & 0x7ffu) << BOTTOM_SHIFT;
    hi |= (c.fields().top & 0x1ffu) << TOP_SHIFT;
    hi |= (c.fields().ie ? 1u : 0u) << IE_SHIFT;
    hi |= (static_cast<uint32_t>(c.otype()) & 7u) << OTYPE_SHIFT;
    hi |= uint32_t(compressPerms(c.perms())) << PERMS_SHIFT;
    storeLE32(out + 4, hi);
}

Capability
CheriotArch::fromBytes(const uint8_t *bytes, bool tag) const
{
    uint32_t addr = loadLE32(bytes);
    uint32_t hi = loadLE32(bytes + 4);
    BoundsFields f;
    f.bottom = (hi >> BOTTOM_SHIFT) & 0x7ffu;
    f.top = (hi >> TOP_SHIFT) & 0x1ffu;
    f.ie = ((hi >> IE_SHIFT) & 1u) != 0;

    Capability c(*this);
    c.address_ = addr;
    c.fields_ = f;
    c.bounds_ = decode(f, addr);
    c.otype_ = (hi >> OTYPE_SHIFT) & 7u;
    c.perms_ = expandPerms(static_cast<uint8_t>(hi >> PERMS_SHIFT));
    c.tag_ = tag;
    return c;
}

const CapArch &
cheriot()
{
    // Stateless; const for the same reason as morello()'s singleton.
    static const CheriotArch arch;
    return arch;
}

} // namespace cherisem::cap
