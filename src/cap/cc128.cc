#include "cap/cc128.h"

#include <cstring>

namespace cherisem::cap {

namespace {

// High-word bit positions (Fig.-1-inspired layout):
//   [13:0]  bottom (14)      [25:14] top (12)      [26] IE
//   [41:27] otype (15)       [59:42] perms (18)    [63:60] reserved
constexpr unsigned BOTTOM_SHIFT = 0;
constexpr unsigned TOP_SHIFT = 14;
constexpr unsigned IE_SHIFT = 26;
constexpr unsigned OTYPE_SHIFT = 27;
constexpr unsigned PERMS_SHIFT = 42;

uint64_t
loadLE64(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

void
storeLE64(uint8_t *p, uint64_t v)
{
    std::memcpy(p, &v, 8);
}

} // namespace

void
MorelloArch::toBytes(const Capability &c, uint8_t *out) const
{
    storeLE64(out, c.address());
    uint64_t hi = 0;
    hi |= (uint64_t(c.fields().bottom) & 0x3fff) << BOTTOM_SHIFT;
    hi |= (uint64_t(c.fields().top) & 0xfff) << TOP_SHIFT;
    hi |= (c.fields().ie ? uint64_t(1) : 0) << IE_SHIFT;
    hi |= (c.otype() & 0x7fff) << OTYPE_SHIFT;
    hi |= (uint64_t(c.perms().bits()) & 0x3ffff) << PERMS_SHIFT;
    storeLE64(out + 8, hi);
}

Capability
MorelloArch::fromBytes(const uint8_t *bytes, bool tag) const
{
    uint64_t addr = loadLE64(bytes);
    uint64_t hi = loadLE64(bytes + 8);
    BoundsFields f;
    f.bottom = static_cast<uint32_t>((hi >> BOTTOM_SHIFT) & 0x3fff);
    f.top = static_cast<uint32_t>((hi >> TOP_SHIFT) & 0xfff);
    f.ie = ((hi >> IE_SHIFT) & 1) != 0;

    Capability c(*this);
    c.address_ = addr;
    c.fields_ = f;
    c.bounds_ = decode(f, addr);
    c.otype_ = (hi >> OTYPE_SHIFT) & 0x7fff;
    c.perms_ = PermSet(static_cast<uint32_t>((hi >> PERMS_SHIFT) &
                                             0x3ffff));
    c.tag_ = tag;
    return c;
}

const CapArch &
morello()
{
    // Stateless (virtual dispatch over pure functions); const so the
    // singleton is immutable and shareable across worker threads.
    static const MorelloArch arch;
    return arch;
}

} // namespace cherisem::cap
