/**
 * @file
 * The cherisem command-line driver: run a CHERI C source file under
 * any implementation profile (the "test oracle" use of the
 * executable semantics, section 7).
 *
 *   cherisem_run file.c [--profile NAME] [--all] [--stats]
 *                       [--trace=<sink>[:<arg>]]
 *
 * Trace sinks (the execution-witness subsystem, src/obs/):
 *
 *   --trace=ring[:N]      capture the last N events in memory and
 *                         print them after the run
 *   --trace=jsonl:PATH    stream events to PATH, one JSON per line
 *   --trace=chrome:PATH   write a Chrome trace_event file; open it
 *                         in chrome://tracing or ui.perfetto.dev
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "driver/interpreter.h"
#include "obs/sinks.h"

using namespace cherisem::driver;
namespace obs = cherisem::obs;

namespace {

int
runOne(const std::string &src, Profile p, const std::string &file,
       bool verbose, obs::TraceSink *sink)
{
    p.memConfig.traceSink = sink;
    RunResult r = runSource(src, p, file);
    printf("[%s] %s\n", p.name.c_str(), r.summary().c_str());
    if (!r.outcome.output.empty()) {
        printf("%s", r.outcome.output.c_str());
        if (r.outcome.output.back() != '\n')
            printf("\n");
    }
    if (verbose) {
        printf("  steps=%llu loads=%llu stores=%llu allocs=%llu "
               "ghost-invalidations=%llu\n",
               (unsigned long long)r.outcome.steps,
               (unsigned long long)r.outcome.memStats.loads,
               (unsigned long long)r.outcome.memStats.stores,
               (unsigned long long)r.outcome.memStats.allocations,
               (unsigned long long)
                   r.outcome.memStats.ghostTagInvalidations);
        const ::cherisem::revoke::RevokeStats &rv =
            r.outcome.memStats.revoke;
        if (rv.sweeps || rv.regionsQuarantined || rv.pendingRegions) {
            printf("  revoke: sweeps=%llu slots-visited=%llu "
                   "tags-revoked=%llu quarantined=%llu "
                   "flushed=%llu pending=%llu sweep-ns=%llu\n",
                   (unsigned long long)rv.sweeps,
                   (unsigned long long)rv.slotsVisited,
                   (unsigned long long)rv.tagsRevoked,
                   (unsigned long long)rv.regionsQuarantined,
                   (unsigned long long)rv.regionsFlushed,
                   (unsigned long long)rv.pendingRegions,
                   (unsigned long long)rv.sweepNs);
        }
        printf("  parse=%lluns sema=%lluns optimize=%lluns "
               "eval=%lluns\n",
               (unsigned long long)r.phases.parseNs,
               (unsigned long long)r.phases.semaNs,
               (unsigned long long)r.phases.optimizeNs,
               (unsigned long long)r.phases.evalNs);
        for (const auto &[name, count] : r.outcome.intrinsicCalls)
            printf("  intrinsic %-28s %llu\n", name.c_str(),
                   (unsigned long long)count);
    }
    if (auto *ring = dynamic_cast<obs::RingBufferSink *>(sink)) {
        if (ring->dropped() > 0)
            printf("  (ring full: %llu oldest events dropped)\n",
                   (unsigned long long)ring->dropped());
        for (const obs::TraceEvent &e : ring->snapshot())
            printf("  %s\n", obs::renderEvent(e).c_str());
        ring->clear();
    }
    if (r.frontendError)
        return 2;
    return r.outcome.kind == cherisem::corelang::Outcome::Kind::Exit
               ? r.outcome.exitCode
               : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string file;
    std::string profile = "cerberus";
    std::string traceSpec;
    bool all = false;
    bool verbose = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--profile") && i + 1 < argc) {
            profile = argv[++i];
        } else if (!std::strcmp(argv[i], "--all")) {
            all = true;
        } else if (!std::strcmp(argv[i], "--trace") ||
                   !std::strcmp(argv[i], "--stats")) {
            // Bare --trace is kept as the old stats-only spelling.
            verbose = true;
        } else if (!std::strncmp(argv[i], "--trace=", 8)) {
            traceSpec = argv[i] + 8;
        } else if (!std::strcmp(argv[i], "--list")) {
            for (const Profile &p : allProfiles())
                printf("%-20s %s\n", p.name.c_str(),
                       p.description.c_str());
            return 0;
        } else {
            file = argv[i];
        }
    }
    if (file.empty()) {
        fprintf(stderr,
                "usage: cherisem_run file.c [--profile NAME] [--all] "
                "[--stats] [--trace=<sink>[:<arg>]] [--list]\n");
        return 2;
    }
    std::ifstream in(file);
    if (!in) {
        fprintf(stderr, "cannot open %s\n", file.c_str());
        return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();

    std::unique_ptr<obs::TraceSink> sink;
    if (!traceSpec.empty()) {
        std::string err;
        sink = obs::makeSink(traceSpec, &err);
        if (!sink) {
            fprintf(stderr, "--trace: %s\n", err.c_str());
            return 2;
        }
    }

    int rc = 0;
    if (all) {
        for (const Profile &p : allProfiles())
            rc = runOne(ss.str(), p, file, verbose, sink.get());
    } else {
        const Profile *p = findProfile(profile);
        if (!p) {
            fprintf(stderr, "unknown profile %s (try --list)\n",
                    profile.c_str());
            return 2;
        }
        rc = runOne(ss.str(), *p, file, verbose, sink.get());
    }
    if (sink)
        sink->flush();
    return rc;
}
