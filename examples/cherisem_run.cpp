/**
 * @file
 * The cherisem command-line driver: run a CHERI C source file under
 * any implementation profile (the "test oracle" use of the
 * executable semantics, section 7).
 *
 *   cherisem_run file.c [--profile NAME] [--all] [--trace]
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "driver/interpreter.h"

using namespace cherisem::driver;

namespace {

int
runOne(const std::string &src, const Profile &p,
       const std::string &file, bool verbose)
{
    RunResult r = runSource(src, p, file);
    printf("[%s] %s\n", p.name.c_str(), r.summary().c_str());
    if (!r.outcome.output.empty()) {
        printf("%s", r.outcome.output.c_str());
        if (r.outcome.output.back() != '\n')
            printf("\n");
    }
    if (verbose) {
        printf("  steps=%llu loads=%llu stores=%llu allocs=%llu "
               "ghost-invalidations=%llu\n",
               (unsigned long long)r.outcome.steps,
               (unsigned long long)r.outcome.memStats.loads,
               (unsigned long long)r.outcome.memStats.stores,
               (unsigned long long)r.outcome.memStats.allocations,
               (unsigned long long)
                   r.outcome.memStats.ghostTagInvalidations);
    }
    if (r.frontendError)
        return 2;
    return r.outcome.kind == cherisem::corelang::Outcome::Kind::Exit
               ? r.outcome.exitCode
               : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string file;
    std::string profile = "cerberus";
    bool all = false;
    bool verbose = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--profile") && i + 1 < argc) {
            profile = argv[++i];
        } else if (!std::strcmp(argv[i], "--all")) {
            all = true;
        } else if (!std::strcmp(argv[i], "--trace")) {
            verbose = true;
        } else if (!std::strcmp(argv[i], "--list")) {
            for (const Profile &p : allProfiles())
                printf("%-20s %s\n", p.name.c_str(),
                       p.description.c_str());
            return 0;
        } else {
            file = argv[i];
        }
    }
    if (file.empty()) {
        fprintf(stderr,
                "usage: cherisem_run file.c [--profile NAME] [--all] "
                "[--trace] [--list]\n");
        return 2;
    }
    std::ifstream in(file);
    if (!in) {
        fprintf(stderr, "cannot open %s\n", file.c_str());
        return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();

    if (all) {
        int rc = 0;
        for (const Profile &p : allProfiles())
            rc = runOne(ss.str(), p, file, verbose);
        return rc;
    }
    const Profile *p = findProfile(profile);
    if (!p) {
        fprintf(stderr, "unknown profile %s (try --list)\n",
                profile.c_str());
        return 2;
    }
    return runOne(ss.str(), *p, file, verbose);
}
