/**
 * @file
 * The cherisem command-line driver: run a CHERI C source file under
 * any implementation profile (the "test oracle" use of the
 * executable semantics, section 7).
 *
 *   cherisem_run file.c [--profile NAME] [--all] [--stats]
 *                       [--engine tree|bytecode] [--bench-repeat N]
 *                       [--dump-bytecode] [--trace=<sink>[:<arg>]]
 *                       [--replay-to SEQ]
 *
 * Trace sinks (the execution-witness subsystem, src/obs/):
 *
 *   --trace=ring[:N]      capture the last N events in memory and
 *                         print them after the run
 *   --trace=jsonl:PATH    stream events to PATH, one JSON per line
 *   --trace=chrome:PATH   write a Chrome trace_event file; open it
 *                         in chrome://tracing or ui.perfetto.dev
 *
 * Time-travel replay (--replay-to SEQ, src/obs/replay.h): run the
 * program once recording its witness stream and capturing a COW
 * snapshot at the post-prelude quiescent point, then travel back to
 * trace sequence number SEQ by restoring the nearest snapshot at or
 * before it and re-executing only the remaining tail.  The re-derived
 * prefix is checked bit-for-bit against the recording, and the events
 * around SEQ are printed.  With a __prelude()-shaped program and a
 * target past the prelude this touches only the pages main() dirties.
 *
 * Engine selection (--engine) picks the tree-walking oracle or the
 * bytecode VM; both produce bit-identical outcomes and witness
 * streams.  --bench-repeat compiles once and re-runs evaluation N
 * times, reporting the minimum (the fair compile-once/run-many
 * comparison).  --dump-bytecode prints the compiled program's
 * disassembly instead of running it.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "corelang/bytecode.h"
#include "corelang/machine.h"
#include "corelang/vm.h"
#include "driver/interpreter.h"
#include "frontend/parser.h"
#include "obs/replay.h"
#include "obs/sinks.h"
#include "obs/trace_diff.h"
#include "sema/sema.h"

using namespace cherisem::driver;
namespace obs = cherisem::obs;
namespace corelang = cherisem::corelang;

namespace {

/** Parse/analyse/optimise under @p p; false (with a message on
 *  stderr) on a frontend error.  The bench and dump modes need the
 *  Core program itself, which runSource() never exposes. */
bool
compileFrontend(const std::string &src, const Profile &p,
                const std::string &file,
                std::optional<cherisem::sema::Program> *out)
{
    try {
        cherisem::frontend::TranslationUnit unit =
            cherisem::frontend::parse(src, file);
        cherisem::ctype::MachineLayout machine{
            p.memConfig.arch->capSize(),
            p.memConfig.arch->addrBits() / 8};
        out->emplace(
            cherisem::sema::analyze(std::move(unit), machine));
        corelang::optimize(**out, p.optims);
    } catch (const cherisem::frontend::FrontendError &e) {
        fprintf(stderr, "%s: %s\n", file.c_str(), e.str().c_str());
        return false;
    } catch (const cherisem::sema::SemaError &e) {
        fprintf(stderr, "%s: %s\n", file.c_str(), e.str().c_str());
        return false;
    }
    return true;
}

/** --dump-bytecode: compile and print, don't run. */
int
dumpBytecode(const std::string &src, const Profile &p,
             const std::string &file)
{
    std::optional<cherisem::sema::Program> prog;
    if (!compileFrontend(src, p, file, &prog))
        return 2;
    corelang::BytecodeModule m = corelang::compileProgram(*prog);
    printf("%s", corelang::disassemble(m, *prog).c_str());
    return 0;
}

/** --bench-repeat N: compile once, evaluate N times, report the
 *  minimum evaluation time (matching bench/micro_interp.cpp). */
int
benchRepeat(const std::string &src, Profile p,
            const std::string &file, int reps)
{
    std::optional<cherisem::sema::Program> prog;
    if (!compileFrontend(src, p, file, &prog))
        return 2;
    corelang::EvalOptions opts = p.evalOptions();
    corelang::BytecodeModule module;
    if (opts.engine == corelang::Engine::Bytecode)
        module = corelang::compileProgram(*prog);
    corelang::Outcome outcome;
    uint64_t minNs = ~0ull, totalNs = 0;
    for (int i = 0; i < reps; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        if (opts.engine == corelang::Engine::Bytecode) {
            corelang::Vm vm(*prog, opts, &module);
            outcome = vm.run();
        } else {
            corelang::Machine machine(*prog, opts);
            outcome = machine.run();
        }
        auto t1 = std::chrono::steady_clock::now();
        uint64_t ns = (uint64_t)std::chrono::duration_cast<
                          std::chrono::nanoseconds>(t1 - t0)
                          .count();
        minNs = ns < minNs ? ns : minNs;
        totalNs += ns;
    }
    printf("[%s/%s] %s\n", p.name.c_str(),
           corelang::engineName(opts.engine),
           outcome.summary().c_str());
    printf("  reps=%d eval-min=%lluns eval-mean=%lluns\n", reps,
           (unsigned long long)minNs,
           (unsigned long long)(totalNs / (uint64_t)reps));
    return outcome.kind == corelang::Outcome::Kind::Exit
               ? outcome.exitCode
               : 1;
}

/** --replay-to SEQ: record a traced run (capturing the post-prelude
 *  snapshot keyed by the sink sequence number), then time-travel to
 *  SEQ by restoring the nearest snapshot and re-executing the tail.
 *  The replayed prefix must match the recording bit-for-bit. */
int
replayRun(const std::string &src, Profile p, const std::string &file,
          uint64_t target, obs::TraceSink *userSink)
{
    // Big enough that any program this driver realistically traces
    // fits without wrapping; prefix replay needs the whole stream.
    constexpr size_t kReplayRingCapacity = 1 << 20;

    std::optional<cherisem::sema::Program> prog;
    if (!compileFrontend(src, p, file, &prog))
        return 2;
    corelang::EvalOptions opts = p.evalOptions();
    corelang::BytecodeModule module;
    if (opts.engine == corelang::Engine::Bytecode)
        module = corelang::compileProgram(*prog);
    auto makeEngine = [&](const corelang::EvalOptions &o)
        -> std::unique_ptr<corelang::Machine> {
        if (o.engine == corelang::Engine::Bytecode)
            return std::make_unique<corelang::Vm>(*prog, o, &module);
        return std::make_unique<corelang::Machine>(*prog, o);
    };

    // Record pass: one full traced run; capture() at the quiescent
    // post-prelude point, keyed by the events emitted so far.
    obs::RingBufferSink record(kReplayRingCapacity);
    obs::SnapshotIndex<corelang::Machine::SnapshotPtr> index;
    corelang::Outcome outcome;
    {
        corelang::EvalOptions ropts = opts;
        ropts.memConfig.traceSink = &record;
        std::unique_ptr<corelang::Machine> m = makeEngine(ropts);
        std::optional<corelang::Outcome> pre = m->runPrelude();
        if (!pre)
            index.add(record.emitted(), m->capture());
        outcome = pre ? *pre : m->runMain();
    }
    printf("[%s] %s\n", p.name.c_str(), outcome.summary().c_str());
    uint64_t total = record.emitted();
    if (total == 0) {
        fprintf(stderr, "replay: the recording is empty (no witness "
                        "events) — nothing to travel to\n");
        return 1;
    }
    if (record.dropped() > 0) {
        fprintf(stderr,
                "replay: recording wrapped (%llu events > ring "
                "capacity %zu); prefix replay needs the full "
                "stream\n",
                (unsigned long long)total, kReplayRingCapacity);
        return 1;
    }
    uint64_t stopAt = target;
    if (stopAt >= total) {
        stopAt = total - 1;
        printf("replay: seq %llu is past the end of the recording; "
               "clamped to last seq %llu\n",
               (unsigned long long)target,
               (unsigned long long)stopAt);
    }
    std::vector<obs::TraceEvent> recorded = record.snapshot();

    // Replay pass: nearest snapshot at-or-before the target, replay
    // the recorded prefix (re-stamped 0..P-1 by the fresh sink),
    // re-execute only the tail.  A target inside the prelude has no
    // snapshot at or before it: cold re-execution from seq 0.
    const auto *entry = index.nearest(stopAt);
    obs::StopAtSeqSink stop(stopAt, userSink);
    corelang::EvalOptions sopts = opts;
    sopts.memConfig.traceSink = &stop;
    try {
        std::unique_ptr<corelang::Machine> m = makeEngine(sopts);
        if (entry) {
            m->restoreSnapshot(entry->snap);
            for (uint64_t i = 0; i < entry->seq; ++i)
                stop.emit(recorded[i]);
            (void)m->runMain();
        } else {
            std::optional<corelang::Outcome> pre = m->runPrelude();
            if (!pre)
                (void)m->runMain();
        }
    } catch (const obs::ReplayStop &) {
        // The target event has been re-derived; the half-finished
        // machine is dropped on the floor — only its stream matters.
    }
    if (!stop.stopped()) {
        fprintf(stderr,
                "replay: re-execution ended after %zu events without "
                "reaching seq %llu — replay is not deterministic\n",
                stop.events().size(), (unsigned long long)stopAt);
        return 1;
    }

    // The whole point: the re-derived prefix must be bit-identical
    // to the recording (payloads and sequence numbers).
    std::vector<obs::TraceEvent> want(
        recorded.begin(),
        recorded.begin() + static_cast<ptrdiff_t>(stopAt) + 1);
    obs::DiffResult d =
        obs::diffEventStreams(stop.events(), want, obs::DiffOptions{});
    if (!d.equivalent) {
        fprintf(stderr, "replay: re-derived stream diverges from the "
                        "recording: %s\n",
                d.summary().c_str());
        return 1;
    }

    if (entry)
        printf("replay: restored snapshot at seq %llu, re-executed "
               "%llu of %llu events (prefix replayed), stream "
               "matches the recording\n",
               (unsigned long long)entry->seq,
               (unsigned long long)(stopAt + 1 - entry->seq),
               (unsigned long long)(stopAt + 1));
    else
        printf("replay: no snapshot at or before seq %llu (target "
               "inside the prelude), re-executed %llu events cold, "
               "stream matches the recording\n",
               (unsigned long long)stopAt,
               (unsigned long long)(stopAt + 1));
    size_t from = stop.events().size() > 8 ? stop.events().size() - 8
                                           : 0;
    for (size_t i = from; i < stop.events().size(); ++i)
        printf("  %s\n", obs::renderEvent(stop.events()[i]).c_str());
    return 0;
}

int
runOne(const std::string &src, Profile p, const std::string &file,
       bool verbose, obs::TraceSink *sink)
{
    p.memConfig.traceSink = sink;
    RunResult r = runSource(src, p, file);
    printf("[%s] %s\n", p.name.c_str(), r.summary().c_str());
    if (!r.outcome.output.empty()) {
        printf("%s", r.outcome.output.c_str());
        if (r.outcome.output.back() != '\n')
            printf("\n");
    }
    if (verbose) {
        printf("  steps=%llu loads=%llu stores=%llu allocs=%llu "
               "ghost-invalidations=%llu\n",
               (unsigned long long)r.outcome.steps,
               (unsigned long long)r.outcome.memStats.loads,
               (unsigned long long)r.outcome.memStats.stores,
               (unsigned long long)r.outcome.memStats.allocations,
               (unsigned long long)
                   r.outcome.memStats.ghostTagInvalidations);
        const ::cherisem::revoke::RevokeStats &rv =
            r.outcome.memStats.revoke;
        if (rv.sweeps || rv.regionsQuarantined || rv.pendingRegions) {
            printf("  revoke: sweeps=%llu slots-visited=%llu "
                   "tags-revoked=%llu quarantined=%llu "
                   "flushed=%llu pending=%llu sweep-ns=%llu\n",
                   (unsigned long long)rv.sweeps,
                   (unsigned long long)rv.slotsVisited,
                   (unsigned long long)rv.tagsRevoked,
                   (unsigned long long)rv.regionsQuarantined,
                   (unsigned long long)rv.regionsFlushed,
                   (unsigned long long)rv.pendingRegions,
                   (unsigned long long)rv.sweepNs);
        }
        printf("  parse=%lluns sema=%lluns optimize=%lluns "
               "eval=%lluns\n",
               (unsigned long long)r.phases.parseNs,
               (unsigned long long)r.phases.semaNs,
               (unsigned long long)r.phases.optimizeNs,
               (unsigned long long)r.phases.evalNs);
        for (const auto &[name, count] : r.outcome.intrinsicCalls)
            printf("  intrinsic %-28s %llu\n", name.c_str(),
                   (unsigned long long)count);
    }
    if (auto *ring = dynamic_cast<obs::RingBufferSink *>(sink)) {
        if (ring->dropped() > 0)
            printf("  (ring full: %llu oldest events dropped)\n",
                   (unsigned long long)ring->dropped());
        for (const obs::TraceEvent &e : ring->snapshot())
            printf("  %s\n", obs::renderEvent(e).c_str());
        ring->clear();
    }
    if (r.frontendError)
        return 2;
    return r.outcome.kind == cherisem::corelang::Outcome::Kind::Exit
               ? r.outcome.exitCode
               : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string file;
    std::string profile = "cerberus";
    std::string traceSpec;
    std::string engineName;
    bool all = false;
    bool verbose = false;
    bool dump = false;
    int benchReps = 0;
    bool haveReplay = false;
    uint64_t replayTo = 0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--profile") && i + 1 < argc) {
            profile = argv[++i];
        } else if (!std::strcmp(argv[i], "--all")) {
            all = true;
        } else if (!std::strcmp(argv[i], "--engine") &&
                   i + 1 < argc) {
            engineName = argv[++i];
        } else if (!std::strncmp(argv[i], "--engine=", 9)) {
            engineName = argv[i] + 9;
        } else if (!std::strcmp(argv[i], "--bench-repeat") &&
                   i + 1 < argc) {
            benchReps = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--dump-bytecode")) {
            dump = true;
        } else if (!std::strcmp(argv[i], "--replay-to") &&
                   i + 1 < argc) {
            haveReplay = true;
            replayTo = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strncmp(argv[i], "--replay-to=", 12)) {
            haveReplay = true;
            replayTo = std::strtoull(argv[i] + 12, nullptr, 10);
        } else if (!std::strcmp(argv[i], "--trace") ||
                   !std::strcmp(argv[i], "--stats")) {
            // Bare --trace is kept as the old stats-only spelling.
            verbose = true;
        } else if (!std::strncmp(argv[i], "--trace=", 8)) {
            traceSpec = argv[i] + 8;
        } else if (!std::strcmp(argv[i], "--list")) {
            for (const Profile &p : allProfiles())
                printf("%-20s %s\n", p.name.c_str(),
                       p.description.c_str());
            return 0;
        } else {
            file = argv[i];
        }
    }
    if (file.empty()) {
        fprintf(stderr,
                "usage: cherisem_run file.c [--profile NAME] [--all] "
                "[--engine tree|bytecode] [--bench-repeat N] "
                "[--dump-bytecode] [--replay-to SEQ] [--stats] "
                "[--trace=<sink>[:<arg>]] [--list]\n");
        return 2;
    }
    if (haveReplay && all) {
        fprintf(stderr,
                "--replay-to replays one profile's recording; drop "
                "--all or pick a --profile\n");
        return 2;
    }
    corelang::Engine engine = corelang::Engine::Tree;
    bool haveEngine = !engineName.empty();
    if (haveEngine &&
        !corelang::parseEngine(engineName, &engine)) {
        fprintf(stderr,
                "unknown engine %s (want tree or bytecode)\n",
                engineName.c_str());
        return 2;
    }
    std::ifstream in(file);
    if (!in) {
        fprintf(stderr, "cannot open %s\n", file.c_str());
        return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();

    std::unique_ptr<obs::TraceSink> sink;
    if (!traceSpec.empty()) {
        std::string err;
        sink = obs::makeSink(traceSpec, &err);
        if (!sink) {
            fprintf(stderr, "--trace: %s\n", err.c_str());
            return 2;
        }
    }

    int rc = 0;
    if (all) {
        for (Profile p : allProfiles()) {
            if (haveEngine)
                p.engine = engine;
            rc = runOne(ss.str(), p, file, verbose, sink.get());
        }
    } else {
        const Profile *found = findProfile(profile);
        if (!found) {
            fprintf(stderr, "unknown profile %s (try --list)\n",
                    profile.c_str());
            return 2;
        }
        Profile p = *found;
        if (haveEngine)
            p.engine = engine;
        if (dump)
            rc = dumpBytecode(ss.str(), p, file);
        else if (benchReps > 0)
            rc = benchRepeat(ss.str(), p, file, benchReps);
        else if (haveReplay)
            rc = replayRun(ss.str(), p, file, replayTo, sink.get());
        else
            rc = runOne(ss.str(), p, file, verbose, sink.get());
    }
    if (sink)
        sink->flush();
    return rc;
}
