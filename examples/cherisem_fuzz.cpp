/**
 * @file
 * Differential fuzzing driver (src/fuzz/): generate seeded MiniC
 * programs, run each across the profile x store-backend grid, and
 * report divergences as JSONL.
 *
 *   cherisem_fuzz [--seeds A..B] [--allow-ub] [--stmts N]
 *                 [--profiles a,b,c] [--no-cross] [--no-engines]
 *                 [--fork N] [--shrink] [--report PATH]
 *                 [--print-seed N] [--jobs N] [--quiet]
 *
 *   --seeds A..B    inclusive seed range (default 0..100)
 *   --allow-ub      generate the UB-allowed corpus instead of the
 *                   UB-free-by-construction one
 *   --stmts N       approximate statements per program (default 24)
 *   --profiles ...  restrict the grid to these profiles
 *   --no-cross      skip the cross-profile comparisons (backend
 *                   Map-vs-Paged grid only)
 *   --no-engines    skip the tree-vs-bytecode engine comparisons
 *   --fork N        fork-fuzzing campaign: generate fork-shaped
 *                   programs (__prelude prefix + __variant-keyed
 *                   main), compile each once, snapshot after the
 *                   prelude, and fork N variants from it; every
 *                   variant is re-run cold and must match outcome,
 *                   counters, and witness stream bit-for-bit
 *   --shrink        delta-debug every hard failure before reporting
 *   --report PATH   append one JSON line per divergence to PATH
 *   --print-seed N  print the generated program for seed N and exit
 *   --jobs N        run seeds on N serve::WorkerPool workers; the
 *                   report and summary are emitted in seed order, so
 *                   output is byte-identical to --jobs 1
 *
 * Exit status: 0 when no hard failure (backend divergence, crash, or
 * unexpected profile divergence) was found, 1 otherwise, 2 on usage
 * errors.
 */
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/diff_runner.h"
#include "fuzz/fork_runner.h"
#include "fuzz/generator.h"
#include "fuzz/reduce.h"
#include "serve/pool.h"

namespace fuzz = cherisem::fuzz;

namespace {

int
usage()
{
    fprintf(stderr,
            "usage: cherisem_fuzz [--seeds A..B] [--allow-ub] "
            "[--stmts N]\n"
            "                     [--profiles a,b,c] [--no-cross] "
            "[--no-engines]\n"
            "                     [--fork N] [--shrink] "
            "[--report PATH] [--print-seed N]\n"
            "                     [--jobs N] [--quiet]\n");
    return 2;
}

bool
parseRange(const std::string &s, uint64_t &lo, uint64_t &hi)
{
    size_t dots = s.find("..");
    if (dots == std::string::npos)
        return false;
    try {
        lo = std::stoull(s.substr(0, dots));
        hi = std::stoull(s.substr(dots + 2));
    } catch (...) {
        return false;
    }
    return lo <= hi;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos < s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > pos)
            out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

/** Everything one seed produces; held until the in-order emit
 *  phase so --jobs N output matches --jobs 1 byte for byte. */
struct SeedOutcome
{
    std::string source;
    std::vector<fuzz::Divergence> findings;
    /** Parallel to findings: the (possibly shrunk) source for hard
     *  failures, empty for expected divergences. */
    std::vector<std::string> reduced;
    /** Parallel to findings: shrink stats (attempts, removed), only
     *  meaningful when --shrink was given and the finding is hard. */
    std::vector<std::pair<unsigned, unsigned>> shrinkStats;
    /** --fork campaigns: per-seed fork-vs-cold timing. */
    fuzz::ForkStats fork;
};

} // namespace

int
main(int argc, char **argv)
{
    uint64_t seedLo = 0, seedHi = 100;
    bool haveSingle = false;
    uint64_t singleSeed = 0;
    fuzz::GenOptions gen;
    fuzz::RunnerOptions runner;
    bool shrink = false;
    bool quiet = false;
    unsigned jobs = 1;
    unsigned forkVariants = 0;
    std::string reportPath;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                fprintf(stderr, "%s needs an argument\n", flag);
                exit(2);
            }
            return argv[++i];
        };
        if (a == "--seeds") {
            if (!parseRange(next("--seeds"), seedLo, seedHi))
                return usage();
        } else if (a == "--allow-ub") {
            gen.allowUb = true;
        } else if (a == "--stmts") {
            gen.numStmts = (unsigned)atoi(next("--stmts"));
        } else if (a == "--profiles") {
            runner.profiles = splitCommas(next("--profiles"));
        } else if (a == "--no-cross") {
            runner.crossProfiles = false;
        } else if (a == "--no-engines") {
            runner.engineAxis = false;
        } else if (a == "--fork") {
            forkVariants = (unsigned)atoi(next("--fork"));
            if (forkVariants == 0)
                forkVariants = 8;
        } else if (a == "--shrink") {
            shrink = true;
        } else if (a == "--report") {
            reportPath = next("--report");
        } else if (a == "--print-seed") {
            haveSingle = true;
            singleSeed = std::stoull(next("--print-seed"));
        } else if (a == "--jobs") {
            jobs = (unsigned)atoi(next("--jobs"));
            if (jobs == 0)
                jobs = 1;
        } else if (a == "--quiet") {
            quiet = true;
        } else {
            return usage();
        }
    }

    if (forkVariants > 0)
        gen.forkPrefix = true;

    if (haveSingle) {
        gen.seed = singleSeed;
        fputs(fuzz::generateProgram(gen).c_str(), stdout);
        return 0;
    }

    std::ofstream report;
    if (!reportPath.empty()) {
        report.open(reportPath, std::ios::app);
        if (!report) {
            fprintf(stderr, "cannot open %s\n", reportPath.c_str());
            return 2;
        }
    }

    runner.requireExit = !gen.allowUb;
    const uint64_t total = seedHi - seedLo + 1;
    std::vector<SeedOutcome> outcomes(total);
    std::atomic<uint64_t> done{0};

    // Per-seed work: generate, run the differential grid, shrink
    // hard failures.  Safe to run concurrently — each task copies
    // its options, and everything below runSource is per-instance
    // (see DESIGN.md "Serving layer", thread-safety audit).
    auto runSeed = [&](uint64_t seed, SeedOutcome &out) {
        fuzz::GenOptions g = gen;
        g.seed = seed;
        out.source = fuzz::generateProgram(g);
        if (forkVariants > 0) {
            fuzz::ForkOptions fopts;
            fopts.variants = forkVariants;
            if (runner.profiles.size() == 1)
                fopts.profile = runner.profiles[0];
            fopts.ringCapacity = runner.ringCapacity;
            out.findings =
                fuzz::runForkCase(seed, out.source, fopts, &out.fork);
        } else {
            out.findings = fuzz::runCase(seed, out.source, runner);
        }
        out.reduced.resize(out.findings.size());
        out.shrinkStats.resize(out.findings.size(), {0, 0});
        for (size_t i = 0; i < out.findings.size(); ++i) {
            const fuzz::Divergence &d = out.findings[i];
            if (!fuzz::isHardFailure(d))
                continue;
            out.reduced[i] = out.source;
            if (!shrink)
                continue;
            fuzz::ReduceStats rs;
            out.reduced[i] = fuzz::reduceProgram(
                out.source,
                [&](const std::string &cand) {
                    std::vector<fuzz::Divergence> cs;
                    if (forkVariants > 0) {
                        fuzz::ForkOptions fopts;
                        fopts.variants = forkVariants;
                        if (runner.profiles.size() == 1)
                            fopts.profile = runner.profiles[0];
                        fopts.ringCapacity = runner.ringCapacity;
                        cs = fuzz::runForkCase(seed, cand, fopts,
                                               nullptr);
                    } else {
                        cs = fuzz::runCase(seed, cand, runner);
                    }
                    for (const fuzz::Divergence &c : cs)
                        if (fuzz::isHardFailure(c) &&
                            c.kind == d.kind && c.where == d.where)
                            return true;
                    return false;
                },
                &rs);
            out.shrinkStats[i] = {rs.attempts, rs.removed};
        }
        uint64_t n = done.fetch_add(1) + 1;
        if (!quiet && n % 50 == 0)
            fprintf(stderr, "... %llu/%llu cases run\n",
                    (unsigned long long)n, (unsigned long long)total);
    };

    if (jobs > 1) {
        cherisem::serve::WorkerPool pool(jobs);
        for (uint64_t seed = seedLo; seed <= seedHi; ++seed)
            pool.submit([&runSeed, &outcomes, seed, seedLo] {
                runSeed(seed, outcomes[seed - seedLo]);
            });
        pool.drain();
    } else {
        for (uint64_t seed = seedLo; seed <= seedHi; ++seed)
            runSeed(seed, outcomes[seed - seedLo]);
    }

    // Emit phase: sequential and in seed order, so the report and
    // diagnostics are byte-identical however many jobs ran.
    uint64_t cases = 0, hard = 0, expected = 0;
    for (uint64_t seed = seedLo; seed <= seedHi; ++seed) {
        SeedOutcome &out = outcomes[seed - seedLo];
        ++cases;
        for (size_t i = 0; i < out.findings.size(); ++i) {
            fuzz::Divergence &d = out.findings[i];
            if (!fuzz::isHardFailure(d)) {
                ++expected;
                if (report)
                    report << d.jsonl() << "\n";
                continue;
            }
            ++hard;
            if (shrink && !quiet)
                fprintf(stderr,
                        "  shrink: %u attempts, %u statements "
                        "removed\n",
                        out.shrinkStats[i].first,
                        out.shrinkStats[i].second);
            if (report)
                report << d.jsonl(out.reduced[i]) << "\n";
            if (!quiet) {
                fprintf(stderr, "seed %llu [%s] %s\n",
                        (unsigned long long)seed, d.where.c_str(),
                        d.detail.c_str());
                if (shrink)
                    fprintf(stderr, "--- reduced ---\n%s---\n",
                            out.reduced[i].c_str());
            }
        }
    }

    printf("cherisem_fuzz: %llu cases (%s), %llu hard failures, "
           "%llu expected profile divergences\n",
           (unsigned long long)cases,
           gen.allowUb ? "ub-allowed" : "ub-free",
           (unsigned long long)hard, (unsigned long long)expected);
    if (forkVariants > 0) {
        fuzz::ForkStats total;
        for (const SeedOutcome &out : outcomes) {
            total.variants += out.fork.variants;
            total.forkNs += out.fork.forkNs;
            total.coldNs += out.fork.coldNs;
        }
        double speedup = total.forkNs
            ? (double)total.coldNs / (double)total.forkNs
            : 0.0;
        printf("cherisem_fuzz: fork campaign: %llu variants, "
               "forked eval %.1f ms vs cold %.1f ms (%.2fx)\n",
               (unsigned long long)total.variants,
               (double)total.forkNs / 1e6,
               (double)total.coldNs / 1e6, speedup);
    }
    return hard == 0 ? 0 : 1;
}
