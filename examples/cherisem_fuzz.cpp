/**
 * @file
 * Differential fuzzing driver (src/fuzz/): generate seeded MiniC
 * programs, run each across the profile x store-backend grid, and
 * report divergences as JSONL.
 *
 *   cherisem_fuzz [--seeds A..B] [--allow-ub] [--stmts N]
 *                 [--profiles a,b,c] [--no-cross] [--no-engines]
 *                 [--shrink] [--report PATH] [--print-seed N]
 *                 [--quiet]
 *
 *   --seeds A..B    inclusive seed range (default 0..100)
 *   --allow-ub      generate the UB-allowed corpus instead of the
 *                   UB-free-by-construction one
 *   --stmts N       approximate statements per program (default 24)
 *   --profiles ...  restrict the grid to these profiles
 *   --no-cross      skip the cross-profile comparisons (backend
 *                   Map-vs-Paged grid only)
 *   --no-engines    skip the tree-vs-bytecode engine comparisons
 *   --shrink        delta-debug every hard failure before reporting
 *   --report PATH   append one JSON line per divergence to PATH
 *   --print-seed N  print the generated program for seed N and exit
 *
 * Exit status: 0 when no hard failure (backend divergence, crash, or
 * unexpected profile divergence) was found, 1 otherwise, 2 on usage
 * errors.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/diff_runner.h"
#include "fuzz/generator.h"
#include "fuzz/reduce.h"

namespace fuzz = cherisem::fuzz;

namespace {

int
usage()
{
    fprintf(stderr,
            "usage: cherisem_fuzz [--seeds A..B] [--allow-ub] "
            "[--stmts N]\n"
            "                     [--profiles a,b,c] [--no-cross] "
            "[--no-engines]\n"
            "                     [--shrink] [--report PATH] "
            "[--print-seed N] [--quiet]\n");
    return 2;
}

bool
parseRange(const std::string &s, uint64_t &lo, uint64_t &hi)
{
    size_t dots = s.find("..");
    if (dots == std::string::npos)
        return false;
    try {
        lo = std::stoull(s.substr(0, dots));
        hi = std::stoull(s.substr(dots + 2));
    } catch (...) {
        return false;
    }
    return lo <= hi;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos < s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > pos)
            out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t seedLo = 0, seedHi = 100;
    bool haveSingle = false;
    uint64_t singleSeed = 0;
    fuzz::GenOptions gen;
    fuzz::RunnerOptions runner;
    bool shrink = false;
    bool quiet = false;
    std::string reportPath;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                fprintf(stderr, "%s needs an argument\n", flag);
                exit(2);
            }
            return argv[++i];
        };
        if (a == "--seeds") {
            if (!parseRange(next("--seeds"), seedLo, seedHi))
                return usage();
        } else if (a == "--allow-ub") {
            gen.allowUb = true;
        } else if (a == "--stmts") {
            gen.numStmts = (unsigned)atoi(next("--stmts"));
        } else if (a == "--profiles") {
            runner.profiles = splitCommas(next("--profiles"));
        } else if (a == "--no-cross") {
            runner.crossProfiles = false;
        } else if (a == "--no-engines") {
            runner.engineAxis = false;
        } else if (a == "--shrink") {
            shrink = true;
        } else if (a == "--report") {
            reportPath = next("--report");
        } else if (a == "--print-seed") {
            haveSingle = true;
            singleSeed = std::stoull(next("--print-seed"));
        } else if (a == "--quiet") {
            quiet = true;
        } else {
            return usage();
        }
    }

    if (haveSingle) {
        gen.seed = singleSeed;
        fputs(fuzz::generateProgram(gen).c_str(), stdout);
        return 0;
    }

    std::ofstream report;
    if (!reportPath.empty()) {
        report.open(reportPath, std::ios::app);
        if (!report) {
            fprintf(stderr, "cannot open %s\n", reportPath.c_str());
            return 2;
        }
    }

    uint64_t cases = 0, hard = 0, expected = 0;
    for (uint64_t seed = seedLo; seed <= seedHi; ++seed) {
        gen.seed = seed;
        runner.requireExit = !gen.allowUb;
        std::string source = fuzz::generateProgram(gen);
        std::vector<fuzz::Divergence> findings =
            fuzz::runCase(seed, source, runner);
        ++cases;

        for (fuzz::Divergence &d : findings) {
            if (!fuzz::isHardFailure(d)) {
                ++expected;
                if (report)
                    report << d.jsonl() << "\n";
                continue;
            }
            ++hard;
            std::string reduced = source;
            if (shrink) {
                fuzz::Divergence::Kind kind = d.kind;
                std::string where = d.where;
                fuzz::ReduceStats rs;
                reduced = fuzz::reduceProgram(
                    source,
                    [&](const std::string &cand) {
                        for (const fuzz::Divergence &c :
                             fuzz::runCase(seed, cand, runner))
                            if (fuzz::isHardFailure(c) &&
                                c.kind == kind && c.where == where)
                                return true;
                        return false;
                    },
                    &rs);
                if (!quiet)
                    fprintf(stderr,
                            "  shrink: %u attempts, %u statements "
                            "removed\n",
                            rs.attempts, rs.removed);
            }
            if (report)
                report << d.jsonl(reduced) << "\n";
            if (!quiet) {
                fprintf(stderr, "seed %llu [%s] %s\n",
                        (unsigned long long)seed, d.where.c_str(),
                        d.detail.c_str());
                if (shrink)
                    fprintf(stderr, "--- reduced ---\n%s---\n",
                            reduced.c_str());
            }
        }
        if (!quiet && cases % 50 == 0)
            fprintf(stderr,
                    "... %llu cases, %llu hard failures, %llu "
                    "expected profile divergences\n",
                    (unsigned long long)cases,
                    (unsigned long long)hard,
                    (unsigned long long)expected);
    }

    printf("cherisem_fuzz: %llu cases (%s), %llu hard failures, "
           "%llu expected profile divergences\n",
           (unsigned long long)cases,
           gen.allowUb ? "ub-allowed" : "ub-free",
           (unsigned long long)hard, (unsigned long long)expected);
    return hard == 0 ? 0 : 1;
}
