/**
 * @file
 * UB explorer: every example program from section 3 of the paper,
 * executed under all implementation profiles side by side — the
 * quickest way to see where the abstract semantics, the hardware,
 * and the optimiser diverge.
 *
 * Build & run:  ./build/examples/ub_explorer
 */
#include <cstdio>
#include <vector>

#include "driver/interpreter.h"

using namespace cherisem::driver;

namespace {

struct Example
{
    const char *title;
    const char *source;
};

const std::vector<Example> EXAMPLES = {
    {"s3.1: out-of-bounds write via one-past pointer", R"(
void f(int *p, int i) { int *q = p + i; *q = 42; }
int main(void) { int x=0, y=0; f(&x, 1); return y; }
)"},
    {"s3.2: transient out-of-bounds pointer construction", R"(
int main(void) {
    int x[2];
    x[1] = 0;
    int *p = &x[0];
    int *q = p + 100001;
    q = q - 100000;
    *q = 1;
    return x[1];
}
)"},
    {"s3.3: transiently non-representable uintptr_t arithmetic", R"(
#include <stdint.h>
void f(int a, int b) {
    int x[2];
    int *p = &x[0];
    uintptr_t i = (uintptr_t)p;
    uintptr_t j = i + a;
    uintptr_t k = j - b;
    int *q = (int*)k;
    *q = 1;
}
int main(void) { f(100001*sizeof(int), 100000*sizeof(int)); }
)"},
    {"s3.4: pointer/integer type punning through a union", R"(
#include <stdint.h>
#include <assert.h>
union ptr { int *ptr; uintptr_t iptr; };
int main(void) {
    int arr[] = {42,43};
    union ptr x;
    x.ptr = arr;
    x.iptr += sizeof(int);
    assert (*x.ptr == 43);
}
)"},
    {"s3.5: identity byte write over a capability", R"(
int main(void) {
    int x = 0;
    int *px = &x;
    unsigned char *p = (unsigned char *)&px;
    p[0] = p[0];
    *px = 1;
    return x;
}
)"},
    {"s3.5: byte-copy loop of a capability", R"(
int main(void) {
    int x = 0;
    int *px0 = &x;
    int *px1;
    unsigned char *p0 = (unsigned char *)&px0;
    unsigned char *p1 = (unsigned char *)&px1;
    for (int i=0; i<sizeof(int*); i++) p1[i] = p0[i];
    *px1 = 1;
    return x;
}
)"},
    {"s3.7: capability derivation in binary arithmetic", R"(
#include <stdint.h>
#include <assert.h>
int main(void) {
    int x=0, y=0;
    intptr_t a=(intptr_t)&x;
    intptr_t b=(intptr_t)&y;
    intptr_t c0 = a + b;
    intptr_t c1 = b + a;
    assert(c0 == c1);
    return 0;
}
)"},
    {"s3.9: write through a const-stripped pointer", R"(
int main(void) {
    const int c = 5;
    int *p = (int*)&c;
    *p = 6;
    return c;
}
)"},
    {"s3.11: use after free (temporal safety)", R"(
#include <stdlib.h>
int main(void) {
    int *p = malloc(sizeof(int));
    *p = 3;
    free(p);
    return *p;
}
)"},
};

} // namespace

int
main()
{
    for (const Example &ex : EXAMPLES) {
        printf("=== %s\n", ex.title);
        for (const Profile &p : allProfiles()) {
            if (p.name == "cerberus-cheriot")
                continue;
            RunResult r = runSource(ex.source, p);
            printf("  %-20s %s\n", p.name.c_str(),
                   r.summary().c_str());
        }
        printf("\n");
    }
    return 0;
}
