/**
 * @file
 * Software compartmentalisation with sealed capabilities (the second
 * CHERI use case of section 1): a "kernel" hands out opaque sealed
 * handles; client code cannot dereference or tamper with them, only
 * pass them back across the trust boundary, where the kernel unseals
 * and validates them.
 *
 * Build & run:  ./build/examples/compartment_demo
 */
#include <cstdio>

#include "driver/interpreter.h"

using namespace cherisem::driver;

int
main()
{
    const char *program = R"(
#include <stdint.h>
#include <stdio.h>
#include <cheriintrin.h>

/* --- "kernel" side: owns the sealing authority --- */
struct object { int secret; };
struct object pool[4];

void *kernel_auth(void) {
    /* Authority capability for otype 42 derived from the root. */
    return cheri_address_set(cheri_ddc_get(), 42);
}

struct object *kernel_create(int secret) {
    static int next = 0;
    struct object *o = &pool[next++];
    o->secret = secret;
    /* Hand out a sealed (opaque) handle. */
    return cheri_seal(o, kernel_auth());
}

int kernel_use(struct object *handle) {
    struct object *o = cheri_unseal(handle, kernel_auth());
    if (!cheri_tag_get(o)) return -1;   /* forged/wrong handle */
    return o->secret;
}

/* --- untrusted client --- */
int main(void) {
    struct object *h = kernel_create(1234);
    printf("handle sealed: %d, otype: %d\n",
           (int)cheri_is_sealed(h), (int)cheri_type_get(h));

    /* The client cannot peek inside the handle... */
    /* (dereferencing would trap: UB_CHERI_SealViolation) */

    /* ...but can pass it back across the boundary. */
    printf("kernel_use: %d\n", kernel_use(h));

    /* Tampering with the handle destroys it. */
    struct object *tampered = cheri_address_set(h,
        cheri_address_get(h) + 1);
    printf("tampered tag: %d\n", (int)cheri_tag_get(tampered));
    printf("kernel_use(tampered): %d\n", kernel_use(tampered));
    return 0;
}
)";

    printf("compartment demo (sealed-capability opaque handles)\n\n");
    RunResult r = runSource(program, referenceProfile());
    if (r.frontendError) {
        printf("frontend error: %s\n", r.frontendMessage.c_str());
        return 1;
    }
    printf("%s\n[%s]\n", r.outcome.output.c_str(),
           r.outcome.summary().c_str());

    // And the forbidden path: dereferencing the sealed handle.
    const char *deref = R"(
#include <cheriintrin.h>
struct object { int secret; };
struct object o;
int main(void) {
    o.secret = 7;
    struct object *h = cheri_seal(&o,
        cheri_address_set(cheri_ddc_get(), 42));
    return h->secret; /* sealed: traps */
}
)";
    RunResult r2 = runSource(deref, referenceProfile());
    printf("\ndereferencing a sealed handle: %s\n",
           r2.summary().c_str());
    return 0;
}
