/**
 * @file
 * PNVI-ae-udi walkthrough (sections 2.3, 3.11): exposure, integer-
 * to-pointer attachment, the iota (user-disambiguation) case, and
 * why capability checks cannot subsume provenance checks.
 *
 * Build & run:  ./build/examples/provenance_demo
 */
#include <cstdio>

#include "mem/memory_model.h"

using namespace cherisem;
using namespace cherisem::mem;
using ctype::IntKind;
using ctype::intType;

int
main()
{
    MemoryModel::Config cfg;
    MemoryModel mm(cfg);

    // Two adjacent heap allocations.
    PointerValue a = mm.allocateRegion("a", 16, 16).value();
    PointerValue b = mm.allocateRegion("b", 16, 16).value();
    printf("allocated a at %#llx (%s), b at %#llx (%s)\n",
           (unsigned long long)a.address(), a.prov.str().c_str(),
           (unsigned long long)b.address(), b.prov.str().c_str());

    // 1. Without exposure, int->ptr gets empty provenance.
    IntegerValue guess =
        IntegerValue::ofNum(IntKind::Long,
                            static_cast<__int128>(a.address()));
    PointerValue p1 = mm.ptrFromInt({}, guess).value();
    printf("int->ptr before exposure: provenance %s (untagged)\n",
           p1.prov.str().c_str());

    // 2. Casting a pointer to an integer exposes its allocation.
    (void)mm.intFromPtr({}, IntKind::Uintptr, a);
    PointerValue p2 = mm.ptrFromInt({}, guess).value();
    printf("int->ptr after exposure:  provenance %s\n",
           p2.prov.str().c_str());

    // 3. The udi case: the boundary address a+16 == b is one-past a
    //    and the start of b — ambiguous, so an iota is created.
    (void)mm.intFromPtr({}, IntKind::Uintptr, b);
    IntegerValue boundary = IntegerValue::ofNum(
        IntKind::Long,
        static_cast<__int128>(a.address() + 16));
    PointerValue piota = mm.ptrFromInt({}, boundary).value();
    printf("boundary int->ptr:        provenance %s "
           "(resolved by first use)\n",
           piota.prov.str().c_str());

    // 4. Temporal uniqueness (section 3.11): kill a, reallocate at
    //    the same address — same capability bounds, different
    //    provenance; the capability cannot express the difference.
    (void)mm.kill({}, true, a);
    PointerValue a2 = mm.allocateRegion("a2", 16, 16).value();
    printf("freed 'a', new 'a2' at %#llx (%s vs old %s): "
           "same address, fresh provenance\n",
           (unsigned long long)a2.address(), a2.prov.str().c_str(),
           a.prov.str().c_str());
    auto stale = mm.load({}, intType(IntKind::Int), a);
    printf("stale access via old pointer: %s\n",
           stale.ok() ? "allowed (?!)"
                      : stale.error().str().c_str());
    return 0;
}
