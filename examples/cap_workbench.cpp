/**
 * @file
 * Capability workbench: drive the capability substrate directly —
 * derive, narrow, move, break capabilities on both architectures and
 * watch the encoding behave (compression, representability, sealing).
 *
 * Build & run:  ./build/examples/cap_workbench
 */
#include <cstdio>

#include "cap/cap_format.h"
#include "cap/cc64.h"
#include "cap/cc128.h"
#include "support/format.h"

using namespace cherisem;
using namespace cherisem::cap;

namespace {

void
show(const char *label, const Capability &c)
{
    printf("  %-28s %s\n", label,
           formatCap(c, FormatStyle::Abstract).c_str());
}

void
tour(const CapArch &arch, uint64_t base)
{
    printf("%s (cap size %u, %u-bit addresses):\n", arch.name(),
           arch.capSize(), arch.addrBits());

    Capability c = Capability::make(arch, base, uint128(base) + 256,
                                    PermSet::data());
    show("fresh allocation (256B)", c);
    show("address += 64", c.withAddress(base + 64));
    show("narrowed to 16B", c.withBounds(base, uint128(base) + 16));
    show("store perm dropped",
         c.withPerms(PermSet::readOnlyData()));
    show("tag cleared", c.withTagCleared());
    show("sealed (otype 12)", c.sealed(12));
    show("wild address (tag lost)", c.withAddress(base + (1u << 24)));
    show("ghost arithmetic (s3.3)",
         c.withAddressGhost(base + (1u << 24)));

    // Compression behaviour: what lengths are exact?
    printf("  representable lengths: ");
    for (uint64_t len : {100ull, 511ull, 4096ull, 100000ull,
                         1000000ull}) {
        uint64_t rl = arch.representableLength(len);
        printf("%llu->%llu ", (unsigned long long)len,
               (unsigned long long)rl);
    }
    printf("\n\n");
}

} // namespace

int
main()
{
    tour(morello(), 0xffffe000);
    tour(cheriot(), 0x20004000);

    // Round-trip through the in-memory representation (Fig. 1).
    Capability c = Capability::make(morello(), 0x10000, 0x10040,
                                    PermSet::data());
    uint8_t bytes[16];
    morello().toBytes(c, bytes);
    printf("representation bytes (LE): ");
    for (int i = 0; i < 16; i++)
        printf("%02x", bytes[i]);
    printf("\n");
    Capability back = morello().fromBytes(bytes, true);
    printf("decoded back:  %s\n",
           formatCap(back, FormatStyle::Abstract).c_str());
    printf("field view:    %s\n", formatFields(back).c_str());
    return 0;
}
