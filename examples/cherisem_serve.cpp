/**
 * @file
 * cherisem_serve: the multi-tenant batch execution daemon.
 *
 *   cherisem_serve --batch FILE.jsonl [--out FILE]     one-shot mode
 *   cherisem_serve --listen unix:/tmp/cherisem.sock    daemon mode
 *   cherisem_serve --listen tcp:9178                   (loopback)
 *
 * Common options:
 *   --threads N        worker threads (default: hardware cores)
 *   --queue N          queue capacity (default 256)
 *   --cache N          front-cache entries, 0 disables (default 512)
 *   --max-steps N      per-run step ceiling (default 20000000)
 *   --deadline-ms N    per-run wall-clock ceiling, 0 = none
 *                      (default 10000)
 *   --warm FILE        prepend FILE's source (defining __prelude())
 *                      to every request; the post-prelude machine
 *                      state is snapshotted per program and repeats
 *                      restore it instead of re-running the prelude
 *   --warm-cache N     warm snapshots retained (default 64)
 *   --stats            dump the metrics snapshot to stderr on exit
 *
 * Batch mode reads newline-delimited JSON requests ("-" = stdin),
 * executes them on the worker pool, and writes responses in input
 * order — the mode tests and CI drive, no networking involved.
 * Protocol reference: src/serve/protocol.h and DESIGN.md "Serving
 * layer".
 *
 * Exit status (batch): 0 when every line parsed, 1 when any line
 * was malformed, 2 on usage errors.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "serve/net.h"
#include "serve/server.h"

namespace serve = cherisem::serve;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: cherisem_serve (--batch FILE|- | --listen SPEC)\n"
        "                      [--out FILE] [--threads N] "
        "[--queue N]\n"
        "                      [--cache N] [--max-steps N] "
        "[--deadline-ms N]\n"
        "                      [--warm FILE] [--warm-cache N] "
        "[--stats]\n"
        "  SPEC: unix:<path> | tcp:<port>\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string batchPath, outPath, listenSpec;
    serve::ServerOptions opts;
    bool dumpStats = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs an argument\n", flag);
                exit(2);
            }
            return argv[++i];
        };
        if (a == "--batch") {
            batchPath = next("--batch");
        } else if (a == "--listen") {
            listenSpec = next("--listen");
        } else if (a == "--out") {
            outPath = next("--out");
        } else if (a == "--threads") {
            opts.threads =
                static_cast<unsigned>(atoi(next("--threads")));
        } else if (a == "--queue") {
            opts.queueCapacity =
                static_cast<size_t>(atoll(next("--queue")));
        } else if (a == "--cache") {
            opts.cacheCapacity =
                static_cast<size_t>(atoll(next("--cache")));
        } else if (a == "--max-steps") {
            opts.maxSteps = strtoull(next("--max-steps"), nullptr, 10);
        } else if (a == "--deadline-ms") {
            opts.deadlineMs =
                strtoull(next("--deadline-ms"), nullptr, 10);
        } else if (a == "--warm") {
            const char *path = next("--warm");
            std::ifstream warmFile(path);
            if (!warmFile) {
                std::fprintf(stderr, "cannot open %s\n", path);
                return 2;
            }
            std::ostringstream ss;
            ss << warmFile.rdbuf();
            opts.warmPrelude = ss.str();
        } else if (a == "--warm-cache") {
            opts.warmCapacity =
                static_cast<size_t>(atoll(next("--warm-cache")));
        } else if (a == "--stats") {
            dumpStats = true;
        } else {
            return usage();
        }
    }
    if (batchPath.empty() == listenSpec.empty())
        return usage(); // exactly one mode

    serve::Server server(opts);
    int rc = 0;

    if (!batchPath.empty()) {
        std::ifstream file;
        std::istream *in = &std::cin;
        if (batchPath != "-") {
            file.open(batchPath);
            if (!file) {
                std::fprintf(stderr, "cannot open %s\n",
                             batchPath.c_str());
                return 2;
            }
            in = &file;
        }
        std::ofstream outFile;
        std::ostream *out = &std::cout;
        if (!outPath.empty()) {
            outFile.open(outPath);
            if (!outFile) {
                std::fprintf(stderr, "cannot open %s\n",
                             outPath.c_str());
                return 2;
            }
            out = &outFile;
        }
        int malformed = server.runBatch(*in, *out);
        rc = malformed > 0 ? 1 : 0;
    } else {
        serve::ListenSpec spec;
        std::string err;
        if (!serve::ListenSpec::parse(listenSpec, &spec, &err)) {
            std::fprintf(stderr, "--listen: %s\n", err.c_str());
            return 2;
        }
        std::fprintf(stderr,
                     "cherisem_serve: %u workers, cache %zu, "
                     "listening on %s\n",
                     server.threads(), opts.cacheCapacity,
                     listenSpec.c_str());
        rc = serve::serveForever(server, spec, &err);
        if (rc != 0)
            std::fprintf(stderr, "cherisem_serve: %s\n", err.c_str());
    }

    if (dumpStats)
        std::fprintf(stderr, "%s\n",
                     server.stats().renderJson().c_str());
    return rc;
}
