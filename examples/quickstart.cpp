/**
 * @file
 * Quickstart: run a CHERI C program through the executable
 * semantics, catch the UB it contains, then fix it and run again.
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <cstdio>

#include "driver/interpreter.h"

using namespace cherisem;

int
main()
{
    // The buggy program from section 3.1 of the paper: a one-past
    // write through a stack pointer.
    const char *buggy = R"(
void f(int *p, int i) {
    int *q = p + i;
    *q = 42;
}
int main(void) {
    int x=0, y=0;
    f(&x, 1);
    return y;
}
)";

    const driver::Profile &ref = driver::referenceProfile();
    driver::RunResult r = driver::runSource(buggy, ref);
    printf("buggy program under '%s':\n  %s\n", ref.name.c_str(),
           r.summary().c_str());
    if (r.outcome.kind == corelang::Outcome::Kind::Undefined)
        printf("  detail: %s\n", r.outcome.failure.str().c_str());

    // The fixed version stays in bounds.
    const char *fixed = R"(
void f(int *p, int i) {
    int *q = p + i;
    *q = 42;
}
int main(void) {
    int xy[2] = {0, 0};
    f(&xy[0], 1);
    return xy[1];
}
)";
    r = driver::runSource(fixed, ref);
    printf("fixed program:\n  %s (42 expected)\n",
           r.summary().c_str());

    // The same program under a concrete hardware profile.
    const driver::Profile *hw = driver::findProfile("clang-morello-O0");
    r = driver::runSource(buggy, *hw);
    printf("buggy program under '%s':\n  %s\n", hw->name.c_str(),
           r.summary().c_str());
    return 0;
}
