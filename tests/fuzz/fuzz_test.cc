/**
 * @file
 * Tests for the differential fuzzing subsystem (src/fuzz/):
 * generator determinism (golden file), the UB-free-by-construction
 * property on the reference profile, the differential runner's
 * oracle, and the statement-level reducer.
 */
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "driver/interpreter.h"
#include "fuzz/diff_runner.h"
#include "fuzz/fork_runner.h"
#include "fuzz/generator.h"
#include "fuzz/reduce.h"

namespace cherisem::fuzz {
namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(Generator, DeterministicPerSeed)
{
    GenOptions o;
    o.seed = 42;
    EXPECT_EQ(generateProgram(o), generateProgram(o));
    GenOptions other = o;
    other.seed = 43;
    EXPECT_NE(generateProgram(o), generateProgram(other));
    other = o;
    other.allowUb = true;
    EXPECT_NE(generateProgram(o), generateProgram(other));
}

TEST(Generator, GoldenSeed1IsByteIdentical)
{
    // The golden file pins the generator's output format: any change
    // to the generator invalidates previously-reported seeds, so it
    // must be deliberate (regenerate with
    // `cherisem_fuzz --print-seed 1 > tests/fuzz/golden_seed1.c`).
    GenOptions o;
    o.seed = 1;
    EXPECT_EQ(generateProgram(o),
              readFile(std::string(CHERISEM_SOURCE_DIR) +
                       "/tests/fuzz/golden_seed1.c"));
}

TEST(Generator, UbFreeCorpusExitsOnReferenceProfile)
{
    // The UB-free-by-construction property, checked on the strictest
    // profile: the reference semantics (cc128, MapStore) must run
    // every UB-free program to a normal Exit.
    const driver::Profile &ref = driver::referenceProfile();
    for (uint64_t seed = 0; seed < 40; ++seed) {
        GenOptions o;
        o.seed = seed;
        std::string src = generateProgram(o);
        driver::RunResult r = driver::runSource(
            src, ref, "fuzz-seed-" + std::to_string(seed));
        ASSERT_FALSE(r.frontendError) << seed << "\n" << src;
        EXPECT_EQ(r.outcome.kind, corelang::Outcome::Kind::Exit)
            << "seed " << seed << ": " << r.summary() << "\n"
            << src;
    }
}

TEST(DiffRunner, CleanProgramHasNoHardFailures)
{
    RunnerOptions opts;
    opts.requireExit = true;
    std::vector<Divergence> ds = runCase(
        0,
        "int main(void) {\n"
        "  int x = 3;\n"
        "  return x + 4;\n"
        "}\n",
        opts);
    for (const Divergence &d : ds)
        EXPECT_FALSE(isHardFailure(d)) << d.jsonl();
}

TEST(DiffRunner, UbFreeOracleFlagsUbOutcomes)
{
    // A use-after-free must Exit nowhere; with requireExit set the
    // runner reports it as a hard UbFree finding on every profile.
    RunnerOptions opts;
    opts.requireExit = true;
    opts.crossProfiles = false;
    opts.profiles = {"cerberus"};
    std::vector<Divergence> ds = runCase(
        0,
        "#include <stdlib.h>\n"
        "int main(void) {\n"
        "  int *p = malloc(4);\n"
        "  free(p);\n"
        "  return *p;\n"
        "}\n",
        opts);
    ASSERT_EQ(ds.size(), 1u);
    EXPECT_EQ(ds[0].kind, Divergence::Kind::UbFree);
    EXPECT_TRUE(isHardFailure(ds[0]));
    EXPECT_NE(ds[0].jsonl().find("\"kind\": \"ub-free-violation\""),
              std::string::npos);
}

TEST(DiffRunner, JsonlEscapesControlCharacters)
{
    Divergence d;
    d.kind = Divergence::Kind::Crash;
    d.seed = 7;
    d.where = "a\"b";
    d.detail = "line1\nline2\t\\";
    std::string line = d.jsonl("int main(void) { return 0; }\n");
    EXPECT_EQ(line.find('\n'), std::string::npos);
    EXPECT_NE(line.find("a\\\"b"), std::string::npos);
    EXPECT_NE(line.find("line1\\nline2\\t\\\\"), std::string::npos);
}

TEST(ForkRunner, HandwrittenForkCaseAgreesWithColdOracle)
{
    // The fork runner's oracle re-runs every forked variant cold and
    // demands bit-identical behaviour; on a well-formed fork-shaped
    // program that must produce zero divergences.
    const char *src = "#include <stdio.h>\n"
                      "int __variant;\n"
                      "int acc;\n"
                      "void __prelude(void)\n"
                      "{\n"
                      "  for (int i = 0; i < 8; i++)\n"
                      "    acc += i;\n"
                      "}\n"
                      "int main(void)\n"
                      "{\n"
                      "  printf(\"%d\\n\", acc + __variant);\n"
                      "  return 0;\n"
                      "}\n";
    ForkOptions opts;
    opts.variants = 4;
    ForkStats stats;
    std::vector<Divergence> ds = runForkCase(1, src, opts, &stats);
    for (const Divergence &d : ds)
        ADD_FAILURE() << d.jsonl();
    EXPECT_EQ(stats.variants, 4u);
    EXPECT_GT(stats.preludeSteps, 0u);
    EXPECT_GT(stats.forkNs, 0u);
    EXPECT_GT(stats.coldNs, 0u);
}

TEST(ForkRunner, GeneratedForkProgramsAgree)
{
    // Generated fork-shaped programs (prelude prefix + __variant
    // keyed main) through the same fork-vs-cold oracle.
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        GenOptions o;
        o.seed = seed;
        o.forkPrefix = true;
        std::string src = generateProgram(o);
        ForkOptions opts;
        opts.variants = 3;
        std::vector<Divergence> ds =
            runForkCase(seed, src, opts, nullptr);
        for (const Divergence &d : ds)
            ADD_FAILURE() << "seed " << seed << ": " << d.jsonl();
    }
}

TEST(Reduce, ShrinksUbProgramPreservingTheVerdict)
{
    // Take a generated UB-allowed program that raises UB under the
    // reference profile and minimise it under a same-verdict oracle:
    // the result must be smaller, still parse, and still raise the
    // identical UB.
    const driver::Profile &ref = driver::referenceProfile();
    GenOptions o;
    o.seed = 5;
    o.allowUb = true;
    std::string src = generateProgram(o);
    std::string verdict = driver::runSource(src, ref).summary();
    ASSERT_EQ(verdict.rfind("ub ", 0), 0u) << verdict;

    ReduceStats stats;
    std::string reduced = reduceProgram(
        src,
        [&](const std::string &cand) {
            return driver::runSource(cand, ref).summary() == verdict;
        },
        &stats);

    EXPECT_GT(stats.removed, 0u);
    EXPECT_LT(reduced.size(), src.size() / 2) << reduced;
    EXPECT_EQ(driver::runSource(reduced, ref).summary(), verdict)
        << reduced;
}

TEST(Reduce, FixedPointWhenNothingCanBeRemoved)
{
    // An oracle demanding the exact exit code of a two-statement
    // program: neither statement can go, so reduce is the identity
    // (modulo printing) and reports zero removals... unless a
    // statement really is deletable, which "return 7" prevents.
    std::string src = "int main(void) {\n  return 7;\n}\n";
    const driver::Profile &ref = driver::referenceProfile();
    std::string verdict = driver::runSource(src, ref).summary();
    ReduceStats stats;
    std::string reduced = reduceProgram(
        src,
        [&](const std::string &cand) {
            return driver::runSource(cand, ref).summary() == verdict;
        },
        &stats);
    EXPECT_EQ(stats.removed, 0u);
    EXPECT_EQ(driver::runSource(reduced, ref).summary(), verdict);
}

} // namespace
} // namespace cherisem::fuzz
