// cherisem_fuzz seed=1 mode=ub-free
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
struct S { long a; int b[4]; int *p; };
union U { unsigned long l; unsigned int w[2]; };
int main(void) {
  unsigned long sink = 0;
  int a0[2] = {0, 29};
  int *p1 = malloc(7 * sizeof(int));
  for (int i = 0; i < 7; i++) p1[i] = 9 + i;
  {
    uintptr_t u2 = (uintptr_t)p1 + 4;
    int *q3 = (int *)u2;
    sink += (unsigned long)(q3 == p1 + 1);
    sink += (unsigned long)*q3;
  }
  int a4[3] = {40, 38, 28};
  sink += (unsigned long)p1[6];
  int a5[8] = {0, 10, 39, 0, 47, 42, 40, 31};
  {
    struct S s6;
    s6.a = 15;
    s6.b[0] = 53;
    s6.p = p1;
    sink += (unsigned long)(s6.a + s6.b[0]);
    sink += (unsigned long)(s6.p == p1);
  }
  {
    long l7 = (long)p1;
    int *w8 = (int *)l7;
    sink += (unsigned long)(w8 == p1);
    sink += (unsigned long)(cheri_tag_get(w8) == 0);
  }
  if (sink % 3u == 1u) {
    sink += 10u;
  } else {
    sink ^= 8u;
  }
  {
    uintptr_t u9 = (uintptr_t)p1 + 4;
    int *q10 = (int *)u9;
    sink += (unsigned long)(q10 == p1 + 1);
    sink += (unsigned long)*q10;
  }
  p1 = realloc(p1, 3 * sizeof(int));
  for (int i = 0; i < 8; i++) {
    sink += (unsigned long)a5[i];
  }
  memmove(p1 + 1, p1, 2 * sizeof(int));
  sink += (unsigned long)p1[2];
  {
    uintptr_t u11 = (uintptr_t)p1 + 8;
    int *q12 = (int *)u11;
    sink += (unsigned long)(q12 == p1 + 2);
    sink += (unsigned long)*q12;
  }
  long x13 = 32;
  int a14[8] = {1, 17, 26, 6, 28, 42, 2, 34};
  long x15 = 82;
  memmove(p1 + 1, p1, 2 * sizeof(int));
  sink += (unsigned long)p1[0];
  {
    struct S s16;
    s16.a = 75;
    s16.b[1] = 12;
    s16.p = p1;
    sink += (unsigned long)(s16.a + s16.b[1]);
    sink += (unsigned long)(s16.p == p1);
  }
  {
    long l17 = (long)p1;
    int *w18 = (int *)l17;
    sink += (unsigned long)(w18 == p1);
    sink += (unsigned long)(cheri_tag_get(w18) == 0);
  }
  p1[1] = 45;
  if (sink % 7u == 1u) {
    sink += 8u;
  } else {
    sink ^= 2u;
  }
  {
    struct S s19;
    s19.a = 47;
    s19.b[0] = 52;
    s19.p = p1;
    sink += (unsigned long)(s19.a + s19.b[0]);
    sink += (unsigned long)(s19.p == p1);
  }
  {
    struct S s20;
    s20.a = 61;
    s20.b[2] = 20;
    s20.p = p1;
    sink += (unsigned long)(s20.a + s20.b[2]);
    sink += (unsigned long)(s20.p == p1);
  }
  free(p1);
  return (int)(sink % 256u);
}
