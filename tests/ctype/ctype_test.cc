/**
 * @file
 * Unit tests for the type representation and the architecture-
 * dependent layout engine: the CHERI C sizing rules (pointer =
 * capability size, (u)intptr_t value range = address width) and the
 * section 3.7 integer conversion ranks.
 */
#include <gtest/gtest.h>

#include "ctype/layout.h"

namespace cherisem::ctype {
namespace {

const MachineLayout MORELLO{16, 8};
const MachineLayout CHERIOT{8, 4};

TEST(CType, RankOrdering)
{
    // Section 3.7: nothing outranks (u)intptr_t.
    EXPECT_GT(intRank(IntKind::Intptr), intRank(IntKind::LongLong));
    EXPECT_GT(intRank(IntKind::Uintptr), intRank(IntKind::ULongLong));
    EXPECT_LT(intRank(IntKind::Bool), intRank(IntKind::Char));
    EXPECT_LT(intRank(IntKind::Char), intRank(IntKind::Short));
    EXPECT_LT(intRank(IntKind::Short), intRank(IntKind::Int));
    EXPECT_LT(intRank(IntKind::Int), intRank(IntKind::Long));
    EXPECT_LT(intRank(IntKind::Long), intRank(IntKind::LongLong));
    EXPECT_EQ(intRank(IntKind::Intptr), intRank(IntKind::Uintptr));
}

TEST(CType, Signedness)
{
    EXPECT_TRUE(isSignedIntKind(IntKind::Intptr));
    EXPECT_FALSE(isSignedIntKind(IntKind::Uintptr));
    EXPECT_FALSE(isSignedIntKind(IntKind::Ptraddr));
    EXPECT_TRUE(isSignedIntKind(IntKind::Char));
    EXPECT_EQ(toUnsigned(IntKind::Intptr), IntKind::Uintptr);
    EXPECT_EQ(toUnsigned(IntKind::Long), IntKind::ULong);
    EXPECT_EQ(toUnsigned(IntKind::UInt), IntKind::UInt);
}

TEST(CType, CapCarryingPredicate)
{
    EXPECT_TRUE(intType(IntKind::Intptr)->isCapCarrying());
    EXPECT_TRUE(intType(IntKind::Uintptr)->isCapCarrying());
    EXPECT_TRUE(pointerTo(voidType())->isCapCarrying());
    EXPECT_FALSE(intType(IntKind::Ptraddr)->isCapCarrying());
    EXPECT_FALSE(intType(IntKind::ULongLong)->isCapCarrying());
}

TEST(CType, SameTypeStructural)
{
    TypeRef a = pointerTo(intType(IntKind::Int));
    TypeRef b = pointerTo(intType(IntKind::Int));
    EXPECT_TRUE(sameType(a, b));
    EXPECT_FALSE(sameType(a, pointerTo(intType(IntKind::UInt))));
    EXPECT_TRUE(sameType(withConst(a, true), a)); // modulo const
    EXPECT_TRUE(sameType(arrayOf(a, 3), arrayOf(b, 3)));
    EXPECT_FALSE(sameType(arrayOf(a, 3), arrayOf(b, 4)));
    TypeRef f1 = functionType(voidType(), {a}, false);
    TypeRef f2 = functionType(voidType(), {b}, false);
    EXPECT_TRUE(sameType(f1, f2));
    EXPECT_FALSE(
        sameType(f1, functionType(voidType(), {a}, true)));
}

TEST(Layout, MorelloSizes)
{
    TagTable tags;
    LayoutEngine le(MORELLO, &tags);
    EXPECT_EQ(le.sizeOf(pointerTo(voidType())), 16u);
    EXPECT_EQ(le.alignOf(pointerTo(voidType())), 16u);
    EXPECT_EQ(le.sizeOf(intType(IntKind::Intptr)), 16u);
    EXPECT_EQ(le.intValueBytes(IntKind::Intptr), 8u);
    EXPECT_EQ(le.sizeOf(intType(IntKind::Ptraddr)), 8u);
    EXPECT_EQ(le.sizeOf(intType(IntKind::Int)), 4u);
    EXPECT_EQ(le.sizeOf(arrayOf(intType(IntKind::Int), 5)), 20u);
}

TEST(Layout, CheriotSizes)
{
    TagTable tags;
    LayoutEngine le(CHERIOT, &tags);
    EXPECT_EQ(le.sizeOf(pointerTo(voidType())), 8u);
    EXPECT_EQ(le.sizeOf(intType(IntKind::Uintptr)), 8u);
    EXPECT_EQ(le.intValueBytes(IntKind::Uintptr), 4u);
    EXPECT_EQ(le.sizeOf(intType(IntKind::Ptraddr)), 4u);
}

TEST(Layout, IntRanges)
{
    TagTable tags;
    LayoutEngine le(MORELLO, &tags);
    EXPECT_EQ(le.intMax(IntKind::Int), 2147483647);
    EXPECT_EQ(le.intMin(IntKind::Int), -2147483648ll);
    EXPECT_EQ(le.intMax(IntKind::UChar), 255);
    EXPECT_EQ(le.intMin(IntKind::UChar), 0);
    EXPECT_EQ(le.intMax(IntKind::Bool), 1);
    // intptr range follows the address width, not the cap size.
    EXPECT_EQ(le.intMax(IntKind::Intptr),
              static_cast<__int128>(0x7fffffffffffffffll));
}

TEST(Layout, StructPaddingAroundCaps)
{
    TagTable tags;
    TagId tag = tags.declare("s", false);
    tags.complete(tag, {{"c", intType(IntKind::Char)},
                        {"p", pointerTo(voidType())},
                        {"v", intType(IntKind::Int)}});
    LayoutEngine le(MORELLO, &tags);
    TypeRef s = structOrUnionType(tag);
    EXPECT_EQ(le.alignOf(s), 16u);
    EXPECT_EQ(le.fieldOf(tag, "c").offset, 0u);
    EXPECT_EQ(le.fieldOf(tag, "p").offset, 16u);
    EXPECT_EQ(le.fieldOf(tag, "v").offset, 32u);
    EXPECT_EQ(le.sizeOf(s), 48u); // tail padded to 16
}

TEST(Layout, UnionSizing)
{
    TagTable tags;
    TagId tag = tags.declare("u", true);
    tags.complete(tag, {{"p", pointerTo(voidType())},
                        {"u", intType(IntKind::Uintptr)},
                        {"c", intType(IntKind::Char)}});
    LayoutEngine le(MORELLO, &tags);
    TypeRef u = structOrUnionType(tag);
    EXPECT_EQ(le.sizeOf(u), 16u);
    EXPECT_EQ(le.fieldOf(tag, "p").offset, 0u);
    EXPECT_EQ(le.fieldOf(tag, "c").offset, 0u);
}

TEST(Layout, NestedStructs)
{
    TagTable tags;
    TagId inner = tags.declare("inner", false);
    tags.complete(inner, {{"a", intType(IntKind::Int)},
                          {"b", intType(IntKind::Int)}});
    TagId outer = tags.declare("outer", false);
    tags.complete(outer, {{"c", intType(IntKind::Char)},
                          {"in", structOrUnionType(inner)}});
    LayoutEngine le(MORELLO, &tags);
    EXPECT_EQ(le.sizeOf(structOrUnionType(inner)), 8u);
    EXPECT_EQ(le.fieldOf(outer, "in").offset, 4u);
    EXPECT_EQ(le.sizeOf(structOrUnionType(outer)), 12u);
}

TEST(Layout, FieldNotFound)
{
    TagTable tags;
    TagId tag = tags.declare("s", false);
    tags.complete(tag, {{"a", intType(IntKind::Int)}});
    LayoutEngine le(MORELLO, &tags);
    EXPECT_FALSE(le.fieldOf(tag, "missing").found);
    EXPECT_TRUE(le.fieldOf(tag, "a").found);
}

TEST(CType, TypeStrRendering)
{
    EXPECT_EQ(typeStr(intType(IntKind::Int)), "int");
    EXPECT_EQ(typeStr(intType(IntKind::Uintptr)), "uintptr_t");
    EXPECT_EQ(typeStr(pointerTo(intType(IntKind::Char))), "char*");
    EXPECT_EQ(typeStr(arrayOf(intType(IntKind::Int), 4)), "int[4]");
    EXPECT_EQ(typeStr(withConst(intType(IntKind::Int), true)),
              "const int");
}

} // namespace
} // namespace cherisem::ctype
