/**
 * @file
 * Unit tests for the intrinsics registry and its type-derivation DSL
 * (section 4.5): lookup, unification of capability-type variables,
 * rejection of ill-typed calls.
 */
#include <gtest/gtest.h>

#include "intrinsics/intrinsics.h"

namespace cherisem::intrinsics {
namespace {

using ctype::IntKind;
using ctype::intType;
using ctype::pointerTo;
using ctype::TypeRef;
using ctype::voidType;

const ctype::MachineLayout MORELLO{16, 8};

TEST(Intrinsics, LookupKnownNames)
{
    EXPECT_TRUE(lookupBuiltin("malloc").has_value());
    EXPECT_TRUE(lookupBuiltin("cheri_tag_get").has_value());
    EXPECT_TRUE(lookupBuiltin("cheri_bounds_set").has_value());
    EXPECT_TRUE(lookupBuiltin("cheri_is_equal_exact").has_value());
    EXPECT_TRUE(lookupBuiltin("printf").has_value());
    EXPECT_FALSE(lookupBuiltin("nonexistent_fn").has_value());
}

TEST(Intrinsics, PolymorphicReturnFollowsArgument)
{
    auto sig = lookupBuiltin("cheri_bounds_set");
    ASSERT_TRUE(sig);
    // With a pointer argument...
    TypeRef ip = pointerTo(intType(IntKind::Int));
    auto r1 = resolveBuiltin(*sig, {ip, intType(IntKind::ULong)},
                             MORELLO);
    ASSERT_TRUE(r1.ok()) << r1.error();
    EXPECT_TRUE(ctype::sameType(r1.value().ret, ip));
    // ...and with uintptr_t.
    TypeRef up = intType(IntKind::Uintptr);
    auto r2 = resolveBuiltin(*sig, {up, intType(IntKind::ULong)},
                             MORELLO);
    ASSERT_TRUE(r2.ok());
    EXPECT_TRUE(ctype::sameType(r2.value().ret, up));
}

TEST(Intrinsics, CapVarRejectsPlainInteger)
{
    auto sig = lookupBuiltin("cheri_tag_get");
    ASSERT_TRUE(sig);
    auto r = resolveBuiltin(*sig, {intType(IntKind::Int)}, MORELLO);
    EXPECT_FALSE(r.ok());
    auto r2 = resolveBuiltin(*sig, {intType(IntKind::Ptraddr)},
                             MORELLO);
    EXPECT_FALSE(r2.ok()) << "ptraddr_t carries no capability";
}

TEST(Intrinsics, DistinctCapVarsAllowMixedTypes)
{
    // cheri_is_equal_exact(C0, C1): a pointer and a uintptr_t can be
    // compared (paper: "pointers or (u)intptr_t").
    auto sig = lookupBuiltin("cheri_is_equal_exact");
    ASSERT_TRUE(sig);
    auto r = resolveBuiltin(
        *sig,
        {pointerTo(intType(IntKind::Int)), intType(IntKind::Uintptr)},
        MORELLO);
    ASSERT_TRUE(r.ok()) << r.error();
    EXPECT_EQ(r.value().ret->intKind, IntKind::Bool);
}

TEST(Intrinsics, SameCapVarUnifiesSeal)
{
    // cheri_seal(C0, C1) returns C0.
    auto sig = lookupBuiltin("cheri_seal");
    ASSERT_TRUE(sig);
    TypeRef ip = pointerTo(intType(IntKind::Int));
    TypeRef vp = pointerTo(voidType());
    auto r = resolveBuiltin(*sig, {ip, vp}, MORELLO);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(ctype::sameType(r.value().ret, ip));
}

TEST(Intrinsics, ArraysDecayInCapVars)
{
    auto sig = lookupBuiltin("cheri_length_get");
    ASSERT_TRUE(sig);
    TypeRef arr = ctype::arrayOf(intType(IntKind::Int), 4);
    auto r = resolveBuiltin(*sig, {arr}, MORELLO);
    ASSERT_TRUE(r.ok()) << r.error();
}

TEST(Intrinsics, ArityChecked)
{
    auto sig = lookupBuiltin("cheri_address_set");
    ASSERT_TRUE(sig);
    auto r = resolveBuiltin(*sig, {pointerTo(voidType())}, MORELLO);
    EXPECT_FALSE(r.ok());
    auto r2 = resolveBuiltin(*sig,
                             {pointerTo(voidType()),
                              intType(IntKind::Ptraddr),
                              intType(IntKind::Int)},
                             MORELLO);
    EXPECT_FALSE(r2.ok());
}

TEST(Intrinsics, VariadicPrintfAcceptsExtras)
{
    auto sig = lookupBuiltin("printf");
    ASSERT_TRUE(sig);
    auto r = resolveBuiltin(
        *sig,
        {pointerTo(intType(IntKind::Char)), intType(IntKind::Int),
         pointerTo(voidType())},
        MORELLO);
    EXPECT_TRUE(r.ok());
}

TEST(Intrinsics, FixedSignatureTypes)
{
    auto sig = lookupBuiltin("cheri_representable_length");
    ASSERT_TRUE(sig);
    auto r = resolveBuiltin(*sig, {intType(IntKind::ULong)}, MORELLO);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().ret->intKind, IntKind::ULong);

    auto ag = lookupBuiltin("cheri_address_get");
    ASSERT_TRUE(ag);
    auto r2 = resolveBuiltin(*ag, {pointerTo(voidType())}, MORELLO);
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r2.value().ret->intKind, IntKind::Ptraddr);
}

} // namespace
} // namespace cherisem::intrinsics
