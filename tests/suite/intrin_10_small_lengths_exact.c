// @CATEGORY: Semantics of CHERI C intrinsic functions (e.g, permission manipulation)
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// Small regions are always byte-exact on 64-bit CHERI.
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    for (size_t l = 0; l < 600; l++)
        assert(cheri_representable_length(l) == l);
    return 0;
}
