// @CATEGORY: ISO-legal pointers one-past an object's footprint and their bounds
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// One-past construction and comparison are legal; the capability
// keeps the object's bounds and its tag (always representable).
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int a[4];
    int *end = a + 4;
    assert(cheri_tag_get(end));
    assert(cheri_address_get(end) ==
           cheri_base_get(a) + 4 * sizeof(int));
    int n = 0;
    for (int *p = a; p != end; p++) n++;
    assert(n == 4);
    return 0;
}
