// @CATEGORY: C const modifier and its effects on capabilities
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// ISO allows casting a non-const object's pointer to const and back,
// then modifying; the casts are capability no-ops (s3.9).
int main(void) {
    int x = 1;
    const int *cp = (const int *)&x;
    int *p = (int*)cp;
    *p = 2;
    return x == 2 ? 0 : 1;
}
