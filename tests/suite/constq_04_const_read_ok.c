// @CATEGORY: C const modifier and its effects on capabilities
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <assert.h>
const int table[3] = {10, 20, 30};
int main(void) {
    int sum = 0;
    for (int i = 0; i < 3; i++) sum += table[i];
    assert(sum == 60);
    return 0;
}
