// @CATEGORY: Handling of (un)signed integer types in casts, accessing capability fields, and intrinsics
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// The same high address is negative as intptr_t, positive as
// uintptr_t; both carry the same capability.
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int x;
    intptr_t i = (intptr_t)&x;
    uintptr_t u = (uintptr_t)&x;
    assert(cheri_address_get(i) == cheri_address_get(u));
    assert(i == (intptr_t)u);
    return 0;
}
