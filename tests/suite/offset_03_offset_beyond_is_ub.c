// @CATEGORY: Operations offseting pointers as in taking an address of array element at an index
// @EXPECT: ub UB_out_of_bounds_pointer_arithmetic
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: ub UB_out_of_bounds_pointer_arithmetic
// @EXPECT[cheriot-temporal]: exit 0
// &a[6] of int a[5] is beyond one-past: UB under ISO/CHERI C option
// (a); hardware merely constructs the (representable) pointer.
int main(void) {
    int a[5];
    int *p = &a[6];
    return p == 0;
}
