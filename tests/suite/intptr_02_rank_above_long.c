// @CATEGORY: Properties and definition of (u)intptr_t types
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// No standard integer type outranks (u)intptr_t (s3.7): mixed
// arithmetic converts *to* intptr_t, keeping the capability.
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int x[2];
    intptr_t ip = (intptr_t)&x[0];
    intptr_t r = ip + (unsigned long)4;  /* ULong converts to intptr */
    assert(cheri_tag_get(r));
    assert(cheri_address_get(r) == cheri_address_get(ip) + 4);
    return 0;
}
