// @CATEGORY: Accessing memory via capabilities after the region has been deallocated
// @EXPECT: ub UB_access_dead_allocation
// @EXPECT[clang-morello-O0]: exit 7
// @EXPECT[clang-riscv-O2]: exit 7
// @EXPECT[gcc-morello-O2]: exit 7
// @EXPECT[cerberus-cheriot]: ub UB_access_dead_allocation
// @EXPECT[cheriot-temporal]: ub UB_CHERI_InvalidCap
// Temporal safety: flagged by the abstract machine, silent on
// hardware without revocation (s3, objective 3).
#include <stdlib.h>
int main(void) {
    int *p = malloc(sizeof(int));
    *p = 7;
    free(p);
    return *p;
}
