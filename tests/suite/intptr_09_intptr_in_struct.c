// @CATEGORY: Properties and definition of (u)intptr_t types
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
struct holder { uintptr_t u; };
int main(void) {
    int x = 5;
    struct holder h;
    h.u = (uintptr_t)&x;
    struct holder copy = h;
    assert(cheri_tag_get(copy.u));
    assert(*(int*)copy.u == 5);
    return 0;
}
