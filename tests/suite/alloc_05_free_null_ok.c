// @CATEGORY: Memory allocator interface (locals, globals, and heap)
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <stdlib.h>
int main(void) {
    free(0);
    return 0;
}
