// @CATEGORY: pointer provenance tracking per [18]
// @EXPECT: ub UB_ptrdiff_different_objects
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: ub UB_ptrdiff_different_objects
// @EXPECT[cheriot-temporal]: exit 0
// Pointer subtraction requires one provenance (s3.11 check 2); the
// capability runtime cannot subsume this check — hardware computes
// a number.
int main(void) {
    int x, y;
    long d = &x - &y;
    return d == 0;
}
