// @CATEGORY: Relational comparison operators (e.g. <,>,<= and >=) for capabilities
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
int main(void) {
    int a[4];
    int *p = a;
    int *end = a + 4;
    int n = 0;
    while (p < end) { p++; n++; }
    return n == 4 ? 0 : 1;
}
