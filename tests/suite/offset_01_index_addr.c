// @CATEGORY: Operations offseting pointers as in taking an address of array element at an index
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <assert.h>
int main(void) {
    int a[8];
    for (int i = 0; i < 8; i++) a[i] = i;
    int *p = &a[3];
    assert(*p == 3);
    assert(*(p + 2) == 5);
    assert(*(p - 1) == 2);
    return 0;
}
