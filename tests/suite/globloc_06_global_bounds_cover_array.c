// @CATEGORY: Pointers to global vs local variables
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <cheriintrin.h>
#include <assert.h>
int garr[16];
int main(void) {
    assert(cheri_length_get(garr) == 16 * sizeof(int));
    garr[15] = 1;
    return 0;
}
