// @CATEGORY: Effects of compiler optimisations
// @EXPECT: exit 55
// @EXPECT[clang-morello-O2]: exit 55
// @EXPECT[gcc-morello-O2]: exit 55
// @EXPECT[clang-morello-O0]: exit 55
// @EXPECT[clang-riscv-O2]: exit 55
// @EXPECT[cerberus-cheriot]: exit 55
// @EXPECT[cheriot-temporal]: exit 55
// Well-defined programs behave identically at every level.
int main(void) {
    int sum = 0;
    int a[10];
    for (int i = 0; i < 10; i++) a[i] = i + 1;
    for (int i = 0; i < 10; i++) sum += a[i];
    return sum;
}
