// @CATEGORY: New ptraddr_t type definition and usage
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// ptraddr_t is an address-wide plain integer (s3.10): no capability.
#include <stdint.h>
#include <assert.h>
int main(void) {
    assert(sizeof(ptraddr_t) == 8);
    assert(sizeof(ptraddr_t) < sizeof(uintptr_t));
    int x;
    ptraddr_t a = (ptraddr_t)&x;
    assert(a != 0);
    return 0;
}
