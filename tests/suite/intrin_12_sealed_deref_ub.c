// @CATEGORY: Semantics of CHERI C intrinsic functions (e.g, permission manipulation)
// @EXPECT: ub UB_CHERI_SealViolation
// @EXPECT[clang-morello-O0]: ub UB_CHERI_SealViolation
// @EXPECT[clang-riscv-O2]: ub UB_CHERI_SealViolation
// @EXPECT[gcc-morello-O2]: ub UB_CHERI_SealViolation
// @EXPECT[cerberus-cheriot]: ub UB_CHERI_SealViolation
// @EXPECT[cheriot-temporal]: ub UB_CHERI_SealViolation
#include <cheriintrin.h>
int main(void) {
    int x = 3;
    void *auth = cheri_address_set(cheri_ddc_get(), 9);
    int *s = cheri_seal(&x, auth);
    return *s;
}
