// @CATEGORY: Implicit/explicit casts between capability-carrying types
// @EXPECT: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Pointer -> uintptr_t -> pointer is a capability no-op (s3.3).
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int x = 4;
    int *p = &x;
    uintptr_t u = (uintptr_t)p;
    int *q = (int*)u;
    assert(cheri_is_equal_exact(p, q));
    assert(*q == 4);
    return 0;
}
