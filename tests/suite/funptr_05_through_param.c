// @CATEGORY: Pointers to functions
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
int inc(int v) { return v + 1; }
int apply3(int (*f)(int), int v) { return f(f(f(v))); }
int main(void) {
    return apply3(inc, 0) == 3 ? 0 : 1;
}
