// @CATEGORY: Arithmetic operations on (u)intptr_t values
// @EXPECT: exit 0
// @EXPECT[cerberus-cheriot]: ub UB_signed_integer_overflow
// @EXPECT[cheriot-temporal]: ub UB_signed_integer_overflow
// Two capability operands: derivation from the left (s3.7).
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int x = 0, y = 0;
    intptr_t a = (intptr_t)&x;
    intptr_t b = (intptr_t)&y;
    intptr_t c = a + b;
    /* c carries x's bounds (possibly untagged due to
       representability), never y's */
    assert(cheri_base_get(c) == cheri_base_get(a) ||
           cheri_ghost_state_get(c) != 0);
    return 0;
}
