// @CATEGORY: Properties and definition of (u)intptr_t types
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Storing a (u)intptr_t writes the capability and its tag (s4.3).
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int x = 8;
    uintptr_t u = (uintptr_t)&x;
    uintptr_t v;
    uintptr_t *slot = &v;
    *slot = u;
    assert(cheri_tag_get(*slot));
    assert(*(int*)*slot == 8);
    return 0;
}
