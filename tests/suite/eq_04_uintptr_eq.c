// @CATEGORY: Equality between capability-carrying types
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: ub UB_signed_integer_overflow
// @EXPECT[cheriot-temporal]: ub UB_signed_integer_overflow
// (u)intptr_t equality is address equality too (s3.7).
#include <stdint.h>
#include <assert.h>
int main(void) {
    int x = 0, y = 0;
    intptr_t a = (intptr_t)&x;
    intptr_t b = (intptr_t)&y;
    intptr_t c0 = a + b;
    intptr_t c1 = b + a; /* different derivation, same address */
    assert(c0 == c1);
    return 0;
}
