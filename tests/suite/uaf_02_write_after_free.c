// @CATEGORY: Accessing memory via capabilities after the region has been deallocated
// @EXPECT: ub UB_access_dead_allocation
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: ub UB_access_dead_allocation
// @EXPECT[cheriot-temporal]: ub UB_CHERI_InvalidCap
#include <stdlib.h>
int main(void) {
    char *p = malloc(8);
    free(p);
    p[0] = 1;
    return 0;
}
