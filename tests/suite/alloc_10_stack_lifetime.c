// @CATEGORY: Memory allocator interface (locals, globals, and heap)
// @EXPECT: ub UB_access_dead_allocation
// @EXPECT[clang-morello-O0]: exit 5
// @EXPECT[clang-riscv-O2]: exit 5
// @EXPECT[gcc-morello-O2]: exit 5
// @EXPECT[cerberus-cheriot]: ub UB_access_dead_allocation
// @EXPECT[cheriot-temporal]: exit 5
// A pointer to a dead stack frame: the abstract machine flags the
// temporal violation; hardware without temporal safety happily reads
// the stale (still tagged) stack slot (s3, objective 3).
int *escape(void) {
    int local = 5;
    int *p = &local;
    return p;
}
int main(void) {
    int *p = escape();
    return *p;
}
