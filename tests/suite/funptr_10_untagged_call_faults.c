// @CATEGORY: Pointers to functions
// @EXPECT: ub UB_CHERI_InvalidCap
// @EXPECT[clang-morello-O0]: ub UB_CHERI_InvalidCap
// @EXPECT[clang-riscv-O2]: ub UB_CHERI_InvalidCap
// @EXPECT[gcc-morello-O2]: ub UB_CHERI_InvalidCap
// @EXPECT[cerberus-cheriot]: ub UB_CHERI_InvalidCap
// @EXPECT[cheriot-temporal]: ub UB_CHERI_InvalidCap
// Calling through a forged (untagged) code address traps.
#include <stdint.h>
int f(void) { return 0; }
int main(void) {
    uintptr_t u = (uintptr_t)f;
    long raw = (long)u;                 /* strips the capability */
    int (*p)(void) = (int(*)(void))raw; /* untagged */
    return p();
}
