// @CATEGORY: Effects of compiler optimisations
// @EXPECT: ub UB_CHERI_BoundsViolation
// @EXPECT[clang-morello-O0]: ub UB_CHERI_BoundsViolation
// @EXPECT[clang-riscv-O2]: ub UB_CHERI_BoundsViolation
// @EXPECT[gcc-morello-O2]: ub UB_CHERI_BoundsViolation
// @EXPECT[cerberus-cheriot]: ub UB_CHERI_BoundsViolation
// @EXPECT[cheriot-temporal]: ub UB_CHERI_BoundsViolation
// The s3.1 program, unoptimised: the doomed write traps.
void f(int *p, int i) {
    int *q = p + i;
    *q = 42;
}
int main(void) {
    int x=0, y=0;
    f(&x, 1);
    return y;
}
