// @CATEGORY: Issues related to potential non-representability of some combinations of capability fields
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// In-bounds address changes are always representable.
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    char buf[256];
    char *p = cheri_address_set(buf, cheri_address_get(buf) + 128);
    assert(cheri_tag_get(p));
    assert(cheri_ghost_state_get(p) == 0);
    return 0;
}
