// @CATEGORY: Tests related to accessing capabilities in-memory representation
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// s3.6/s3.5: cheri_is_equal_exact involving a ghost-marked value
// returns an unspecified (but defined) boolean.
int main(void) {
    int x;
    int *p = &x;
    int *q = &x;
    unsigned char *rep = (unsigned char *)&q;
    rep[0] = rep[0];
    int e = cheri_is_equal_exact(p, q);
    return (e == 0 || e == 1) ? 0 : 1;
}
