// @CATEGORY: Tests related to accessing capabilities in-memory representation
// @EXPECT: ub UB_CHERI_UndefinedTag
// @EXPECT[clang-morello-O0]: ub UB_CHERI_InvalidCap
// @EXPECT[clang-riscv-O2]: exit 1
// @EXPECT[gcc-morello-O2]: exit 1
// @EXPECT[cerberus-cheriot]: ub UB_CHERI_UndefinedTag
// @EXPECT[cheriot-temporal]: ub UB_CHERI_InvalidCap
// A hand-written byte copy of a capability: defined to copy, UB to
// dereference the copy (unoptimised; cf. opt_04).
#include <stdint.h>
int main(void) {
    int x = 1;
    int *src = &x;
    int *dst;
    unsigned char *s = (unsigned char *)&src;
    unsigned char *d = (unsigned char *)&dst;
    for (unsigned i = 0; i < sizeof(int*); i++) d[i] = s[i];
    return *dst;
}
