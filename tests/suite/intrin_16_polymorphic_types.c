// @CATEGORY: Semantics of CHERI C intrinsic functions (e.g, permission manipulation)
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// The intrinsics' type-derivation DSL (s4.5): the same intrinsic
// accepts pointers and (u)intptr_t and returns the argument's type.
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int x = 1;
    int *p = &x;
    uintptr_t u = (uintptr_t)&x;
    assert(cheri_address_get(p) == cheri_address_get(u));
    int *p2 = cheri_bounds_set(p, sizeof(int));     /* C = int*      */
    uintptr_t u2 = cheri_bounds_set(u, sizeof(int)); /* C = uintptr_t */
    assert(cheri_length_get(p2) == cheri_length_get(u2));
    assert(*p2 == 1);
    assert(*(int*)u2 == 1);
    return 0;
}
