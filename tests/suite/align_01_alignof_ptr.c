// @CATEGORY: Checking capability alignment in the memory
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Pointer (capability) alignment equals the capability size.
#include <assert.h>
int main(void) {
    assert(_Alignof(int*) == sizeof(int*));
    assert(_Alignof(void*) == sizeof(void*));
    return 0;
}
