// @CATEGORY: Initialization of variables carrying capabilities
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <assert.h>
struct pair { int *p; int v; };
int g = 4;
int main(void) {
    struct pair s = {&g, 9};
    assert(*s.p == 4 && s.v == 9);
    return 0;
}
