// @CATEGORY: Accessing memory via capabilities after the region has been deallocated
// @EXPECT: ub UB_access_dead_allocation
// @EXPECT[clang-morello-O0]: exit 9
// @EXPECT[clang-riscv-O2]: exit 9
// @EXPECT[gcc-morello-O2]: exit 9
// @EXPECT[cerberus-cheriot]: ub UB_access_dead_allocation
// @EXPECT[cheriot-temporal]: ub UB_CHERI_InvalidCap
// s3.11 scenario 2: stale and fresh capability to the same address;
// the stale one reads the *new* object's data on hardware.
#include <stdlib.h>
int main(void) {
    int *old = malloc(sizeof(int));
    *old = 1;
    free(old);
    int *fresh = malloc(sizeof(int));
    *fresh = 9;
    return *old;
}
