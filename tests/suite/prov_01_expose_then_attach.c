// @CATEGORY: pointer provenance tracking per [18]
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// PNVI-ae: a pointer-to-integer cast exposes the allocation, so an
// integer-derived pointer to it gets provenance (though no tag).
#include <stdint.h>
int main(void) {
    int x = 7;
    ptraddr_t a = (ptraddr_t)&x;   /* exposes x */
    int *p = (int*)(long)a;        /* attaches provenance, no tag */
    return p == &x ? 0 : 1;
}
