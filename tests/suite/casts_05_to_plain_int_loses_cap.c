// @CATEGORY: Implicit/explicit casts between capability-carrying types
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Casting a pointer to a plain integer type keeps only the address;
// casting back cannot rematerialise the capability (s3.3).
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int x = 0;
    long l = (long)&x;
    int *q = (int*)l;
    assert(!cheri_tag_get(q));
    assert((long)cheri_address_get(q) == l);
    return 0;
}
