// @CATEGORY: Standard C library functions handling of capabilities
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <string.h>
#include <assert.h>
int main(void) {
    char s[] = "cheri";
    assert(strlen(s) == 5);
    assert(strlen("") == 0);
    return 0;
}
