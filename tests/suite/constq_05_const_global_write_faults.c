// @CATEGORY: C const modifier and its effects on capabilities
// @EXPECT: ub UB_CHERI_InsufficientPermissions
// @EXPECT[clang-morello-O0]: ub UB_CHERI_InsufficientPermissions
// @EXPECT[clang-riscv-O2]: ub UB_CHERI_InsufficientPermissions
// @EXPECT[gcc-morello-O2]: ub UB_CHERI_InsufficientPermissions
// @EXPECT[cerberus-cheriot]: ub UB_CHERI_InsufficientPermissions
// @EXPECT[cheriot-temporal]: ub UB_CHERI_InsufficientPermissions
const int g = 3;
int main(void) {
    *(int*)&g = 4;
    return g;
}
