// @CATEGORY: null pointers and NULL constant as capabilities
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <stddef.h>
#include <assert.h>
int main(void) {
    int *p = NULL;
    assert(p == 0);
    assert(!p);
    return 0;
}
