// @CATEGORY: Arithmetic operations on (u)intptr_t values
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Converted (non-capability) operands never win derivation (s3.7):
// int + intptr derives from the intptr side regardless of position.
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int x[2];
    intptr_t ip = (intptr_t)&x[0];
    intptr_t l = 4 + ip;
    intptr_t r = ip + 4;
    assert(cheri_tag_get(l));
    assert(cheri_tag_get(r));
    assert(cheri_base_get(l) == cheri_base_get(ip));
    assert(cheri_base_get(r) == cheri_base_get(ip));
    return 0;
}
