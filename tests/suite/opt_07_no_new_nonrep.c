// @CATEGORY: Effects of compiler optimisations
// @EXPECT: exit 0
// @EXPECT[clang-morello-O2]: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// s3.3 option (c): optimisations may remove but never introduce
// non-representability — p + (100001 - 100000) stays healthy
// everywhere.
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int x[2];
    uintptr_t i = (uintptr_t)&x[0];
    uintptr_t k = i + (100001 - 100000) * sizeof(int);
    assert(cheri_ghost_state_get(k) == 0);
    int *q = (int*)k;
    x[1] = 3;
    assert(*q == 3);
    return 0;
}
