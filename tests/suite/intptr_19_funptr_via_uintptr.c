// @CATEGORY: Properties and definition of (u)intptr_t types
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <stdint.h>
int f(int v) { return v + 1; }
int main(void) {
    uintptr_t u = (uintptr_t)&f;
    int (*p)(int) = (int(*)(int))u;
    return p(41) == 42 ? 0 : 1;
}
