// @CATEGORY: Memory allocator interface (locals, globals, and heap)
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// &local spans exactly the local's footprint (s3.1).
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int x;
    assert(cheri_length_get(&x) == sizeof(int));
    assert(cheri_base_get(&x) == cheri_address_get(&x));
    return 0;
}
