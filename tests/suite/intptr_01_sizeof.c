// @CATEGORY: Properties and definition of (u)intptr_t types
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// (u)intptr_t is represented by a full capability (s3.3).
#include <stdint.h>
#include <assert.h>
int main(void) {
    assert(sizeof(intptr_t) == sizeof(void*));
    assert(sizeof(uintptr_t) == sizeof(void*));
    return 0;
}
