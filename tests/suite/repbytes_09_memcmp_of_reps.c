// @CATEGORY: Tests related to accessing capabilities in-memory representation
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// memcmp over two equal capability representations: equal bytes
// (the tag is out of band and not part of the representation).
#include <string.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int x;
    int *p = &x;
    int *q = cheri_tag_clear(&x);
    assert(memcmp(&p, &q, sizeof(int*)) == 0);
    assert(cheri_tag_get(p) != cheri_tag_get(q));
    return 0;
}
