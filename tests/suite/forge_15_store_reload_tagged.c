// @CATEGORY: Unforgeability enforcement for capabilities
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Round-tripping a capability through memory preserves the tag; the
// tag lives out of band (s2.1).
#include <stdlib.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int x = 1;
    int **box = malloc(sizeof(int*));
    *box = &x;
    int *back = *box;
    assert(cheri_tag_get(back));
    assert(cheri_is_equal_exact(back, &x));
    free(box);
    return 0;
}
