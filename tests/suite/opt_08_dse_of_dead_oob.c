// @CATEGORY: Effects of compiler optimisations
// @EXPECT: ub UB_CHERI_BoundsViolation
// @EXPECT[clang-morello-O2]: ub UB_CHERI_BoundsViolation
// @EXPECT[clang-morello-O0]: ub UB_CHERI_BoundsViolation
// @EXPECT[clang-riscv-O2]: ub UB_CHERI_BoundsViolation
// @EXPECT[gcc-morello-O2]: ub UB_CHERI_BoundsViolation
// @EXPECT[cerberus-cheriot]: ub UB_CHERI_BoundsViolation
// @EXPECT[cheriot-temporal]: ub UB_CHERI_BoundsViolation
// An out-of-bounds write whose *value* is used cannot be elided:
// all profiles trap.
int main(void) {
    int a[2];
    a[0] = 1;
    int *q = a + 2;
    *q = a[0];
    return a[0];
}
