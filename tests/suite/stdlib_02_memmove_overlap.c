// @CATEGORY: Standard C library functions handling of capabilities
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// memmove handles overlap and still preserves aligned capabilities.
#include <string.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int x = 5;
    int *arr[4];
    arr[0] = &x;
    arr[1] = &x;
    memmove(&arr[1], &arr[0], 2 * sizeof(int*));
    assert(cheri_tag_get(arr[2]));
    assert(*arr[2] == 5);
    return 0;
}
