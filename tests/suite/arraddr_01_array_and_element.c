// @CATEGORY: Capabilities produced by taking addresses of arrays and their elements
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// &arr and &arr[0] have the same address and the same (whole-array)
// bounds: sub-object narrowing is off by default (s3.8).
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int arr[4];
    assert(cheri_address_get(&arr[0]) == cheri_address_get(arr));
    assert(cheri_length_get(&arr[0]) == 4 * sizeof(int));
    return 0;
}
