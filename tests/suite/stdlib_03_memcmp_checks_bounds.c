// @CATEGORY: Standard C library functions handling of capabilities
// @EXPECT: ub UB_CHERI_BoundsViolation
// @EXPECT[clang-morello-O0]: ub UB_CHERI_BoundsViolation
// @EXPECT[clang-riscv-O2]: ub UB_CHERI_BoundsViolation
// @EXPECT[gcc-morello-O2]: ub UB_CHERI_BoundsViolation
// @EXPECT[cerberus-cheriot]: ub UB_CHERI_BoundsViolation
// @EXPECT[cheriot-temporal]: ub UB_CHERI_BoundsViolation
#include <string.h>
int main(void) {
    char a[4] = {1,2,3,4};
    char b[2] = {1,2};
    return memcmp(a, b, 4);
}
