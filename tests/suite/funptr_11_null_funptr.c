// @CATEGORY: Pointers to functions
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <assert.h>
int f(void) { return 1; }
int main(void) {
    int (*p)(void) = 0;
    assert(p == 0);
    p = f;
    assert(p != 0);
    return 0;
}
