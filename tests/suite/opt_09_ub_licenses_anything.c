// @CATEGORY: Effects of compiler optimisations
// @EXPECT: ub UB_out_of_bounds_pointer_arithmetic
// @EXPECT[clang-morello-O2]: exit 0
// @EXPECT[clang-morello-O0]: ub UB_CHERI_InvalidCap
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: ub UB_out_of_bounds_pointer_arithmetic
// @EXPECT[cheriot-temporal]: ub UB_CHERI_InvalidCap
// The s3.1 lesson: a UB program has no guaranteed behaviour; this
// one "works" at O2 and is UB in the abstract machine.
int main(void) {
    int x[2];
    int *edge = (x + 100002) - 100002; /* transiently OOB by 2 */
    *edge = 0;
    return *edge;
}
