// @CATEGORY: Memory allocator interface (locals, globals, and heap)
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <stdlib.h>
#include <assert.h>
int main(void) {
    int *p = calloc(4, sizeof(int));
    for (int i = 0; i < 4; i++)
        assert(p[i] == 0);
    free(p);
    return 0;
}
