// @CATEGORY: Bitwise operations on (u)intptr_t values
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Packing metadata into low bits and clearing it again (the s3.3
// motivating idiom).
#include <stdint.h>
#include <assert.h>
int main(void) {
    long v = 10;
    long *box = &v;
    uintptr_t u = (uintptr_t)box;
    u |= 1;                 /* tag bit trick */
    assert(u & 1);
    u &= ~(uintptr_t)1;
    long *p = (long*)u;
    assert(*p == 10);
    return 0;
}
