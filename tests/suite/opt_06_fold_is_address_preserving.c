// @CATEGORY: Effects of compiler optimisations
// @EXPECT: exit 0
// @EXPECT[clang-morello-O2]: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Optimisation never changes the *value* of in-range arithmetic.
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int a[8];
    uintptr_t u = (uintptr_t)a;
    uintptr_t v = (u + 3 * sizeof(int)) - 2 * sizeof(int);
    assert(cheri_address_get(v) == cheri_address_get(u) + sizeof(int));
    return 0;
}
