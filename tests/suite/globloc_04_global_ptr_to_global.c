// @CATEGORY: Pointers to global vs local variables
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <assert.h>
int g = 6;
int *gp = &g;
int main(void) {
    assert(*gp == 6);
    *gp = 7;
    assert(g == 7);
    return 0;
}
