// @CATEGORY: Memory allocator interface (locals, globals, and heap)
// @EXPECT: ub UB_free_invalid_pointer
// @EXPECT[clang-morello-O0]: ub UB_free_invalid_pointer
// @EXPECT[clang-riscv-O2]: ub UB_free_invalid_pointer
// @EXPECT[gcc-morello-O2]: ub UB_free_invalid_pointer
// @EXPECT[cerberus-cheriot]: ub UB_free_invalid_pointer
// @EXPECT[cheriot-temporal]: ub UB_free_invalid_pointer
#include <stdlib.h>
int main(void) {
    int x;
    free(&x);
    return 0;
}
