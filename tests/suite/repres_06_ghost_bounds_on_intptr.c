// @CATEGORY: Issues related to potential non-representability of some combinations of capability fields
// @EXPECT: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// The abstract machine's ghost "bounds unspecified" bit appears
// exactly when (u)intptr_t arithmetic leaves the representable
// region (s3.3 option (3)).
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int x[2];
    uintptr_t u = (uintptr_t)&x[0];
    uintptr_t near = u + sizeof(int);        /* representable */
    uintptr_t far = u + (1u << 28);          /* not */
    assert(cheri_ghost_state_get(near) == 0);
    assert(cheri_ghost_state_get(far) & 2);
    return 0;
}
