// @CATEGORY: Pointers to global vs local variables
// @EXPECT: ub UB_access_dead_allocation
// @EXPECT[clang-morello-O0]: exit 3
// @EXPECT[clang-riscv-O2]: exit 3
// @EXPECT[gcc-morello-O2]: exit 3
// @EXPECT[cerberus-cheriot]: ub UB_access_dead_allocation
// @EXPECT[cheriot-temporal]: exit 3
// Storing &local into a global and using it after return: temporal
// violation in the abstract machine, stale read on hardware.
int *gp;
void f(void) { int l = 3; gp = &l; }
int main(void) {
    f();
    return *gp;
}
