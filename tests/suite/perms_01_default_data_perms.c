// @CATEGORY: Capability permissions: setting and enforcement
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Ordinary allocations carry load+store (and cap load/store) perms.
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int x;
    assert(cheri_perms_get(&x) != 0);
    x = 1;
    int v = x;
    return v == 1 ? 0 : 1;
}
