// @CATEGORY: Equality between capability-carrying types
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <assert.h>
int f(void) { return 1; }
int g(void) { return 2; }
int main(void) {
    int (*pf)(void) = f;
    int (*pg)(void) = g;
    assert(pf == f);
    assert(pf != pg);
    return 0;
}
