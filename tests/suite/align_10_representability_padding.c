// @CATEGORY: Checking capability alignment in the memory
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Large allocations are padded/aligned by the allocator so their
// capability is exactly representable (s3.2, last paragraph).
#include <stdlib.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    size_t len = 123456;
    char *p = malloc(len);
    assert(cheri_tag_get(p));
    assert(cheri_length_get(p) >= len);
    assert(cheri_length_get(p) == cheri_representable_length(len));
    assert((cheri_address_get(p) &
            ~cheri_representable_alignment_mask(len)) == 0);
    free(p);
    return 0;
}
