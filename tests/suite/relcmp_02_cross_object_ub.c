// @CATEGORY: Relational comparison operators (e.g. <,>,<= and >=) for capabilities
// @EXPECT: ub UB_relational_different_objects
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: ub UB_relational_different_objects
// @EXPECT[cheriot-temporal]: exit 0
// Relational comparison across objects: UB in ISO/PNVI; ordinary
// address comparison on hardware (s3.11 check 2 is not subsumed).
int main(void) {
    int x, y;
    return &x < &y ? 0 : 0;
}
