// @CATEGORY: Properties and definition of (u)intptr_t types
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Using a (u)intptr_t as a hash-table index stays defined (the
// s3.3 discussion of option (2) vs (3)).
#include <stdint.h>
int main(void) {
    int x;
    uintptr_t u = (uintptr_t)&x;
    unsigned long bucket = (unsigned long)(u % 17);
    return bucket < 17 ? 0 : 1;
}
