// @CATEGORY: Equality between capability-carrying types
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Different bounds, same address: equal under ==.
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int a[4];
    int *p = &a[0];
    int *q = cheri_bounds_set(p, sizeof(int));
    assert(p == q);
    assert(!cheri_is_equal_exact(p, q));
    return 0;
}
