// @CATEGORY: Tests related to accessing capabilities in-memory representation
// @EXPECT: ub UB_CHERI_UndefinedTag
// @EXPECT[clang-morello-O0]: ub UB_CHERI_InvalidCap
// @EXPECT[clang-riscv-O2]: ub UB_CHERI_InvalidCap
// @EXPECT[gcc-morello-O2]: ub UB_CHERI_InvalidCap
// @EXPECT[cerberus-cheriot]: ub UB_CHERI_UndefinedTag
// @EXPECT[cheriot-temporal]: ub UB_CHERI_InvalidCap
// Modifying the address byte through the representation: the ghost
// state poisons the capability (s3.5).
int main(void) {
    int a[2];
    a[1] = 5;
    int *p = &a[0];
    unsigned char *rep = (unsigned char *)&p;
    rep[0] = rep[0] + 4;  /* "p++" via representation */
    return *p;
}
