// @CATEGORY: Implicit/explicit casts between capability-carrying types
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// A char* view of an object keeps the same capability (no sub-object
// narrowing, s3.8).
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int x = 0x01020304;
    unsigned char *c = (unsigned char *)&x;
    assert(cheri_base_get(c) == cheri_base_get(&x));
    assert(cheri_length_get(c) == cheri_length_get(&x));
    assert(c[0] == 0x04);
    return 0;
}
