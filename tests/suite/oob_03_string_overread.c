// @CATEGORY: Out-of-bounds memory-access handling
// @EXPECT: ub UB_CHERI_BoundsViolation
// @EXPECT[clang-morello-O0]: ub UB_CHERI_BoundsViolation
// @EXPECT[clang-riscv-O2]: ub UB_CHERI_BoundsViolation
// @EXPECT[gcc-morello-O2]: ub UB_CHERI_BoundsViolation
// @EXPECT[cerberus-cheriot]: ub UB_CHERI_BoundsViolation
// @EXPECT[cheriot-temporal]: ub UB_CHERI_BoundsViolation
// Classic overread: walking past a buffer's end faults at the
// first out-of-bounds byte.
int main(void) {
    char buf[8];
    for (int i = 0; i < 8; i++) buf[i] = 'a';
    int sum = 0;
    unsigned char *p = (unsigned char *)buf;
    for (int i = 0; i < 9; i++) sum += p[i];
    return sum;
}
