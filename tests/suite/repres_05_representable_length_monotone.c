// @CATEGORY: Issues related to potential non-representability of some combinations of capability fields
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    size_t prev = 0;
    for (size_t len = 1; len < (1u << 24); len = len * 5 + 3) {
        size_t rl = cheri_representable_length(len);
        assert(rl >= len);
        assert(rl >= prev);
        prev = rl;
    }
    return 0;
}
