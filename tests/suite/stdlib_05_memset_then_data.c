// @CATEGORY: Standard C library functions handling of capabilities
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <string.h>
#include <assert.h>
int main(void) {
    int a[8];
    memset(a, 0, sizeof(int) * 8);
    for (int i = 0; i < 8; i++) assert(a[i] == 0);
    memset(a, 0xff, sizeof(int) * 8);
    assert(a[0] == -1);
    return 0;
}
