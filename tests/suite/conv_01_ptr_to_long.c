// @CATEGORY: Conversion between pointer and integer types
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Pointer -> long keeps the address value (implementation-defined).
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int x;
    long l = (long)&x;
    assert((unsigned long)l == cheri_address_get(&x));
    return 0;
}
