// @CATEGORY: Equality between capability-carrying types
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <assert.h>
int main(void) {
    int *p = 0;
    assert(p == 0);
    int x;
    p = &x;
    assert(p != 0);
    return 0;
}
