// @CATEGORY: Checking capability alignment in the memory
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// malloc() results are capability-aligned so they can hold pointers.
#include <stdlib.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    void *p = malloc(3);
    assert(cheri_address_get(p) % sizeof(void*) == 0);
    free(p);
    return 0;
}
