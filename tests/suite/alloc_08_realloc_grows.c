// @CATEGORY: Memory allocator interface (locals, globals, and heap)
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// realloc preserves contents and re-derives a fresh capability.
#include <stdlib.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int *p = malloc(2 * sizeof(int));
    p[0] = 11; p[1] = 22;
    int *q = realloc(p, 8 * sizeof(int));
    assert(q[0] == 11 && q[1] == 22);
    assert(cheri_length_get(q) >= 8 * sizeof(int));
    free(q);
    return 0;
}
