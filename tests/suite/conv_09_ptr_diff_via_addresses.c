// @CATEGORY: Conversion between pointer and integer types
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Address arithmetic through ptraddr_t matches pointer subtraction.
#include <stdint.h>
#include <assert.h>
int main(void) {
    int a[6];
    assert((ptraddr_t)&a[4] - (ptraddr_t)&a[1] ==
           (size_t)((&a[4]) - (&a[1])) * sizeof(int));
    return 0;
}
