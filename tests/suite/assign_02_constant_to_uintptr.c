// @CATEGORY: Assigning constants and values of capability-carrying types to capability-typed variables
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Integer constants become null-derived (untagged) capabilities.
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    uintptr_t u = 0x1234;
    assert(!cheri_tag_get(u));
    assert(cheri_address_get(u) == 0x1234);
    assert(u == 0x1234);
    return 0;
}
