// @CATEGORY: Pointers to global vs local variables
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Globals and locals live in different regions; both are tagged.
#include <cheriintrin.h>
#include <assert.h>
int g;
int main(void) {
    int l;
    assert(cheri_tag_get(&g) && cheri_tag_get(&l));
    assert(cheri_address_get(&g) != cheri_address_get(&l));
    return 0;
}
