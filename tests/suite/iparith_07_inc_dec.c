// @CATEGORY: Arithmetic operations on (u)intptr_t values
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    char buf[4];
    uintptr_t u = (uintptr_t)buf;
    ptraddr_t before = cheri_address_get(u);
    u++;
    ++u;
    u--;
    assert(cheri_address_get(u) == before + 1);
    assert(cheri_tag_get(u));
    return 0;
}
