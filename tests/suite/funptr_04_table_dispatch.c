// @CATEGORY: Pointers to functions
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <assert.h>
int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int mul(int a, int b) { return a * b; }
int main(void) {
    int (*ops[3])(int, int) = {add, sub, mul};
    assert(ops[0](4, 2) == 6);
    assert(ops[1](4, 2) == 2);
    assert(ops[2](4, 2) == 8);
    return 0;
}
