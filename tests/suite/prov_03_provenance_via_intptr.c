// @CATEGORY: pointer provenance tracking per [18]
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// The (u)intptr_t round trip preserves provenance and authority.
#include <stdint.h>
int main(void) {
    int x = 9;
    uintptr_t u = (uintptr_t)&x;
    int *q = (int*)u;
    return *q == 9 ? 0 : 1;
}
