// @CATEGORY: Checking capability alignment in the memory
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// (u)intptr_t is capability-sized and capability-aligned (s3.3).
#include <stdint.h>
#include <assert.h>
int main(void) {
    assert(sizeof(uintptr_t) == sizeof(void*));
    assert(sizeof(intptr_t) == sizeof(void*));
    assert(_Alignof(uintptr_t) == _Alignof(void*));
    return 0;
}
