// @CATEGORY: Tests related to accessing capabilities in-memory representation
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// s3.5 question (1): reading the address after representation
// manipulation is implementation-defined, not UB.
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int x;
    int *px = &x;
    unsigned char *rep = (unsigned char *)&px;
    rep[0] = rep[0];
    ptraddr_t a = cheri_address_get(px);
    assert(a == cheri_address_get(&x));
    return 0;
}
