// @CATEGORY: Unforgeability enforcement for capabilities
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    const int c = 1;
    const int *p = &c;
    /* perms_and can only intersect; const cap never gains Store */
    const int *q = cheri_perms_and(p, ~(size_t)0);
    assert(cheri_perms_get(q) == cheri_perms_get(p));
    return 0;
}
