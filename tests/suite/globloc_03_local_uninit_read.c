// @CATEGORY: Pointers to global vs local variables
// @EXPECT: ub UB_read_uninitialized
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: ub UB_read_uninitialized
// @EXPECT[cheriot-temporal]: exit 0
// Reading an uninitialized local is flagged by the reference
// semantics (load rule 2g); hardware reads whatever is there.
int main(void) {
    int l;
    return l == 0 ? 0 : 1;
}
