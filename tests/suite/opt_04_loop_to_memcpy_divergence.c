// @CATEGORY: Effects of compiler optimisations
// @EXPECT: ub UB_CHERI_UndefinedTag
// @EXPECT[gcc-morello-O0]: ub UB_CHERI_InvalidCap
// @EXPECT[gcc-morello-O2]: exit 1
// @EXPECT[clang-morello-O0]: ub UB_CHERI_InvalidCap
// @EXPECT[clang-riscv-O2]: exit 1
// @EXPECT[cerberus-cheriot]: ub UB_CHERI_UndefinedTag
// @EXPECT[cheriot-temporal]: ub UB_CHERI_InvalidCap
// s3.5 second example: tree-loop-distribute-patterns turns the loop
// into a tag-preserving memcpy.
int main(void) {
    int x = 0;
    int *px0 = &x;
    int *px1;
    unsigned char *p0 = (unsigned char *)&px0;
    unsigned char *p1 = (unsigned char *)&px1;
    for (int i=0; i<sizeof(int*); i++)
        p1[i] = p0[i];
    *px1 = 1;
    return x;
}
