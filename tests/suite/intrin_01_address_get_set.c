// @CATEGORY: Semantics of CHERI C intrinsic functions (e.g, permission manipulation)
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int a[4];
    int *p = a;
    int *q = cheri_address_set(p, cheri_address_get(p) + sizeof(int));
    assert(cheri_address_get(q) == cheri_address_get(p) + sizeof(int));
    assert(cheri_tag_get(q));
    a[1] = 5;
    return *q == 5 ? 0 : 1;
}
