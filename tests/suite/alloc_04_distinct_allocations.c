// @CATEGORY: Memory allocator interface (locals, globals, and heap)
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Distinct live allocations never overlap.
#include <stdlib.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    char *a = malloc(16);
    char *b = malloc(16);
    assert(cheri_base_get(a) + cheri_length_get(a) <= cheri_base_get(b)
        || cheri_base_get(b) + cheri_length_get(b) <= cheri_base_get(a));
    free(a);
    free(b);
    return 0;
}
