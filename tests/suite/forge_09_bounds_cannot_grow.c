// @CATEGORY: Unforgeability enforcement for capabilities
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Monotonicity: no sequence of operations can widen bounds.
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int a[8];
    int *narrow = cheri_bounds_set(a, sizeof(int));
    int *wide = cheri_bounds_set(narrow, 8 * sizeof(int));
    assert(!cheri_tag_get(wide));
    return 0;
}
