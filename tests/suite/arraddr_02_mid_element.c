// @CATEGORY: Capabilities produced by taking addresses of arrays and their elements
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// &arr[k] keeps whole-array bounds with the address moved (s3.8).
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int arr[4];
    int *p = &arr[2];
    assert(cheri_address_get(p) ==
           cheri_address_get(arr) + 2 * sizeof(int));
    assert(cheri_base_get(p) == cheri_address_get(arr));
    assert(cheri_tag_get(p));
    return 0;
}
