// @CATEGORY: Checking capability alignment in the memory
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// A struct containing a pointer is padded to capability alignment.
#include <stdint.h>
#include <stddef.h>
#include <assert.h>
struct s { char c; int *p; };
int main(void) {
    assert(offsetof(struct s, p) == sizeof(int*));
    assert(sizeof(struct s) == 2 * sizeof(int*));
    return 0;
}
