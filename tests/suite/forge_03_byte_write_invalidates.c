// @CATEGORY: Unforgeability enforcement for capabilities
// @EXPECT: ub UB_CHERI_UndefinedTag
// @EXPECT[clang-morello-O0]: ub UB_CHERI_InvalidCap
// @EXPECT[clang-riscv-O2]: ub UB_CHERI_InvalidCap
// @EXPECT[gcc-morello-O2]: ub UB_CHERI_InvalidCap
// @EXPECT[cerberus-cheriot]: ub UB_CHERI_UndefinedTag
// @EXPECT[cheriot-temporal]: ub UB_CHERI_InvalidCap
// Overwriting one representation byte invalidates the capability:
// ghost-unspecified tag in the abstract machine, deterministically
// cleared on hardware (s3.5).
int main(void) {
    int x = 0;
    int *px = &x;
    unsigned char *p = (unsigned char *)&px;
    p[0] = p[0] + 1;
    *px = 1;
    return x;
}
