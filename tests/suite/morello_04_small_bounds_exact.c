// @CATEGORY: Capabilities encoding for Arm Morello architecture
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Small regions are described precisely (s2.1).
#include <stdlib.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    for (size_t n = 1; n <= 64; n++) {
        char *p = malloc(n);
        assert(cheri_length_get(p) == n);
        free(p);
    }
    return 0;
}
