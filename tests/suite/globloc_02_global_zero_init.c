// @CATEGORY: Pointers to global vs local variables
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Static storage is zero-initialized; pointers become null.
#include <assert.h>
int g;
int *gp;
int main(void) {
    assert(g == 0);
    assert(gp == 0);
    return 0;
}
