// @CATEGORY: Properties and definition of (u)intptr_t types
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <stdint.h>
#include <assert.h>
int main(void) {
    uintptr_t u = 41;
    assert(u + 1 == 42);
    assert(u < 42);
    return 0;
}
