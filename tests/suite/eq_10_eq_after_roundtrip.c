// @CATEGORY: Equality between capability-carrying types
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// An untagged integer-derived alias compares equal by address (s3.6).
#include <stdint.h>
#include <assert.h>
int main(void) {
    int x;
    int *p = &x;
    ptraddr_t a = (ptraddr_t)p;
    int *q = (int*)(long)a;
    assert(p == q);
    return 0;
}
