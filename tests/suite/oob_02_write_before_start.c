// @CATEGORY: Out-of-bounds memory-access handling
// @EXPECT: ub
// Writing below the base: UB at construction (reference) or a
// capability fault (hardware).
// @EXPECT[clang-morello-O0]: ub UB_CHERI_BoundsViolation
// @EXPECT[clang-riscv-O2]: ub UB_CHERI_BoundsViolation
// @EXPECT[gcc-morello-O2]: ub UB_CHERI_BoundsViolation
// @EXPECT[cerberus-cheriot]: ub UB_out_of_bounds_pointer_arithmetic
// @EXPECT[cheriot-temporal]: ub UB_CHERI_BoundsViolation
int main(void) {
    int a[2];
    int *p = a;
    *(p - 1) = 7;
    return 0;
}
