// @CATEGORY: Checking capability alignment in the memory
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Non-capability scalars keep their natural (smaller) alignment.
#include <assert.h>
int main(void) {
    assert(_Alignof(char) == 1);
    assert(_Alignof(short) == 2);
    assert(_Alignof(int) == 4);
    assert(_Alignof(long) == 8);
    assert(_Alignof(int) < _Alignof(int*));
    return 0;
}
