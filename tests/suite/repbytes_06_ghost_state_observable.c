// @CATEGORY: Tests related to accessing capabilities in-memory representation
// @EXPECT: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// The tag-unspecified ghost bit (bit 0) is set after a
// representation write in the reference semantics.
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int x;
    int *px = &x;
    unsigned char *rep = (unsigned char *)&px;
    rep[0] = rep[0];
    assert(cheri_ghost_state_get(px) & 1);
    return 0;
}
