// @CATEGORY: Capabilities encoding for Arm Morello architecture
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// The encoding leaves representable slack around the bounds, so
// moderate out-of-bounds addresses keep the tag through
// cheri_address_set (s3.2, [45] 4.3.5).
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    char big[8192];
    char *p = big;
    /* one-past is always representable */
    char *one_past = cheri_address_set(p, cheri_address_get(p) + 8192);
    assert(cheri_ghost_state_get(one_past) == 0);
    return 0;
}
