// @CATEGORY: Out-of-bounds memory-access handling
// @EXPECT: ub UB_CHERI_BoundsViolation
// @EXPECT[clang-morello-O0]: ub UB_CHERI_BoundsViolation
// @EXPECT[clang-riscv-O2]: ub UB_CHERI_BoundsViolation
// @EXPECT[gcc-morello-O2]: ub UB_CHERI_BoundsViolation
// @EXPECT[cerberus-cheriot]: ub UB_CHERI_BoundsViolation
// @EXPECT[cheriot-temporal]: ub UB_CHERI_BoundsViolation
// Heap buffer overflow: deterministically mitigated (s1, s3).
#include <stdlib.h>
int main(void) {
    char *p = malloc(16);
    p[16] = 1;
    return 0;
}
