// @CATEGORY: Arithmetic operations on (u)intptr_t values
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Multiplicative ops are defined on the address value.
#include <stdint.h>
#include <assert.h>
int main(void) {
    uintptr_t u = 100;
    assert(u * 3 == 300);
    assert(u / 7 == 14);
    assert(u % 7 == 2);
    return 0;
}
