// @CATEGORY: Arithmetic operations on (u)intptr_t values
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <stdint.h>
int main(void) {
    int a[3];
    a[2] = 30;
    uintptr_t u = (uintptr_t)a;
    u += 2 * sizeof(int);
    return *(int*)u == 30 ? 0 : 1;
}
