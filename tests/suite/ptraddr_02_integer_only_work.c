// @CATEGORY: New ptraddr_t type definition and usage
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// s3.3: if one only needs the integer result, cast to ptraddr_t and
// do conventional integer computation.
#include <stdint.h>
#include <assert.h>
int main(void) {
    int a[8];
    ptraddr_t lo = (ptraddr_t)&a[0];
    ptraddr_t hi = (ptraddr_t)&a[7];
    assert(hi - lo == 7 * sizeof(int));
    assert((lo % 2) == 0);
    return 0;
}
