// @CATEGORY: Semantics of CHERI C intrinsic functions (e.g, permission manipulation)
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int a[4];
    int *p = cheri_offset_set(a, 3 * sizeof(int));
    assert(cheri_offset_get(p) == 3 * sizeof(int));
    a[3] = 9;
    return *p == 9 ? 0 : 1;
}
