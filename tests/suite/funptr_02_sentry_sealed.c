// @CATEGORY: Pointers to functions
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Function pointers are sealed entry capabilities (s2.1).
#include <cheriintrin.h>
#include <assert.h>
int f(void) { return 0; }
int main(void) {
    int (*p)(void) = f;
    assert(cheri_tag_get(p));
    assert(cheri_is_sealed(p));
    return 0;
}
