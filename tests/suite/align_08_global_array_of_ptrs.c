// @CATEGORY: Checking capability alignment in the memory
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Each element of a pointer array sits on its own tag granule.
#include <cheriintrin.h>
#include <assert.h>
int a, b;
int *arr[2];
int main(void) {
    arr[0] = &a;
    arr[1] = &b;
    assert(cheri_address_get(&arr[1]) - cheri_address_get(&arr[0])
           == sizeof(int*));
    assert(cheri_tag_get(arr[0]) && cheri_tag_get(arr[1]));
    return 0;
}
