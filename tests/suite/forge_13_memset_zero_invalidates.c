// @CATEGORY: Unforgeability enforcement for capabilities
// @EXPECT: ub
// @EXPECT[clang-morello-O0]: ub UB_CHERI_InvalidCap
// @EXPECT[clang-riscv-O2]: ub UB_CHERI_InvalidCap
// @EXPECT[gcc-morello-O2]: ub UB_CHERI_InvalidCap
// @EXPECT[cerberus-cheriot]: ub UB_CHERI_UndefinedTag
// @EXPECT[cheriot-temporal]: ub UB_CHERI_InvalidCap
// memset over a stored capability: later use is UB (though storing
// and loading the zeroed bytes as data stays fine, s3.5).
#include <string.h>
int main(void) {
    int x = 2;
    int *p = &x;
    memset(&p, 0xab, sizeof(int*));
    return *p;
}
