// @CATEGORY: Unforgeability enforcement for capabilities
// @EXPECT: ub UB_CHERI_InvalidCap
// @EXPECT[clang-morello-O0]: ub UB_CHERI_InvalidCap
// @EXPECT[clang-riscv-O2]: ub UB_CHERI_InvalidCap
// @EXPECT[gcc-morello-O2]: ub UB_CHERI_InvalidCap
// @EXPECT[cerberus-cheriot]: ub UB_CHERI_InvalidCap
// @EXPECT[cheriot-temporal]: ub UB_CHERI_InvalidCap
// Type punning an integer into a pointer via a union yields an
// untagged capability: the union preserves representation, not
// authority.
#include <stdint.h>
union pun { long l[2]; int *p; };
int main(void) {
    union pun u;
    u.l[0] = 0x4000;
    u.l[1] = 0;
    return *u.p;
}
