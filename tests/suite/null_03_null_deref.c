// @CATEGORY: null pointers and NULL constant as capabilities
// @EXPECT: ub UB_null_pointer_dereference
// @EXPECT[clang-riscv-O0]: ub UB_null_pointer_dereference
// @EXPECT[clang-morello-O0]: ub UB_null_pointer_dereference
// @EXPECT[clang-riscv-O2]: ub UB_null_pointer_dereference
// @EXPECT[gcc-morello-O2]: ub UB_null_pointer_dereference
// @EXPECT[cerberus-cheriot]: ub UB_null_pointer_dereference
// @EXPECT[cheriot-temporal]: ub UB_null_pointer_dereference
int main(void) {
    int *p = 0;
    return *p;
}
