// @CATEGORY: Arithmetic operations on (u)intptr_t values
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// intptr-intptr subtraction: plain address difference, no
// provenance requirement (unlike pointer subtraction).
#include <stdint.h>
#include <assert.h>
int main(void) {
    int a[8];
    intptr_t lo = (intptr_t)&a[1];
    intptr_t hi = (intptr_t)&a[6];
    assert(hi - lo == 5 * (intptr_t)sizeof(int));
    return 0;
}
