// @CATEGORY: Capability permissions: setting and enforcement
// @EXPECT: ub UB_CHERI_InsufficientPermissions
// @EXPECT[clang-morello-O0]: ub UB_CHERI_InsufficientPermissions
// @EXPECT[clang-riscv-O2]: ub UB_CHERI_InsufficientPermissions
// @EXPECT[gcc-morello-O2]: ub UB_CHERI_InsufficientPermissions
// @EXPECT[cerberus-cheriot]: ub UB_CHERI_InsufficientPermissions
// @EXPECT[cheriot-temporal]: ub UB_CHERI_InsufficientPermissions
// After clearing every permission, stores fault.
#include <cheriintrin.h>
int main(void) {
    int x;
    int *p = cheri_perms_and(&x, 0);
    *p = 1;
    return 0;
}
