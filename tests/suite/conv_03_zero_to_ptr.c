// @CATEGORY: Conversion between pointer and integer types
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
int main(void) {
    int *p = (int*)0;
    return p == 0 ? 0 : 1;
}
