// @CATEGORY: Capability permissions: setting and enforcement
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Restricted permissions travel with the capability through memory.
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int x = 1;
    int *restricted = cheri_perms_and(&x, 0);
    int **box = &restricted;
    int *back = *box;
    assert(cheri_perms_get(back) == 0);
    assert(cheri_tag_get(back));
    return 0;
}
