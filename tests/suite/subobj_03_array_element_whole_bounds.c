// @CATEGORY: Sub-objects bound enforcement via capabilities
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Moving between elements via a single element's pointer is fine
// under default (conservative) bounds.
#include <assert.h>
int main(void) {
    int a[8];
    for (int i = 0; i < 8; i++) a[i] = i;
    int *p = &a[3];
    assert(*(p + 4) == 7);
    assert(*(p - 3) == 0);
    return 0;
}
