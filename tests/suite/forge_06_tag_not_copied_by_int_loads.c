// @CATEGORY: Unforgeability enforcement for capabilities
// @EXPECT: ub
// @EXPECT[clang-morello-O0]: ub UB_CHERI_InvalidCap
// @EXPECT[clang-riscv-O2]: ub UB_CHERI_InvalidCap
// @EXPECT[gcc-morello-O2]: ub UB_CHERI_InvalidCap
// @EXPECT[cerberus-cheriot]: ub UB_CHERI_BoundsViolation
// @EXPECT[cheriot-temporal]: ub UB_CHERI_BoundsViolation
// Copying a capability via two long loads/stores strips the tag
// (long is half a capability).
#include <stdint.h>
int main(void) {
    int x = 5;
    int *src = &x;
    int *dst;
    long *s = (long *)&src;
    long *d = (long *)&dst;
    d[0] = s[0];
    d[1] = s[1];
    return *dst;
}
