// @CATEGORY: Sub-objects bound enforcement via capabilities
// @EXPECT: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// Default CHERI C does not narrow to sub-object bounds (s3.8):
// &s.m spans the whole struct.
#include <cheriintrin.h>
#include <assert.h>
struct pair { int a; int b; };
int main(void) {
    struct pair s;
    int *pa = &s.a;
    assert(cheri_length_get(pa) == sizeof(struct pair));
    return 0;
}
