// @CATEGORY: Equality between capability-carrying types
// @EXPECT: exit 0
// @EXPECT[cerberus-cheriot]: exit 0
// @EXPECT[clang-morello-O0]: exit 0
// @EXPECT[clang-riscv-O2]: exit 0
// @EXPECT[gcc-morello-O2]: exit 0
// @EXPECT[cheriot-temporal]: exit 0
// s3.6 option (3): == compares just the address fields.
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
    int x = 0;
    int *p = &x;
    int *q = cheri_tag_clear(p); /* same address, no tag */
    assert(p == q);
    assert(!cheri_is_equal_exact(p, q));
    return 0;
}
